"""Figure 6 live: collaboration of the watchdog's detection units.

An invalid execution branch is injected into SafeSpeed's sequence chart.
The heartbeat monitor starts reporting aliveness errors for the bypassed
runnable — but the program-flow checker identifies the *real* cause
first: after three PFC errors (the threshold) the task is declared
faulty while at most one accumulated aliveness error has been recorded.

Run:  python examples/collaboration_demo.py
"""

from repro.experiments import run_figure6
from repro.kernel import to_ms


def main() -> None:
    result = run_figure6()

    print(result.rendered)
    print()
    print("collaboration outcome:")
    fault_time = result.measurement("task_fault_time")
    print(f"  task declared faulty at t = {to_ms(fault_time):.1f} ms")
    print(f"  program-flow errors at that instant: "
          f"{result.measurement('pfc_errors_at_task_fault')} "
          f"(threshold {result.measurement('pfc_threshold')})")
    print(f"  accumulated aliveness errors by then:  "
          f"{result.measurement('aliveness_errors_at_task_fault')}")
    print(f"  totals over the whole window: "
          f"PFC {result.measurement('program_flow_errors')} vs "
          f"aliveness {result.measurement('aliveness_errors')}")
    print("\n=> the aliveness symptoms were caused by a program-flow fault, "
          "and the unit collaboration attributes them correctly.")


if __name__ == "__main__":
    main()
