"""Distributed supervision: watchdogs watching watchdogs across ECUs.

Two supervised nodes ("chassis", "body") share a CAN backbone; each
publishes a supervision frame from inside its own Software Watchdog
task.  A central remote supervisor applies the same counter semantics
(AC/CCA) at node granularity.  We crash one node and watch the
supervision hierarchy react.

Run:  python examples/distributed_supervision.py
"""

import json

from repro.kernel import ms, seconds
from repro.validator import MultiEcuValidator


def main() -> None:
    rig = MultiEcuValidator(["chassis", "body"])

    print("== phase 1: one second healthy ==")
    rig.run_for(seconds(1))
    print(json.dumps(rig.summary(), indent=2))

    print("\n== phase 2: 'body' node locks up ==")
    crash_time = rig.kernel.clock.now
    rig.crash_node("body")
    rig.run_for(ms(300))
    first = next(e for e in rig.node_aliveness_log if e.time >= crash_time)
    print(f"  node aliveness error raised {((first.time - crash_time) / 1000):.0f} ms "
          f"after the crash")
    summary = rig.summary()
    print(f"  supervisor verdicts: "
          f"body={summary['nodes']['body']['supervisor_verdict']}, "
          f"chassis={summary['nodes']['chassis']['supervisor_verdict']}")
    print(f"  network state: {summary['network_state']}")

    print("\n== phase 3: 'body' reboots ==")
    rig.recover_node("body")
    rig.run_for(ms(300))
    summary = rig.summary()
    print(f"  body verdict after reboot: "
          f"{summary['nodes']['body']['supervisor_verdict']}")
    print(f"  network state: {summary['network_state']}")


if __name__ == "__main__":
    main()
