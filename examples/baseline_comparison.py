"""Why a software watchdog? Granularity and overhead vs the baselines.

Part 1 demonstrates the hardware watchdog's blind spot live: a blocked
runnable never trips the kicked HW watchdog, while the Software Watchdog
pinpoints the runnable within two monitoring periods.

Part 2 regenerates the overhead argument of §3.2.2: look-up-table flow
checking vs CFCSS signatures, and the watchdog's own CPU share.

Run:  python examples/baseline_comparison.py
"""

from repro.analysis import format_table
from repro.baselines import HardwareWatchdog, attach_kick_task
from repro.core import ErrorType
from repro.experiments import flow_checking_rows, watchdog_cpu_rows
from repro.faults import BlockedRunnableFault, FaultTarget
from repro.kernel import ms, seconds
from repro.platform import (
    Application,
    Ecu,
    FmfPolicy,
    RunnableSpec,
    SoftwareComponent,
    TaskMapping,
    TaskSpec,
)


def build_supervised_ecu():
    app = Application("SafeSpeed")
    swc = SoftwareComponent("SpeedControl")
    for name, wcet in (("GetSensorValue", ms(1)), ("SAFE_CC_process", ms(2)),
                       ("Speed_process", ms(1))):
        swc.add(RunnableSpec(name, wcet=wcet))
    app.add_component(swc)
    mapping = TaskMapping([app])
    mapping.add_task(TaskSpec("SafeSpeedTask", priority=5, period=ms(10)))
    mapping.map_sequence(
        "SafeSpeedTask", ["GetSensorValue", "SAFE_CC_process", "Speed_process"]
    )
    ecu = Ecu("demo", mapping, watchdog_period=ms(10),
              fmf_policy=FmfPolicy(ecu_faulty_task_threshold=10**6,
                                   max_app_restarts=10**6),
              fmf_auto_treatment=False)
    hw = HardwareWatchdog(ecu.kernel, timeout=ms(100))
    kick = attach_kick_task(ecu.kernel, hw)
    ecu.alarms.alarm_activate_task("hwkick", kick.name).set_rel(ms(30), ms(30))
    hw.start()
    return ecu, hw


def main() -> None:
    print("== part 1: the granularity blind spot ==")
    ecu, hw = build_supervised_ecu()
    ecu.run_until(ms(500))
    BlockedRunnableFault("SAFE_CC_process").inject(FaultTarget.from_ecu(ecu))
    ecu.run_until(seconds(3))
    print(f"  SW watchdog aliveness detections: "
          f"{ecu.watchdog.detection_count(ErrorType.ALIVENESS)}")
    print(f"  SW watchdog flow detections:      "
          f"{ecu.watchdog.detection_count(ErrorType.PROGRAM_FLOW)}")
    print(f"  HW watchdog expiries:             {len(hw.expiry_times)}  "
          f"(kicked {hw.kick_count} times -- fault invisible at ECU level)")

    print("\n== part 2: flow-checking overhead (lookup table vs CFCSS) ==")
    print(format_table(flow_checking_rows(executions=500)))

    print("\n== part 3: the watchdog's own CPU share ==")
    print(format_table(watchdog_cpu_rows(periods=[ms(5), ms(10), ms(20)],
                                         check_costs=[10, 50, 200],
                                         horizon=seconds(2))))


if __name__ == "__main__":
    main()
