"""SafeSpeed on the EASIS architecture validator (the paper's §4 setup).

Runs the full HIL rig — vehicle dynamics, CAN/FlexRay/TCP networks,
gateway, sensor/actuator/driver/light nodes, and the central ECU hosting
SafeSpeed + SafeLane + steer-by-wire under watchdog supervision — then
reproduces the Figure 5 evaluation case live: a time-scalar slider slows
the SafeSpeed task mid-drive and the aliveness monitor reacts, all while
the vehicle keeps driving.

Run:  python examples/safespeed_hil.py
"""

from repro.analysis import render_panels
from repro.faults import ErrorInjector, FaultTarget, TimeScalarFault
from repro.kernel import ms, seconds
from repro.platform import FmfPolicy
from repro.validator import HilValidator


def main() -> None:
    rig = HilValidator(
        # Observation mode so the counter traces stay untouched.
        fmf_policy=FmfPolicy(ecu_faulty_task_threshold=10**6,
                             max_app_restarts=10**6),
        fmf_auto_treatment=False,
    )
    rig.probe_counters("SAFE_CC_process")
    injector = ErrorInjector(FaultTarget.from_ecu(rig.ecu))

    print("== phase 1: drive 3 s healthy ==")
    rig.run(seconds(3))
    print(f"  vehicle speed:   {rig.vehicle.state.speed_kph:6.1f} km/h")
    print(f"  commanded limit: "
          f"{rig.central_store.value('SpeedCommand', 'limit_kph'):6.1f} km/h")
    print(f"  detections:      {rig.ecu.watchdog.detection_count()}")

    print("\n== phase 2: slider slows SafeSpeedTask 4x for 2 s ==")
    fault = TimeScalarFault("SafeSpeedTask", scalar=4.0)
    injector.inject_now(fault)
    rig.run(seconds(2))
    injector.restore_now(fault)

    print("\n== phase 3: drive 2 s recovered ==")
    rig.run(seconds(2))

    summary = rig.summary()
    print("\nrig summary:")
    for key, value in summary.items():
        print(f"  {key}: {value}")

    print("\nControlDesk capture (Figure 5 layout):")
    print(
        render_panels(
            {
                "speed_kph": rig.capture.get("speed_kph").values,
                "SAFE_CC_process.AC": rig.capture.get("SAFE_CC_process.AC").values,
                "AM_Result": rig.capture.get("AM_Result").values,
            },
            title="Test with injected aliveness error",
        )
    )


if __name__ == "__main__":
    main()
