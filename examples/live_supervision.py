"""Live supervision of real processes: daemon, two children, one crash.

The service layer moves the Software Watchdog out of the simulated
kernel: ``python -m repro serve`` supervises real operating system
processes that heartbeat over a socket.  This example spawns the
daemon plus two genuine child processes:

* ``steady`` — heartbeats forever, also subscribes to every detection
  (``watch=True``) and reports what it observes,
* ``doomed`` — heartbeats for a while, then simulates a lockup by
  simply stopping (no BYE — exactly what a crashed process looks like
  from the daemon's side).

The daemon maps the dropped connection to missed heartbeats, the
aliveness window lapses, and the detection is pushed to ``steady``.

Run:  PYTHONPATH=src python examples/live_supervision.py
"""

import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.request

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                   "src")
sys.path.insert(0, SRC)

#: Glue code run by each supervised child process.  Periods are in
#: check cycles: at --tick-ms 10, aliveness_period=10 is a 100 ms window.
CHILD = r"""
import sys, time
sys.path.insert(0, {src!r})
from repro.core import FaultHypothesis, RunnableHypothesis
from repro.service import WatchdogClient

name, port, beats, watch = (sys.argv[1], int(sys.argv[2]),
                            int(sys.argv[3]), sys.argv[4] == "watch")
hyp = FaultHypothesis()
hyp.add_runnable(RunnableHypothesis(
    name + ".work", task=name + ".T", aliveness_period=10,
    min_heartbeats=1, arrival_period=10, max_heartbeats=1000))

client = WatchdogClient(("127.0.0.1", port), client_name=name, watch=watch)
client.connect()
client.register(name, hyp)
announced = set()
for beat in range(beats):
    client.heartbeat(name + ".work", task=name + ".T")
    client.flush()
    client.poll()
    for detection in client.detections:
        key = (detection["name"], detection["runnable"])
        if key not in announced:
            announced.add(key)
            print(f"{{name}} observed: {{detection['name']}}/"
                  f"{{detection['runnable']}} -> {{detection['error_type']}}",
                  flush=True)
    client.detections.clear()
    time.sleep(0.02)
if announced:
    print(f"{{name}} saw detections about: "
          f"{{sorted(n for n, _ in announced)}}", flush=True)
if watch:
    client.close()           # deliberate departure: BYE deactivates
# else: just fall off the end -- a crash, as far as the daemon knows
"""


def main() -> None:
    env = dict(os.environ, PYTHONPATH=SRC)
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--http-port", "0", "--tick-ms", "10"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env)
    banner = daemon.stdout.readline().strip()
    print(f"daemon: {banner}")
    match = re.search(r"tcp=[\d.]+:(\d+) http=([\d.]+:\d+)", banner)
    port, http = int(match.group(1)), f"http://{match.group(2)}"

    print("== spawn two real child processes ==")
    steady = subprocess.Popen(
        [sys.executable, "-c", CHILD.format(src=SRC),
         "steady", str(port), "250", "watch"], text=True, env=env)
    doomed = subprocess.Popen(
        [sys.executable, "-c", CHILD.format(src=SRC),
         "doomed", str(port), "40", "plain"], text=True, env=env)

    doomed.wait()
    print("== 'doomed' stopped heartbeating (no BYE) ==")
    steady.wait()

    health = json.loads(urllib.request.urlopen(http + "/healthz",
                                               timeout=5).read())
    print(f"daemon verdict: fleet={health['fleet_state']} "
          f"detections={health['detections']} "
          f"indications={health['indications']}")

    daemon.send_signal(signal.SIGTERM)
    out, _ = daemon.communicate(timeout=10)
    print(f"daemon: {out.strip()}")


if __name__ == "__main__":
    main()
