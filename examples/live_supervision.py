"""Live supervision of real processes: daemon, two children, two crashes.

The service layer moves the Software Watchdog out of the simulated
kernel: ``python -m repro serve`` supervises real operating system
processes that heartbeat over a socket.  This example spawns the
daemon plus two genuine child processes:

* ``steady`` — heartbeats forever, also subscribes to every detection
  (``watch=True``) and reports what it observes,
* ``doomed`` — heartbeats for a while, then simulates a lockup by
  simply stopping (no BYE — exactly what a crashed process looks like
  from the daemon's side).

Act one: the daemon maps the dropped connection to missed heartbeats,
the aliveness window lapses, and the detection is pushed to ``steady``.

Act two crashes **the watchdog itself**: the daemon runs with
``--state-dir``, so when it is SIGKILLed mid-stream a restart on the
same port restores every registration from snapshot + journal,
``steady``'s client reconnects through its ordinary backoff path, and
``doomed``'s registration — restored ACTIVE, still silent — is
re-detected by a daemon that was not even alive when the process died.

Run:  PYTHONPATH=src python examples/live_supervision.py
"""

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                   "src")
sys.path.insert(0, SRC)

#: Glue code run by each supervised child process.  Periods are in
#: check cycles: at --tick-ms 10, aliveness_period=10 is a 100 ms window.
CHILD = r"""
import sys, time
sys.path.insert(0, {src!r})
from repro.core import FaultHypothesis, RunnableHypothesis
from repro.service import WatchdogClient

name, port, beats, watch = (sys.argv[1], int(sys.argv[2]),
                            int(sys.argv[3]), sys.argv[4] == "watch")
hyp = FaultHypothesis()
hyp.add_runnable(RunnableHypothesis(
    name + ".work", task=name + ".T", aliveness_period=10,
    min_heartbeats=1, arrival_period=10, max_heartbeats=1000))

client = WatchdogClient(("127.0.0.1", port), client_name=name, watch=watch)
client.connect()
client.register(name, hyp)
announced = set()
for beat in range(beats):
    client.heartbeat(name + ".work", task=name + ".T")
    client.flush()
    client.poll()
    for detection in client.detections:
        key = (detection["name"], detection["runnable"])
        if key not in announced:
            announced.add(key)
            print(f"{{name}} observed: {{detection['name']}}/"
                  f"{{detection['runnable']}} -> {{detection['error_type']}}",
                  flush=True)
    client.detections.clear()
    time.sleep(0.02)
if announced:
    print(f"{{name}} saw detections about: "
          f"{{sorted(n for n, _ in announced)}}", flush=True)
if watch:
    client.close()           # deliberate departure: BYE deactivates
# else: just fall off the end -- a crash, as far as the daemon knows
"""


def spawn_daemon(env, state_dir, port):
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port),
         "--http-port", "0", "--tick-ms", "10",
         "--state-dir", state_dir, "--snapshot-interval", "0.5"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env)
    banner = daemon.stdout.readline().strip()
    print(f"daemon: {banner}")
    match = re.search(r"tcp=[\d.]+:(\d+) http=([\d.]+:\d+)", banner)
    return daemon, int(match.group(1)), f"http://{match.group(2)}"


def main() -> None:
    env = dict(os.environ, PYTHONPATH=SRC)
    state_dir = tempfile.mkdtemp(prefix="repro-state-")
    daemon, port, http = spawn_daemon(env, state_dir, 0)

    print("== act 1: spawn two real child processes ==")
    steady = subprocess.Popen(
        [sys.executable, "-c", CHILD.format(src=SRC),
         "steady", str(port), "250", "watch"], text=True, env=env)
    doomed = subprocess.Popen(
        [sys.executable, "-c", CHILD.format(src=SRC),
         "doomed", str(port), "40", "plain"], text=True, env=env)

    doomed.wait()
    print("== 'doomed' stopped heartbeating (no BYE) ==")

    print("== act 2: kill -9 the watchdog daemon itself ==")
    daemon.send_signal(signal.SIGKILL)
    daemon.wait()
    # Same port, same state directory: the restart restores both
    # registrations from snapshot + journal.  'steady' reconnects and
    # re-registers through its ordinary backoff path; 'doomed' is
    # restored ACTIVE, stays silent, and gets re-detected by a daemon
    # that was dead when the process crashed.
    daemon, port, http = spawn_daemon(env, state_dir, port)
    steady.wait()

    health = json.loads(urllib.request.urlopen(http + "/healthz",
                                               timeout=5).read())
    print(f"daemon verdict: fleet={health['fleet_state']} "
          f"restored={health['restored_registrations']} "
          f"detections={health['detections']} "
          f"indications={health['indications']}")

    daemon.send_signal(signal.SIGTERM)
    out, _ = daemon.communicate(timeout=10)
    print(f"daemon: {out.strip()}")


if __name__ == "__main__":
    main()
