"""Fault-injection campaign: coverage of four monitors side by side.

Runs the E1 coverage study: every fault class in the catalogue is
injected into a fresh supervised system, observed by the Software
Watchdog, the ECU hardware watchdog, OSEKtime-style deadline monitoring
and AUTOSAR-style execution-time monitoring.

Run:  python examples/fault_campaign.py
"""

from repro.analysis import coverage_report, latency_stats
from repro.experiments import run_coverage_campaign
from repro.kernel import seconds


def main() -> None:
    print("running the coverage campaign (8 fault classes x 4 monitors)...")
    result = run_coverage_campaign(observation=seconds(2), repetitions=1)

    print()
    print(coverage_report(result))

    print()
    stats = latency_stats(result, "SoftwareWatchdog")
    print(
        f"Software Watchdog latency over all detected faults: "
        f"mean {stats.mean / 1000:.1f} ms, p95 {stats.p95 / 1000:.1f} ms, "
        f"max {stats.maximum / 1000:.1f} ms"
    )
    print(
        "\nshape check: the Software Watchdog detects runnable-granular "
        "faults every baseline misses;\nthe baselines only see faults at "
        "their own granularity (whole-CPU or whole-task)."
    )


if __name__ == "__main__":
    main()
