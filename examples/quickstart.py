"""Quickstart: supervise an application with the Software Watchdog.

Builds the paper's SafeSpeed application (three runnables on one OSEK
task), puts it under Software Watchdog supervision on a simulated ECU,
runs it healthy, then injects a blocked-runnable fault and watches the
detection → task-state → Fault Management Framework treatment chain.

Run:  python examples/quickstart.py
"""

from repro.faults import BlockedRunnableFault, ErrorInjector, FaultTarget
from repro.kernel import ms, seconds
from repro.platform import (
    Application,
    Ecu,
    RunnableSpec,
    SoftwareComponent,
    TaskMapping,
    TaskSpec,
)


def build_mapping() -> TaskMapping:
    """The functional model and its task mapping (Figure 4 shape)."""
    app = Application("SafeSpeed")
    swc = SoftwareComponent("SpeedControl")
    swc.add(RunnableSpec("GetSensorValue", wcet=ms(1)))
    swc.add(RunnableSpec("SAFE_CC_process", wcet=ms(2)))
    swc.add(RunnableSpec("Speed_process", wcet=ms(1)))
    app.add_component(swc)

    mapping = TaskMapping([app])
    mapping.add_task(TaskSpec("SafeSpeedTask", priority=5, period=ms(10)))
    mapping.map_sequence(
        "SafeSpeedTask", ["GetSensorValue", "SAFE_CC_process", "Speed_process"]
    )
    return mapping


def main() -> None:
    # One call builds the kernel, the tasks, the auto-generated heartbeat
    # glue, the fault hypothesis, the watchdog check task and the FMF.
    ecu = Ecu("demo", build_mapping(), watchdog_period=ms(10))

    print("== healthy operation ==")
    ecu.run_until(seconds(1))
    print(f"  check cycles:     {ecu.watchdog.check_cycle_count}")
    print(f"  detections:       {ecu.watchdog.detection_count()}")
    print(f"  global ECU state: {ecu.ecu_monitor_state().value}")

    print("\n== inject: SAFE_CC_process blocks ==")
    injector = ErrorInjector(FaultTarget.from_ecu(ecu))
    injector.inject_now(BlockedRunnableFault("SAFE_CC_process"))
    ecu.run_until(seconds(3))

    by_category = ecu.fmf.faults_by_category()
    print(f"  faults recorded by the FMF: {by_category}")
    print(f"  application restarts:       {ecu.application_restart_counts}")
    print(f"  ECU software resets:        {len(ecu.reset_times)}")

    print("\n== restore the fault (transient) ==")
    injector.restore_all()
    before = ecu.watchdog.detection_count()
    ecu.run_until(seconds(5))
    print(f"  new detections after recovery: "
          f"{ecu.watchdog.detection_count() - before}")
    print(f"  global ECU state:              {ecu.ecu_monitor_state().value}")


if __name__ == "__main__":
    main()
