"""Differential acceptance: the socket path must equal the direct path.

One indication stream — heartbeats, flow indications, a crash window, a
recovery — is applied twice:

* **direct**: straight into a :func:`repro.service.build_watchdog`
  instance (the same constructor the daemon uses),
* **service**: through the SDK, over a real loopback socket, into the
  daemon (manual-tick mode: ``await server.drain()`` before every
  ``server.tick``).

The detection sequences and final task/ECU states must be
*bit-identical*.  Any divergence means the wire path reorders, drops,
or re-times indications — exactly the class of bug a supervision
service must not have.
"""

import asyncio

import pytest

from repro.core import FaultHypothesis, RunnableHypothesis
from repro.core.config_io import hypothesis_to_dict
from repro.service import SupervisionServer, WatchdogClient, build_watchdog


def make_hypothesis(prefix=""):
    hyp = FaultHypothesis()
    hyp.add_runnable(RunnableHypothesis(
        f"{prefix}sense", task=f"{prefix}T", aliveness_period=2,
        min_heartbeats=1, arrival_period=2, max_heartbeats=8))
    hyp.add_runnable(RunnableHypothesis(
        f"{prefix}act", task=f"{prefix}T", aliveness_period=2,
        min_heartbeats=1, arrival_period=2, max_heartbeats=8))
    hyp.allow_sequence([f"{prefix}sense", f"{prefix}act"])
    return hyp


def make_script(prefix=""):
    """One deterministic indication script: (op, *args) tuples plus
    interleaved check cycles.  Covers a healthy phase, a crash window
    (silence), and a recovery phase."""
    script = []
    # Healthy: both runnables heartbeat every cycle.
    for cycle in range(1, 6):
        t = cycle * 10
        script.append(("task_start", f"{prefix}T", t))
        script.append(("hb", f"{prefix}sense", t, f"{prefix}T"))
        script.append(("hb", f"{prefix}act", t + 1, f"{prefix}T"))
        script.append(("tick", t + 5))
    # Crash window: four silent check cycles.
    for cycle in range(6, 10):
        script.append(("tick", cycle * 10))
    # Recovery: heartbeats resume.
    for cycle in range(10, 14):
        t = cycle * 10
        script.append(("task_start", f"{prefix}T", t))
        script.append(("hb", f"{prefix}sense", t, f"{prefix}T"))
        script.append(("hb", f"{prefix}act", t + 1, f"{prefix}T"))
        script.append(("tick", t + 5))
    return script


def snapshot(watchdog, hypothesis):
    tasks = sorted({r.task for r in hypothesis.runnables.values()})
    return {
        "task_states": {
            task: watchdog.tsi.task_state(task) for task in tasks
        },
        "ecu_state": watchdog.tsi.ecu_state(),
    }


def run_direct(prefix=""):
    """Apply the script straight to a build_watchdog() instance."""
    hypothesis = make_hypothesis(prefix)
    watchdog = build_watchdog(f"direct-{prefix or 'p'}", hypothesis)
    detections = []
    watchdog.add_fault_listener(detections.append)
    for step in make_script(prefix):
        if step[0] == "hb":
            watchdog.heartbeat_indication(step[1], step[2], task=step[3])
        elif step[0] == "task_start":
            watchdog.notify_task_start(step[1])
        else:
            watchdog.check_cycle(step[1])
    return {"detections": detections, **snapshot(watchdog, hypothesis)}


async def run_service(names, shards):
    """Apply the same script(s) through SDK + loopback + daemon."""
    server = SupervisionServer(port=0, shards=shards, tick_interval=None)
    await server.start()
    loop = asyncio.get_running_loop()
    detections = {name: [] for name in names}
    server.fleet.add_detection_listener(
        lambda name, error: detections[name].append(error))
    try:
        clients = {}

        def setup(name):
            client = WatchdogClient((server.host, server.port),
                                    client_name=name, batch_size=7)
            client.connect()
            client.register(name, hypothesis_to_dict(make_hypothesis(name)))
            return client

        for name in names:
            clients[name] = await loop.run_in_executor(None, setup, name)

        # Interleave the scripts cycle-aligned: every client sends its
        # indications for a timestamp, then the daemon runs the shared
        # check cycle — the service analogue of one OS schedule round.
        scripts = {name: make_script(name) for name in names}
        for step_index in range(len(next(iter(scripts.values())))):
            tick_at = None
            for name in names:
                step = scripts[name][step_index]
                client = clients[name]
                if step[0] == "hb":
                    await loop.run_in_executor(
                        None, client.heartbeat, step[1], step[2], step[3])
                elif step[0] == "task_start":
                    await loop.run_in_executor(
                        None, client.task_start, step[1], step[2])
                else:
                    tick_at = step[1]
            if tick_at is not None:
                for client in clients.values():
                    assert await loop.run_in_executor(None, client.sync)
                await server.drain()
                server.tick(tick_at)

        results = {}
        for name in names:
            registration = server.fleet.registration(name)
            results[name] = {
                "detections": detections[name],
                **snapshot(registration.watchdog, registration.hypothesis),
            }
        for client in clients.values():
            await loop.run_in_executor(None, client.close)
        return results
    finally:
        await server.stop()


def assert_identical(direct, service):
    # Bit-identical detection sequence: RunnableError is a frozen
    # dataclass, so == compares every field (runnable, task, time,
    # error type, details).
    assert service["detections"] == direct["detections"]
    assert len(service["detections"]) > 0  # the crash window must show
    assert service["task_states"] == direct["task_states"]
    assert service["ecu_state"] == direct["ecu_state"]


class TestDifferential:
    def test_single_registration_serial_shard(self):
        direct = run_direct("p.")
        service = asyncio.run(run_service(["p."], shards=1))
        assert_identical(direct, service["p."])

    def test_three_registrations_multi_shard(self):
        # Three independent processes across two shards: each must
        # still equal its own direct run — sharding must not leak
        # state across registrations.
        names = ["alpha.", "beta.", "gamma."]
        service = asyncio.run(run_service(names, shards=2))
        for name in names:
            direct = run_direct(name)
            assert_identical(direct, service[name])

    def test_detection_details_carry_counters(self):
        direct = run_direct("d.")
        service = asyncio.run(run_service(["d."], shards=1))
        assert direct["detections"]
        for direct_error, service_error in zip(
                direct["detections"], service["d."]["detections"]):
            assert direct_error.details == service_error.details


async def run_service_crash(name, state_dir, crash_after_ticks):
    """Apply the script through a daemon that is killed mid-script and
    restored from its state directory — the differential proof that a
    restored daemon equals one that never died."""
    loop = asyncio.get_running_loop()
    detections = []
    hook = lambda _name, error: detections.append(error)

    def make_server():
        return SupervisionServer(
            port=0, shards=1, tick_interval=None,
            state_dir=state_dir, snapshot_interval=None)

    server = make_server()
    await server.start()
    server.fleet.add_detection_listener(hook)

    def setup(port):
        client = WatchdogClient(("127.0.0.1", port), client_name=name,
                                batch_size=7)
        client.connect()
        client.register(name, hypothesis_to_dict(make_hypothesis(name)))
        return client

    client = await loop.run_in_executor(None, setup, server.port)
    ticks = 0
    try:
        for step in make_script(name):
            if step[0] == "hb":
                await loop.run_in_executor(
                    None, client.heartbeat, step[1], step[2], step[3])
            elif step[0] == "task_start":
                await loop.run_in_executor(
                    None, client.task_start, step[1], step[2])
            else:
                assert await loop.run_in_executor(None, client.sync)
                await server.drain()
                server.tick(step[1])
                ticks += 1
                if ticks == crash_after_ticks:
                    # Crash: snapshot happens to be fresh (the periodic
                    # loop's job in production), then the process dies
                    # without any farewell to its clients.
                    server.write_snapshot()
                    pre_crash = server.fleet.snapshot()
                    await server.stop(save=False)
                    await loop.run_in_executor(
                        None, client._drop_connection)
                    server = make_server()
                    await server.start()
                    # Bit-identical restore: the whole fleet state —
                    # counters mid-window, wheel deadlines, declared
                    # faults, bookkeeping — survives the death.
                    assert server.fleet.snapshot() == pre_crash
                    server.fleet.add_detection_listener(hook)
                    await loop.run_in_executor(None, client.close)
                    client = await loop.run_in_executor(
                        None, setup, server.port)
        registration = server.fleet.registration(name)
        result = {
            "detections": detections,
            **snapshot(registration.watchdog, registration.hypothesis),
        }
        await loop.run_in_executor(None, client.close)
        return result
    finally:
        await server.stop(save=False)


class TestCrashRecoveryDifferential:
    def test_restored_daemon_equals_one_that_never_died(self, tmp_path):
        """kill mid-crash-window, restore, finish the script: detections
        and final states must equal the uninterrupted direct run."""
        direct = run_direct("c.")
        service = asyncio.run(
            run_service_crash("c.", str(tmp_path), crash_after_ticks=7))
        assert_identical(direct, service)

    def test_crash_in_healthy_phase_also_identical(self, tmp_path):
        direct = run_direct("h.")
        service = asyncio.run(
            run_service_crash("h.", str(tmp_path), crash_after_ticks=3))
        assert_identical(direct, service)
