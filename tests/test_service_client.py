"""WatchdogClient SDK: batching, offline buffering, reconnect, pushes."""

import socket
import struct
import threading

import pytest

from repro.core import FaultHypothesis, RunnableHypothesis
from repro.core.config_io import hypothesis_to_dict
from repro.service import ClientError, RegistrationRejected, WatchdogClient
from repro.service.protocol import (
    FrameDecoder,
    T_ACK,
    T_BYE,
    T_DETECTION,
    T_FLOW,
    T_HEARTBEAT,
    T_HELLO,
    T_REGISTER,
    T_STATE,
    encode_frame,
)


def make_hyp_dict():
    hyp = FaultHypothesis()
    hyp.add_runnable(RunnableHypothesis(
        "sense", task="T", aliveness_period=2, min_heartbeats=1))
    return hypothesis_to_dict(hyp)


class FakeDaemon:
    """A scripted protocol peer on a real loopback socket.

    Runs a single-connection accept loop in a thread; records every
    frame it sees and answers HELLO/REGISTER/BYE with canned ACKs.
    """

    def __init__(self, *, reject_register=False, push_frames=()):
        self.listener = socket.socket()
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(8)
        self.listener.settimeout(0.05)  # short: the loop polls _stop
        self.address = self.listener.getsockname()
        self.frames = []
        self.connections = 0
        self.reject_register = reject_register
        self.push_frames = list(push_frames)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while not self._stop.is_set():
            try:
                conn, _ = self.listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            self.connections += 1
            self._serve_one(conn)

    def _serve_one(self, conn):
        conn.settimeout(0.05)  # short: the loop polls _stop
        decoder = FrameDecoder()
        try:
            while not self._stop.is_set():
                try:
                    chunk = conn.recv(65536)
                except socket.timeout:
                    continue
                if not chunk:
                    return
                for frame in decoder.feed(chunk):
                    self.frames.append(frame)
                    self._answer(conn, frame)
                    if frame.type == T_BYE:
                        return
        except OSError:
            pass
        finally:
            conn.close()

    def _answer(self, conn, frame):
        if frame.type == T_HELLO:
            conn.sendall(encode_frame(T_ACK, ok=True, re=T_HELLO, server="fake"))
            for push in self.push_frames:
                conn.sendall(push)
        elif frame.type == T_REGISTER:
            if self.reject_register:
                conn.sendall(encode_frame(
                    T_ACK, ok=False, re=T_REGISTER,
                    error="rejected by strict mode", lint=["WD202 vacuous"]))
            else:
                conn.sendall(encode_frame(
                    T_ACK, ok=True, re=T_REGISTER, shard=0, lint=[]))
        elif frame.type == T_BYE:
            conn.sendall(encode_frame(T_ACK, ok=True, re=T_BYE))

    def frames_of(self, type):
        return [f for f in self.frames if f.type == type]

    def close(self):
        self._stop.set()
        self.listener.close()
        self._thread.join(timeout=5)


@pytest.fixture
def daemon():
    server = FakeDaemon()
    yield server
    server.close()


class TestHandshake:
    def test_connect_and_register(self, daemon):
        client = WatchdogClient(daemon.address, client_name="it")
        client.connect()
        ack = client.register("p", make_hyp_dict())
        assert ack["shard"] == 0
        client.close()
        types = [f.type for f in daemon.frames]
        assert types == [T_HELLO, T_REGISTER, T_BYE]
        hello = daemon.frames[0]
        assert hello.get("client") == "it"

    def test_register_accepts_hypothesis_object(self, daemon):
        hyp = FaultHypothesis()
        hyp.add_runnable(RunnableHypothesis("r", task="T", min_heartbeats=1))
        with WatchdogClient(daemon.address) as client:
            client.register("p", hyp)
        sent = daemon.frames_of(T_REGISTER)[0]
        names = [r["runnable"] for r in sent.get("hypothesis")["runnables"]]
        assert "r" in names

    def test_rejected_registration_raises_with_reasons(self):
        daemon = FakeDaemon(reject_register=True)
        try:
            client = WatchdogClient(daemon.address)
            client.connect()
            with pytest.raises(RegistrationRejected) as excinfo:
                client.register("p", make_hyp_dict())
            assert "strict" in str(excinfo.value)
            assert any("WD202" in r for r in excinfo.value.reasons)
            client.close(say_bye=False)
        finally:
            daemon.close()

    def test_connect_on_closed_client_raises(self, daemon):
        client = WatchdogClient(daemon.address)
        client.connect()
        client.close()
        with pytest.raises(ClientError):
            client.connect()


class TestBatching:
    def test_indications_buffer_until_batch_size(self, daemon):
        client = WatchdogClient(daemon.address, batch_size=4)
        client.connect()
        client.register("p", make_hyp_dict())
        for t in range(3):
            client.heartbeat("sense", t, "T")
        assert daemon.frames_of(T_HEARTBEAT) == []  # below threshold
        client.heartbeat("sense", 3, "T")  # fourth triggers the flush
        client.sync()
        (frame,) = daemon.frames_of(T_HEARTBEAT)
        assert frame.get("batch") == [["sense", t, "T"] for t in range(4)]
        client.close(say_bye=False)

    def test_interleaved_kinds_split_preserving_order(self, daemon):
        client = WatchdogClient(daemon.address, batch_size=1000)
        client.connect()
        client.register("p", make_hyp_dict())
        client.heartbeat("sense", 1, "T")
        client.task_start("T", 2)
        client.heartbeat("sense", 3, "T")
        client.flush()
        kinds = [f.type for f in daemon.frames
                 if f.type in (T_HEARTBEAT, T_FLOW)]
        assert kinds == [T_HEARTBEAT, T_FLOW, T_HEARTBEAT]
        flow = daemon.frames_of(T_FLOW)[0]
        assert flow.get("batch") == [["T", 2]]
        client.close(say_bye=False)

    def test_flush_before_register_keeps_buffering(self, daemon):
        client = WatchdogClient(daemon.address)
        client.heartbeat("sense", 1, "T")  # must not raise
        assert client.flush() is False
        client.connect()
        client.register("p", make_hyp_dict())
        assert client.flush() is True
        assert daemon.frames_of(T_HEARTBEAT)[0].get("batch") == [
            ["sense", 1, "T"]]
        client.close(say_bye=False)

    def test_sent_counter(self, daemon):
        client = WatchdogClient(daemon.address)
        client.connect()
        client.register("p", make_hyp_dict())
        for t in range(5):
            client.heartbeat("sense", t, "T")
        client.task_start("T")
        client.flush()
        assert client.sent_indications == 6
        client.close(say_bye=False)


class TestOfflineBuffer:
    def test_unreachable_daemon_never_raises_and_bounds_buffer(self):
        # Port 1 on localhost: connection refused immediately.
        client = WatchdogClient(
            ("127.0.0.1", 1), buffer_limit=10, batch_size=5,
            reconnect=False, sleep=lambda s: None)
        for t in range(25):
            client.heartbeat("sense", t, "T")  # never raises
        assert len(client._buffer) == 10
        assert client.dropped == 15
        # The newest indications survived (oldest dropped).
        assert client._buffer[0][2] == 15
        assert client._buffer[-1][2] == 24

    def test_buffer_replayed_after_daemon_returns(self, daemon):
        client = WatchdogClient(daemon.address, batch_size=1000)
        client.connect()
        client.register("p", make_hyp_dict())
        for t in range(5):
            client.heartbeat("sense", t, "T")
        assert client.flush()
        (frame,) = daemon.frames_of(T_HEARTBEAT)
        assert [entry[1] for entry in frame.get("batch")] == list(range(5))
        client.close(say_bye=False)


class TestReconnect:
    def test_backoff_schedule_exponential_with_jitter(self):
        sleeps = []

        class FixedRng:
            def random(self):
                return 1.0  # maximal jitter, deterministic

        client = WatchdogClient(
            ("127.0.0.1", 1), reconnect=True, max_retries=4,
            backoff_initial=0.1, backoff_max=0.5, backoff_jitter=0.25,
            rng=FixedRng(), sleep=sleeps.append)
        assert client._reconnect() is False
        # Jitter applies to the raw exponential delay, THEN the clamp:
        # backoff_max bounds the actual sleep, jitter included.
        expected = [min(0.5, (0.1 * 2 ** n) * 1.25) for n in range(4)]
        assert sleeps == pytest.approx(expected)

    def test_backoff_max_bounds_sleep_even_with_jitter(self):
        """Regression: jitter used to be applied after the clamp, letting
        the sleep exceed backoff_max by up to the jitter factor."""
        sleeps = []

        class FixedRng:
            def random(self):
                return 1.0

        client = WatchdogClient(
            ("127.0.0.1", 1), reconnect=True, max_retries=8,
            backoff_initial=0.1, backoff_max=0.5, backoff_jitter=0.25,
            rng=FixedRng(), sleep=sleeps.append)
        assert client._reconnect() is False
        assert max(sleeps) <= 0.5

    def test_reconnect_reregisters_and_counts(self, daemon):
        client = WatchdogClient(
            daemon.address, backoff_initial=0.001, backoff_max=0.002,
            backoff_jitter=0.0)
        client.connect()
        client.register("p", make_hyp_dict())
        client._drop_connection()  # simulate a broken pipe
        assert client._reconnect() is True
        assert client.reconnects == 1
        # The second connection replayed HELLO + REGISTER.
        assert len(daemon.frames_of(T_HELLO)) == 2
        assert len(daemon.frames_of(T_REGISTER)) == 2
        assert daemon.connections == 2
        client.close(say_bye=False)

    def test_reconnect_disabled_gives_up_immediately(self):
        sleeps = []
        client = WatchdogClient(
            ("127.0.0.1", 1), reconnect=False, sleep=sleeps.append)
        assert client._reconnect() is False
        assert sleeps == []


def dead_address():
    """A loopback port that was just free — connecting refuses."""
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    address = sock.getsockname()
    sock.close()
    return address


class TestFailover:
    def test_connect_rotates_to_first_reachable_address(self, daemon):
        client = WatchdogClient(
            dead_address(), failover=(daemon.address,), client_name="ha")
        client.connect()
        assert client.address == daemon.address
        assert len(daemon.frames_of(T_HELLO)) == 1
        client.close(say_bye=False)

    def test_failover_address_is_sticky(self, daemon):
        client = WatchdogClient(
            dead_address(), failover=(daemon.address,), client_name="ha")
        client.connect()
        client._drop_connection()
        # The next connection goes straight to the address that worked,
        # not back through the dead primary.
        assert client._ensure_connection()
        assert client.address == daemon.address
        assert daemon.connections == 2
        client.close(say_bye=False)

    def test_failover_replays_registrations_on_standby(self):
        primary = FakeDaemon()
        standby = FakeDaemon()
        try:
            client = WatchdogClient(
                primary.address, failover=(standby.address,),
                client_name="ha", backoff_initial=0.001,
                backoff_max=0.002, backoff_jitter=0.0)
            client.connect()
            client.register("p", make_hyp_dict())
            assert len(primary.frames_of(T_REGISTER)) == 1
            assert standby.frames_of(T_REGISTER) == []
            # The primary dies; the buffered indication forces a flush,
            # which reconnects via the failover list and replays
            # HELLO + REGISTER onto the standby.
            primary.close()
            client._drop_connection()
            client.heartbeat("sense", 1, "T")
            assert client.flush() is True
            assert client.address == standby.address
            # sync() round-trips a HELLO: frames dispatch in order per
            # connection, so once it returns the fire-and-forget
            # HEARTBEAT frame has been read by the standby too.
            assert client.sync() is True
            assert len(standby.frames_of(T_REGISTER)) == 1
            assert len(standby.frames_of(T_HEARTBEAT)) == 1
            client.close(say_bye=False)
        finally:
            primary.close()
            standby.close()

    def test_all_addresses_down_raises_last_error(self):
        client = WatchdogClient(
            dead_address(), failover=(dead_address(),), reconnect=False)
        with pytest.raises(OSError):
            client.connect()


class TestPushes:
    def test_poll_dispatches_detections_and_states(self):
        pushes = [
            encode_frame(T_DETECTION, name="p", runnable="sense",
                         error_type="aliveness", time=30),
            encode_frame(T_STATE, scope="fleet", state="faulty", time=30),
        ]
        daemon = FakeDaemon(push_frames=pushes)
        try:
            seen = []
            client = WatchdogClient(
                daemon.address, on_detection=lambda d: seen.append(d))
            client.connect()
            deadline = 50
            while len(client.detections) < 1 and deadline:
                client.poll()
                deadline -= 1
                import time
                time.sleep(0.01)
            assert client.detections[0]["error_type"] == "aliveness"
            assert seen == client.detections
            assert client.states[0]["scope"] == "fleet"
            client.close(say_bye=False)
        finally:
            daemon.close()

    def test_poll_without_connection_is_noop(self):
        client = WatchdogClient(("127.0.0.1", 1))
        assert client.poll() == 0


class TestUnixTransport:
    def test_address_string_selects_af_unix(self, tmp_path):
        path = str(tmp_path / "fake.sock")
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(path)
        listener.listen(1)
        results = []

        def serve_one():
            conn, _ = listener.accept()
            decoder = FrameDecoder()
            while True:
                chunk = conn.recv(65536)
                if not chunk:
                    return
                for frame in decoder.feed(chunk):
                    results.append(frame.type)
                    if frame.type == T_HELLO:
                        conn.sendall(encode_frame(T_ACK, ok=True, re=T_HELLO))
                    if frame.type == T_BYE:
                        conn.sendall(encode_frame(T_ACK, ok=True, re=T_BYE))
                        conn.close()
                        return

        thread = threading.Thread(target=serve_one, daemon=True)
        thread.start()
        client = WatchdogClient(path)
        client.connect()
        client.close()
        thread.join(timeout=5)
        listener.close()
        assert results == [T_HELLO, T_BYE]
