"""Property-based tests (hypothesis) on core invariants."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis import percentile
from repro.core import FaultHypothesis, RunnableHypothesis
from repro.core.counters import RunnableCounters
from repro.core.flowcheck import FlowTable, ProgramFlowCheckingUnit
from repro.core.heartbeat import HeartbeatMonitoringUnit
from repro.core.reports import ErrorType
from repro.kernel import EventQueue
from repro.network import FrameSpec, SignalSpec


# ----------------------------------------------------------------------
# event queue ordering
# ----------------------------------------------------------------------
@given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=50))
def test_event_queue_pops_in_time_order(times):
    queue = EventQueue()
    for t in times:
        queue.schedule(t, lambda: None)
    popped = []
    while True:
        event = queue.pop_next(10_000)
        if event is None:
            break
        popped.append(event.when)
    assert popped == sorted(times)


@given(
    st.lists(st.integers(min_value=0, max_value=1000), min_size=2, max_size=30),
    st.data(),
)
def test_event_queue_cancellation_preserves_rest(times, data):
    queue = EventQueue()
    events = [queue.schedule(t, lambda: None) for t in times]
    cancel_index = data.draw(st.integers(min_value=0, max_value=len(events) - 1))
    events[cancel_index].cancel()
    remaining = sorted(t for i, t in enumerate(times) if i != cancel_index)
    popped = []
    while True:
        event = queue.pop_next(10_000)
        if event is None:
            break
        popped.append(event.when)
    assert popped == remaining


# ----------------------------------------------------------------------
# watchdog counters
# ----------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=500))
def test_counters_match_heartbeat_count(n):
    counters = RunnableCounters()
    for _ in range(n):
        counters.record_heartbeat()
    assert counters.ac == n
    assert counters.arc == n


@given(
    heartbeats_per_cycle=st.lists(
        st.integers(min_value=0, max_value=6), min_size=1, max_size=60
    ),
    aliveness_period=st.integers(min_value=1, max_value=5),
    min_heartbeats=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=60)
def test_heartbeat_monitor_against_reference_model(
    heartbeats_per_cycle, aliveness_period, min_heartbeats
):
    """The HBM unit must agree with a direct re-computation: one
    aliveness error per completed period whose heartbeat sum is below
    the minimum."""
    hyp = FaultHypothesis()
    hyp.add_runnable(
        RunnableHypothesis(
            "R",
            aliveness_period=aliveness_period,
            min_heartbeats=min_heartbeats,
            arrival_period=10_000,  # effectively disabled
            max_heartbeats=10_000,
        )
    )
    unit = HeartbeatMonitoringUnit(hyp)
    errors = []
    unit.add_listener(errors.append)
    for cycle, n in enumerate(heartbeats_per_cycle):
        for _ in range(n):
            unit.heartbeat("R", time=cycle)
        unit.cycle(time=cycle)

    expected = 0
    window = 0
    cycles_in_window = 0
    for n in heartbeats_per_cycle:
        window += n
        cycles_in_window += 1
        if cycles_in_window >= aliveness_period:
            if window < min_heartbeats:
                expected += 1
            window = 0
            cycles_in_window = 0
    aliveness_errors = [e for e in errors if e.error_type is ErrorType.ALIVENESS]
    assert len(aliveness_errors) == expected


@given(
    heartbeats_per_cycle=st.lists(
        st.integers(min_value=0, max_value=8), min_size=1, max_size=60
    ),
    max_heartbeats=st.integers(min_value=0, max_value=5),
)
@settings(max_examples=60)
def test_arrival_rate_monitor_against_reference_model(
    heartbeats_per_cycle, max_heartbeats
):
    hyp = FaultHypothesis()
    hyp.add_runnable(
        RunnableHypothesis(
            "R",
            aliveness_period=10_000,
            min_heartbeats=0,
            arrival_period=1,
            max_heartbeats=max_heartbeats,
        )
    )
    unit = HeartbeatMonitoringUnit(hyp)
    errors = []
    unit.add_listener(errors.append)
    for cycle, n in enumerate(heartbeats_per_cycle):
        for _ in range(n):
            unit.heartbeat("R", time=cycle)
        unit.cycle(time=cycle)
    expected = sum(1 for n in heartbeats_per_cycle if n > max_heartbeats)
    assert len(errors) == expected


# ----------------------------------------------------------------------
# program flow checking
# ----------------------------------------------------------------------
@given(
    length=st.integers(min_value=2, max_value=8),
    repeats=st.integers(min_value=1, max_value=5),
)
def test_legal_cyclic_walks_never_flagged(length, repeats):
    names = [f"r{i}" for i in range(length)]
    table = FlowTable()
    table.allow_cycle(names)
    pfc = ProgramFlowCheckingUnit(table)
    for _ in range(repeats):
        for name in names:
            assert pfc.observe(name, 0) is None
    assert pfc.violation_count == 0


@given(st.data())
def test_single_skip_in_linear_sequence_always_detected(data):
    length = data.draw(st.integers(min_value=3, max_value=8))
    names = [f"r{i}" for i in range(length)]
    table = FlowTable()
    table.allow_sequence(names)
    pfc = ProgramFlowCheckingUnit(table)
    skip_index = data.draw(st.integers(min_value=1, max_value=length - 1))
    violations = 0
    for i, name in enumerate(names):
        if i == skip_index:
            continue
        error = pfc.observe(name, 0)
        if error is not None:
            violations += 1
    if skip_index == length - 1:
        # Skipping the *final* runnable truncates the sequence: there is
        # no illegal transition to observe — that omission is caught by
        # aliveness monitoring, not flow checking.
        assert violations == 0
    else:
        assert violations == 1  # exactly one at the skip point, then resync


@given(st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=30))
def test_observation_count_only_counts_monitored(walk):
    table = FlowTable()
    table.allow_sequence(["a", "b"])
    pfc = ProgramFlowCheckingUnit(table)
    for name in walk:
        pfc.observe(name, 0)
    monitored = sum(1 for name in walk if name in ("a", "b"))
    assert pfc.observation_count == monitored


# ----------------------------------------------------------------------
# frames
# ----------------------------------------------------------------------
@given(
    raw=st.integers(min_value=0, max_value=(1 << 16) - 1),
    scale=st.floats(min_value=0.001, max_value=10.0, allow_nan=False),
    offset=st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
)
def test_signal_roundtrip_within_half_scale(raw, scale, offset):
    sig = SignalSpec("v", 0, 16, scale=scale, offset=offset)
    physical = sig.decode(raw)
    assert sig.decode(sig.encode(physical)) == pytest.approx(
        physical, abs=scale / 2 + 1e-9
    )


@given(
    values=st.lists(
        st.floats(min_value=0.0, max_value=600.0, allow_nan=False),
        min_size=3,
        max_size=3,
    )
)
def test_frame_pack_unpack_all_signals(values):
    frame = FrameSpec("F", 1)
    frame.add_signal(SignalSpec("a", 0, 16, scale=0.01))
    frame.add_signal(SignalSpec("b", 16, 16, scale=0.01))
    frame.add_signal(SignalSpec("c", 32, 16, scale=0.01))
    packed = frame.pack(dict(zip(("a", "b", "c"), values)))
    unpacked = frame.unpack(packed)
    for name, value in zip(("a", "b", "c"), values):
        assert unpacked[name] == pytest.approx(min(value, 655.35), abs=0.011)


# ----------------------------------------------------------------------
# percentile
# ----------------------------------------------------------------------
@given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=100))
def test_percentile_bounds(values):
    ordered = sorted(values)
    assert percentile(ordered, 0) == ordered[0]
    assert percentile(ordered, 100) == ordered[-1]
    p50 = percentile(ordered, 50)
    assert ordered[0] <= p50 <= ordered[-1]


@given(
    st.lists(st.integers(min_value=0, max_value=100), min_size=2, max_size=50),
    st.floats(min_value=0, max_value=100, allow_nan=False),
)
def test_percentile_monotone_in_q(values, q):
    ordered = sorted(values)
    assume(q <= 99)
    # Tolerate interpolation float jitter on runs of equal values.
    assert percentile(ordered, q) <= percentile(ordered, min(q + 1, 100.0)) + 1e-6


# ----------------------------------------------------------------------
# schedulability analysis vs simulated kernel
# ----------------------------------------------------------------------
import pytest

from repro.analysis import response_times as trace_response_times
from repro.kernel import AlarmTable, Kernel, Runnable, Task, runnable_sequence_body
from repro.platform import TaskTiming, is_schedulable, response_time


@given(st.data())
@settings(max_examples=25, deadline=None)
def test_rta_bounds_simulated_response_times(data):
    """For any schedulable synchronous periodic task set, the simulated
    worst response time never exceeds the RTA bound."""
    n = data.draw(st.integers(min_value=1, max_value=3))
    timings = []
    for i in range(n):
        period = data.draw(st.sampled_from([5_000, 10_000, 20_000, 40_000]))
        wcet = data.draw(st.integers(min_value=500, max_value=max(501, period // 4)))
        timings.append(TaskTiming(f"T{i}", wcet=wcet, period=period, priority=n - i))
    assume(is_schedulable(timings))

    kernel = Kernel()
    alarms = AlarmTable(kernel)
    for t in timings:
        runnable = Runnable(f"{t.name}.r", kernel, wcet=t.wcet)
        kernel.add_task(Task(t.name, t.priority, runnable_sequence_body([runnable])))
        alarms.alarm_activate_task(f"{t.name}A", t.name).set_rel(t.period, t.period)
    kernel.run_until(200_000)

    for t in timings:
        observed = trace_response_times(kernel.trace, t.name)
        if not observed:
            continue
        bound = response_time(t, timings)
        assert bound is not None
        assert max(observed) <= bound
