"""Tests for the road / environment model."""

import math

import pytest

from repro.apps import (
    CurvatureSegment,
    EnvironmentSimulation,
    Road,
    SpeedLimitZone,
    VehicleState,
)


class TestRoad:
    def test_default_road(self):
        road = Road()
        assert road.speed_limit_at(0) == 130.0
        assert road.curvature_at(0) == 0.0

    def test_speed_zones(self):
        road = Road(speed_zones=[
            SpeedLimitZone(0, 100), SpeedLimitZone(1000, 60), SpeedLimitZone(3000, 120),
        ])
        assert road.speed_limit_at(500) == 100
        assert road.speed_limit_at(1000) == 60
        assert road.speed_limit_at(2999) == 60
        assert road.speed_limit_at(5000) == 120

    def test_zones_sorted_automatically(self):
        road = Road(speed_zones=[SpeedLimitZone(2000, 80), SpeedLimitZone(0, 100)])
        assert road.speed_limit_at(100) == 100
        assert road.speed_limit_at(2500) == 80

    def test_implicit_leading_zone(self):
        road = Road(speed_zones=[SpeedLimitZone(1000, 60)])
        assert road.speed_limit_at(0) == 130.0

    def test_next_limit_change(self):
        road = Road(speed_zones=[SpeedLimitZone(0, 100), SpeedLimitZone(2000, 60)])
        assert road.next_limit_change(500) == (2000, 60)
        assert road.next_limit_change(3000) is None

    def test_heading_integrates_curvature(self):
        road = Road(curvature_segments=[
            CurvatureSegment(0, 0.0), CurvatureSegment(100, 0.01),
        ])
        assert road.heading_at(100) == pytest.approx(0.0)
        # 50 m into the curve of radius 100 m: heading = 0.01 * 50.
        assert road.heading_at(150) == pytest.approx(0.5)

    def test_curvature_lookup(self):
        road = Road(curvature_segments=[
            CurvatureSegment(0, 0.0), CurvatureSegment(100, 0.02),
        ])
        assert road.curvature_at(50) == 0.0
        assert road.curvature_at(150) == 0.02


class TestEnvironment:
    def test_effective_limit_without_command(self):
        env = EnvironmentSimulation(road=Road(speed_zones=[SpeedLimitZone(0, 100)]))
        assert env.effective_speed_limit(0) == 100

    def test_commanded_limit_caps_road_limit(self):
        env = EnvironmentSimulation(road=Road(speed_zones=[SpeedLimitZone(0, 100)]))
        env.commanded_limit_kph = 60.0
        assert env.effective_speed_limit(0) == 60.0

    def test_commanded_limit_above_road_is_ignored(self):
        env = EnvironmentSimulation(road=Road(speed_zones=[SpeedLimitZone(0, 80)]))
        env.commanded_limit_kph = 120.0
        assert env.effective_speed_limit(0) == 80.0

    def test_lateral_offset_straight_road(self):
        env = EnvironmentSimulation()
        state = VehicleState(x_m=100.0, y_m=1.2, distance_m=100.0)
        assert env.lateral_offset(state) == pytest.approx(1.2)

    def test_lateral_offset_sign(self):
        env = EnvironmentSimulation()
        state = VehicleState(x_m=50.0, y_m=-0.8, distance_m=50.0)
        assert env.lateral_offset(state) == pytest.approx(-0.8)

    def test_lane_departure_inside_lane_negative(self):
        env = EnvironmentSimulation(road=Road(lane_width_m=3.5))
        state = VehicleState(x_m=10, y_m=0.5, distance_m=10)
        assert env.lane_departure(state) < 0

    def test_lane_departure_outside_lane_positive(self):
        env = EnvironmentSimulation(road=Road(lane_width_m=3.5))
        state = VehicleState(x_m=10, y_m=2.5, distance_m=10)
        assert env.lane_departure(state) == pytest.approx(2.5 - 1.75)
