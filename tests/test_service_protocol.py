"""Wire-protocol framing: encode/decode, resync, version discipline."""

import json
import struct

import pytest

from repro.service.protocol import (
    FatalProtocolError,
    Frame,
    FrameDecoder,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    T_ACK,
    T_HEARTBEAT,
    T_HELLO,
    encode_frame,
)


def decode_all(payload: bytes):
    return FrameDecoder().feed(payload)


class TestEncoding:
    def test_roundtrip(self):
        raw = encode_frame(T_HELLO, client="glue")
        (frame,) = decode_all(raw)
        assert isinstance(frame, Frame)
        assert frame.type == T_HELLO
        assert frame.data == {"client": "glue"}
        assert frame.version == PROTOCOL_VERSION

    def test_length_prefix_is_payload_length(self):
        raw = encode_frame(T_ACK, ok=True)
        (length,) = struct.unpack("!I", raw[:4])
        assert length == len(raw) - 4

    def test_version_stamped_into_payload(self):
        raw = encode_frame(T_ACK, ok=True)
        payload = json.loads(raw[4:])
        assert payload["v"] == PROTOCOL_VERSION
        assert payload["type"] == T_ACK

    def test_oversized_frame_rejected_at_encode(self):
        with pytest.raises(ProtocolError):
            encode_frame(T_HEARTBEAT, blob="x" * (MAX_FRAME_BYTES + 1))


class TestDecoder:
    def test_multiple_frames_one_chunk(self):
        raw = encode_frame(T_HELLO, client="a") + encode_frame(T_ACK, ok=True)
        frames = decode_all(raw)
        assert [f.type for f in frames] == [T_HELLO, T_ACK]

    def test_byte_by_byte_feeding(self):
        raw = encode_frame(T_HEARTBEAT, name="p", batch=[["r", 1, None]])
        decoder = FrameDecoder()
        collected = []
        for i in range(len(raw)):
            collected.extend(decoder.feed(raw[i:i + 1]))
        assert len(collected) == 1
        assert collected[0].data["batch"] == [["r", 1, None]]
        assert decoder.pending_bytes() == 0

    def test_partial_frame_stays_pending(self):
        raw = encode_frame(T_HELLO, client="a")
        decoder = FrameDecoder()
        assert decoder.feed(raw[:-1]) == []
        assert decoder.pending_bytes() == len(raw) - 1
        (frame,) = decoder.feed(raw[-1:])
        assert frame.type == T_HELLO

    def _frame_with_body(self, body: bytes) -> bytes:
        return struct.pack("!I", len(body)) + body

    def test_malformed_json_rejected_without_killing_stream(self):
        bad = self._frame_with_body(b"{not json")
        good = encode_frame(T_ACK, ok=True)
        items = decode_all(bad + good)
        assert isinstance(items[0], ProtocolError)
        assert isinstance(items[1], Frame) and items[1].type == T_ACK

    def test_non_object_payload_rejected(self):
        bad = self._frame_with_body(b"[1, 2]")
        (item,) = decode_all(bad)
        assert isinstance(item, ProtocolError)
        assert "object" in str(item)

    def test_unknown_type_rejected(self):
        body = json.dumps({"v": PROTOCOL_VERSION, "type": "NOPE"}).encode()
        (item,) = decode_all(self._frame_with_body(body))
        assert isinstance(item, ProtocolError)
        assert "NOPE" in str(item)

    def test_wrong_version_rejected(self):
        body = json.dumps({"v": 99, "type": T_HELLO}).encode()
        (item,) = decode_all(self._frame_with_body(body))
        assert isinstance(item, ProtocolError)
        assert "version" in str(item)

    def test_missing_version_rejected(self):
        body = json.dumps({"type": T_HELLO}).encode()
        (item,) = decode_all(self._frame_with_body(body))
        assert isinstance(item, ProtocolError)

    def test_rejection_counters(self):
        decoder = FrameDecoder()
        decoder.feed(self._frame_with_body(b"?") + encode_frame(T_ACK, ok=True))
        assert decoder.frames_rejected == 1
        assert decoder.frames_decoded == 1

    def test_corrupt_length_header_is_fatal(self):
        decoder = FrameDecoder()
        with pytest.raises(FatalProtocolError):
            decoder.feed(struct.pack("!I", MAX_FRAME_BYTES + 1) + b"xxxx")

    def test_custom_frame_limit(self):
        decoder = FrameDecoder(max_frame_bytes=8)
        with pytest.raises(FatalProtocolError):
            decoder.feed(encode_frame(T_HELLO, client="long-name-here"))

    def test_unicode_payload_roundtrip(self):
        raw = encode_frame(T_HELLO, client="prüfstand-β")
        (frame,) = decode_all(raw)
        assert frame.data["client"] == "prüfstand-β"
