"""Tests for the Fault Management Framework treatment policy (§3.4)."""

from typing import List

import pytest

from repro.core import ErrorType, RunnableError, TaskFaultEvent
from repro.platform import (
    Application,
    FaultManagementFramework,
    FaultRecord,
    FmfPolicy,
    Severity,
    TreatmentAction,
)


class FakeEcu:
    """Scripted EcuActions double."""

    def __init__(self, apps_by_task, faulty_tasks=1):
        self.apps_by_task = apps_by_task
        self.faulty = faulty_tasks
        self.actions: List[tuple] = []
        self.time = 1000

    def software_reset(self):
        self.actions.append(("reset",))

    def restart_application(self, app):
        self.actions.append(("restart_app", app.name))

    def terminate_application(self, app):
        self.actions.append(("terminate_app", app.name))

    def restart_task(self, task):
        self.actions.append(("restart_task", task))

    def applications_on_task(self, task):
        return self.apps_by_task.get(task, [])

    def faulty_task_count(self):
        return self.faulty

    def current_time(self):
        return self.time


def task_fault(task="T", runnable="R", etype=ErrorType.PROGRAM_FLOW, time=500):
    return TaskFaultEvent(
        time=time,
        task=task,
        trigger_runnable=runnable,
        trigger_error_type=etype,
        error_vector={runnable: {etype: 3}},
    )


class TestFaultIntake:
    def test_report_fault_logged(self):
        fmf = FaultManagementFramework()
        record = FaultRecord(1, "src", "subj", "cat", Severity.MINOR)
        fmf.report_fault(record)
        assert fmf.fault_log == [record]

    def test_runnable_error_adapter_classifies(self):
        fmf = FaultManagementFramework()
        fmf.on_runnable_error(
            RunnableError(time=5, runnable="R", task="T",
                          error_type=ErrorType.PROGRAM_FLOW)
        )
        assert fmf.fault_log[0].severity is Severity.CRITICAL
        assert fmf.fault_log[0].category == "program_flow"
        assert fmf.fault_log[0].details["task"] == "T"

    def test_aliveness_severity_major(self):
        fmf = FaultManagementFramework()
        fmf.on_runnable_error(
            RunnableError(time=5, runnable="R", task="T",
                          error_type=ErrorType.ALIVENESS)
        )
        assert fmf.fault_log[0].severity is Severity.MAJOR

    def test_fault_listeners_informed(self):
        """Applications are informed about the fault detection."""
        fmf = FaultManagementFramework()
        seen = []
        fmf.add_fault_listener(seen.append)
        fmf.report_fault(FaultRecord(1, "s", "x", "c", Severity.INFO))
        assert len(seen) == 1

    def test_faults_by_category(self):
        fmf = FaultManagementFramework()
        for etype in (ErrorType.ALIVENESS, ErrorType.ALIVENESS, ErrorType.PROGRAM_FLOW):
            fmf.on_runnable_error(
                RunnableError(time=1, runnable="R", task="T", error_type=etype)
            )
        assert fmf.faults_by_category() == {"aliveness": 2, "program_flow": 1}


class TestTreatmentEcuOk:
    def test_restartable_app_restarted(self):
        app = Application("App", restartable=True)
        ecu = FakeEcu({"T": [app]}, faulty_tasks=1)
        fmf = FaultManagementFramework(ecu, FmfPolicy(ecu_faulty_task_threshold=2))
        fmf.on_task_fault(task_fault())
        assert ("restart_app", "App") in ecu.actions
        assert fmf.app_restart_counts["App"] == 1
        actions = fmf.treatments_by_action()
        assert actions[TreatmentAction.RESTART_APPLICATION] == 1

    def test_non_restartable_app_terminated(self):
        app = Application("App", restartable=False)
        ecu = FakeEcu({"T": [app]}, faulty_tasks=1)
        fmf = FaultManagementFramework(ecu, FmfPolicy(ecu_faulty_task_threshold=2))
        fmf.on_task_fault(task_fault())
        assert ("terminate_app", "App") in ecu.actions

    def test_shared_task_treats_all_apps(self):
        a = Application("A", restartable=True)
        b = Application("B", restartable=False)
        ecu = FakeEcu({"T": [a, b]}, faulty_tasks=1)
        fmf = FaultManagementFramework(ecu, FmfPolicy(ecu_faulty_task_threshold=3))
        fmf.on_task_fault(task_fault())
        assert ("restart_app", "A") in ecu.actions
        assert ("terminate_app", "B") in ecu.actions

    def test_task_fault_logged_as_critical(self):
        ecu = FakeEcu({"T": []})
        fmf = FaultManagementFramework(ecu)
        fmf.on_task_fault(task_fault())
        assert fmf.fault_log[0].category == "task_faulty"
        assert fmf.fault_log[0].severity is Severity.CRITICAL

    def test_no_ecu_records_only(self):
        fmf = FaultManagementFramework()  # headless
        fmf.on_task_fault(task_fault())
        assert fmf.treatment_log == []
        assert len(fmf.fault_log) == 1


class TestTreatmentEcuFaulty:
    def test_global_faulty_resets_ecu(self):
        app = Application("App", ecu_reset_allowed=True)
        ecu = FakeEcu({"T": [app]}, faulty_tasks=2)
        fmf = FaultManagementFramework(ecu, FmfPolicy(ecu_faulty_task_threshold=2))
        fmf.on_task_fault(task_fault())
        assert ("reset",) in ecu.actions
        assert fmf.treatments_by_action()[TreatmentAction.ECU_RESET] == 1

    def test_reset_clears_restart_budget(self):
        app = Application("App")
        ecu = FakeEcu({"T": [app]}, faulty_tasks=2)
        fmf = FaultManagementFramework(ecu, FmfPolicy(ecu_faulty_task_threshold=2))
        fmf.app_restart_counts["App"] = 2
        fmf.on_task_fault(task_fault())
        assert fmf.app_restart_counts == {}

    def test_reset_vetoed_by_constraints_terminates_instead(self):
        app = Application("SbW", ecu_reset_allowed=False)
        ecu = FakeEcu({"T": [app]}, faulty_tasks=5)
        fmf = FaultManagementFramework(ecu, FmfPolicy(ecu_faulty_task_threshold=2))
        fmf.on_task_fault(task_fault())
        assert ("reset",) not in ecu.actions
        assert ("terminate_app", "SbW") in ecu.actions

    def test_restart_budget_escalates_to_reset(self):
        app = Application("App", restartable=True, ecu_reset_allowed=True)
        ecu = FakeEcu({"T": [app]}, faulty_tasks=1)
        policy = FmfPolicy(ecu_faulty_task_threshold=10, max_app_restarts=2)
        fmf = FaultManagementFramework(ecu, policy)
        fmf.on_task_fault(task_fault())
        fmf.on_task_fault(task_fault())
        assert ecu.actions.count(("restart_app", "App")) == 2
        fmf.on_task_fault(task_fault())  # budget exhausted -> escalate
        assert ("reset",) in ecu.actions

    def test_treatment_record_carries_time_and_reason(self):
        app = Application("App")
        ecu = FakeEcu({"T": [app]}, faulty_tasks=1)
        fmf = FaultManagementFramework(ecu, FmfPolicy(ecu_faulty_task_threshold=2))
        fmf.on_task_fault(task_fault())
        record = fmf.treatment_log[0]
        assert record.time == ecu.time
        assert "restartable" in record.reason


class TestReset:
    def test_reset_clears_logs(self):
        fmf = FaultManagementFramework()
        fmf.report_fault(FaultRecord(1, "s", "x", "c", Severity.INFO))
        fmf.reset()
        assert fmf.fault_log == []
        assert fmf.treatment_log == []
