"""Tests for the program flow checking unit and its look-up table."""

from repro.core import ErrorType, FaultHypothesis, FlowTable, RunnableHypothesis
from repro.core.flowcheck import ProgramFlowCheckingUnit


def make_pfc(sequence=("A", "B", "C"), cycle=False):
    table = FlowTable()
    if cycle:
        table.allow_cycle(list(sequence))
    else:
        table.allow_sequence(list(sequence))
    pfc = ProgramFlowCheckingUnit(table)
    errors = []
    pfc.add_listener(errors.append)
    return pfc, errors


class TestFlowTable:
    def test_allow_and_lookup(self):
        table = FlowTable()
        table.allow("A", "B")
        assert table.is_allowed("A", "B")
        assert not table.is_allowed("B", "A")

    def test_entry_points(self):
        table = FlowTable()
        table.allow_sequence(["A", "B"])
        assert table.entry_points() == {"A"}
        assert table.is_allowed(None, "A")

    def test_allow_cycle_closes_loop(self):
        table = FlowTable()
        table.allow_cycle(["A", "B", "C"])
        assert table.is_allowed("C", "A")

    def test_monitored_set(self):
        table = FlowTable()
        table.allow_sequence(["A", "B"])
        assert table.is_monitored("A")
        assert table.is_monitored("B")
        assert not table.is_monitored("Z")

    def test_pair_count(self):
        table = FlowTable()
        table.allow_sequence(["A", "B", "C"])
        assert table.pair_count() == 3  # entry + 2 adjacencies

    def test_successors(self):
        table = FlowTable()
        table.allow("A", "B")
        table.allow("A", "C")
        assert table.successors("A") == {"B", "C"}

    def test_from_hypothesis(self):
        hyp = FaultHypothesis()
        for name in ("A", "B"):
            hyp.add_runnable(RunnableHypothesis(name))
        hyp.allow_sequence(["A", "B"])
        table = FlowTable.from_hypothesis(hyp)
        assert table.is_allowed("A", "B")
        assert table.is_allowed(None, "A")

    def test_empty_sequence_noop(self):
        table = FlowTable()
        table.allow_sequence([])
        assert table.pair_count() == 0


class TestObservation:
    def test_legal_sequence_clean(self):
        pfc, errors = make_pfc()
        for name in ("A", "B", "C"):
            pfc.observe(name, time=1)
        assert errors == []
        assert pfc.violation_count == 0
        assert pfc.observation_count == 3

    def test_illegal_transition_detected(self):
        pfc, errors = make_pfc()
        pfc.observe("A", 1)
        error = pfc.observe("C", 2)  # A -> C skips B
        assert error is not None
        assert error.error_type is ErrorType.PROGRAM_FLOW
        assert error.details == {"previous": "A", "observed": "C"}

    def test_illegal_entry_detected(self):
        pfc, errors = make_pfc()
        error = pfc.observe("B", 1)  # sequence must start at A
        assert error is not None
        assert error.details["previous"] is None

    def test_resync_after_violation(self):
        """One bad branch yields one error, not a cascade."""
        pfc, errors = make_pfc()
        pfc.observe("A", 1)
        pfc.observe("C", 2)  # violation, resync on C
        pfc.reset_stream(None)
        pfc.observe("A", 3)
        pfc.observe("B", 4)
        pfc.observe("C", 5)
        assert len(errors) == 1

    def test_unmonitored_runnable_transparent(self):
        pfc, errors = make_pfc()
        pfc.observe("A", 1)
        pfc.observe("unmonitored", 2)  # not in table: ignored entirely
        pfc.observe("B", 3)
        assert errors == []
        assert pfc.observation_count == 2

    def test_stream_reset_allows_reentry(self):
        pfc, errors = make_pfc()
        for name in ("A", "B", "C"):
            pfc.observe(name, 1)
        pfc.reset_stream(None)
        pfc.observe("A", 2)
        assert errors == []

    def test_no_reset_repeating_sequence_needs_cycle(self):
        pfc, errors = make_pfc()
        for name in ("A", "B", "C", "A"):
            pfc.observe(name, 1)
        assert len(errors) == 1  # C -> A not allowed in a pure sequence

    def test_cycle_table_allows_wraparound(self):
        pfc, errors = make_pfc(cycle=True)
        for name in ("A", "B", "C", "A", "B"):
            pfc.observe(name, 1)
        assert errors == []


class TestPerTaskStreams:
    def test_interleaved_tasks_do_not_interfere(self):
        table = FlowTable()
        table.allow_sequence(["A1", "A2"])
        table.allow_sequence(["B1", "B2"])
        pfc = ProgramFlowCheckingUnit(table)
        errors = []
        pfc.add_listener(errors.append)
        # Preemption interleaves the two tasks' runnables.
        pfc.observe("A1", 1, task="TA")
        pfc.observe("B1", 2, task="TB")
        pfc.observe("A2", 3, task="TA")
        pfc.observe("B2", 4, task="TB")
        assert errors == []

    def test_global_stream_flags_interleaving(self):
        """Without task attribution, interleaving is misdiagnosed — the
        reason the unit keys streams by task."""
        table = FlowTable()
        table.allow_sequence(["A1", "A2"])
        table.allow_sequence(["B1", "B2"])
        pfc = ProgramFlowCheckingUnit(table)
        errors = []
        pfc.add_listener(errors.append)
        pfc.observe("A1", 1)
        pfc.observe("B1", 2)
        assert len(errors) == 1

    def test_task_attribution_fallback(self):
        table = FlowTable()
        table.allow_sequence(["A1", "A2"])
        pfc = ProgramFlowCheckingUnit(table, task_attribution={"A1": "TA", "A2": "TA"})
        error = None
        pfc.observe("A2", 1)  # illegal entry; attributed to TA
        pfc.add_listener(lambda e: None)
        assert pfc.violation_count == 1

    def test_expected_next(self):
        pfc, _ = make_pfc()
        assert pfc.expected_next() == {"A"}
        pfc.observe("A", 1)
        assert pfc.expected_next() == {"B"}

    def test_lookup_operation_counting(self):
        pfc, _ = make_pfc()
        pfc.observe("A", 1)
        pfc.observe("B", 2)
        pfc.observe("zzz", 3)  # unmonitored: no lookup
        assert pfc.lookup_operations == 2

    def test_reset_all(self):
        pfc, errors = make_pfc()
        pfc.observe("A", 1, task="T")
        pfc.reset_all()
        pfc.observe("A", 2, task="T")
        assert errors == []
