"""Tests for distributed supervision (publisher + remote supervisor)."""

import pytest

from repro.core import (
    ErrorType,
    FaultHypothesis,
    MonitorState,
    RemoteSupervisor,
    RunnableHypothesis,
    SoftwareWatchdog,
    SupervisionPublisher,
    make_supervision_frame_spec,
)
from repro.network.frames import Message


def make_watchdog():
    hyp = FaultHypothesis()
    hyp.add_runnable(RunnableHypothesis("R", task="T", aliveness_period=2))
    return SoftwareWatchdog(hyp)


class FakeBus:
    """Captures sent frames and can replay them into a supervisor."""

    def __init__(self):
        self.sent = []

    def send(self, spec, values):
        self.sent.append(Message(spec=spec, payload=spec.pack(values),
                                 timestamp=len(self.sent)))


class TestFrameSpec:
    def test_unique_ids_per_node(self):
        a = make_supervision_frame_spec(0, "a")
        b = make_supervision_frame_spec(1, "b")
        assert a.frame_id != b.frame_id

    def test_roundtrip(self):
        spec = make_supervision_frame_spec(0, "n")
        payload = spec.pack({"sequence": 41, "ecu_state": 2,
                             "aliveness_errors": 7, "faulty_tasks": 3})
        values = spec.unpack(payload)
        assert values["sequence"] == 41
        assert values["ecu_state"] == 2
        assert values["aliveness_errors"] == 7
        assert values["faulty_tasks"] == 3


class TestPublisher:
    def test_publishes_state(self):
        wd = make_watchdog()
        bus = FakeBus()
        publisher = SupervisionPublisher(wd, make_supervision_frame_spec(0, "n"),
                                         bus.send)
        publisher.publish()
        assert publisher.published_count == 1
        values = bus.sent[0].values()
        assert values["sequence"] == 1
        assert values["ecu_state"] == 0  # OK

    def test_sequence_increments(self):
        wd = make_watchdog()
        bus = FakeBus()
        publisher = SupervisionPublisher(wd, make_supervision_frame_spec(0, "n"),
                                         bus.send)
        for _ in range(3):
            publisher.publish()
        assert [m.values()["sequence"] for m in bus.sent] == [1, 2, 3]

    def test_error_counts_propagate(self):
        wd = make_watchdog()
        bus = FakeBus()
        publisher = SupervisionPublisher(wd, make_supervision_frame_spec(0, "n"),
                                         bus.send)
        wd.check_cycle(10)
        wd.check_cycle(20)  # aliveness error on R
        publisher.publish()
        values = bus.sent[-1].values()
        assert values["aliveness_errors"] == 1
        assert values["ecu_state"] >= 1  # suspicious or faulty

    def test_counts_saturate(self):
        wd = make_watchdog()
        wd.detected[ErrorType.ALIVENESS] = 5000
        bus = FakeBus()
        publisher = SupervisionPublisher(wd, make_supervision_frame_spec(0, "n"),
                                         bus.send)
        publisher.publish()
        assert bus.sent[0].values()["aliveness_errors"] == 1023


class TestRemoteSupervisor:
    def make_pair(self, check_period=3, min_frames=1):
        supervisor = RemoteSupervisor(check_period=check_period,
                                      min_frames=min_frames)
        spec = make_supervision_frame_spec(0, "peer")
        supervisor.watch("peer", spec.frame_id)
        return supervisor, spec

    def frame(self, spec, sequence, state=0, timestamp=0):
        return Message(
            spec=spec,
            payload=spec.pack({"sequence": sequence, "ecu_state": state}),
            timestamp=timestamp,
        )

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RemoteSupervisor(check_period=0)

    def test_duplicate_watch_rejected(self):
        supervisor, spec = self.make_pair()
        with pytest.raises(ValueError):
            supervisor.watch("peer", 0x99)

    def test_healthy_stream_no_errors(self):
        supervisor, spec = self.make_pair()
        errors = []
        supervisor.add_listener(errors.append)
        seq = 0
        for cycle in range(9):
            seq += 1
            supervisor.on_message(self.frame(spec, seq, timestamp=cycle))
            supervisor.cycle(cycle)
        assert errors == []
        assert supervisor.peer_state("peer") is MonitorState.OK

    def test_silence_detected_at_period_end(self):
        supervisor, spec = self.make_pair(check_period=3)
        errors = []
        supervisor.add_listener(errors.append)
        supervisor.cycle(10)
        supervisor.cycle(20)
        assert errors == []
        supervisor.cycle(30)  # CCA reaches 3: AC=0 < 1
        assert len(errors) == 1
        assert errors[0].node == "peer"
        assert supervisor.peer_state("peer") is MonitorState.FAULTY
        assert supervisor.network_state() is MonitorState.FAULTY

    def test_counters_reset_after_check(self):
        supervisor, spec = self.make_pair(check_period=2)
        supervisor.cycle(1)
        supervisor.cycle(2)  # error + reset
        status = supervisor.peers["peer"]
        assert status.ac == 0 and status.cca == 0

    def test_recovery_restores_ok(self):
        supervisor, spec = self.make_pair(check_period=2)
        supervisor.cycle(1)
        supervisor.cycle(2)  # dead
        assert supervisor.peer_state("peer") is MonitorState.FAULTY
        supervisor.on_message(self.frame(spec, 1))
        supervisor.cycle(3)
        supervisor.cycle(4)
        assert supervisor.peer_state("peer") is MonitorState.OK

    def test_sequence_gap_counted(self):
        supervisor, spec = self.make_pair()
        supervisor.on_message(self.frame(spec, 1))
        supervisor.on_message(self.frame(spec, 2))
        supervisor.on_message(self.frame(spec, 5))  # lost 3, 4
        assert supervisor.peers["peer"].sequence_gaps == 1

    def test_sequence_wraparound_not_a_gap(self):
        supervisor, spec = self.make_pair()
        supervisor.on_message(self.frame(spec, 0xFFFF))
        supervisor.on_message(self.frame(spec, 0))
        assert supervisor.peers["peer"].sequence_gaps == 0

    def test_reported_state_mirrored_when_alive(self):
        supervisor, spec = self.make_pair(check_period=3)
        supervisor.on_message(self.frame(spec, 1, state=2))  # self: FAULTY
        supervisor.cycle(1)
        assert supervisor.peer_state("peer") is MonitorState.FAULTY
        supervisor.on_message(self.frame(spec, 2, state=1))  # suspicious
        supervisor.cycle(2)
        assert supervisor.peer_state("peer") is MonitorState.SUSPICIOUS

    def test_unwatched_frames_ignored(self):
        supervisor, spec = self.make_pair()
        other = make_supervision_frame_spec(7, "other")
        supervisor.on_message(self.frame(other, 1))
        assert supervisor.peers["peer"].frames_received == 0

    def test_network_state_aggregates_peers(self):
        supervisor = RemoteSupervisor(check_period=2)
        a = make_supervision_frame_spec(0, "a")
        b = make_supervision_frame_spec(1, "b")
        supervisor.watch("a", a.frame_id)
        supervisor.watch("b", b.frame_id)
        # only a sends
        supervisor.on_message(Message(spec=a, payload=a.pack({"sequence": 1}),
                                      timestamp=0))
        supervisor.cycle(1)
        supervisor.cycle(2)
        assert supervisor.peer_state("a") is MonitorState.OK
        assert supervisor.peer_state("b") is MonitorState.FAULTY
        assert supervisor.network_state() is MonitorState.FAULTY


class TestListenerNotificationOrdering:
    """add_listener contracts: registration-order fan-out, peer-order
    error delivery, and delivery only after the full cycle sweep."""

    def make_two_peer_supervisor(self, check_period=2):
        supervisor = RemoteSupervisor(check_period=check_period)
        specs = {}
        for index, node in enumerate(["first", "second"]):
            specs[node] = make_supervision_frame_spec(index, node)
            supervisor.watch(node, specs[node].frame_id)
        return supervisor, specs

    def test_listeners_called_in_registration_order(self):
        supervisor, _ = self.make_two_peer_supervisor()
        calls = []
        supervisor.add_listener(lambda e: calls.append(("a", e.node)))
        supervisor.add_listener(lambda e: calls.append(("b", e.node)))
        supervisor.add_listener(lambda e: calls.append(("c", e.node)))
        supervisor.cycle(10)
        supervisor.cycle(20)  # both silent peers flagged this cycle
        # Per error: every listener fires, in registration order.
        assert [tag for tag, _ in calls[:3]] == ["a", "b", "c"]
        assert len({node for _, node in calls[:3]}) == 1

    def test_errors_delivered_in_peer_registration_order(self):
        supervisor, _ = self.make_two_peer_supervisor()
        seen = []
        supervisor.add_listener(lambda e: seen.append(e.node))
        supervisor.cycle(10)
        supervisor.cycle(20)
        assert seen == ["first", "second"]

    def test_delivery_after_full_sweep(self):
        # Listeners observe the post-sweep world: when the first peer's
        # error is delivered, the second peer's verdict is already
        # updated — a listener can take a consistent network snapshot.
        supervisor, _ = self.make_two_peer_supervisor()
        snapshots = []
        supervisor.add_listener(
            lambda e: snapshots.append(
                (e.node, supervisor.network_state())))
        supervisor.cycle(10)
        supervisor.cycle(20)
        assert snapshots
        assert all(state is MonitorState.FAULTY for _, state in snapshots)

    def test_cycle_return_matches_deliveries(self):
        supervisor, _ = self.make_two_peer_supervisor()
        delivered = []
        supervisor.add_listener(delivered.append)
        supervisor.cycle(10)
        returned = supervisor.cycle(20)
        assert returned == delivered

    def test_listener_added_mid_stream_misses_earlier_errors(self):
        supervisor, _ = self.make_two_peer_supervisor()
        early, late = [], []
        supervisor.add_listener(early.append)
        supervisor.cycle(10)
        supervisor.cycle(20)  # first detection round
        supervisor.add_listener(late.append)
        supervisor.cycle(30)
        supervisor.cycle(40)  # second detection round
        assert len(early) == 4  # two peers x two rounds
        assert len(late) == 2   # only the round after registration
