"""Tests for trace post-processing."""

import json

import pytest

from repro.analysis import (
    activation_times,
    detection_latency,
    heartbeat_gaps,
    heartbeat_times,
    injection_times,
    observed_periods,
    preemption_counts,
    response_time_stats,
    response_times,
    trace_from_jsonl,
    trace_to_jsonl,
    utilization_by_task,
)
from repro.kernel import Trace, TraceKind, TraceRecord


def build_trace(records):
    trace = Trace()
    for time, kind, subject, info in records:
        trace.emit(TraceRecord(time=time, kind=kind, subject=subject, info=info))
    return trace


class TestActivationAnalysis:
    def test_activation_times_and_periods(self):
        trace = build_trace([
            (10, TraceKind.TASK_ACTIVATE, "T", {}),
            (20, TraceKind.TASK_ACTIVATE, "T", {}),
            (35, TraceKind.TASK_ACTIVATE, "T", {}),
        ])
        assert activation_times(trace, "T") == [10, 20, 35]
        assert observed_periods(trace, "T") == [10, 15]

    def test_response_times_matched_in_order(self):
        trace = build_trace([
            (10, TraceKind.TASK_ACTIVATE, "T", {}),
            (14, TraceKind.TASK_TERMINATE, "T", {}),
            (20, TraceKind.TASK_ACTIVATE, "T", {}),
            (29, TraceKind.TASK_TERMINATE, "T", {}),
        ])
        assert response_times(trace, "T") == [4, 9]

    def test_unterminated_activation_dropped(self):
        trace = build_trace([
            (10, TraceKind.TASK_ACTIVATE, "T", {}),
            (14, TraceKind.TASK_TERMINATE, "T", {}),
            (20, TraceKind.TASK_ACTIVATE, "T", {}),  # hangs
        ])
        assert response_times(trace, "T") == [4]

    def test_response_time_stats(self):
        trace = build_trace([
            (10, TraceKind.TASK_ACTIVATE, "T", {}),
            (14, TraceKind.TASK_TERMINATE, "T", {}),
            (20, TraceKind.TASK_ACTIVATE, "T", {}),
            (30, TraceKind.TASK_TERMINATE, "T", {}),
        ])
        stats = response_time_stats(trace, "T")
        assert stats.count == 2
        assert stats.mean == 7.0
        assert stats.maximum == 10
        assert stats.minimum == 4

    def test_stats_none_when_never_ran(self):
        assert response_time_stats(build_trace([]), "T") is None


class TestHeartbeatAnalysis:
    def test_heartbeat_times_and_gaps(self):
        trace = build_trace([
            (10, TraceKind.HEARTBEAT, "R", {}),
            (20, TraceKind.HEARTBEAT, "R", {}),
            (45, TraceKind.HEARTBEAT, "R", {}),
        ])
        assert heartbeat_times(trace, "R") == [10, 20, 45]
        assert heartbeat_gaps(trace, "R") == [10, 25]


class TestInjectionAnalysis:
    def test_injection_times(self):
        trace = build_trace([
            (100, TraceKind.FAULT_INJECTED, "blocked:R", {}),
            (500, TraceKind.FAULT_INJECTED, "branch:X", {}),
        ])
        assert injection_times(trace) == [(100, "blocked:R"), (500, "branch:X")]

    def test_detection_latency_matching(self):
        trace = build_trace([
            (100, TraceKind.FAULT_INJECTED, "f1", {}),
            (600, TraceKind.FAULT_INJECTED, "f2", {}),
        ])
        latencies = detection_latency(trace, detection_times=[150, 700])
        assert latencies == [50, 100]

    def test_missed_detection_is_none(self):
        trace = build_trace([(100, TraceKind.FAULT_INJECTED, "f1", {})])
        assert detection_latency(trace, detection_times=[]) == [None]


class TestStructuralAnalysis:
    def test_preemption_counts(self):
        trace = build_trace([
            (10, TraceKind.TASK_PREEMPT, "A", {}),
            (20, TraceKind.TASK_PREEMPT, "A", {}),
            (30, TraceKind.TASK_PREEMPT, "B", {}),
        ])
        assert preemption_counts(trace) == {"A": 2, "B": 1}

    def test_utilization_by_task(self):
        trace = build_trace([
            (10, TraceKind.RUNNABLE_START, "r1", {"task": "T"}),
            (14, TraceKind.RUNNABLE_END, "r1", {"task": "T"}),
            (20, TraceKind.RUNNABLE_START, "r2", {"task": "T"}),
            (25, TraceKind.RUNNABLE_END, "r2", {"task": "T"}),
        ])
        assert utilization_by_task(trace) == {"T": 9}


class TestJsonlRoundTrip:
    def sample_trace(self):
        return build_trace([
            (10, TraceKind.HEARTBEAT, "R", {"task": "T"}),
            (20, TraceKind.TASK_ACTIVATE, "T", {}),
            (30, TraceKind.FAULT_INJECTED, "blocked:R", {"kind": "blocked"}),
        ])

    def test_round_trip_preserves_records(self):
        trace = self.sample_trace()
        text = trace_to_jsonl(trace)
        assert trace_from_jsonl(text) == list(trace)

    def test_one_sorted_json_document_per_line(self):
        lines = trace_to_jsonl(self.sample_trace()).splitlines()
        assert len(lines) == 3
        for line in lines:
            payload = json.loads(line)
            assert list(payload) == sorted(payload)
            assert set(payload) == {"time", "kind", "subject", "info"}

    def test_kind_serialized_as_stable_string(self):
        first = json.loads(trace_to_jsonl(self.sample_trace()).splitlines()[0])
        assert first["kind"] == TraceKind.HEARTBEAT.value

    def test_accepts_iterable_and_skips_blank_lines(self):
        trace = self.sample_trace()
        lines = trace_to_jsonl(trace).splitlines()
        records = trace_from_jsonl(["", lines[0], "  ", lines[1], ""])
        assert records == list(trace)[:2]

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            trace_from_jsonl(
                ['{"time": 1, "kind": "warp_drive", "subject": "x", '
                 '"info": {}}']
            )

    def test_empty_trace_round_trips(self):
        assert trace_to_jsonl(Trace()) == ""
        assert trace_from_jsonl("") == []
