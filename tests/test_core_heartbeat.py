"""Tests for the heartbeat monitoring unit (aliveness + arrival rate)."""

import pytest

from repro.core import ErrorType, FaultHypothesis, RunnableHypothesis
from repro.core.heartbeat import HeartbeatMonitoringUnit


def make_unit(*, aliveness_period=2, min_heartbeats=1, arrival_period=2,
              max_heartbeats=3, eager=False, active=True):
    hyp = FaultHypothesis()
    hyp.add_runnable(
        RunnableHypothesis(
            "R",
            task="T",
            aliveness_period=aliveness_period,
            min_heartbeats=min_heartbeats,
            arrival_period=arrival_period,
            max_heartbeats=max_heartbeats,
            active=active,
        )
    )
    unit = HeartbeatMonitoringUnit(hyp, eager_arrival_detection=eager)
    errors = []
    unit.add_listener(errors.append)
    return unit, errors


class TestAliveness:
    def test_healthy_runnable_no_errors(self):
        unit, errors = make_unit()
        for t in range(10):
            unit.heartbeat("R", time=t * 10)
            unit.cycle(time=t * 10 + 5)
        assert errors == []

    def test_missing_heartbeats_detected_at_period_end(self):
        unit, errors = make_unit(aliveness_period=2)
        unit.cycle(10)  # CCA=1, no check yet
        assert errors == []
        unit.cycle(20)  # CCA=2 -> check: AC=0 < 1 -> error
        assert len(errors) == 1
        assert errors[0].error_type is ErrorType.ALIVENESS
        assert errors[0].task == "T"
        assert errors[0].details == {"ac": 0, "min": 1}

    def test_counters_reset_after_error(self):
        unit, errors = make_unit(aliveness_period=2)
        unit.cycle(10)
        unit.cycle(20)
        snap = unit.snapshot("R")
        assert snap["AC"] == 0 and snap["CCA"] == 0

    def test_repeated_errors_each_period(self):
        unit, errors = make_unit(aliveness_period=2)
        for t in range(8):
            unit.cycle(t)
        assert len(errors) == 4

    def test_min_heartbeats_boundary(self):
        unit, errors = make_unit(aliveness_period=1, min_heartbeats=2)
        unit.heartbeat("R", 1)
        unit.cycle(10)  # AC=1 < 2 -> error
        assert len(errors) == 1
        unit.heartbeat("R", 11)
        unit.heartbeat("R", 12)
        unit.cycle(20)  # AC=2 >= 2 -> ok
        assert len(errors) == 1

    def test_recovery_clears_errors(self):
        unit, errors = make_unit(aliveness_period=2)
        unit.cycle(1)
        unit.cycle(2)  # error
        unit.heartbeat("R", 3)
        unit.cycle(4)
        unit.cycle(5)  # AC=1 -> ok
        assert len(errors) == 1


class TestArrivalRate:
    def test_excess_heartbeats_detected(self):
        unit, errors = make_unit(arrival_period=2, max_heartbeats=3)
        for t in range(5):
            unit.heartbeat("R", t)
        unit.cycle(10)
        unit.cycle(20)  # CCAR=2 -> check: ARC=5 > 3
        rates = [e for e in errors if e.error_type is ErrorType.ARRIVAL_RATE]
        assert len(rates) == 1
        assert rates[0].details["arc"] == 5

    def test_at_limit_is_ok(self):
        unit, errors = make_unit(arrival_period=1, max_heartbeats=3)
        for t in range(3):
            unit.heartbeat("R", t)
        unit.cycle(10)
        assert all(e.error_type is not ErrorType.ARRIVAL_RATE for e in errors)

    def test_eager_mode_detects_mid_period(self):
        unit, errors = make_unit(arrival_period=10, max_heartbeats=2, eager=True)
        unit.heartbeat("R", 1)
        unit.heartbeat("R", 2)
        assert errors == []
        unit.heartbeat("R", 3)  # 3 > 2 -> immediate error
        assert len(errors) == 1
        assert errors[0].error_type is ErrorType.ARRIVAL_RATE
        assert errors[0].details["eager"] is True
        assert errors[0].time == 3

    def test_eager_resets_arrival_counters(self):
        unit, errors = make_unit(arrival_period=10, max_heartbeats=1, eager=True)
        unit.heartbeat("R", 1)
        unit.heartbeat("R", 2)  # error + reset
        assert unit.snapshot("R")["ARC"] == 0

    def test_eager_detection_preserves_window_boundary(self):
        """An eager detection resets only ARC: the arrival window still
        ends ``arrival_period`` cycles after it began — a mid-period
        overflow must not silently lengthen subsequent windows."""
        unit, errors = make_unit(arrival_period=3, max_heartbeats=1, eager=True)
        unit.cycle(1)  # CCAR=1
        unit.heartbeat("R", 2)
        unit.heartbeat("R", 3)  # ARC=2 > 1 -> eager error
        assert len(errors) == 1
        assert unit.snapshot("R")["CCAR"] == 1  # window untouched
        unit.cycle(4)  # CCAR=2
        unit.heartbeat("R", 5)
        unit.cycle(6)  # CCAR=3 -> period end at the *configured* boundary
        assert unit.snapshot("R")["CCAR"] == 0  # window closed on time
        # ARC=1 <= max at the boundary: the eager reset already accounted
        # for the overflow, no duplicate period-end error.
        assert len(errors) == 1

    def test_eager_window_not_stretched_across_periods(self):
        """With the buggy behavior (eager reset zeroing CCAR mid-period)
        repeated eager detections push the period boundary out forever;
        fixed, the boundary stays where ``arrival_period`` put it."""
        unit, errors = make_unit(arrival_period=2, max_heartbeats=1, eager=True)
        unit.cycle(1)           # CCAR=1
        unit.heartbeat("R", 2)
        unit.heartbeat("R", 3)  # ARC=2 > 1 -> eager error @3
        unit.heartbeat("R", 4)
        unit.heartbeat("R", 5)  # ARC=2 > 1 -> eager error @5
        unit.cycle(6)           # CCAR=2 -> the window closes ON TIME
        assert [e.time for e in errors] == [3, 5]
        # Buggy version: CCAR was zeroed at each eager reset, so after
        # cycle(6) the snapshot would read CCAR=1 (boundary postponed).
        assert unit.snapshot("R")["CCAR"] == 0


class TestActivationStatus:
    def test_inactive_runnable_not_checked(self):
        unit, errors = make_unit(active=False)
        for t in range(10):
            unit.cycle(t)
        assert errors == []

    def test_deactivate_resets_counters(self):
        unit, errors = make_unit()
        unit.heartbeat("R", 1)
        unit.set_activation_status("R", False)
        assert unit.snapshot("R")["AC"] == 0
        assert not unit.activation_status("R")

    def test_reactivation_starts_clean(self):
        unit, errors = make_unit(aliveness_period=2)
        unit.set_activation_status("R", False)
        unit.cycle(1)
        unit.cycle(2)
        unit.set_activation_status("R", True)
        unit.heartbeat("R", 3)
        unit.cycle(4)
        unit.cycle(5)
        assert errors == []

    def test_set_same_status_noop(self):
        unit, _ = make_unit()
        unit.heartbeat("R", 1)
        unit.set_activation_status("R", True)
        assert unit.snapshot("R")["AC"] == 1

    def test_heartbeat_while_inactive_ignored(self):
        unit, _ = make_unit()
        unit.set_activation_status("R", False)
        unit.heartbeat("R", 1)
        assert unit.heartbeat_count == 0

    def test_set_activation_status_unknown_raises_value_error(self):
        """Flipping AS of an unmonitored runnable is a configuration
        error and must fail loudly, naming the known runnables —
        unlike heartbeats, which tolerate corrupted identifiers."""
        unit, _ = make_unit()
        with pytest.raises(ValueError, match=r"'ghost'.*known runnables: R"):
            unit.set_activation_status("ghost", True)

    def test_unknown_heartbeat_tolerated_but_as_change_is_not(self):
        """The two paths are deliberately asymmetric: heartbeat() counts
        and ignores unknown names, set_activation_status() raises."""
        unit, errors = make_unit()
        unit.heartbeat("ghost", 1)  # tolerated
        assert unit.unknown_heartbeats == 1
        assert errors == []
        with pytest.raises(ValueError):
            unit.set_activation_status("ghost", False)
        # the failed call must not have registered anything
        assert "ghost" not in unit.slot_of


class TestMisc:
    def test_unknown_heartbeat_counted(self):
        unit, errors = make_unit()
        unit.heartbeat("ghost", 1)
        assert unit.unknown_heartbeats == 1
        assert errors == []

    def test_snapshot_unknown_raises(self):
        unit, _ = make_unit()
        with pytest.raises(KeyError):
            unit.snapshot("ghost")

    def test_reset(self):
        unit, _ = make_unit()
        unit.heartbeat("R", 1)
        unit.cycle(2)
        unit.reset()
        assert unit.cycle_count == 0
        assert unit.heartbeat_count == 0
        assert unit.snapshot("R")["AC"] == 0

    def test_independent_periods(self):
        """Aliveness and arrival-rate periods advance independently."""
        hyp = FaultHypothesis()
        hyp.add_runnable(
            RunnableHypothesis("R", aliveness_period=3, arrival_period=2,
                               min_heartbeats=1, max_heartbeats=1)
        )
        unit = HeartbeatMonitoringUnit(hyp)
        errors = []
        unit.add_listener(errors.append)
        unit.heartbeat("R", 0)
        unit.heartbeat("R", 1)  # ARC=2 > 1 within first arrival period
        unit.cycle(10)
        unit.cycle(20)  # CCAR=2 -> arrival error; CCA=2 -> no aliveness check
        assert len(errors) == 1
        assert errors[0].error_type is ErrorType.ARRIVAL_RATE
        unit.cycle(30)  # CCA=3 -> AC=2 >= 1 -> ok
        assert len(errors) == 1
