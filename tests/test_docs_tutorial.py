"""Executable documentation: the tutorial's snippets must keep working.

Each test mirrors one section of docs/supervising_your_application.md;
if the API drifts, these fail before the documentation rots.
"""

import json

import pytest

from repro.baselines import HardwareWatchdog
from repro.core import (
    FaultHypothesis,
    RunnableHypothesis,
    analyze_hypothesis,
    attach_hardware_watchdog_kick,
    hypothesis_from_dict,
    hypothesis_to_dict,
    is_deployable,
)
from repro.faults import (
    BlockedRunnableFault,
    Campaign,
    CampaignSystem,
    FaultTarget,
    watchdog_detector,
)
from repro.kernel import ms
from repro.platform import (
    Application,
    Ecu,
    FmfPolicy,
    RunnableSpec,
    SoftwareComponent,
    TaskMapping,
    TaskSpec,
    is_schedulable,
)
from repro.analysis import S12XF, project_cpu_load


def brake_mapping():
    app = Application("BrakeAssist", restartable=True, ecu_reset_allowed=False)
    swc = SoftwareComponent("BrakeLogic")
    swc.add(RunnableSpec("ReadPedal", wcet=ms(0.5)))
    swc.add(RunnableSpec("ComputeForce", wcet=ms(1.5)))
    swc.add(RunnableSpec("DriveValve", wcet=ms(0.5)))
    app.add_component(swc)
    mapping = TaskMapping([app])
    mapping.add_task(TaskSpec("BrakeTask", priority=6, period=ms(5)))
    mapping.map_sequence("BrakeTask", ["ReadPedal", "ComputeForce", "DriveValve"])
    return mapping


class TestTutorialSections:
    def test_section_2_schedulability(self):
        assert is_schedulable(brake_mapping().task_timings())

    def test_section_3_supervised_system(self):
        ecu = Ecu("brake-node", brake_mapping(), watchdog_period=ms(5))
        ecu.run_until(ms(1000))
        assert ecu.watchdog.detection_count() == 0

    def test_section_4_author_and_validate(self, tmp_path):
        mapping = brake_mapping()
        hyp = FaultHypothesis()
        hyp.add_runnable(RunnableHypothesis(
            "ComputeForce", task="BrakeTask",
            aliveness_period=2, min_heartbeats=1,
            arrival_period=2, max_heartbeats=3,
        ))
        hyp.allow_sequence(["ComputeForce"])
        findings = analyze_hypothesis(hyp, mapping, watchdog_period=ms(5))
        assert is_deployable(findings)

        path = tmp_path / "brake_hypothesis.json"
        path.write_text(json.dumps(hypothesis_to_dict(hyp)))
        restored = hypothesis_from_dict(json.loads(path.read_text()))
        assert "ComputeForce" in restored.runnables

    def test_section_5_linting(self):
        from repro.core import SoftwareWatchdog
        from repro.lint import LintError, lint_hypothesis

        mapping = brake_mapping()
        hyp = FaultHypothesis()
        hyp.add_runnable(RunnableHypothesis(
            "ComputeForce", task="BrakeTask",
            aliveness_period=2, min_heartbeats=1,
            arrival_period=2, max_heartbeats=3,
        ))
        hyp.allow_sequence(["ComputeForce"])

        report = lint_hypothesis(hyp, mapping=mapping, watchdog_period=ms(5))
        assert report.ok
        assert report.render_text().endswith(": ok")

        wd = SoftwareWatchdog(hyp, lint="error")    # clean: constructs
        assert wd.hypothesis is hyp

        defective = FaultHypothesis()
        defective.add_runnable(RunnableHypothesis(
            "ComputeForce", task="BrakeTask",
            aliveness_period=2, min_heartbeats=3,
            arrival_period=2, max_heartbeats=2,
        ))
        defective.allow_sequence(["ComputeForce"])
        with pytest.raises(LintError, match="WD201"):
            SoftwareWatchdog(defective, lint="error")

    def test_section_5_cli_lint(self, capsys):
        from repro.__main__ import main

        assert main(["lint"]) == 0
        assert "safespeed: ok" in capsys.readouterr().out

    def test_section_7_fault_injection_proof(self):
        def system_factory():
            ecu = Ecu("brake-node", brake_mapping(), watchdog_period=ms(5),
                      fmf_policy=FmfPolicy(ecu_faulty_task_threshold=10**6,
                                           max_app_restarts=10**6),
                      fmf_auto_treatment=False)
            return CampaignSystem(
                target=FaultTarget.from_ecu(ecu),
                detectors=[watchdog_detector(ecu.watchdog)],
                run_until=ecu.run_until,
                now=lambda: ecu.now,
            )

        campaign = Campaign(system_factory, warmup=ms(200), observation=ms(2000))
        result = campaign.execute(
            [lambda s: BlockedRunnableFault("ComputeForce")]
        )
        assert result.coverage("SoftwareWatchdog") == 1.0

    def test_section_8_layered_hardware_stage(self):
        ecu = Ecu("brake-node", brake_mapping(), watchdog_period=ms(5))
        hw = HardwareWatchdog(ecu.kernel, timeout=ms(50))
        attach_hardware_watchdog_kick(ecu.binding, hw)
        hw.start()
        ecu.run_until(ms(1000))
        assert not hw.expired
        assert hw.kick_count >= 195

    def test_section_9_check_cycle_scaling(self):
        """Both strategy spellings from the tutorial construct, and a
        healthy run behaves identically under either."""
        from repro.core import SoftwareWatchdog

        hyp = FaultHypothesis()
        hyp.add_runnable(RunnableHypothesis(
            "ComputeForce", task="BrakeTask",
            aliveness_period=2, min_heartbeats=1,
            arrival_period=2, max_heartbeats=3,
        ))
        hyp.allow_sequence(["ComputeForce"])
        wd = SoftwareWatchdog(hyp)
        ref = SoftwareWatchdog(hyp, check_strategy="scan")
        assert wd.hbm.strategy == "wheel"
        assert ref.hbm.strategy == "scan"
        for t in range(20):
            for unit in (wd, ref):
                unit.notify_task_start("BrakeTask")
                unit.heartbeat_indication("ComputeForce", t, task="BrakeTask")
                unit.check_cycle(t)
        assert wd.detection_count() == ref.detection_count() == 0

    def test_section_9_sharp_edges(self):
        ecu = Ecu("brake-node", brake_mapping(), watchdog_period=ms(5))
        ecu.watchdog.hbm.heartbeat("TypoRunnable", 0)  # tolerated
        assert ecu.watchdog.hbm.unknown_heartbeats == 1
        with pytest.raises(ValueError, match="TypoRunnable"):
            ecu.watchdog.set_activation_status("TypoRunnable", False)

    def test_section_10_mcu_sizing(self):
        load = project_cpu_load(S12XF, monitored_runnables=3,
                                heartbeats_per_second=600,
                                check_period_s=0.005)
        assert 0.0 < load["cpu_fraction"] < 0.01


class TestObservability:
    def test_section_11_observing_the_watchdog(self):
        from repro.kernel import seconds
        from repro.telemetry import InMemorySink, MetricsRegistry

        registry = MetricsRegistry()
        sink = InMemorySink()
        ecu = Ecu("brake-node", brake_mapping(), watchdog_period=ms(5),
                  telemetry=registry, event_sink=sink)
        ecu.run_until(seconds(10))
        ecu.watchdog.sync_telemetry()
        text = registry.render_prometheus()
        assert "# TYPE wd_hbm_check_cycles_total counter" in text
        assert registry.value("wd_hbm_check_cycles_total") > 0
        # A healthy drive produces no detection narrative.
        assert sink.filter(kind="detection") == []
