"""Durable daemon state: snapshots, journal replay, warm standby."""

import asyncio
import json
import os
import subprocess

import pytest

from repro.core import FaultHypothesis, RunnableHypothesis
from repro.core.config_io import hypothesis_to_dict
from repro.service import SupervisionServer, StateStore, JournalFollower
from repro.service.persistence import (
    JOURNAL_ACTIVATION,
    JOURNAL_BYE,
    JOURNAL_REGISTER,
    SNAPSHOT_SCHEMA_VERSION,
)
from repro.service.protocol import T_BYE, T_HEARTBEAT, T_REGISTER
from test_service_server import _WireClient, barrier, make_hyp_dict


def make_store(tmp_path, sub="state"):
    return StateStore(str(tmp_path / sub))


async def start_server(tmp_path, **kwargs):
    kwargs.setdefault("port", 0)
    kwargs.setdefault("tick_interval", None)
    kwargs.setdefault("state_dir", str(tmp_path / "state"))
    kwargs.setdefault("snapshot_interval", None)
    server = SupervisionServer(**kwargs)
    await server.start()
    return server


class TestStateStore:
    def test_empty_dir_loads_empty(self, tmp_path):
        store = make_store(tmp_path)
        restored = store.load()
        assert restored.empty
        assert restored.snapshot is None
        assert restored.entries == []
        assert store.seq == 0

    def test_journal_append_and_load_round_trip(self, tmp_path):
        with make_store(tmp_path) as store:
            store.append(JOURNAL_REGISTER, "p", hypothesis={"version": 1})
            store.append(JOURNAL_BYE, "p")
            store.append(JOURNAL_ACTIVATION, "p", active=True)
        fresh = make_store(tmp_path)
        restored = fresh.load()
        assert restored.snapshot is None
        assert [e.kind for e in restored.entries] == [
            JOURNAL_REGISTER, JOURNAL_BYE, JOURNAL_ACTIVATION]
        assert [e.time for e in restored.entries] == [1, 2, 3]
        assert restored.entries[0].data["hypothesis"] == {"version": 1}
        # seq resumes past everything on disk.
        assert fresh.seq == 3
        fresh.append(JOURNAL_BYE, "q")
        assert fresh.seq == 4

    def test_snapshot_truncates_journal_and_filters_replay(self, tmp_path):
        store = make_store(tmp_path)
        store.append(JOURNAL_REGISTER, "a", hypothesis={})
        store.append(JOURNAL_REGISTER, "b", hypothesis={})
        payload = store.write_snapshot({"fake": "fleet"})
        assert payload["schema"] == SNAPSHOT_SCHEMA_VERSION
        assert payload["seq"] == 2
        store.append(JOURNAL_BYE, "a")  # seq 3, after the snapshot
        store.close()
        restored = make_store(tmp_path).load()
        assert restored.snapshot["fleet"] == {"fake": "fleet"}
        # Only the post-snapshot record replays.
        assert [(e.kind, e.time) for e in restored.entries] == [
            (JOURNAL_BYE, 3)]

    def test_crash_truncated_journal_tail_tolerated(self, tmp_path):
        store = make_store(tmp_path)
        store.append(JOURNAL_REGISTER, "a", hypothesis={})
        store.append(JOURNAL_REGISTER, "b", hypothesis={})
        store.close()
        # Simulate a kill -9 mid-append: a partial trailing line.
        with open(store.journal_path, "a", encoding="utf-8") as handle:
            handle.write('{"schema": 1, "time": 3, "kin')
        restored = make_store(tmp_path).load()
        assert [e.subject for e in restored.entries] == ["a", "b"]

    def test_snapshot_write_is_atomic(self, tmp_path):
        store = make_store(tmp_path)
        store.write_snapshot({"generation": 1})
        # A crash mid-write leaves only the tmp file touched; the real
        # snapshot is replaced atomically, so no torn state exists.
        assert not os.path.exists(store.snapshot_path + ".tmp")
        store.write_snapshot({"generation": 2})
        with open(store.snapshot_path, encoding="utf-8") as handle:
            assert json.load(handle)["fleet"] == {"generation": 2}

    def test_unsupported_snapshot_schema_rejected(self, tmp_path):
        store = make_store(tmp_path)
        with open(store.snapshot_path, "w", encoding="utf-8") as handle:
            json.dump({"schema": 99, "seq": 1, "fleet": {}}, handle)
        with pytest.raises(ValueError, match="schema"):
            make_store(tmp_path).load()

    def test_primary_lock_lifecycle(self, tmp_path):
        store = make_store(tmp_path)
        assert store.primary_alive() is None
        store.write_lock(name="me")
        assert store.read_lock()["pid"] == os.getpid()
        assert store.primary_alive() is True  # our own pid
        store.clear_lock()
        assert store.primary_alive() is None

    def test_dead_pid_lock_detected(self, tmp_path):
        store = make_store(tmp_path)
        child = subprocess.Popen(["true"])
        child.wait()  # reaped: the pid is provably gone
        with open(store.lock_path, "w", encoding="utf-8") as handle:
            json.dump({"pid": child.pid}, handle)
        assert store.primary_alive() is False

    def test_garbage_lock_reads_as_no_primary(self, tmp_path):
        store = make_store(tmp_path)
        with open(store.lock_path, "w", encoding="utf-8") as handle:
            handle.write("{half a lo")
        assert store.read_lock() is None
        assert store.primary_alive() is None

    def test_stale_refreshed_lock_is_dead_despite_live_pid(self, tmp_path):
        """Regression (PID recycling): a lock advertising a refresh
        cadence that stopped being re-stamped reads as dead even when
        its PID belongs to a live — possibly unrelated — process."""
        store = make_store(tmp_path)
        store.write_lock(name="me", refresh_interval=0.01)
        assert store.primary_alive() is True  # freshly stamped
        lock = store.read_lock()
        lock["written_unix"] -= 60.0  # our own (live) pid, stale stamp
        with open(store.lock_path, "w", encoding="utf-8") as handle:
            json.dump(lock, handle)
        assert store.primary_alive() is False
        # A refresh re-stamps the timestamp and revives the lock.
        store.refresh_lock()
        assert store.primary_alive() is True
        # Locks without a cadence (legacy) stay PID-only.
        store.write_lock(name="me")
        assert store.primary_alive() is True

    def test_lock_write_is_atomic(self, tmp_path):
        """The standby polls the lock concurrently: writes must go
        through temp-file + rename so it can never catch a torn write
        (which would read as "no primary" and promote a standby against
        a healthy primary)."""
        store = make_store(tmp_path)
        store.write_lock(name="me", refresh_interval=1.0)
        store.refresh_lock()
        assert not os.path.exists(store.lock_path + ".tmp")
        assert store.read_lock()["pid"] == os.getpid()

    def test_truncation_keeps_records_beyond_snapshot_seq(self, tmp_path):
        """The off-loop snapshot path: a record appended while the
        snapshot file write was in flight has a seq beyond the payload's
        and must survive the truncation."""
        store = make_store(tmp_path)
        store.append(JOURNAL_REGISTER, "a", hypothesis={})
        payload = store.build_snapshot_payload({"fake": "fleet"})
        assert payload["seq"] == 1
        # Concurrent append while the "thread" writes the snapshot.
        store.append(JOURNAL_REGISTER, "b", hypothesis={})
        store.write_snapshot_payload(payload)
        store.truncate_journal_through(payload["seq"])
        store.close()
        restored = make_store(tmp_path).load()
        assert restored.snapshot["fleet"] == {"fake": "fleet"}
        assert [(e.subject, e.time) for e in restored.entries] == [("b", 2)]


class TestJournalFollower:
    def test_tails_journal_incrementally(self, tmp_path):
        store = make_store(tmp_path)
        follower = JournalFollower(StateStore(store.state_dir))
        assert follower.poll() == (None, [])
        store.append(JOURNAL_REGISTER, "a", hypothesis={})
        snapshot, entries = follower.poll()
        assert snapshot is None
        assert [e.subject for e in entries] == ["a"]
        # Nothing new → nothing returned.
        assert follower.poll() == (None, [])
        store.append(JOURNAL_BYE, "a")
        _, entries = follower.poll()
        assert [(e.kind, e.time) for e in entries] == [(JOURNAL_BYE, 2)]

    def test_adopts_snapshot_and_skips_covered_records(self, tmp_path):
        store = make_store(tmp_path)
        follower = JournalFollower(StateStore(store.state_dir))
        store.append(JOURNAL_REGISTER, "a", hypothesis={})
        store.append(JOURNAL_REGISTER, "b", hypothesis={})
        store.write_snapshot({"fake": 1})  # truncates the journal
        snapshot, entries = follower.poll()
        assert snapshot["fleet"] == {"fake": 1}
        assert entries == []  # covered by the snapshot, never replayed
        store.append(JOURNAL_BYE, "a")  # seq 3
        snapshot, entries = follower.poll()
        assert snapshot is None
        assert [e.time for e in entries] == [3]

    def test_snapshot_not_readopted(self, tmp_path):
        store = make_store(tmp_path)
        store.write_snapshot({"fake": 1})
        follower = JournalFollower(StateStore(store.state_dir))
        snapshot, _ = follower.poll()
        assert snapshot is not None
        assert follower.poll() == (None, [])
        assert follower.snapshots_adopted == 1


class TestServerRestore:
    def test_journal_only_restore_reproduces_registrations(self, tmp_path):
        """No snapshot ever written: replaying REGISTER journal records
        alone rebuilds every registration on its original shard."""
        async def scenario():
            server = await start_server(tmp_path, shards=2)
            peers = []
            shards = {}
            for name in ("a", "b", "c"):
                peer = await _WireClient.connect(server)
                await peer.send(T_REGISTER, name=name,
                                hypothesis=make_hyp_dict())
                ack = await peer.recv_frame()
                assert ack.get("ok")
                shards[name] = ack.get("shard")
                peers.append(peer)
            await server.stop(save=False)  # crash: no snapshot
            for peer in peers:
                await peer.close()

            revived = await start_server(tmp_path, shards=2)
            assert set(revived.fleet.registrations) == {"a", "b", "c"}
            for name, shard_index in shards.items():
                assert revived.fleet.shard_for(name).index == shard_index
            assert revived.restored_registrations == 3
            assert revived.health()["restored_registrations"] == 3
            await revived.stop()
        asyncio.run(scenario())

    def test_bye_journal_replay_leaves_registration_inactive(self, tmp_path):
        async def scenario():
            server = await start_server(tmp_path)
            peer = await _WireClient.connect(server)
            await peer.send(T_REGISTER, name="p", hypothesis=make_hyp_dict())
            assert (await peer.recv_frame()).get("ok")
            await peer.send(T_BYE)
            assert (await peer.recv_frame()).get("ok")
            await peer.close()
            await server.stop(save=False)

            revived = await start_server(tmp_path)
            registration = revived.fleet.registration("p")
            assert registration is not None
            assert not registration.active
            await revived.stop()
        asyncio.run(scenario())

    def test_rebind_after_bye_replays_to_active(self, tmp_path):
        async def scenario():
            server = await start_server(tmp_path)
            peer = await _WireClient.connect(server)
            await peer.send(T_REGISTER, name="p", hypothesis=make_hyp_dict())
            assert (await peer.recv_frame()).get("ok")
            await peer.send(T_BYE)
            assert (await peer.recv_frame()).get("ok")
            await peer.close()
            # The client comes back: identical hypothesis rebinds.
            back = await _WireClient.connect(server)
            await back.send(T_REGISTER, name="p", hypothesis=make_hyp_dict())
            ack = await back.recv_frame()
            assert ack.get("ok") and ack.get("rebound") is True
            await server.stop(save=False)
            await back.close()

            revived = await start_server(tmp_path)
            assert revived.fleet.registration("p").active
            await revived.stop()
        asyncio.run(scenario())

    def test_snapshot_preserves_counters_and_indications(self, tmp_path):
        async def scenario():
            server = await start_server(tmp_path)
            peer = await _WireClient.connect(server)
            await peer.send(T_REGISTER, name="p", hypothesis=make_hyp_dict())
            assert (await peer.recv_frame()).get("ok")
            await peer.send(T_HEARTBEAT, name="p",
                            batch=[["sense", 5, "T"], ["act", 6, "T"]])
            await barrier(peer)
            await server.drain()
            server.tick(7)
            captured = server.fleet.snapshot()
            await server.stop()  # clean stop → final snapshot
            await peer.close()

            revived = await start_server(tmp_path)
            assert revived.fleet.snapshot() == captured
            assert revived.fleet.registration("p").indications == 2
            await revived.stop()
        asyncio.run(scenario())

    def test_shard_count_mismatch_refused(self, tmp_path):
        async def scenario():
            server = await start_server(tmp_path, shards=2)
            peer = await _WireClient.connect(server)
            await peer.send(T_REGISTER, name="p", hypothesis=make_hyp_dict())
            assert (await peer.recv_frame()).get("ok")
            await server.stop()
            await peer.close()
            with pytest.raises(ValueError, match="--shards"):
                await start_server(tmp_path, shards=3)
        asyncio.run(scenario())

    def test_periodic_snapshot_loop_writes(self, tmp_path):
        async def scenario():
            server = await start_server(
                tmp_path, snapshot_interval=0.02, tick_interval=None)
            peer = await _WireClient.connect(server)
            await peer.send(T_REGISTER, name="p", hypothesis=make_hyp_dict())
            assert (await peer.recv_frame()).get("ok")
            for _ in range(200):
                await asyncio.sleep(0.01)
                if server.store.snapshots_written >= 2:
                    break
            assert server.store.snapshots_written >= 2
            assert os.path.exists(server.store.snapshot_path)
            await peer.close()
            await server.stop()
        asyncio.run(scenario())

    def test_snapshot_loop_survives_write_failure(self, tmp_path):
        """Regression: one failed snapshot write (ENOSPC, transient I/O
        error) used to kill the periodic loop silently, degrading
        durability to journal-only forever.  Now the failure is counted
        and the loop keeps snapshotting."""
        async def scenario():
            server = await start_server(
                tmp_path, snapshot_interval=0.02, tick_interval=None)
            original = server.store.write_snapshot_payload
            failures_left = [2]

            def flaky(payload):
                if failures_left[0] > 0:
                    failures_left[0] -= 1
                    raise OSError("disk full")
                original(payload)

            server.store.write_snapshot_payload = flaky
            for _ in range(500):
                await asyncio.sleep(0.01)
                if server.store.snapshots_written >= 1:
                    break
            assert server.snapshot_failures == 2
            assert server.store.snapshots_written >= 1
            assert server.health()["snapshot_failures"] == 2
            server.store.write_snapshot_payload = original
            await server.stop()
        asyncio.run(scenario())


class TestStandby:
    def test_standby_binds_nothing_until_promoted(self, tmp_path):
        async def scenario():
            primary = await start_server(tmp_path)
            peer = await _WireClient.connect(primary)
            await peer.send(T_REGISTER, name="p", hypothesis=make_hyp_dict())
            assert (await peer.recv_frame()).get("ok")
            primary.write_snapshot()

            standby = SupervisionServer(
                port=0, tick_interval=None, standby=True,
                state_dir=str(tmp_path / "state"),
                snapshot_interval=None, standby_poll=0.01)
            await standby.start()
            assert standby.standby and not standby.promoted
            assert standby._servers == []  # nothing bound yet
            assert standby.health()["role"] == "standby"
            # It already adopted the primary's snapshot.
            assert set(standby.fleet.registrations) == {"p"}
            await standby.stop()
            await peer.close()
            await primary.stop()
        asyncio.run(scenario())

    def test_standby_tails_journal_and_promotes_on_dead_lock(self, tmp_path):
        async def scenario():
            primary = await start_server(tmp_path)
            peer = await _WireClient.connect(primary)
            await peer.send(T_REGISTER, name="p", hypothesis=make_hyp_dict())
            assert (await peer.recv_frame()).get("ok")

            promoted = asyncio.Event()
            standby = SupervisionServer(
                port=0, tick_interval=None, standby=True,
                state_dir=str(tmp_path / "state"),
                snapshot_interval=None, standby_poll=0.01,
                on_promote=lambda _srv: promoted.set())
            await standby.start()

            # A registration arriving while the standby tails the
            # journal reaches it without any snapshot.
            await peer.send(T_REGISTER, name="q", hypothesis=make_hyp_dict())
            assert (await peer.recv_frame()).get("ok")
            for _ in range(500):
                await asyncio.sleep(0.01)
                if "q" in standby.fleet.registrations:
                    break
            assert set(standby.fleet.registrations) == {"p", "q"}

            # Kill the primary without ceremony and fake its lock as a
            # provably dead pid (same-process tests share a live pid).
            await peer.close()
            await primary.stop(save=False)
            child = subprocess.Popen(["true"])
            child.wait()
            with open(standby.store.lock_path, "w",
                      encoding="utf-8") as handle:
                json.dump({"pid": child.pid}, handle)

            await asyncio.wait_for(promoted.wait(), timeout=10)
            assert standby.promoted and not standby.standby
            assert standby.health()["role"] == "promoted"
            assert standby.port  # listeners bound at promotion
            assert set(standby.fleet.registrations) == {"p", "q"}
            # The promoted standby is a full server: a client can rebind.
            client = await _WireClient.connect(standby)
            await client.send(T_REGISTER, name="p",
                              hypothesis=make_hyp_dict())
            ack = await client.recv_frame()
            assert ack.get("ok") and ack.get("rebound") is True
            await client.close()
            await standby.stop()
        asyncio.run(scenario())

    def test_promoted_standby_continues_journal_sequence(self, tmp_path):
        """Regression: the standby's store.seq was only set by load() at
        startup; journal records and snapshots the follower applied
        afterwards never advanced it.  A promoted standby then journaled
        new records with already-used sequence numbers at-or-below the
        on-disk snapshot's seq — and the next recovery silently dropped
        them (lost post-failover registrations)."""
        async def scenario():
            primary = await start_server(tmp_path)
            peer = await _WireClient.connect(primary)
            await peer.send(T_REGISTER, name="p", hypothesis=make_hyp_dict())
            assert (await peer.recv_frame()).get("ok")

            # Standby starts now: load() sees only journal seq 1.
            standby = SupervisionServer(
                port=0, tick_interval=None, standby=True,
                state_dir=str(tmp_path / "state"),
                snapshot_interval=None, standby_poll=0.01)
            await standby.start()

            # The primary advances the sequence past the standby's
            # loaded position, then snapshots (journal truncated,
            # snapshot seq = 2).
            await peer.send(T_REGISTER, name="q", hypothesis=make_hyp_dict())
            assert (await peer.recv_frame()).get("ok")
            primary.write_snapshot()
            for _ in range(500):
                await asyncio.sleep(0.01)
                if standby._follower.applied_seq >= 2:
                    break
            assert standby._follower.applied_seq >= 2

            await peer.close()
            await primary.stop(save=False)
            await standby.promote()
            # The append cursor continued the primary's sequence.
            assert standby.store.seq >= standby._follower.applied_seq

            # A post-failover registration journals beyond the snapshot.
            client = await _WireClient.connect(standby)
            await client.send(T_REGISTER, name="r",
                              hypothesis=make_hyp_dict())
            assert (await client.recv_frame()).get("ok")
            await client.close()
            await standby.stop(save=False)  # crash before any snapshot

            revived = await start_server(tmp_path)
            assert set(revived.fleet.registrations) == {"p", "q", "r"}
            await revived.stop()
        asyncio.run(scenario())

    def test_standby_promotes_when_clean_shutdown_lock_vanishes(
            self, tmp_path):
        async def scenario():
            primary = await start_server(tmp_path)
            standby = SupervisionServer(
                port=0, tick_interval=None, standby=True,
                state_dir=str(tmp_path / "state"),
                snapshot_interval=None, standby_poll=0.01)
            await standby.start()
            # Let the standby observe the live primary at least once.
            for _ in range(500):
                await asyncio.sleep(0.01)
                if standby.store.primary_alive() is True:
                    break
            await primary.stop()  # clean: clears the lock
            for _ in range(500):
                await asyncio.sleep(0.01)
                if standby.promoted:
                    break
            assert standby.promoted
            await standby.stop()
        asyncio.run(scenario())

    def test_standby_requires_state_dir(self):
        with pytest.raises(ValueError, match="state-dir"):
            SupervisionServer(port=0, standby=True)
