"""Differential equivalence: parallel vs serial campaign execution.

The worker pool is an optimization, not a behavior change: for any
spec-based campaign the merged ``CampaignResult`` from ``workers=N``
must be bit-for-bit identical to the serial run — same ``RunResult``
values, same order — exactly like the expiry-wheel equivalence suite
pins the HBM strategies against each other.
"""

import pytest

from repro.faults import Campaign, FaultSpec, SystemSpec
from repro.faults.campaigns import CampaignResult, RunResult
from repro.kernel import ms
from repro.experiments.coverage import standard_fault_specs


def _small_campaign():
    return Campaign("coverage", warmup=ms(300), observation=ms(500))


@pytest.fixture(scope="module")
def specs():
    return standard_fault_specs(1)


@pytest.fixture(scope="module")
def serial_result(specs):
    return _small_campaign().execute(specs)


class TestDeterminism:
    def test_serial_runs_identical(self, specs, serial_result):
        again = _small_campaign().execute(specs)
        assert again.runs == serial_result.runs

    def test_parallel_equals_serial(self, specs, serial_result):
        parallel = _small_campaign().execute(specs, workers=4)
        assert parallel.runs == serial_result.runs

    def test_workers_zero_means_cpu_count(self, specs, serial_result):
        parallel = _small_campaign().execute(specs, workers=0)
        assert parallel.runs == serial_result.runs

    def test_tiny_chunks_preserve_order(self, specs, serial_result):
        parallel = _small_campaign().execute(specs, workers=4, chunksize=1)
        assert parallel.runs == serial_result.runs

    def test_latency_system_parallel_equals_serial(self):
        campaign = Campaign(
            SystemSpec.of("latency", eager=True, check_strategy="wheel"),
            warmup=ms(300), observation=ms(500),
        )
        faults = [FaultSpec.of("loop_count", runnable="GetSensorValue",
                               repeat=4)] * 3
        assert campaign.execute(faults).runs == \
            campaign.execute(faults, workers=2).runs


class TestParallelApi:
    def test_progress_reports_monotone_counts(self, specs):
        calls = []
        _small_campaign().execute(
            specs, workers=2, progress=lambda done, total: calls.append((done, total))
        )
        assert calls[-1] == (len(specs), len(specs))
        assert [d for d, _ in calls] == sorted(d for d, _ in calls)

    def test_serial_progress_per_run(self, specs):
        calls = []
        _small_campaign().execute(
            specs, progress=lambda done, total: calls.append((done, total))
        )
        assert calls == [(i + 1, len(specs)) for i in range(len(specs))]

    def test_closures_rejected_in_parallel_mode(self):
        from repro.faults.models import BlockedRunnableFault

        campaign = _small_campaign()
        with pytest.raises(ValueError, match="picklable run specs"):
            campaign.execute(
                [lambda s: BlockedRunnableFault("SAFE_CC_process")], workers=2
            )

    def test_callable_system_factory_rejected_in_parallel_mode(self, specs):
        from repro.experiments.coverage import build_coverage_system

        campaign = Campaign(build_coverage_system, warmup=ms(300),
                            observation=ms(500))
        with pytest.raises(ValueError, match="picklable run specs"):
            campaign.execute(specs, workers=2)

    def test_negative_workers_rejected(self, specs):
        with pytest.raises(ValueError, match="workers"):
            _small_campaign().execute(specs, workers=-1)

    def test_empty_fault_list(self):
        assert _small_campaign().execute([], workers=4).runs == []


def _reference_coverage_table(result):
    """The pre-optimization coverage_table: repeated full-list passes."""
    rows = []
    for fault_class in result.fault_classes():
        for detector in result.detectors():
            relevant = [r for r in result.runs if r.fault_class == fault_class]
            hits = sum(1 for r in relevant if r.detected_by(detector))
            latencies = [r.latency(detector) for r in relevant
                         if r.latency(detector) is not None]
            rows.append(
                {
                    "fault_class": fault_class,
                    "detector": detector,
                    "coverage": hits / len(relevant) if relevant else 0.0,
                    "mean_latency": (
                        sum(latencies) / len(latencies) if latencies else None
                    ),
                    "runs": len(relevant),
                }
            )
    return rows


class TestCoverageTableEquivalence:
    def test_single_pass_matches_reference(self, serial_result):
        assert serial_result.coverage_table() == \
            _reference_coverage_table(serial_result)

    def test_heterogeneous_detector_sets(self):
        # Runs whose detection dicts disagree: detector "b" never appears
        # in class "Y" runs, so that (class, detector) bucket is empty.
        result = CampaignResult(runs=[
            RunResult("f1", "X", "aliveness", 10, {"a": 15, "b": None}),
            RunResult("f2", "X", "aliveness", 10, {"a": None, "b": 30}),
            RunResult("f3", "Y", "flow", 20, {"a": 21}),
        ])
        assert result.coverage_table() == _reference_coverage_table(result)
