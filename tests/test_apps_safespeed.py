"""Tests for the SafeSpeed application (Figure 4)."""

import pytest

from repro.apps import (
    RUNNABLE_SEQUENCE,
    SafeSpeedApp,
    SafeSpeedConfig,
    Vehicle,
)


def make_app(limit=100.0, vehicle=None, **config):
    vehicle = vehicle or Vehicle()

    def sensor():
        return vehicle.state.speed_kph, limit

    def actuator(throttle, brake):
        vehicle.commands.throttle = throttle
        vehicle.commands.brake = brake

    return SafeSpeedApp(sensor, actuator, SafeSpeedConfig(**config)), vehicle


def run_closed_loop(app, vehicle, steps, dt=0.01):
    for _ in range(steps):
        app.get_sensor_value()
        app.safe_cc_process()
        app.speed_process()
        vehicle.step(dt)


class TestRunnables:
    def test_sensor_runnable_updates_blackboard(self):
        app, vehicle = make_app(limit=80.0)
        vehicle.state.speed_mps = 10.0
        app.get_sensor_value()
        assert app.state.speed_kph == pytest.approx(36.0)
        assert app.state.limit_kph == 80.0
        assert app.state.samples == 1

    def test_control_below_band_cruises(self):
        app, _ = make_app(limit=100.0)
        app.state.speed_kph = 50.0
        app.state.limit_kph = 100.0
        app.safe_cc_process()
        assert app.state.throttle_cmd == app.config.cruise_throttle
        assert app.state.brake_cmd == 0.0
        assert app.state.interventions == 0

    def test_control_above_limit_brakes(self):
        app, _ = make_app(limit=100.0)
        app.state.speed_kph = 130.0
        app.state.limit_kph = 100.0
        app.safe_cc_process()
        assert app.state.brake_cmd > 0.0
        assert app.state.throttle_cmd == 0.0
        assert app.state.interventions == 1

    def test_actuator_runnable_writes_commands(self):
        app, vehicle = make_app()
        app.state.throttle_cmd = 0.7
        app.state.brake_cmd = 0.0
        app.speed_process()
        assert vehicle.commands.throttle == 0.7

    def test_overshoot_tracking(self):
        app, vehicle = make_app(limit=50.0)
        vehicle.state.speed_mps = 20.0  # 72 kph
        app.get_sensor_value()
        assert app.state.max_overshoot_kph == pytest.approx(22.0)


class TestClosedLoop:
    def test_limits_speed_to_command(self):
        app, vehicle = make_app(limit=60.0)
        run_closed_loop(app, vehicle, steps=12_000)
        assert vehicle.state.speed_kph <= 61.0
        assert vehicle.state.speed_kph >= 50.0  # actually driving

    def test_no_runaway_overshoot(self):
        app, vehicle = make_app(limit=60.0)
        run_closed_loop(app, vehicle, steps=12_000)
        assert app.state.max_overshoot_kph < 5.0

    def test_responds_to_lower_limit(self):
        limit_holder = {"limit": 100.0}
        vehicle = Vehicle()

        def sensor():
            return vehicle.state.speed_kph, limit_holder["limit"]

        def actuator(throttle, brake):
            vehicle.commands.throttle = throttle
            vehicle.commands.brake = brake

        app = SafeSpeedApp(sensor, actuator)
        run_closed_loop(app, vehicle, steps=10_000)
        assert vehicle.state.speed_kph > 90.0
        limit_holder["limit"] = 50.0
        run_closed_loop(app, vehicle, steps=10_000)
        assert vehicle.state.speed_kph <= 52.0


class TestApplicationModel:
    def test_builds_three_runnables_in_order(self):
        app, _ = make_app()
        application = app.build_application()
        assert application.name == "SafeSpeed"
        names = application.runnable_names()
        assert tuple(names) == RUNNABLE_SEQUENCE

    def test_wcet_count_enforced(self):
        app, _ = make_app()
        with pytest.raises(ValueError):
            app.build_application(wcets=[1, 2])

    def test_behaviours_are_live(self):
        """The built RunnableSpec behaviours drive the same app state."""
        app, vehicle = make_app()
        application = app.build_application()
        spec = application.components[0].runnables[0]
        vehicle.state.speed_mps = 5.0
        spec.behaviour(None, None)
        assert app.state.samples == 1

    def test_constraint_flags(self):
        app, _ = make_app()
        application = app.build_application(restartable=False, ecu_reset_allowed=False)
        assert not application.restartable
        assert not application.ecu_reset_allowed
