"""Scenario-driven HIL tests: the ControlDesk evaluation flow of §4.5.

These tests drive the rig the way the paper's experimenters did: move a
slider at a chosen instant, watch the capture, restore it — all scripted
through :class:`Scenario` and the rig's :class:`ParameterStore`.
"""

import pytest

from repro.core import ErrorType
from repro.kernel import ms, seconds
from repro.platform import FmfPolicy
from repro.validator import HilValidator, Scenario

OBSERVE = FmfPolicy(ecu_faulty_task_threshold=10**6, max_app_restarts=10**6)


def observation_rig(**kwargs):
    return HilValidator(fmf_policy=OBSERVE, fmf_auto_treatment=False, **kwargs)


class TestSliderInstruments:
    def test_time_scalar_slider_changes_period(self):
        rig = observation_rig()
        rig.run(seconds(1))
        from repro.analysis import observed_periods

        rig.parameters.set_now("safespeed.time_scalar", 4.0)
        rig.run(seconds(1))
        periods = observed_periods(rig.kernel.trace, "SafeSpeedTask")
        assert periods[-1] == ms(40)

    def test_time_scalar_slider_provokes_aliveness_errors(self):
        rig = observation_rig()
        scenario = (
            Scenario("figure5-via-sliders", duration=seconds(3))
            .at(seconds(1), lambda: rig.parameters.set_now(
                "safespeed.time_scalar", 4.0), label="slow down")
            .at(seconds(2), lambda: rig.parameters.set_now(
                "safespeed.time_scalar", 1.0), label="restore")
        )
        scenario.run(rig)
        assert rig.ecu.watchdog.detection_count(ErrorType.ALIVENESS) > 10
        # The slider was restored: the last capture samples are flat.
        am = rig.capture.get("AM_Result").values
        assert am[-1] == am[-5]

    def test_invalid_scalar_rejected(self):
        rig = observation_rig()
        with pytest.raises(ValueError):
            rig.parameters.set_now("safespeed.time_scalar", 0.0)

    def test_commanded_limit_slider(self):
        rig = observation_rig(initial_speed_kph=90.0)
        rig.run(seconds(2))
        rig.parameters.set_now("commanded_limit_kph", 40.0)
        rig.run(seconds(40))
        assert rig.vehicle.state.speed_kph <= 42.0
        # Clearing the command lets the road limit (100) rule again.
        rig.parameters.set_now("commanded_limit_kph", 0.0)
        rig.run(seconds(30))
        assert rig.vehicle.state.speed_kph > 60.0

    def test_slider_changes_logged(self):
        rig = observation_rig()
        rig.parameters.set_at(ms(100), "safespeed.time_scalar", 2.0)
        rig.run(ms(200))
        assert (ms(100), "safespeed.time_scalar", 2.0) in rig.parameters.change_log


class TestScenarioCaptures:
    def test_capture_windows_match_injection(self):
        """AM_Result is flat before the slider moves and grows after."""
        rig = observation_rig()
        scenario = (
            Scenario("window", duration=seconds(2))
            .at(seconds(1), lambda: rig.parameters.set_now(
                "safespeed.time_scalar", 4.0))
        )
        scenario.run(rig)
        am = rig.capture.get("AM_Result")
        assert am.at(seconds(1) - ms(20)) == 0
        assert am.final() > 0

    def test_scenario_result_carries_capture(self):
        rig = observation_rig()
        result = Scenario("noop", duration=ms(200)).run(rig)
        assert result.capture is rig.capture
        assert len(rig.capture.get("speed_kph").values) >= 19
