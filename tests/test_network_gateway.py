"""Tests for the TCP link and the inter-domain gateway."""

import pytest

from repro.kernel import Kernel, ms
from repro.network import (
    CanBus,
    FlexRayBus,
    FlexRaySchedule,
    FrameSpec,
    Gateway,
    Route,
    SignalSpec,
    TcpLink,
)


def frame(name="F", frame_id=0x100):
    spec = FrameSpec(name, frame_id)
    spec.add_signal(SignalSpec("v", 0, 16, scale=0.01))
    return spec


class TestTcpLink:
    def test_delivery_after_latency(self, kernel):
        link = TcpLink("tcp", kernel, latency=ms(3))
        got = []
        link.on_receive(lambda m: got.append(kernel.clock.now))
        link.send(frame(), {"v": 1.0})
        kernel.run_until(ms(10))
        assert got == [ms(3)]
        assert link.sent_count == 1
        assert link.delivered_count == 1

    def test_in_order_delivery(self, kernel):
        link = TcpLink("tcp", kernel, latency=ms(1))
        got = []
        link.on_receive(lambda m: got.append(round(m.value("v"))))
        for v in (1, 2, 3):
            link.send(frame(), {"v": v})
        kernel.run_until(ms(10))
        assert got == [1, 2, 3]

    def test_negative_latency_rejected(self, kernel):
        with pytest.raises(ValueError):
            TcpLink("tcp", kernel, latency=-1)


class TestGatewayRouting:
    def build(self, kernel):
        can = CanBus("can", kernel)
        tcp = TcpLink("tcp", kernel, latency=ms(1))
        gw = Gateway("gw", kernel, forwarding_latency=ms(1))
        gw_can = can.attach("gw")
        gw.add_can_port("can", gw_can)
        gw.add_tcp_port("tcp", tcp)
        return can, tcp, gw

    def test_route_tcp_to_can(self, kernel):
        can, tcp, gw = self.build(kernel)
        rx = can.attach("rx")
        got = []
        rx.on_receive(lambda m: got.append(m.value("v")))
        gw.add_route(Route(source_port="tcp", frame_id=0x100, destination_port="can"))
        tcp.send(frame(), {"v": 42.0})
        kernel.run_until(ms(10))
        assert got and got[0] == pytest.approx(42.0, abs=0.01)
        assert gw.forwarded_count == 1

    def test_unwhitelisted_frame_dropped(self, kernel):
        can, tcp, gw = self.build(kernel)
        rx = can.attach("rx")
        got = []
        rx.on_receive(got.append)
        tcp.send(frame("other", 0x999), {"v": 1.0})
        kernel.run_until(ms(10))
        assert got == []
        assert gw.dropped_count == 1

    def test_translation_rewrites_frame(self, kernel):
        can, tcp, gw = self.build(kernel)
        rx = can.attach("rx")
        got = []
        rx.on_receive(lambda m: got.append((m.spec.name, m.value("v"))))
        out_spec = frame("Translated", 0x200)

        def translate(message):
            return out_spec, {"v": message.value("v") * 2}

        gw.add_route(
            Route(source_port="tcp", frame_id=0x100, destination_port="can",
                  translate=translate)
        )
        tcp.send(frame(), {"v": 10.0})
        kernel.run_until(ms(10))
        assert got == [("Translated", pytest.approx(20.0, abs=0.01))]

    def test_route_can_to_tcp(self, kernel):
        can, tcp, gw = self.build(kernel)
        sender = can.attach("sender")
        got = []
        tcp.on_receive(lambda m: got.append(m.value("v")))
        gw.add_route(Route(source_port="can", frame_id=0x100, destination_port="tcp"))
        sender.send(frame(), {"v": 5.0})
        kernel.run_until(ms(10))
        assert got and got[0] == pytest.approx(5.0, abs=0.01)

    def test_unknown_port_rejected(self, kernel):
        _, _, gw = self.build(kernel)
        with pytest.raises(ValueError):
            gw.add_route(Route(source_port="ghost", frame_id=1, destination_port="can"))
        with pytest.raises(ValueError):
            gw.add_route(Route(source_port="can", frame_id=1, destination_port="ghost"))

    def test_forwarding_latency_applied(self, kernel):
        can, tcp, gw = self.build(kernel)
        rx = can.attach("rx")
        arrival = []
        rx.on_receive(lambda m: arrival.append(kernel.clock.now))
        gw.add_route(Route(source_port="tcp", frame_id=0x100, destination_port="can"))
        tcp.send(frame(), {"v": 1.0})
        kernel.run_until(ms(10))
        # tcp latency (1 ms) + gateway forwarding (1 ms) + CAN wire time.
        assert arrival[0] >= ms(2)


class TestGatewayFlexRayPort:
    def test_flexray_port_stages_into_slot(self, kernel):
        s = FlexRaySchedule(cycle_length=ms(4), static_slots=2,
                            static_slot_length=ms(1))
        s.assign_slot(1, "gw")
        fr = FlexRayBus("fr", kernel, s)
        gw_fr = fr.attach("gw")
        rx = fr.attach("rx")
        tcp = TcpLink("tcp", kernel, latency=ms(1))
        gw = Gateway("gw", kernel, forwarding_latency=100)
        gw.add_tcp_port("tcp", tcp)
        gw.add_flexray_port("fr", gw_fr, tx_slot=1)
        gw.add_route(Route(source_port="tcp", frame_id=0x100, destination_port="fr"))
        got = []
        rx.on_receive(lambda m: got.append(m.value("v")))
        fr.start()
        tcp.send(frame(), {"v": 3.0})
        kernel.run_until(ms(10))
        assert got and got[0] == pytest.approx(3.0, abs=0.01)

    def test_flexray_port_without_slot_cannot_send(self, kernel):
        s = FlexRaySchedule(cycle_length=ms(4), static_slots=2,
                            static_slot_length=ms(1))
        fr = FlexRayBus("fr", kernel, s)
        gw_fr = fr.attach("gw")
        gw = Gateway("gw", kernel)
        port = gw.add_flexray_port("fr", gw_fr)
        from repro.network.frames import Message

        msg = Message(spec=frame(), payload=frame().pack({}), timestamp=0)
        with pytest.raises(ValueError):
            port.send(msg)
