"""Tests for the multi-ECU validator (distributed supervision rig)."""

import pytest

from repro.core import MonitorState
from repro.faults import BlockedRunnableFault, FaultTarget
from repro.kernel import ms, seconds
from repro.validator import MultiEcuValidator


@pytest.fixture
def rig():
    return MultiEcuValidator(["chassis", "body"])


class TestHealthyOperation:
    def test_both_nodes_publish(self, rig):
        rig.run_for(seconds(1))
        for name in ("chassis", "body"):
            assert rig.nodes[name].publisher.published_count >= 99
            assert rig.supervisor.peers[name].frames_received >= 98

    def test_all_verdicts_ok(self, rig):
        rig.run_for(seconds(1))
        assert rig.node_state("chassis") is MonitorState.OK
        assert rig.node_state("body") is MonitorState.OK
        assert rig.supervisor.network_state() is MonitorState.OK
        assert rig.node_aliveness_log == []

    def test_no_sequence_gaps_on_clean_bus(self, rig):
        rig.run_for(seconds(1))
        assert rig.supervisor.peers["body"].sequence_gaps == 0

    def test_local_watchdogs_clean(self, rig):
        rig.run_for(seconds(1))
        for node in rig.nodes.values():
            assert node.ecu.watchdog.detection_count() == 0

    def test_summary_structure(self, rig):
        rig.run_for(ms(200))
        summary = rig.summary()
        assert set(summary["nodes"]) == {"chassis", "body"}
        assert summary["network_state"] == "ok"


class TestNodeCrash:
    def test_crash_detected_by_supervisor(self, rig):
        rig.run_for(seconds(1))
        crash_time = rig.kernel.clock.now
        rig.crash_node("body")
        rig.run_for(ms(200))
        errors = [e for e in rig.node_aliveness_log if e.node == "body"]
        assert errors
        # Detection within ~2 supervision windows (3 cycles x 10 ms).
        assert errors[0].time - crash_time <= ms(70)
        assert rig.node_state("body") is MonitorState.FAULTY

    def test_healthy_peer_unaffected(self, rig):
        rig.run_for(seconds(1))
        rig.crash_node("body")
        rig.run_for(ms(300))
        assert rig.node_state("chassis") is MonitorState.OK
        assert all(e.node == "body" for e in rig.node_aliveness_log)

    def test_crashed_node_stops_publishing(self, rig):
        rig.run_for(seconds(1))
        rig.crash_node("body")
        published = rig.nodes["body"].publisher.published_count
        rig.run_for(ms(300))
        assert rig.nodes["body"].publisher.published_count == published

    def test_recovery_restores_ok(self, rig):
        rig.run_for(seconds(1))
        rig.crash_node("body")
        rig.run_for(ms(200))
        rig.recover_node("body")
        rig.run_for(ms(200))
        assert rig.node_state("body") is MonitorState.OK
        assert rig.nodes["body"].publisher.published_count > 100


class TestStatePropagation:
    def test_degraded_node_state_mirrored_remotely(self, rig):
        """A blocked runnable on 'body' degrades its self-reported state;
        the supervisor mirrors it without node-aliveness alarms."""
        rig.run_for(seconds(1))
        body = rig.nodes["body"]
        BlockedRunnableFault("body.process").inject(
            FaultTarget(
                kernel=rig.kernel,
                runnables=dict(body.ecu.system.runnables),
                charts=dict(body.ecu.system.charts),
                alarms=body.ecu.alarms,
            )
        )
        rig.run_for(ms(500))
        assert rig.node_state("body") in (
            MonitorState.SUSPICIOUS, MonitorState.FAULTY
        )
        # Alive: no node-aliveness errors, only state propagation.
        assert rig.supervisor.peers["body"].node_aliveness_errors == 0
        assert rig.supervisor.peers["body"].reported_errors["aliveness"] > 0

    def test_remote_error_counts_track_local(self, rig):
        rig.run_for(seconds(1))
        body = rig.nodes["body"]
        BlockedRunnableFault("body.process").inject(
            FaultTarget(
                kernel=rig.kernel,
                runnables=dict(body.ecu.system.runnables),
                charts=dict(body.ecu.system.charts),
            )
        )
        rig.run_for(ms(500))
        from repro.core import ErrorType

        local = body.ecu.watchdog.detected[ErrorType.ALIVENESS]
        remote = rig.supervisor.peers["body"].reported_errors["aliveness"]
        assert abs(local - remote) <= 1  # one frame of staleness at most


class TestCrashRecoverRoundTrip:
    """Repeated crash->recover cycles must round-trip cleanly: the
    verdict, the publishing pipeline, and the error log all return to
    steady state each time, with the healthy peer never implicated."""

    def test_three_cycles_verdict_round_trips(self, rig):
        rig.run_for(seconds(1))
        for _ in range(3):
            rig.crash_node("body")
            rig.run_for(ms(200))
            assert rig.node_state("body") is MonitorState.FAULTY
            rig.recover_node("body")
            rig.run_for(ms(200))
            assert rig.node_state("body") is MonitorState.OK
        assert rig.supervisor.network_state() is MonitorState.OK

    def test_publishing_resumes_each_cycle(self, rig):
        rig.run_for(seconds(1))
        for _ in range(2):
            rig.crash_node("body")
            rig.run_for(ms(200))
            stalled = rig.nodes["body"].publisher.published_count
            rig.recover_node("body")
            rig.run_for(ms(200))
            resumed = rig.nodes["body"].publisher.published_count
            # ~10 ms publish period -> about 20 new frames in 200 ms.
            assert resumed - stalled >= 15

    def test_errors_stop_accumulating_after_recovery(self, rig):
        rig.run_for(seconds(1))
        rig.crash_node("body")
        rig.run_for(ms(200))
        rig.recover_node("body")
        rig.run_for(ms(100))  # give the supervisor one clean window
        settled = len(rig.node_aliveness_log)
        rig.run_for(ms(500))
        assert len(rig.node_aliveness_log) == settled

    def test_healthy_peer_unaffected_across_cycles(self, rig):
        rig.run_for(seconds(1))
        for _ in range(2):
            rig.crash_node("body")
            rig.run_for(ms(200))
            rig.recover_node("body")
            rig.run_for(ms(200))
            assert rig.node_state("chassis") is MonitorState.OK
        assert all(e.node == "body" for e in rig.node_aliveness_log)
        assert rig.nodes["chassis"].ecu.watchdog.detection_count() == 0

    def test_summary_reflects_recovery(self, rig):
        rig.run_for(seconds(1))
        rig.crash_node("body")
        rig.run_for(ms(200))
        assert rig.summary()["nodes"]["body"]["crashed"] is True
        rig.recover_node("body")
        rig.run_for(ms(200))
        summary = rig.summary()["nodes"]["body"]
        assert summary["crashed"] is False
        assert summary["supervisor_verdict"] == "ok"
