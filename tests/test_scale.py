"""Scale tests: the stack at one order of magnitude above the rig.

The paper motivates the service with "increasing density of application
software components" — these tests put a dense configuration on one ECU
(10 tasks / 50 runnables) and a wider network (6 supervised nodes) and
check that correctness properties survive the density.
"""

import pytest

from repro.core import ErrorType, MonitorState
from repro.faults import BlockedRunnableFault, FaultTarget
from repro.kernel import ms, seconds
from repro.platform import (
    Application,
    Ecu,
    FmfPolicy,
    RunnableSpec,
    SoftwareComponent,
    TaskMapping,
    TaskSpec,
    is_schedulable,
)
from repro.validator import MultiEcuValidator

OBSERVE = FmfPolicy(ecu_faulty_task_threshold=10**6, max_app_restarts=10**6)


def dense_mapping(tasks=10, runnables_per_task=5):
    """10 applications x 1 task x 5 runnables, periods 10-55 ms."""
    applications = []
    mapping_apps = []
    for t in range(tasks):
        app = Application(f"App{t}")
        swc = SoftwareComponent(f"Swc{t}")
        for r in range(runnables_per_task):
            swc.add(RunnableSpec(f"t{t}.r{r}", wcet=ms(0.2)))
        app.add_component(swc)
        mapping_apps.append(app)
    mapping = TaskMapping(mapping_apps)
    for t, app in enumerate(mapping_apps):
        period = ms(10 + 5 * t)
        mapping.add_task(TaskSpec(f"Task{t}", priority=tasks - t, period=period))
        mapping.map_sequence(f"Task{t}", app.runnable_names())
    return mapping


@pytest.fixture(scope="module")
def dense_ecu():
    mapping = dense_mapping()
    assert is_schedulable(mapping.task_timings())
    ecu = Ecu("dense", mapping, watchdog_period=ms(10),
              fmf_policy=OBSERVE, fmf_auto_treatment=False)
    ecu.run_until(seconds(5))
    return ecu


class TestDenseEcu:
    def test_fifty_runnables_supervised_cleanly(self, dense_ecu):
        assert len(dense_ecu.system.runnables) == 50
        assert dense_ecu.watchdog.detection_count() == 0
        assert dense_ecu.ecu_monitor_state() is MonitorState.OK

    def test_all_tasks_run_at_their_periods(self, dense_ecu):
        from repro.analysis import observed_periods

        for t in range(10):
            periods = observed_periods(dense_ecu.kernel.trace, f"Task{t}")
            assert periods, f"Task{t} never ran"
            assert all(p == ms(10 + 5 * t) for p in periods)

    def test_single_fault_attributed_among_fifty(self, dense_ecu):
        """Blocking one runnable of fifty produces detections for exactly
        that runnable (attribution does not smear under density)."""
        fault = BlockedRunnableFault("t7.r2")
        fault.inject(FaultTarget.from_ecu(dense_ecu))
        dense_ecu.run_until(dense_ecu.now + seconds(2))
        fault.restore(FaultTarget.from_ecu(dense_ecu))
        detected = dense_ecu.watchdog.detected_per_runnable
        aliveness_victims = [
            name for name, counts in detected.items()
            if counts.get(ErrorType.ALIVENESS, 0) > 0
        ]
        assert aliveness_victims == ["t7.r2"]
        # Flow errors attribute to the hosting task's stream.
        assert dense_ecu.watchdog.tsi.error_count(task="Task7") > 0
        assert dense_ecu.watchdog.tsi.error_count(task="Task3") == 0

    def test_utilization_accounting_sane(self, dense_ecu):
        # 50 x 0.2 ms across periods 10-55 ms: well under full load.
        assert 0.02 < dense_ecu.kernel.utilization() < 0.5


class TestWideNetwork:
    def test_six_node_supervision(self):
        names = [f"node{i}" for i in range(6)]
        # 6 nodes x 2 ms on the shared CPU: a 30 ms period keeps U < 1.
        rig = MultiEcuValidator(names, node_period=ms(30))
        rig.run_for(seconds(1))
        assert rig.supervisor.network_state() is MonitorState.OK
        for name in names:
            assert rig.supervisor.peers[name].frames_received >= 95

    def test_overloaded_shared_cpu_is_reported_not_hidden(self):
        """With six 10 ms nodes the shared CPU saturates (U = 1.2): the
        starved lowest-priority node's own watchdog reports it and the
        supervisor mirrors the degradation — overload is visible, never
        silent."""
        names = [f"node{i}" for i in range(6)]
        rig = MultiEcuValidator(names)  # default 10 ms periods: U > 1
        rig.run_for(seconds(1))
        assert rig.node_state("node0") is MonitorState.FAULTY
        assert rig.supervisor.peers["node0"].reported_errors["aliveness"] > 0

    def test_two_simultaneous_crashes_isolated(self):
        names = [f"node{i}" for i in range(6)]
        rig = MultiEcuValidator(names, node_period=ms(30))
        rig.run_for(seconds(1))
        rig.crash_node("node1")
        rig.crash_node("node4")
        rig.run_for(ms(200))
        faulty = {name for name in names
                  if rig.node_state(name) is MonitorState.FAULTY}
        assert faulty == {"node1", "node4"}
