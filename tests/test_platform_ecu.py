"""Tests for the integrated ECU model."""

import pytest

from repro.core import ErrorType, MonitorState
from repro.kernel import TraceKind, ms, seconds
from repro.platform import Ecu, FmfPolicy, TreatmentAction

from testutil import make_safespeed_mapping


def build_ecu(**kwargs):
    mapping = make_safespeed_mapping()
    defaults = dict(watchdog_period=ms(10))
    defaults.update(kwargs)
    return Ecu("central", mapping, **defaults)


class TestHealthyOperation:
    def test_runs_clean(self):
        ecu = build_ecu()
        ecu.run_until(seconds(1))
        assert ecu.watchdog.detection_count() == 0
        assert ecu.ecu_monitor_state() is MonitorState.OK
        assert ecu.fmf.fault_log == []

    def test_watchdog_task_registered(self):
        ecu = build_ecu()
        assert "SoftwareWatchdogTask" in ecu.kernel.tasks

    def test_watchdog_priority_above_applications(self):
        ecu = build_ecu()
        wd_priority = ecu.kernel.tasks["SoftwareWatchdogTask"].priority
        app_priority = ecu.kernel.tasks["SafeSpeedTask"].priority
        assert wd_priority > app_priority

    def test_services_registered(self):
        ecu = build_ecu()
        assert ecu.registry.resolve("fmf.fault_report") is not None
        assert ecu.registry.resolve("watchdog.heartbeat_indication") is not None

    def test_describe(self):
        ecu = build_ecu()
        info = ecu.describe()
        assert info["name"] == "central"
        assert "SafeSpeedTask" in info["tasks"]
        assert info["applications"] == ["SafeSpeed"]

    def test_external_kernel_accepted(self):
        from repro.kernel import Kernel

        shared = Kernel()
        ecu = Ecu("central", make_safespeed_mapping(), kernel=shared)
        assert ecu.kernel is shared


class TestFaultDetectionFlow:
    def test_blocked_runnable_reaches_fmf(self):
        ecu = build_ecu()
        ecu.run_until(ms(200))
        ecu.system.runnable("SAFE_CC_process").enabled = False
        ecu.run_until(ms(800))
        categories = ecu.fmf.faults_by_category()
        assert categories.get("aliveness", 0) > 0
        assert categories.get("program_flow", 0) > 0

    def test_task_fault_triggers_app_restart(self):
        ecu = build_ecu(fmf_policy=FmfPolicy(ecu_faulty_task_threshold=5,
                                             max_app_restarts=100))
        ecu.run_until(ms(200))
        ecu.system.runnable("SAFE_CC_process").enabled = False
        ecu.run_until(seconds(1))
        assert ecu.application_restart_counts.get("SafeSpeed", 0) > 0
        assert (
            ecu.fmf.treatments_by_action().get(TreatmentAction.RESTART_APPLICATION, 0)
            > 0
        )

    def test_restart_budget_escalates_to_reset(self):
        ecu = build_ecu(fmf_policy=FmfPolicy(ecu_faulty_task_threshold=5,
                                             max_app_restarts=2))
        ecu.run_until(ms(200))
        ecu.system.runnable("SAFE_CC_process").enabled = False
        ecu.run_until(seconds(2))
        assert len(ecu.reset_times) > 0
        assert ecu.kernel.trace.count(TraceKind.ECU_RESET) == len(ecu.reset_times)

    def test_transient_fault_recovers_after_restart(self):
        """A restart heals a transient fault: no further detections."""
        ecu = build_ecu(fmf_policy=FmfPolicy(ecu_faulty_task_threshold=5,
                                             max_app_restarts=100))
        ecu.run_until(ms(200))
        runnable = ecu.system.runnable("SAFE_CC_process")
        runnable.enabled = False
        ecu.run_until(ms(500))
        restarts_before = ecu.application_restart_counts.get("SafeSpeed", 0)
        assert restarts_before > 0
        runnable.enabled = True  # transient fault gone
        detections_at_recovery = ecu.watchdog.detection_count()
        ecu.run_until(seconds(2))
        # At most one borderline period-straddling detection after recovery.
        assert ecu.watchdog.detection_count() - detections_at_recovery <= 1

    def test_non_restartable_app_terminated_and_monitor_muted(self):
        mapping = make_safespeed_mapping(restartable=False, ecu_reset_allowed=False)
        ecu = Ecu(
            "central",
            mapping,
            watchdog_period=ms(10),
            fmf_policy=FmfPolicy(ecu_faulty_task_threshold=5),
        )
        ecu.run_until(ms(200))
        ecu.system.runnable("SAFE_CC_process").enabled = False
        ecu.run_until(seconds(1))
        assert "SafeSpeed" in ecu.terminated_applications
        assert ecu.application_state("SafeSpeed") is MonitorState.FAULTY
        # After termination its runnables are no longer monitored:
        # detections stop accumulating.
        count = ecu.watchdog.detection_count()
        ecu.run_until(seconds(2))
        assert ecu.watchdog.detection_count() == count


class TestSoftwareReset:
    def test_reset_restores_clean_operation(self):
        ecu = build_ecu()
        ecu.run_until(ms(300))
        ecu.software_reset()
        assert len(ecu.reset_times) == 1
        before = ecu.kernel.trace.count(TraceKind.TASK_TERMINATE, "SafeSpeedTask")
        ecu.run_until(ecu.now + seconds(1))
        after = ecu.kernel.trace.count(TraceKind.TASK_TERMINATE, "SafeSpeedTask")
        assert after - before >= 95  # ~100 activations in 1 s
        assert ecu.watchdog.detection_count() == 0

    def test_reset_clears_terminated_applications(self):
        ecu = build_ecu()
        ecu.terminated_applications.add("SafeSpeed")
        ecu.software_reset()
        assert ecu.terminated_applications == set()

    def test_fmf_logs_survive_reset(self):
        """Treatment logs model NVRAM: they survive a software reset."""
        ecu = build_ecu(fmf_policy=FmfPolicy(ecu_faulty_task_threshold=5,
                                             max_app_restarts=1))
        ecu.run_until(ms(200))
        ecu.system.runnable("SAFE_CC_process").enabled = False
        ecu.run_until(seconds(2))
        assert len(ecu.reset_times) >= 1
        assert len(ecu.fmf.treatment_log) >= 1


class TestRestartTask:
    def test_restart_task_clears_watchdog_state(self):
        ecu = build_ecu(fmf_policy=FmfPolicy(ecu_faulty_task_threshold=99,
                                             max_app_restarts=10**6))
        ecu.run_until(ms(200))
        ecu.system.runnable("SAFE_CC_process").enabled = False
        ecu.run_until(ms(600))
        assert ecu.watchdog.tsi.error_count(task="SafeSpeedTask") >= 0
        ecu.restart_task("SafeSpeedTask")
        assert ecu.watchdog.task_state("SafeSpeedTask") is MonitorState.OK
        assert ecu.task_restart_counts["SafeSpeedTask"] >= 1
