"""Tests for the application model, mapping and system builder."""

import pytest

from repro.kernel import Kernel, TraceKind, ms
from repro.platform import (
    Application,
    MappingError,
    RunnableSpec,
    SoftwareComponent,
    SystemBuilder,
    TaskMapping,
    TaskSpec,
)

from testutil import make_safespeed_mapping


def two_app_mapping():
    """Two applications; one shared task hosting runnables of both."""
    a = Application("A")
    swc_a = SoftwareComponent("SwcA")
    swc_a.add(RunnableSpec("a1", wcet=ms(1)))
    swc_a.add(RunnableSpec("a2", wcet=ms(1)))
    a.add_component(swc_a)
    b = Application("B")
    swc_b = SoftwareComponent("SwcB")
    swc_b.add(RunnableSpec("b1", wcet=ms(1)))
    b.add_component(swc_b)
    mapping = TaskMapping([a, b])
    mapping.add_task(TaskSpec("Shared", priority=5, period=ms(10)))
    mapping.map_sequence("Shared", ["a1", "b1", "a2"])
    return mapping, a, b


class TestModel:
    def test_duplicate_runnable_in_swc(self):
        swc = SoftwareComponent("S")
        swc.add(RunnableSpec("r", wcet=1))
        with pytest.raises(MappingError):
            swc.add(RunnableSpec("r", wcet=1))

    def test_duplicate_swc_in_app(self):
        app = Application("A")
        app.add_component(SoftwareComponent("S"))
        with pytest.raises(MappingError):
            app.add_component(SoftwareComponent("S"))

    def test_runnable_names(self):
        app = Application("A")
        swc = SoftwareComponent("S")
        swc.add(RunnableSpec("r1", wcet=1))
        swc.add(RunnableSpec("r2", wcet=1))
        app.add_component(swc)
        assert app.runnable_names() == ["r1", "r2"]

    def test_bad_task_period(self):
        with pytest.raises(MappingError):
            TaskSpec("T", priority=1, period=0)


class TestMapping:
    def test_duplicate_runnable_across_apps_rejected(self):
        a = Application("A")
        s1 = SoftwareComponent("S1")
        s1.add(RunnableSpec("r", wcet=1))
        a.add_component(s1)
        b = Application("B")
        s2 = SoftwareComponent("S2")
        s2.add(RunnableSpec("r", wcet=1))
        b.add_component(s2)
        with pytest.raises(MappingError):
            TaskMapping([a, b])

    def test_map_unknown_runnable(self, safespeed_mapping):
        with pytest.raises(MappingError):
            safespeed_mapping.map_runnable("ghost", "SafeSpeedTask")

    def test_map_to_unknown_task(self, safespeed_mapping):
        mapping = make_safespeed_mapping()
        with pytest.raises(MappingError):
            mapping.map_runnable("GetSensorValue", "ghost")

    def test_double_placement_rejected(self):
        mapping = make_safespeed_mapping()
        with pytest.raises(MappingError):
            mapping.map_runnable("GetSensorValue", "SafeSpeedTask")

    def test_task_of(self, safespeed_mapping):
        assert safespeed_mapping.task_of("SAFE_CC_process") == "SafeSpeedTask"

    def test_application_of(self, safespeed_mapping):
        assert safespeed_mapping.application_of("Speed_process").name == "SafeSpeed"

    def test_shared_task_applications(self):
        mapping, a, b = two_app_mapping()
        apps = mapping.applications_on_task("Shared")
        assert {x.name for x in apps} == {"A", "B"}

    def test_tasks_of_application(self):
        mapping, a, b = two_app_mapping()
        assert mapping.tasks_of_application(a) == ["Shared"]
        assert mapping.tasks_of_application(b) == ["Shared"]

    def test_validate_unplaced_runnable(self):
        app = Application("A")
        swc = SoftwareComponent("S")
        swc.add(RunnableSpec("r1", wcet=1))
        swc.add(RunnableSpec("r2", wcet=1))
        app.add_component(swc)
        mapping = TaskMapping([app])
        mapping.add_task(TaskSpec("T", priority=1, period=ms(10)))
        mapping.map_runnable("r1", "T")
        with pytest.raises(MappingError):
            mapping.validate()


class TestSystemBuilder:
    def test_build_creates_everything(self, safespeed_mapping):
        kernel = Kernel()
        builder = SystemBuilder(safespeed_mapping, watchdog_period=ms(10))
        system = builder.build(kernel)
        assert set(system.tasks) == {"SafeSpeedTask"}
        assert len(system.runnables) == 3
        assert "SafeSpeedTask" in system.charts
        assert "SafeSpeedTaskAlarm" in system.alarms.alarms

    def test_built_system_executes_sequence(self, safespeed_mapping):
        kernel = Kernel()
        system = SystemBuilder(safespeed_mapping, watchdog_period=ms(10)).build(kernel)
        kernel.run_until(ms(50))
        starts = [
            r.subject
            for r in kernel.trace.filter(kind=TraceKind.RUNNABLE_START, end=ms(15))
        ]
        assert starts == ["GetSensorValue", "SAFE_CC_process", "Speed_process"]

    def test_hypothesis_derived_from_mapping(self, safespeed_mapping):
        kernel = Kernel()
        system = SystemBuilder(
            safespeed_mapping, watchdog_period=ms(10), aliveness_margin=1.5
        ).build(kernel)
        hyp = system.hypothesis.runnables["GetSensorValue"]
        # period 10ms / watchdog 10ms = 1 cycle; margin 1.5 -> ceil = 2.
        assert hyp.aliveness_period == 2
        assert hyp.min_heartbeats == 1
        assert hyp.task == "SafeSpeedTask"

    def test_flow_table_covers_sequence(self, safespeed_mapping):
        kernel = Kernel()
        system = SystemBuilder(safespeed_mapping, watchdog_period=ms(10)).build(kernel)
        pairs = system.hypothesis.flow_pairs
        assert (None, "GetSensorValue") in pairs
        assert ("GetSensorValue", "SAFE_CC_process") in pairs
        assert ("SAFE_CC_process", "Speed_process") in pairs

    def test_non_critical_runnables_excluded_from_flow(self):
        app = Application("A")
        swc = SoftwareComponent("S")
        swc.add(RunnableSpec("critical1", wcet=1))
        swc.add(RunnableSpec("debug", wcet=1, safety_critical=False))
        swc.add(RunnableSpec("critical2", wcet=1))
        app.add_component(swc)
        mapping = TaskMapping([app])
        mapping.add_task(TaskSpec("T", priority=1, period=ms(10)))
        mapping.map_sequence("T", ["critical1", "debug", "critical2"])
        kernel = Kernel()
        system = SystemBuilder(mapping, watchdog_period=ms(10)).build(kernel)
        pairs = system.hypothesis.flow_pairs
        # The non-critical runnable is bridged over in the flow table.
        assert ("critical1", "critical2") in pairs
        assert all("debug" not in (p or "", s) for p, s in pairs)
        # ... but still heartbeat-monitored.
        assert "debug" in system.hypothesis.runnables

    def test_behaviour_wired_through(self):
        hits = []
        app = Application("A")
        swc = SoftwareComponent("S")
        swc.add(RunnableSpec("r", wcet=ms(1), behaviour=lambda rn, t: hits.append(1)))
        app.add_component(swc)
        mapping = TaskMapping([app])
        mapping.add_task(TaskSpec("T", priority=1, period=ms(10)))
        mapping.map_runnable("r", "T")
        kernel = Kernel()
        SystemBuilder(mapping, watchdog_period=ms(10)).build(kernel)
        kernel.run_until(ms(25))
        assert len(hits) == 2

    def test_bad_watchdog_period(self, safespeed_mapping):
        with pytest.raises(MappingError):
            SystemBuilder(safespeed_mapping, watchdog_period=0)

    def test_fast_task_arrival_bounds(self):
        """A task faster than the watchdog period gets max_heartbeats > 1."""
        mapping = make_safespeed_mapping(period=ms(5))
        kernel = Kernel()
        system = SystemBuilder(mapping, watchdog_period=ms(10)).build(kernel)
        hyp = system.hypothesis.runnables["GetSensorValue"]
        assert hyp.max_heartbeats >= 2
