"""Tests for the error injector scheduling."""

import pytest

from repro.core import ErrorType
from repro.faults import BlockedRunnableFault, ErrorInjector, FaultTarget
from repro.kernel import ms, seconds
from repro.platform import Ecu, FmfPolicy

from testutil import make_safespeed_mapping


@pytest.fixture
def rig():
    ecu = Ecu(
        "central",
        make_safespeed_mapping(),
        watchdog_period=ms(10),
        fmf_policy=FmfPolicy(ecu_faulty_task_threshold=99, max_app_restarts=10**9),
    )
    ecu.run_until(ms(100))
    return ecu, ErrorInjector(FaultTarget.from_ecu(ecu))


class TestImmediateInjection:
    def test_inject_now(self, rig):
        ecu, injector = rig
        record = injector.inject_now(BlockedRunnableFault("SAFE_CC_process"))
        assert record.fault.active
        assert record.inject_time == ecu.now
        assert injector.active_faults() == [record.fault]

    def test_restore_now(self, rig):
        ecu, injector = rig
        fault = BlockedRunnableFault("SAFE_CC_process")
        injector.inject_now(fault)
        injector.restore_now(fault)
        assert not fault.active
        assert injector.records[0].restore_time == ecu.now

    def test_restore_all(self, rig):
        ecu, injector = rig
        f1 = BlockedRunnableFault("SAFE_CC_process")
        f2 = BlockedRunnableFault("GetSensorValue")
        injector.inject_now(f1)
        injector.inject_now(f2)
        injector.restore_all()
        assert injector.active_faults() == []


class TestScheduledInjection:
    def test_inject_at_future_time(self, rig):
        ecu, injector = rig
        fault = BlockedRunnableFault("SAFE_CC_process")
        injector.inject_at(ms(300), fault)
        ecu.run_until(ms(250))
        assert not fault.active
        ecu.run_until(ms(350))
        assert fault.active

    def test_transient_fault_auto_restores(self, rig):
        ecu, injector = rig
        fault = BlockedRunnableFault("SAFE_CC_process")
        injector.inject_at(ms(300), fault, restore_at=ms(600))
        ecu.run_until(seconds(1))
        assert not fault.active
        # The fault was active long enough to be detected ...
        assert ecu.watchdog.detection_count(ErrorType.ALIVENESS) > 0
        # ... and the runnable is running again afterwards.
        executions = ecu.system.runnable("SAFE_CC_process").execution_count
        ecu.run_until(ecu.now + ms(200))
        assert ecu.system.runnable("SAFE_CC_process").execution_count > executions

    def test_restore_must_follow_inject(self, rig):
        _, injector = rig
        with pytest.raises(ValueError):
            injector.inject_at(ms(500), BlockedRunnableFault("GetSensorValue"),
                               restore_at=ms(400))

    def test_records_track_schedule(self, rig):
        _, injector = rig
        record = injector.inject_at(
            ms(300), BlockedRunnableFault("SAFE_CC_process"), restore_at=ms(400)
        )
        assert record.inject_time == ms(300)
        assert record.restore_time == ms(400)
