"""Tests for the vehicle dynamics model."""

import math

import pytest

from repro.apps import ActuatorCommands, Vehicle, VehicleParameters, VehicleState


class TestLongitudinal:
    def test_accelerates_under_throttle(self):
        vehicle = Vehicle()
        vehicle.commands.throttle = 1.0
        for _ in range(100):
            vehicle.step(0.01)
        assert vehicle.state.speed_mps > 2.0
        assert vehicle.state.distance_m > 0

    def test_stationary_without_input(self):
        vehicle = Vehicle()
        for _ in range(100):
            vehicle.step(0.01)
        assert vehicle.state.speed_mps == 0.0

    def test_brakes_decelerate(self):
        vehicle = Vehicle()
        vehicle.state.speed_mps = 20.0
        vehicle.commands.brake = 1.0
        for _ in range(100):
            vehicle.step(0.01)
        assert vehicle.state.speed_mps < 15.0

    def test_speed_never_negative(self):
        vehicle = Vehicle()
        vehicle.state.speed_mps = 1.0
        vehicle.commands.brake = 1.0
        for _ in range(500):
            vehicle.step(0.01)
        assert vehicle.state.speed_mps == 0.0

    def test_drag_limits_top_speed(self):
        vehicle = Vehicle()
        vehicle.commands.throttle = 1.0
        for _ in range(60_000):
            vehicle.step(0.01)
        top1 = vehicle.state.speed_mps
        for _ in range(1_000):
            vehicle.step(0.01)
        assert vehicle.state.speed_mps == pytest.approx(top1, rel=0.01)
        # Terminal speed where drive force equals resistive forces.
        p = vehicle.params
        assert p.drag_force(top1) + p.rolling_force() == pytest.approx(
            p.max_drive_force_n, rel=0.05
        )

    def test_speed_kph_conversion(self):
        state = VehicleState(speed_mps=10.0)
        assert state.speed_kph == pytest.approx(36.0)

    def test_invalid_dt(self):
        with pytest.raises(ValueError):
            Vehicle().step(0.0)


class TestLateral:
    def test_straight_line_keeps_heading(self):
        vehicle = Vehicle()
        vehicle.state.speed_mps = 20.0
        vehicle.commands.throttle = 0.3
        for _ in range(100):
            vehicle.step(0.01)
        assert vehicle.state.heading_rad == pytest.approx(0.0)
        assert vehicle.state.y_m == pytest.approx(0.0)

    def test_steering_turns_vehicle(self):
        vehicle = Vehicle()
        vehicle.state.speed_mps = 10.0
        vehicle.commands.throttle = 0.3
        vehicle.commands.steering_rad = 0.1
        for _ in range(200):
            vehicle.step(0.01)
        assert vehicle.state.heading_rad > 0.05
        assert vehicle.state.y_m > 0.1

    def test_yaw_rate_bicycle_model(self):
        vehicle = Vehicle()
        vehicle.state.speed_mps = 10.0
        vehicle.commands.steering_rad = 0.1
        vehicle.commands.throttle = 0.0
        vehicle.step(0.001)
        expected = vehicle.state.speed_mps / vehicle.params.wheelbase_m * math.tan(0.1)
        assert vehicle.state.yaw_rate_rps == pytest.approx(expected, rel=0.01)

    def test_steering_clamped(self):
        vehicle = Vehicle()
        vehicle.commands.steering_rad = 5.0
        vehicle.state.speed_mps = 5.0
        vehicle.step(0.01)
        assert vehicle.state.steering_rad == vehicle.params.max_steer_rad

    def test_no_yaw_at_standstill(self):
        vehicle = Vehicle()
        vehicle.commands.steering_rad = 0.3
        vehicle.step(0.01)
        assert vehicle.state.yaw_rate_rps == 0.0


class TestCommands:
    def test_clamping(self):
        commands = ActuatorCommands(throttle=2.0, brake=-1.0, steering_rad=9.0)
        commands.clamp(0.5)
        assert commands.throttle == 1.0
        assert commands.brake == 0.0
        assert commands.steering_rad == 0.5


class TestCoasting:
    def test_coasting_distance_positive_and_state_restored(self):
        vehicle = Vehicle()
        vehicle.state.speed_mps = 7.0
        distance = vehicle.coasting_distance(20.0)
        assert distance > 50.0
        assert vehicle.state.speed_mps == 7.0  # state restored

    def test_faster_coasts_further(self):
        vehicle = Vehicle()
        assert vehicle.coasting_distance(30.0) > vehicle.coasting_distance(15.0)
