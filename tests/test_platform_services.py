"""Tests for the service framework and registry."""

import pytest

from repro.platform import DependabilityService, ServiceRegistry, ServiceState
from repro.platform.services import ServiceError


class Probe(DependabilityService):
    def __init__(self, name="Probe"):
        super().__init__(name)
        self.started = 0
        self.stopped = 0
        self.provide_interface(f"{name.lower()}.ping", lambda: "pong")

    def on_start(self):
        self.started += 1

    def on_stop(self):
        self.stopped += 1


class TestService:
    def test_initial_state(self):
        svc = Probe()
        assert svc.state is ServiceState.REGISTERED

    def test_start_stop_lifecycle(self):
        svc = Probe()
        svc.start()
        assert svc.state is ServiceState.STARTED
        svc.stop()
        assert svc.state is ServiceState.STOPPED
        assert (svc.started, svc.stopped) == (1, 1)

    def test_start_idempotent(self):
        svc = Probe()
        svc.start()
        svc.start()
        assert svc.started == 1

    def test_stop_before_start_noop(self):
        svc = Probe()
        svc.stop()
        assert svc.stopped == 0

    def test_interface_resolution(self):
        svc = Probe()
        assert svc.interface("probe.ping")() == "pong"

    def test_unknown_interface(self):
        svc = Probe()
        with pytest.raises(ServiceError):
            svc.interface("ghost")

    def test_duplicate_interface_rejected(self):
        svc = Probe()
        with pytest.raises(ServiceError):
            svc.provide_interface("probe.ping", lambda: None)

    def test_interfaces_listing(self):
        svc = Probe()
        assert svc.interfaces() == ["probe.ping"]


class TestRegistry:
    def test_register_and_lookup(self):
        registry = ServiceRegistry()
        svc = registry.register(Probe())
        assert registry.service("Probe") is svc

    def test_duplicate_service_rejected(self):
        registry = ServiceRegistry()
        registry.register(Probe())
        with pytest.raises(ServiceError):
            registry.register(Probe())

    def test_resolve_interface(self):
        registry = ServiceRegistry()
        registry.register(Probe())
        assert registry.resolve("probe.ping")() == "pong"

    def test_resolve_unknown(self):
        registry = ServiceRegistry()
        with pytest.raises(ServiceError):
            registry.resolve("ghost")

    def test_provider_of(self):
        registry = ServiceRegistry()
        svc = registry.register(Probe())
        assert registry.provider_of("probe.ping") is svc
        assert registry.provider_of("ghost") is None

    def test_interface_collision_rejected(self):
        registry = ServiceRegistry()
        registry.register(Probe("Probe"))
        clone = DependabilityService("Clone")
        clone.provide_interface("probe.ping", lambda: None)
        with pytest.raises(ServiceError):
            registry.register(clone)

    def test_start_all_stop_all(self):
        registry = ServiceRegistry()
        a = registry.register(Probe("A"))
        b = registry.register(Probe("B"))
        registry.start_all()
        assert a.state is ServiceState.STARTED
        assert b.state is ServiceState.STARTED
        registry.stop_all()
        assert a.state is ServiceState.STOPPED

    def test_services_listing(self):
        registry = ServiceRegistry()
        registry.register(Probe("A"))
        registry.register(Probe("B"))
        assert [s.name for s in registry.services()] == ["A", "B"]
