"""Property-based soundness tests for wdlint.

The linter must never cry wolf: a lint-clean hypothesis driven by a
trace that conforms to it produces **zero** watchdog detections, and a
flow table mined from any healthy trace always lints clean (mining and
linting agree about what "observable" means).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FlowTable, SoftwareWatchdog
from repro.core.hypothesis import FaultHypothesis, RunnableHypothesis
from repro.kernel.tracing import TraceKind, TraceRecord
from repro.lint import lint_flow_table, lint_hypothesis


# --- strategy: a multi-task hypothesis plus a conforming drive plan ----

task_shapes = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=3),   # runnables on this task
        st.integers(min_value=1, max_value=3),   # window length K (cycles)
        st.integers(min_value=1, max_value=3),   # activations per window
    ),
    min_size=1,
    max_size=3,
)


def build_hypothesis(shapes):
    """One linear runnable sequence per task, bounds sized so that
    ``n`` in-order activations per ``K``-cycle window conform."""
    hyp = FaultHypothesis()
    plan = []  # (task, [runnable names], window K, activations n)
    for t, (count, window, activations) in enumerate(shapes):
        task = f"T{t}"
        names = [f"T{t}R{i}" for i in range(count)]
        for name in names:
            hyp.add_runnable(RunnableHypothesis(
                name,
                task=task,
                aliveness_period=window,
                min_heartbeats=activations,
                arrival_period=window,
                max_heartbeats=activations,
            ))
        hyp.allow_sequence(names)
        plan.append((task, names, window, activations))
    return hyp, plan


@settings(max_examples=30, deadline=None)
@given(task_shapes)
def test_lint_clean_plus_conforming_trace_is_silent(shapes):
    hyp, plan = build_hypothesis(shapes)

    report = lint_hypothesis(hyp)
    assert report.clean, report.render_text()

    # A clean hypothesis constructs without LintWarning noise under the
    # default lint="warn" knob.
    watchdog = SoftwareWatchdog(hyp)

    # Drive it: at the start of each task's window, run the declared
    # sequence the declared number of times; check every cycle.  A
    # heartbeat delivered when ``cycle % K == 0`` (before check_cycle)
    # lands inside the window whose deadline the wheel armed at K.
    cycles = 3 * max(window for _, _, window, _ in plan) * 4
    for cycle in range(cycles):
        time = cycle * 10
        for task, names, window, activations in plan:
            if cycle % window == 0:
                for _ in range(activations):
                    watchdog.notify_task_start(task)
                    for name in names:
                        watchdog.heartbeat_indication(name, time, task)
        watchdog.check_cycle(time)

    assert watchdog.detection_count() == 0


# --- strategy: raw healthy traces for the mining path ------------------

trace_shapes = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=4),   # runnables on this task
        st.integers(min_value=1, max_value=4),   # task activations
    ),
    min_size=1,
    max_size=3,
)


@settings(max_examples=30, deadline=None)
@given(trace_shapes, st.randoms(use_true_random=False))
def test_mined_flow_table_always_lints_clean(shapes, rnd):
    """Whatever healthy execution we mine — including interleaved tasks
    and partial final activations — the resulting table lints clean."""
    task_of = {}
    episodes = []  # each: (task, runnable names executed in order)
    for t, (count, activations) in enumerate(shapes):
        task = f"T{t}"
        names = [f"T{t}R{i}" for i in range(count)]
        for name in names:
            task_of[name] = task
        for a in range(activations):
            # Sometimes a final activation is cut short mid-sequence.
            cut = rnd.randint(1, count)
            episodes.append((task, names[:cut] if a == activations - 1
                             else names))
    rnd.shuffle(episodes)

    records = []
    time = 0
    for task, names in episodes:
        records.append(TraceRecord(time, TraceKind.TASK_ACTIVATE, task))
        for name in names:
            time += 1
            records.append(TraceRecord(
                time, TraceKind.HEARTBEAT, name, {"task": task}))

    table = FlowTable.mine_from_trace(records, task_attribution=task_of)
    report = lint_flow_table(table, task_of=task_of, source="mined")
    assert report.clean, report.render_text()
