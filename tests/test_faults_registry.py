"""Tests for the picklable run-spec registry."""

import pickle

import pytest

from repro.faults import (
    BlockedRunnableFault,
    FaultSpec,
    RunSpec,
    SystemSpec,
    register_fault,
    register_system,
    registered_faults,
    registered_systems,
)
from repro.faults.registry import execute_chunk, execute_run
from repro.kernel import ms


class TestRegistries:
    def test_builtin_faults_registered(self):
        names = registered_faults()
        for expected in ("blocked", "time_scalar", "loop_count", "skip",
                         "invalid_branch", "hb_corrupt", "hb_omit",
                         "isr_storm", "runaway"):
            assert expected in names

    def test_builtin_systems_registered(self):
        names = registered_systems()
        assert "coverage" in names
        assert "latency" in names

    def test_register_decorator(self):
        @register_fault("test_only_blocked")
        def build(system, runnable):
            return BlockedRunnableFault(runnable)

        assert "test_only_blocked" in registered_faults()
        fault = FaultSpec.of("test_only_blocked", runnable="X").build(None)
        assert isinstance(fault, BlockedRunnableFault)

    def test_unknown_names_raise_with_listing(self):
        with pytest.raises(KeyError, match="nope.*registered"):
            SystemSpec.of("nope").build()
        with pytest.raises(KeyError, match="nope.*registered"):
            FaultSpec.of("nope").build(None)


class TestSpecs:
    def test_fault_spec_is_a_fault_factory(self):
        spec = FaultSpec.of("blocked", runnable="SAFE_CC_process")
        fault = spec(None)
        assert isinstance(fault, BlockedRunnableFault)
        assert fault.runnable == "SAFE_CC_process"

    def test_params_order_insensitive_and_hashable(self):
        a = FaultSpec.of("time_scalar", task="T", scalar=4.0)
        b = FaultSpec.of("time_scalar", scalar=4.0, task="T")
        assert a == b
        assert hash(a) == hash(b)

    def test_specs_pickle_round_trip(self):
        run = RunSpec(
            system=SystemSpec.of("latency", eager=True, check_strategy="scan"),
            fault=FaultSpec.of("loop_count", runnable="R", repeat=4),
            warmup=ms(300),
            observation=ms(500),
            transient_duration=ms(100),
            seed=7,
        )
        assert pickle.loads(pickle.dumps(run)) == run

    def test_system_spec_builds_campaign_system(self):
        system = SystemSpec.of("coverage").build()
        assert [d.name for d in system.detectors][0] == "SoftwareWatchdog"


class TestExecuteRun:
    def test_execute_run_matches_chunk(self):
        spec = RunSpec(
            system=SystemSpec.of("coverage"),
            fault=FaultSpec.of("blocked", runnable="SAFE_CC_process"),
            warmup=ms(300),
            observation=ms(500),
        )
        single = execute_run(spec)
        chunked = execute_chunk([spec, spec])
        assert chunked == [single, single]
        assert single.detected_by("SoftwareWatchdog")
