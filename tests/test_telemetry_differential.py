"""Differential equivalence: telemetry must never perturb behavior.

Observability is read-only.  A run with a live registry and event sink
must produce bit-for-bit the same kernel trace, detections and derived
states as the default (null-registry) run — the instruments only record
what happened, they never change what happens.  Same contract as the
expiry-wheel and parallel-campaign equivalence suites.
"""

import pytest

from repro.core import ErrorType
from repro.faults import BlockedRunnableFault, Campaign, ErrorInjector, FaultTarget
from repro.experiments.coverage import standard_fault_specs
from repro.kernel import ms, seconds
from repro.platform import Ecu
from repro.telemetry import InMemorySink, MetricsRegistry
from repro.analysis import trace_to_jsonl

from testutil import make_safespeed_mapping


def run_faulty_ecu(telemetry=None, event_sink=None):
    """One deterministic faulty scenario: a blocked runnable for 300 ms."""
    ecu = Ecu(
        "central",
        make_safespeed_mapping(),
        watchdog_period=ms(10),
        telemetry=telemetry,
        event_sink=event_sink,
    )
    injector = ErrorInjector(FaultTarget.from_ecu(ecu))
    injector.inject_at(ms(300), BlockedRunnableFault("SAFE_CC_process"),
                       restore_at=ms(600))
    ecu.run_until(seconds(1))
    return ecu


@pytest.fixture(scope="module")
def baseline():
    return run_faulty_ecu()


@pytest.fixture(scope="module")
def observed():
    return run_faulty_ecu(telemetry=MetricsRegistry(),
                          event_sink=InMemorySink())


class TestEcuEquivalence:
    def test_kernel_traces_identical(self, baseline, observed):
        base_records = list(baseline.kernel.trace)
        live_records = list(observed.kernel.trace)
        assert len(base_records) == len(live_records)
        assert base_records == live_records
        # The serialized form matches too (stable record-by-record).
        assert trace_to_jsonl(baseline.kernel.trace) == trace_to_jsonl(
            observed.kernel.trace
        )

    def test_detections_identical(self, baseline, observed):
        assert observed.watchdog.detected == baseline.watchdog.detected
        assert (observed.watchdog.detected_per_runnable
                == baseline.watchdog.detected_per_runnable)
        assert (observed.watchdog.check_cycle_count
                == baseline.watchdog.check_cycle_count)

    def test_derived_states_identical(self, baseline, observed):
        assert observed.watchdog.ecu_state() is baseline.watchdog.ecu_state()
        base_reports = baseline.watchdog.supervision_reports(time=seconds(1))
        live_reports = observed.watchdog.supervision_reports(time=seconds(1))
        assert live_reports == base_reports

    def test_instruments_agree_with_ground_truth(self, observed):
        observed.watchdog.sync_telemetry()
        registry = observed.watchdog.telemetry
        aliveness = observed.watchdog.detection_count(ErrorType.ALIVENESS)
        # The monotonic counter covers the whole run including any
        # detections wiped by an ECU-reset treatment mid-run.
        assert registry.value("wd_detections_total",
                              error_type="aliveness") >= aliveness
        assert registry.value("wd_detections_total",
                              error_type="aliveness") > 0
        assert aliveness > 0  # the scenario actually exercised detection


class TestCampaignEquivalence:
    def test_telemetered_campaign_runs_identical(self):
        specs = standard_fault_specs(1)[:3]
        plain = Campaign("coverage", warmup=ms(300), observation=ms(500))
        observed = Campaign("coverage", warmup=ms(300), observation=ms(500),
                            telemetry=MetricsRegistry())
        assert observed.execute(specs).runs == plain.execute(specs).runs

    def test_telemetered_parallel_equals_plain_serial(self):
        specs = standard_fault_specs(1)[:3]
        plain = Campaign("coverage", warmup=ms(300), observation=ms(500))
        observed = Campaign("coverage", warmup=ms(300), observation=ms(500),
                            telemetry=MetricsRegistry())
        assert (observed.execute(specs, workers=2).runs
                == plain.execute(specs).runs)
