"""Tests for the fault hypothesis configuration."""

import pytest

from repro.core import (
    ErrorType,
    FaultHypothesis,
    HypothesisError,
    RunnableHypothesis,
    ThresholdPolicy,
)


class TestRunnableHypothesis:
    def test_valid_defaults(self):
        h = RunnableHypothesis("R")
        assert h.aliveness_period == 1
        assert h.active

    def test_bad_aliveness_period(self):
        with pytest.raises(HypothesisError):
            RunnableHypothesis("R", aliveness_period=0)

    def test_bad_arrival_period(self):
        with pytest.raises(HypothesisError):
            RunnableHypothesis("R", arrival_period=0)

    def test_negative_min_heartbeats(self):
        with pytest.raises(HypothesisError):
            RunnableHypothesis("R", min_heartbeats=-1)

    def test_negative_max_heartbeats(self):
        with pytest.raises(HypothesisError):
            RunnableHypothesis("R", max_heartbeats=-1)


class TestThresholdPolicy:
    def test_default(self):
        policy = ThresholdPolicy(default=3)
        assert policy.threshold_for(ErrorType.ALIVENESS) == 3

    def test_per_type_override(self):
        policy = ThresholdPolicy(default=5, per_type={ErrorType.PROGRAM_FLOW: 3})
        assert policy.threshold_for(ErrorType.PROGRAM_FLOW) == 3
        assert policy.threshold_for(ErrorType.ALIVENESS) == 5

    def test_invalid_threshold_rejected_at_validation(self):
        policy = ThresholdPolicy(default=0)
        with pytest.raises(HypothesisError):
            policy.validate()
        with pytest.raises(HypothesisError):
            ThresholdPolicy(per_type={ErrorType.ALIVENESS: 0}).validate()
        # threshold_for is a pure hot-path lookup: no validation there.
        assert policy.threshold_for(ErrorType.ALIVENESS) == 0

    def test_hypothesis_validate_checks_thresholds(self):
        hyp = FaultHypothesis(thresholds=ThresholdPolicy(default=0))
        with pytest.raises(HypothesisError):
            hyp.validate()


class TestFaultHypothesis:
    def test_add_runnable(self):
        hyp = FaultHypothesis()
        hyp.add_runnable(RunnableHypothesis("R", task="T"))
        assert "R" in hyp.runnables

    def test_duplicate_runnable_rejected(self):
        hyp = FaultHypothesis()
        hyp.add_runnable(RunnableHypothesis("R"))
        with pytest.raises(HypothesisError):
            hyp.add_runnable(RunnableHypothesis("R"))

    def test_allow_sequence_adds_entry_point(self):
        hyp = FaultHypothesis()
        for name in ("A", "B", "C"):
            hyp.add_runnable(RunnableHypothesis(name))
        hyp.allow_sequence(["A", "B", "C"])
        assert (None, "A") in hyp.flow_pairs
        assert ("A", "B") in hyp.flow_pairs
        assert ("B", "C") in hyp.flow_pairs

    def test_allow_sequence_empty_noop(self):
        hyp = FaultHypothesis()
        hyp.allow_sequence([])
        assert hyp.flow_pairs == []

    def test_tasks_deduplicated(self):
        hyp = FaultHypothesis()
        hyp.add_runnable(RunnableHypothesis("A", task="T1"))
        hyp.add_runnable(RunnableHypothesis("B", task="T1"))
        hyp.add_runnable(RunnableHypothesis("C", task="T2"))
        assert hyp.tasks() == ["T1", "T2"]

    def test_validate_rejects_unknown_flow_successor(self):
        hyp = FaultHypothesis()
        hyp.add_runnable(RunnableHypothesis("A"))
        hyp.allow_flow("A", "ghost")
        with pytest.raises(HypothesisError):
            hyp.validate()

    def test_validate_rejects_unknown_flow_predecessor(self):
        hyp = FaultHypothesis()
        hyp.add_runnable(RunnableHypothesis("A"))
        hyp.allow_flow("ghost", "A")
        with pytest.raises(HypothesisError):
            hyp.validate()

    def test_validate_accepts_entry_points(self):
        hyp = FaultHypothesis()
        hyp.add_runnable(RunnableHypothesis("A"))
        hyp.allow_flow(None, "A")
        hyp.validate()
