"""Tests for the FlexRay TDMA simulation."""

import pytest

from repro.kernel import Kernel, ms
from repro.network import (
    FlexRayBus,
    FlexRayConfigError,
    FlexRaySchedule,
    FrameSpec,
    SignalSpec,
)


def schedule(**kwargs):
    defaults = dict(
        cycle_length=ms(5),
        static_slots=3,
        static_slot_length=ms(1),
        dynamic_minislots=10,
        minislot_length=100,
    )
    defaults.update(kwargs)
    return FlexRaySchedule(**defaults)


def frame(name="F", frame_id=0x10):
    spec = FrameSpec(name, frame_id)
    spec.add_signal(SignalSpec("v", 0, 16, scale=0.001))
    return spec


class TestSchedule:
    def test_invalid_parameters(self):
        with pytest.raises(FlexRayConfigError):
            FlexRaySchedule(cycle_length=0, static_slots=1, static_slot_length=1)

    def test_segments_must_fit_cycle(self):
        with pytest.raises(FlexRayConfigError):
            FlexRaySchedule(
                cycle_length=ms(1), static_slots=5, static_slot_length=ms(1)
            )

    def test_slot_assignment(self):
        s = schedule()
        s.assign_slot(1, "nodeA")
        with pytest.raises(FlexRayConfigError):
            s.assign_slot(1, "nodeB")
        with pytest.raises(FlexRayConfigError):
            s.assign_slot(99, "nodeC")

    def test_slot_offsets(self):
        s = schedule()
        assert s.slot_start_offset(1) == 0
        assert s.slot_start_offset(2) == ms(1)
        assert s.dynamic_segment_offset() == 3 * ms(1)


class TestStaticSegment:
    def build(self, kernel):
        s = schedule()
        s.assign_slot(1, "a")
        s.assign_slot(2, "b")
        bus = FlexRayBus("fr", kernel, s)
        a = bus.attach("a")
        b = bus.attach("b")
        rx = bus.attach("rx")
        return bus, a, b, rx

    def test_staged_frame_sent_in_slot(self, kernel):
        bus, a, b, rx = self.build(kernel)
        got = []
        rx.on_receive(lambda m: got.append((kernel.clock.now, m.spec.name)))
        bus.start()
        a.stage(1, frame("A"), {"v": 1.0})
        kernel.run_until(ms(6))
        # Slot 1 of the first cycle ends at 1 ms.
        assert got == [(ms(1), "A")]

    def test_empty_slot_sends_nothing(self, kernel):
        bus, a, b, rx = self.build(kernel)
        got = []
        rx.on_receive(got.append)
        bus.start()
        kernel.run_until(ms(20))
        assert got == []
        assert bus.cycle_count >= 4

    def test_stage_unowned_slot_rejected(self, kernel):
        bus, a, b, rx = self.build(kernel)
        with pytest.raises(FlexRayConfigError):
            a.stage(2, frame(), {"v": 0})

    def test_latest_value_semantics(self, kernel):
        bus, a, b, rx = self.build(kernel)
        got = []
        rx.on_receive(lambda m: got.append(round(m.value("v"), 3)))
        bus.start()
        a.stage(1, frame("A"), {"v": 0.1})
        a.stage(1, frame("A"), {"v": 0.2})  # overwrites before the slot
        kernel.run_until(ms(6))
        assert got == [pytest.approx(0.2)]
        assert a.missed_updates == 1

    def test_periodic_staging_every_cycle(self, kernel):
        bus, a, b, rx = self.build(kernel)
        got = []
        rx.on_receive(lambda m: got.append(kernel.clock.now))

        def stage_loop():
            a.stage(1, frame("A"), {"v": 1.0})
            kernel.queue.schedule(kernel.clock.now + ms(5), stage_loop)

        kernel.queue.schedule(0, stage_loop)
        bus.start()
        kernel.run_until(ms(26))
        assert got == [ms(1), ms(6), ms(11), ms(16), ms(21), ms(26)]

    def test_sender_does_not_hear_itself(self, kernel):
        bus, a, b, rx = self.build(kernel)
        got = []
        a.on_receive(got.append)
        bus.start()
        a.stage(1, frame(), {"v": 1.0})
        kernel.run_until(ms(6))
        assert got == []

    def test_duplicate_controller_rejected(self, kernel):
        bus, a, b, rx = self.build(kernel)
        with pytest.raises(FlexRayConfigError):
            bus.attach("a")


class TestDynamicSegment:
    def build(self, kernel, minislots=10):
        s = schedule(dynamic_minislots=minislots)
        bus = FlexRayBus("fr", kernel, s)
        a = bus.attach("a")
        rx = bus.attach("rx")
        return bus, a, rx

    def test_dynamic_frame_delivered_in_segment(self, kernel):
        bus, a, rx = self.build(kernel)
        got = []
        rx.on_receive(lambda m: got.append(kernel.clock.now))
        bus.start()
        a.send_dynamic(5, frame("D"), {"v": 1.0})
        kernel.run_until(ms(6))
        assert got == [ms(3)]  # dynamic segment starts after 3 static slots

    def test_priority_by_slot_id(self, kernel):
        bus, a, rx = self.build(kernel)
        order = []
        rx.on_receive(lambda m: order.append(m.spec.name))
        bus.start()
        a.send_dynamic(9, frame("low", 2), {"v": 0})
        a.send_dynamic(3, frame("high", 1), {"v": 0})
        kernel.run_until(ms(6))
        assert order == ["high", "low"]

    def test_minislot_exhaustion_defers_frames(self, kernel):
        bus, a, rx = self.build(kernel, minislots=1)
        got = []
        rx.on_receive(lambda m: got.append((bus.cycle_count, m.spec.name)))
        bus.start()
        a.send_dynamic(1, frame("one", 1), {"v": 0})
        a.send_dynamic(2, frame("two", 2), {"v": 0})
        kernel.run_until(ms(11))
        # One minislot per cycle: the second frame rides the next cycle.
        assert got == [(1, "one"), (2, "two")]
