"""Tests for the scenario runner."""

import pytest

from repro.kernel import Kernel, ms
from repro.validator import Scenario


class BareRig:
    """Minimal rig: just a kernel."""

    def __init__(self):
        self.kernel = Kernel()


class TestScenario:
    def test_steps_execute_at_times(self):
        rig = BareRig()
        hits = []
        scenario = Scenario("s", duration=ms(100))
        scenario.at(ms(10), lambda: hits.append(("a", rig.kernel.clock.now)))
        scenario.at(ms(50), lambda: hits.append(("b", rig.kernel.clock.now)))
        scenario.run(rig)
        assert hits == [("a", ms(10)), ("b", ms(50))]

    def test_steps_sorted_regardless_of_declaration_order(self):
        rig = BareRig()
        hits = []
        scenario = Scenario("s", duration=ms(100))
        scenario.at(ms(50), lambda: hits.append("late"))
        scenario.at(ms(10), lambda: hits.append("early"))
        scenario.run(rig)
        assert hits == ["early", "late"]

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            Scenario("s", duration=0)

    def test_step_outside_duration_rejected(self):
        scenario = Scenario("s", duration=ms(10))
        with pytest.raises(ValueError):
            scenario.at(ms(20), lambda: None)

    def test_chaining(self):
        scenario = Scenario("s", duration=ms(10))
        assert scenario.at(ms(1), lambda: None) is scenario

    def test_observer_fills_observations(self):
        rig = BareRig()
        scenario = Scenario("s", duration=ms(10))
        scenario.observe(lambda result: result.observations.update(answer=42))
        result = scenario.run(rig)
        assert result.observations["answer"] == 42
        assert result.name == "s"
        assert result.duration == ms(10)

    def test_relative_to_current_time(self):
        """Steps are relative to the rig's clock at run start."""
        rig = BareRig()
        rig.kernel.run_until(ms(500))
        hits = []
        scenario = Scenario("s", duration=ms(100))
        scenario.at(ms(10), lambda: hits.append(rig.kernel.clock.now))
        scenario.run(rig)
        assert hits == [ms(510)]

    def test_runs_against_hil_validator(self):
        from repro.validator import HilValidator

        rig = HilValidator()
        hits = []
        scenario = Scenario("hil", duration=ms(200))
        scenario.at(ms(100), lambda: hits.append(rig.kernel.clock.now))
        result = scenario.run(rig)
        assert hits == [ms(100)]
        assert result.capture is rig.capture
