"""End-to-end smoke: a real ``python -m repro serve`` daemon process.

Marked ``serve_smoke`` (tier-2, like ``bench_smoke``): one daemon
subprocess, two SDK clients, one induced crash.  The crashed client's
silence must surface as a DETECTION push on the survivor's wire, and
SIGTERM must shut the daemon down cleanly (exit 0, shutdown summary,
no pending-task warnings).

Run: ``make serve-smoke`` or ``pytest tests/test_service_e2e.py -m serve_smoke``.
"""

import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.request

import pytest

from repro.core import FaultHypothesis, RunnableHypothesis
from repro.service import WatchdogClient

pytestmark = pytest.mark.serve_smoke

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def make_hypothesis(prefix):
    # Periods are in *check cycles*: with --tick-ms 5 an aliveness
    # window of 10 cycles is ~50 ms of daemon wall-clock.
    hyp = FaultHypothesis()
    hyp.add_runnable(RunnableHypothesis(
        f"{prefix}.step", task=f"{prefix}.T", aliveness_period=10,
        min_heartbeats=1, arrival_period=10, max_heartbeats=1000))
    return hyp


@pytest.fixture
def daemon(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_REPO_ROOT, "src")
    telemetry = tmp_path / "serve.jsonl"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--http-port", "0", "--tick-ms", "5",
         "--telemetry", str(telemetry)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env)
    banner = proc.stdout.readline()
    match = re.search(r"tcp=([\d.]+):(\d+) http=([\d.]+):(\d+)", banner)
    assert match, f"unparseable banner: {banner!r}"
    info = {
        "proc": proc,
        "address": (match.group(1), int(match.group(2))),
        "http": f"http://{match.group(3)}:{match.group(4)}",
        "telemetry": telemetry,
    }
    yield info
    if proc.poll() is None:
        proc.kill()
        proc.communicate(timeout=10)


def test_two_clients_one_crash_one_detection(daemon):
    address = daemon["address"]

    survivor = WatchdogClient(address, client_name="survivor", watch=True)
    survivor.connect()
    survivor.register("survivor", make_hypothesis("survivor"))

    victim = WatchdogClient(address, client_name="victim", reconnect=False)
    victim.connect()
    victim.register("victim", make_hypothesis("victim"))

    # Both processes live for a few beats.
    for _ in range(5):
        survivor.heartbeat("survivor.step", task="survivor.T")
        victim.heartbeat("victim.step", task="victim.T")
        survivor.flush()
        victim.flush()
        time.sleep(0.01)

    # Induced crash: the victim vanishes without a BYE.
    victim._drop_connection()

    # The survivor keeps heartbeating and polls for pushes.  The
    # victim's aliveness window (10 check cycles ~= 50 ms of daemon
    # wall-clock) lapses, so a DETECTION about victim.step must arrive.
    deadline = time.monotonic() + 15.0
    detected = None
    while time.monotonic() < deadline and detected is None:
        survivor.heartbeat("survivor.step", task="survivor.T")
        survivor.flush()
        survivor.poll()
        detected = next(
            (d for d in survivor.detections
             if d.get("runnable") == "victim.step"), None)
        time.sleep(0.02)
    assert detected is not None, "victim crash never surfaced as DETECTION"
    assert detected["error_type"] == "aliveness"
    assert detected["name"] == "victim"

    # The survivor itself must still be healthy on the daemon's books.
    with urllib.request.urlopen(daemon["http"] + "/healthz", timeout=5) as rsp:
        health = json.loads(rsp.read())
    assert health["status"] == "ok"
    assert health["registrations"] == 2
    assert health["detections"] >= 1

    metrics = urllib.request.urlopen(
        daemon["http"] + "/metrics", timeout=5).read().decode()
    assert "service_indications_total" in metrics
    assert 'service_disconnects_total{graceful="false"} 1' in metrics

    survivor.close()

    # SIGTERM: clean shutdown, summary line, no warnings.
    proc = daemon["proc"]
    proc.send_signal(signal.SIGTERM)
    out, _ = proc.communicate(timeout=15)
    assert proc.returncode == 0
    assert "shutdown" in out
    assert "Task was destroyed" not in out
    assert "pending" not in out
    summary = out.splitlines()[-1]
    assert "detections=" in summary

    # The telemetry stream survived the daemon's death and parses —
    # including tolerating a crash-truncated trailing line.
    from repro.telemetry.events import read_jsonl
    with open(daemon["telemetry"], encoding="utf-8") as handle:
        events = read_jsonl(handle)
    assert any(e.kind == "detection" for e in events)
