"""Tests for frames, signals and the catalogue."""

import pytest

from repro.network import FrameCatalog, FrameError, FrameSpec, Message, SignalSpec


class TestSignalSpec:
    def test_encode_decode_roundtrip(self):
        sig = SignalSpec("speed", 0, 16, scale=0.01)
        raw = sig.encode(123.45)
        assert sig.decode(raw) == pytest.approx(123.45, abs=0.01)

    def test_offset(self):
        sig = SignalSpec("temp", 0, 8, scale=1.0, offset=-40.0)
        assert sig.decode(sig.encode(25.0)) == pytest.approx(25.0)

    def test_clamping_high(self):
        sig = SignalSpec("v", 0, 8, scale=1.0)
        assert sig.encode(10_000) == 255

    def test_clamping_low(self):
        sig = SignalSpec("v", 0, 8, scale=1.0)
        assert sig.encode(-5) == 0

    def test_explicit_min_max(self):
        sig = SignalSpec("v", 0, 16, scale=0.1, minimum=0.0, maximum=100.0)
        assert sig.decode(sig.encode(500.0)) == pytest.approx(100.0)

    def test_invalid_bit_length(self):
        with pytest.raises(FrameError):
            SignalSpec("v", 0, 0)
        with pytest.raises(FrameError):
            SignalSpec("v", 0, 65)

    def test_zero_scale_rejected(self):
        with pytest.raises(FrameError):
            SignalSpec("v", 0, 8, scale=0.0)


class TestFrameSpec:
    def test_pack_unpack_roundtrip(self):
        frame = FrameSpec("F", 0x100)
        frame.add_signal(SignalSpec("a", 0, 16, scale=0.01))
        frame.add_signal(SignalSpec("b", 16, 8, scale=1.0, offset=-40))
        payload = frame.pack({"a": 55.5, "b": 21.0})
        values = frame.unpack(payload)
        assert values["a"] == pytest.approx(55.5, abs=0.01)
        assert values["b"] == pytest.approx(21.0)

    def test_missing_signal_defaults_to_offset(self):
        frame = FrameSpec("F", 1)
        frame.add_signal(SignalSpec("x", 0, 8, scale=1.0, offset=-40))
        values = frame.unpack(frame.pack({}))
        assert values["x"] == pytest.approx(-40.0)

    def test_overlap_rejected(self):
        frame = FrameSpec("F", 1)
        frame.add_signal(SignalSpec("a", 0, 16))
        with pytest.raises(FrameError):
            frame.add_signal(SignalSpec("b", 8, 16))

    def test_overflow_rejected(self):
        frame = FrameSpec("F", 1, length_bytes=2)
        with pytest.raises(FrameError):
            frame.add_signal(SignalSpec("a", 8, 16))

    def test_duplicate_signal_rejected(self):
        frame = FrameSpec("F", 1)
        frame.add_signal(SignalSpec("a", 0, 8))
        with pytest.raises(FrameError):
            frame.add_signal(SignalSpec("a", 8, 8))

    def test_wrong_payload_length(self):
        frame = FrameSpec("F", 1)
        with pytest.raises(FrameError):
            frame.unpack(b"\x00")

    def test_signal_lookup(self):
        frame = FrameSpec("F", 1)
        frame.add_signal(SignalSpec("a", 0, 8))
        assert frame.signal("a").bit_length == 8
        with pytest.raises(FrameError):
            frame.signal("zzz")

    def test_adjacent_signals_do_not_interfere(self):
        frame = FrameSpec("F", 1)
        frame.add_signal(SignalSpec("a", 0, 4))
        frame.add_signal(SignalSpec("b", 4, 4))
        values = frame.unpack(frame.pack({"a": 15, "b": 1}))
        assert values["a"] == 15 and values["b"] == 1


class TestMessage:
    def test_values_and_value(self):
        frame = FrameSpec("F", 1)
        frame.add_signal(SignalSpec("a", 0, 8))
        msg = Message(spec=frame, payload=frame.pack({"a": 7}), timestamp=5)
        assert msg.value("a") == 7
        assert msg.frame_id == 1


class TestCatalog:
    def test_define_and_lookup(self):
        catalog = FrameCatalog()
        catalog.define("F", 0x10, [("a", 0, 8, 1.0, 0.0)])
        assert catalog.by_name("F").frame_id == 0x10
        assert catalog.by_id(0x10).name == "F"

    def test_duplicate_name_rejected(self):
        catalog = FrameCatalog()
        catalog.define("F", 1, [])
        with pytest.raises(FrameError):
            catalog.define("F", 2, [])

    def test_duplicate_id_rejected(self):
        catalog = FrameCatalog()
        catalog.define("F", 1, [])
        with pytest.raises(FrameError):
            catalog.define("G", 1, [])

    def test_unknown_lookups(self):
        catalog = FrameCatalog()
        with pytest.raises(FrameError):
            catalog.by_name("F")
        with pytest.raises(FrameError):
            catalog.by_id(9)

    def test_frames_listing(self):
        catalog = FrameCatalog()
        catalog.define("A", 1, [])
        catalog.define("B", 2, [])
        assert [f.name for f in catalog.frames()] == ["A", "B"]
