"""Tests for the fault-tolerant voted sensor."""

import pytest

from repro.apps import VotedSensor


class MutableChannel:
    def __init__(self, value=10.0):
        self.value = value
        self.calls = 0

    def __call__(self):
        self.calls += 1
        return self.value


def make_voter(n=3, tolerance=0.5, lockout_after=3):
    channels = [MutableChannel(10.0) for _ in range(n)]
    return VotedSensor([c for c in channels],
                       miscompare_tolerance=tolerance,
                       lockout_after=lockout_after), channels


class TestConfiguration:
    def test_needs_two_channels(self):
        with pytest.raises(ValueError):
            VotedSensor([lambda: 0.0], miscompare_tolerance=1.0)

    def test_positive_tolerance(self):
        with pytest.raises(ValueError):
            VotedSensor([lambda: 0.0] * 3, miscompare_tolerance=0.0)


class TestVoting:
    def test_agreement_passes_value(self):
        voter, channels = make_voter()
        result = voter.read()
        assert result.value == 10.0
        assert result.healthy_channels == 3
        assert not result.degraded
        assert result.miscomparing == []

    def test_median_masks_single_outlier(self):
        voter, channels = make_voter()
        channels[1].value = 99.0  # stuck-at-high fault
        result = voter.read()
        assert result.value == 10.0
        assert result.miscomparing == [1]

    def test_persistent_outlier_locked_out(self):
        voter, channels = make_voter(lockout_after=3)
        channels[2].value = -50.0
        for _ in range(3):
            voter.read()
        assert voter.locked_out_channels() == [2]
        result = voter.read()
        assert result.degraded
        assert result.healthy_channels == 2
        assert channels[2].calls == 3  # no longer sampled

    def test_transient_glitch_not_locked_out(self):
        voter, channels = make_voter(lockout_after=3)
        channels[0].value = 99.0
        voter.read()
        voter.read()
        channels[0].value = 10.0  # recovered before the lock-out count
        voter.read()
        channels[0].value = 99.0
        voter.read()
        assert voter.locked_out_channels() == []

    def test_two_channel_vote_is_average(self):
        voter, channels = make_voter(lockout_after=1)
        channels[0].value = 100.0  # immediate lockout
        voter.read()
        channels[1].value = 12.0
        channels[2].value = 14.0
        result = voter.read()
        assert result.value == pytest.approx(13.0)

    def test_total_loss_holds_last_value(self):
        voter, channels = make_voter(n=2, lockout_after=1)
        voter.read()
        channels[0].value = 100.0
        channels[1].value = -100.0
        voter.read()  # both miscompare against their average -> lock out
        result = voter.read()
        assert result.healthy_channels == 0
        assert result.degraded

    def test_reinstate(self):
        voter, channels = make_voter(lockout_after=1)
        channels[0].value = 99.0
        voter.read()
        assert voter.locked_out_channels() == [0]
        channels[0].value = 10.0
        voter.reinstate(0)
        result = voter.read()
        assert result.healthy_channels == 3

    def test_as_channel_adapter(self):
        voter, channels = make_voter()
        port = voter.as_channel()
        assert port() == 10.0
        assert voter.vote_count == 1


class TestComplementarity:
    def test_voter_masks_value_fault_watchdog_misses(self, kernel):
        """A stuck sensor channel corrupts *data*, not *timing*: the
        watchdog stays silent while the voter masks the fault — the two
        mechanisms protect orthogonal failure modes."""
        from repro.core import (FaultHypothesis, RunnableHypothesis,
                                SoftwareWatchdog, install_heartbeat_glue)
        from repro.kernel import AlarmTable, Runnable, Task, ms, runnable_sequence_body
        from repro.core.integration import WatchdogTaskBinding

        voter, channels = make_voter()
        samples = []
        r = Runnable("Sense", kernel, wcet=ms(1),
                     behaviour=lambda rn, t: samples.append(voter.read().value))
        kernel.add_task(Task("T", 5, runnable_sequence_body([r])))
        alarms = AlarmTable(kernel)
        alarms.alarm_activate_task("A", "T").set_rel(ms(10), ms(10))
        hyp = FaultHypothesis()
        hyp.add_runnable(RunnableHypothesis("Sense", task="T",
                                            aliveness_period=2,
                                            arrival_period=2, max_heartbeats=3))
        wd = SoftwareWatchdog(hyp)
        install_heartbeat_glue(wd, r)
        WatchdogTaskBinding(kernel, alarms, wd, period=ms(10), priority=20)
        kernel.run_until(ms(200))
        channels[1].value = 500.0  # value fault
        kernel.run_until(ms(500))
        assert wd.detection_count() == 0  # timing is fine
        assert all(v == 10.0 for v in samples)  # data stayed correct
