"""Soak tests: long runs under randomized transient fault sequences.

These tests exercise the whole treat-and-recover machinery repeatedly
and assert the *invariants that must survive any history*:

* no detections without an active fault (no false positives, ever),
* every injected fault episode is detected (no false negatives),
* the system returns to a clean steady state after each episode,
* kernel accounting stays consistent (CPU ticks monotone, utilisation
  bounded, no task stuck in a phantom state).
"""

import random

import pytest

from repro.core import ErrorType, MonitorState
from repro.faults import (
    BlockedRunnableFault,
    FaultTarget,
    InvalidBranchFault,
    LoopCountFault,
    SkipRunnableFault,
    TimeScalarFault,
)
from repro.kernel import TaskState, ms, seconds
from repro.platform import Ecu, FmfPolicy

from testutil import make_safespeed_mapping


def fault_catalogue():
    return [
        lambda: BlockedRunnableFault("SAFE_CC_process"),
        lambda: BlockedRunnableFault("GetSensorValue"),
        lambda: TimeScalarFault("SafeSpeedTask", scalar=4.0),
        lambda: LoopCountFault("GetSensorValue", repeat=4),
        lambda: SkipRunnableFault("SafeSpeedTask", "SAFE_CC_process"),
        lambda: InvalidBranchFault("SafeSpeedTask", 1, "Speed_process"),
    ]


class TestTransientFaultSoak:
    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_every_episode_detected_and_recovered(self, seed):
        rng = random.Random(seed)
        ecu = Ecu(
            "soak",
            make_safespeed_mapping(),
            watchdog_period=ms(10),
            fmf_policy=FmfPolicy(ecu_faulty_task_threshold=10**6,
                                 max_app_restarts=10**6),
            fmf_auto_treatment=False,
        )
        target = FaultTarget.from_ecu(ecu)
        ecu.run_until(ms(500))

        episodes = 0
        for _ in range(8):
            # --- clean phase: flush any straddling period, then verify
            # silence.
            ecu.run_until(ecu.now + ms(100))
            baseline = ecu.watchdog.detection_count()
            ecu.run_until(ecu.now + rng.randint(ms(200), ms(500)))
            assert ecu.watchdog.detection_count() == baseline, (
                "false positive during clean phase"
            )

            # --- fault episode -----------------------------------------
            fault = rng.choice(fault_catalogue())()
            before = ecu.watchdog.detection_count()
            fault.inject(target)
            ecu.run_until(ecu.now + rng.randint(ms(300), ms(600)))
            fault.restore(target)
            ecu.watchdog.notify_task_start("SafeSpeedTask")
            assert ecu.watchdog.detection_count() > before, (
                f"missed fault {fault.name}"
            )
            episodes += 1
        assert episodes == 8

    def test_kernel_accounting_invariants_hold(self):
        rng = random.Random(3)
        ecu = Ecu(
            "soak",
            make_safespeed_mapping(),
            watchdog_period=ms(10),
            fmf_policy=FmfPolicy(ecu_faulty_task_threshold=5,
                                 max_app_restarts=2),
        )
        target = FaultTarget.from_ecu(ecu)
        last_cpu = 0
        for _ in range(6):
            fault = rng.choice(fault_catalogue())()
            fault.inject(target)
            ecu.run_until(ecu.now + ms(400))
            fault.restore(target)
            ecu.run_until(ecu.now + ms(400))
            # CPU accounting is monotone and bounded.
            assert ecu.kernel.cpu_busy_ticks >= last_cpu
            last_cpu = ecu.kernel.cpu_busy_ticks
            assert 0.0 <= ecu.kernel.utilization() <= 1.0
        # No phantom runtime state: every task is in a legal OSEK state.
        for task in ecu.kernel.tasks.values():
            assert task.state in (TaskState.SUSPENDED, TaskState.READY,
                                  TaskState.RUNNING, TaskState.WAITING)

    def test_repeated_resets_keep_the_ecu_functional(self):
        """Hammer the escalation path: after dozens of resets the ECU
        still schedules, supervises and recovers."""
        ecu = Ecu(
            "soak",
            make_safespeed_mapping(),
            watchdog_period=ms(10),
            fmf_policy=FmfPolicy(ecu_faulty_task_threshold=5,
                                 max_app_restarts=1),
        )
        target = FaultTarget.from_ecu(ecu)
        fault = BlockedRunnableFault("SAFE_CC_process")
        ecu.run_until(ms(300))
        fault.inject(target)
        ecu.run_until(ecu.now + seconds(3))
        assert len(ecu.reset_times) >= 10
        fault.restore(target)
        ecu.run_until(ecu.now + seconds(1))
        detections = ecu.watchdog.detection_count()
        executions = ecu.system.runnable("SAFE_CC_process").execution_count
        ecu.run_until(ecu.now + seconds(1))
        assert ecu.watchdog.detection_count() == detections
        assert ecu.system.runnable("SAFE_CC_process").execution_count > executions
        # A single period-straddling error at restore time may leave the
        # task SUSPICIOUS (sub-threshold errors persist until treatment);
        # what must not remain is a FAULTY verdict.
        assert ecu.ecu_monitor_state() is not MonitorState.FAULTY
