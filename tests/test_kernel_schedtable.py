"""Tests for AUTOSAR-style schedule tables."""

import pytest

from repro.kernel import (
    KernelConfigError,
    ScheduleTable,
    Segment,
    StatusType,
    Task,
    TraceKind,
    ms,
)


def add_task(kernel, name, priority=5, duration=ms(1)):
    def body(task):
        yield Segment(duration, label=name)

    return kernel.add_task(Task(name, priority, body))


class TestConfiguration:
    def test_bad_period(self, kernel):
        with pytest.raises(KernelConfigError):
            ScheduleTable("T", kernel, period=0)

    def test_offset_outside_period_rejected(self, kernel):
        table = ScheduleTable("T", kernel, period=ms(10))
        with pytest.raises(KernelConfigError):
            table.add_task_activation(ms(10), "A")

    def test_points_sorted_and_merged(self, kernel):
        add_task(kernel, "A")
        add_task(kernel, "B")
        table = ScheduleTable("T", kernel, period=ms(10))
        table.add_task_activation(ms(5), "B")
        table.add_task_activation(ms(2), "A")
        table.add_task_activation(ms(5), "A")  # merges into the 5 ms point
        assert [p.offset for p in table.points] == [ms(2), ms(5)]
        assert len(table.points[1].actions) == 2

    def test_chaining(self, kernel):
        add_task(kernel, "A")
        table = ScheduleTable("T", kernel, period=ms(10))
        assert table.add_task_activation(0, "A") is table


class TestExecution:
    def test_activations_at_offsets(self, kernel):
        add_task(kernel, "A")
        add_task(kernel, "B")
        table = ScheduleTable("T", kernel, period=ms(10))
        table.add_task_activation(ms(0), "A")
        table.add_task_activation(ms(4), "B")
        assert table.start_rel(ms(10)) is StatusType.E_OK
        kernel.run_until(ms(35))
        a_times = [r.time for r in kernel.trace.filter(
            kind=TraceKind.TASK_ACTIVATE, subject="A")]
        b_times = [r.time for r in kernel.trace.filter(
            kind=TraceKind.TASK_ACTIVATE, subject="B")]
        assert a_times == [ms(10), ms(20), ms(30)]
        assert b_times == [ms(14), ms(24), ms(34)]

    def test_offsets_eliminate_release_contention(self, kernel):
        """Two same-period tasks with staggered offsets never preempt."""
        a = add_task(kernel, "A", priority=5, duration=ms(2))
        b = add_task(kernel, "B", priority=6, duration=ms(2))
        table = ScheduleTable("T", kernel, period=ms(10))
        table.add_task_activation(ms(0), "A")
        table.add_task_activation(ms(3), "B")
        table.start_rel(ms(1))
        kernel.run_until(ms(200))
        assert a.preemption_count == 0
        assert b.preemption_count == 0

    def test_event_setting_action(self, kernel):
        from repro.kernel import Wait

        hits = []

        def body(task):
            while True:
                yield Wait(0x1)
                kernel.clear_event(task, 0x1)
                yield Segment(ms(1), on_end=lambda: hits.append(kernel.clock.now))

        kernel.add_task(Task("Ext", 5, body, extended=True, autostart=True))
        table = ScheduleTable("T", kernel, period=ms(10))
        table.add_event_setting(ms(2), "Ext", 0x1)
        table.start_rel(0)
        kernel.run_until(ms(35))
        assert hits == [ms(3), ms(13), ms(23), ms(33)]

    def test_callback_action(self, kernel):
        hits = []
        table = ScheduleTable("T", kernel, period=ms(10))
        table.add_callback(ms(7), lambda: hits.append(kernel.clock.now))
        table.start_rel(0)
        kernel.run_until(ms(30))
        assert hits == [ms(7), ms(17), ms(27)]

    def test_iteration_count(self, kernel):
        table = ScheduleTable("T", kernel, period=ms(10))
        table.add_callback(0, lambda: None)
        table.start_rel(0)
        kernel.run_until(ms(45))
        assert table.iteration_count == 4


class TestControl:
    def test_start_twice_rejected(self, kernel):
        table = ScheduleTable("T", kernel, period=ms(10))
        table.add_callback(0, lambda: None)
        table.start_rel(0)
        assert table.start_rel(0) is StatusType.E_OS_STATE

    def test_start_empty_rejected(self, kernel):
        table = ScheduleTable("T", kernel, period=ms(10))
        assert table.start_rel(0) is StatusType.E_OS_NOFUNC

    def test_stop_halts_expiries(self, kernel):
        hits = []
        table = ScheduleTable("T", kernel, period=ms(10))
        table.add_callback(ms(5), lambda: hits.append(1))
        table.start_rel(0)
        kernel.run_until(ms(12))
        assert table.stop() is StatusType.E_OK
        kernel.run_until(ms(100))
        assert len(hits) == 1

    def test_stop_idle_rejected(self, kernel):
        table = ScheduleTable("T", kernel, period=ms(10))
        assert table.stop() is StatusType.E_OS_NOFUNC

    def test_next_expiry(self, kernel):
        table = ScheduleTable("T", kernel, period=ms(10))
        table.add_callback(ms(5), lambda: None)
        assert table.next_expiry() is None
        table.start_rel(0)
        assert table.next_expiry() == ms(5)
