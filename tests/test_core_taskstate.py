"""Tests for the task state indication unit."""

from repro.core import ErrorType, MonitorState, RunnableError, ThresholdPolicy
from repro.core.taskstate import TaskStateIndicationUnit


def error(time=0, runnable="R", task="T", etype=ErrorType.ALIVENESS):
    return RunnableError(time=time, runnable=runnable, task=task, error_type=etype)


def make_unit(default=3, per_type=None, app_of_task=None):
    unit = TaskStateIndicationUnit(
        ThresholdPolicy(default=default, per_type=per_type or {}),
        app_of_task=app_of_task,
    )
    faults = []
    unit.add_task_fault_listener(faults.append)
    return unit, faults


class TestErrorVectors:
    def test_errors_accumulate(self):
        unit, faults = make_unit()
        unit.record_error(error(1))
        unit.record_error(error(2))
        assert unit.error_count(task="T", runnable="R") == 2
        assert faults == []

    def test_threshold_fires_task_fault(self):
        unit, faults = make_unit(default=3)
        for t in range(3):
            unit.record_error(error(t))
        assert len(faults) == 1
        event = faults[0]
        assert event.task == "T"
        assert event.trigger_runnable == "R"
        assert event.trigger_error_type is ErrorType.ALIVENESS
        assert event.error_vector["R"][ErrorType.ALIVENESS] == 3

    def test_no_refire_while_faulty(self):
        unit, faults = make_unit(default=2)
        for t in range(5):
            unit.record_error(error(t))
        assert len(faults) == 1

    def test_per_type_thresholds_independent(self):
        unit, faults = make_unit(default=10, per_type={ErrorType.PROGRAM_FLOW: 3})
        unit.record_error(error(1, etype=ErrorType.ALIVENESS))
        unit.record_error(error(2, etype=ErrorType.PROGRAM_FLOW))
        unit.record_error(error(3, etype=ErrorType.PROGRAM_FLOW))
        assert faults == []
        unit.record_error(error(4, etype=ErrorType.PROGRAM_FLOW))
        assert len(faults) == 1
        assert faults[0].trigger_error_type is ErrorType.PROGRAM_FLOW

    def test_counts_per_type_separate(self):
        unit, _ = make_unit()
        unit.record_error(error(1, etype=ErrorType.ALIVENESS))
        unit.record_error(error(2, etype=ErrorType.ARRIVAL_RATE))
        assert unit.error_count(error_type=ErrorType.ALIVENESS) == 1
        assert unit.error_count(error_type=ErrorType.ARRIVAL_RATE) == 1

    def test_unmapped_runnable_bucketed(self):
        unit, _ = make_unit()
        unit.record_error(
            RunnableError(time=1, runnable="X", task=None,
                          error_type=ErrorType.ALIVENESS)
        )
        assert unit.error_count(task="<unmapped>") == 1


class TestStateDerivation:
    def test_ok_initially(self):
        unit, _ = make_unit()
        assert unit.task_state("T") is MonitorState.OK
        assert unit.runnable_state("R") is MonitorState.OK
        assert unit.ecu_state() is MonitorState.OK

    def test_suspicious_below_threshold(self):
        unit, _ = make_unit(default=3)
        unit.record_error(error(1))
        assert unit.task_state("T") is MonitorState.SUSPICIOUS
        assert unit.runnable_state("R") is MonitorState.SUSPICIOUS

    def test_faulty_at_threshold(self):
        unit, _ = make_unit(default=2)
        unit.record_error(error(1))
        unit.record_error(error(2))
        assert unit.task_state("T") is MonitorState.FAULTY
        assert unit.runnable_state("R") is MonitorState.FAULTY
        assert unit.ecu_state() is MonitorState.FAULTY

    def test_application_state_worst_of_tasks(self):
        unit, _ = make_unit(default=1, app_of_task={"T1": "App", "T2": "App"})
        assert unit.application_state("App") is MonitorState.OK
        unit.record_error(error(1, runnable="R1", task="T1"))
        assert unit.application_state("App") is MonitorState.FAULTY
        assert unit.task_state("T2") is MonitorState.OK

    def test_unknown_application_is_ok(self):
        unit, _ = make_unit()
        assert unit.application_state("ghost") is MonitorState.OK

    def test_ecu_state_listener_fires_on_change(self):
        unit, _ = make_unit(default=1)
        changes = []
        unit.add_ecu_state_listener(changes.append)
        unit.record_error(error(5))
        assert len(changes) == 1
        assert changes[0].old_state is MonitorState.OK
        assert changes[0].new_state is MonitorState.FAULTY
        assert changes[0].faulty_tasks == ("T",)


class TestSupervisionReports:
    def test_report_for_erroring_runnable(self):
        unit, _ = make_unit(default=3)
        unit.record_error(error(1))
        reports = unit.supervision_reports(time=10)
        assert len(reports) == 1
        report = reports[0]
        assert report.runnable == "R"
        assert report.state is MonitorState.SUSPICIOUS
        assert report.total_errors == 1

    def test_report_includes_healthy_mapped_runnables(self):
        unit = TaskStateIndicationUnit(
            ThresholdPolicy(), task_of_runnable={"healthy": "T"}
        )
        reports = unit.supervision_reports(time=0)
        assert len(reports) == 1
        assert reports[0].state is MonitorState.OK


class TestClearAndReset:
    def test_clear_task_restores_ok(self):
        unit, faults = make_unit(default=1)
        unit.record_error(error(1))
        assert unit.task_state("T") is MonitorState.FAULTY
        unit.clear_task("T")
        assert unit.task_state("T") is MonitorState.OK
        # A new threshold crossing fires again after clearing.
        unit.record_error(error(2))
        assert len(faults) == 2

    def test_reset_clears_everything(self):
        unit, _ = make_unit(default=1)
        unit.record_error(error(1))
        unit.reset()
        assert unit.errors_recorded == 0
        assert unit.error_log() == []
        assert unit.ecu_state() is MonitorState.OK

    def test_error_log_chronological(self):
        unit, _ = make_unit()
        unit.record_error(error(1))
        unit.record_error(error(5))
        log = unit.error_log()
        assert [e.time for e in log] == [1, 5]
