"""HA smoke: the daemon survives kill -9, and a warm standby takes over.

Marked ``ha_smoke`` (tier-2, like ``serve_smoke``): real ``python -m
repro serve`` subprocesses with ``--state-dir``.  Two scenarios:

* **kill -9 recovery** — registrations and traffic, SIGKILL mid-stream,
  restart from the same state directory: zero lost registrations, the
  restored fleet state equals what the dead daemon had snapshotted, and
  a crashed client's silence still surfaces as a DETECTION within a
  bounded gap after the restart;
* **warm-standby failover** — a ``--standby`` daemon tails the primary's
  journal, promotes itself when the primary is SIGKILLed, and the
  client's failover address list lands its reconnect/re-register replay
  on the standby.

Run: ``make ha-smoke`` or ``pytest tests/test_service_ha.py -m ha_smoke``.
"""

import json
import os
import re
import signal
import socket
import subprocess
import sys
import time
import urllib.request

import pytest

from repro.core import FaultHypothesis, RunnableHypothesis
from repro.service import WatchdogClient

pytestmark = pytest.mark.ha_smoke

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_BANNER_RE = re.compile(r"tcp=([\d.]+):(\d+)")


def make_hypothesis(prefix):
    hyp = FaultHypothesis()
    hyp.add_runnable(RunnableHypothesis(
        f"{prefix}.step", task=f"{prefix}.T", aliveness_period=10,
        min_heartbeats=1, arrival_period=10, max_heartbeats=1000))
    return hyp


def spawn(*extra_args):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_REPO_ROOT, "src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--tick-ms", "5",
         *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env)


def read_banner(proc, *, expect="listening"):
    banner = proc.stdout.readline()
    assert expect in banner, f"unexpected banner: {banner!r}"
    return banner


def tcp_address(banner):
    match = _BANNER_RE.search(banner)
    assert match, f"no tcp endpoint in banner: {banner!r}"
    return (match.group(1), int(match.group(2)))


def http_url(banner):
    match = re.search(r"http=([\d.]+):(\d+)", banner)
    assert match, f"no http endpoint in banner: {banner!r}"
    return f"http://{match.group(1)}:{match.group(2)}"


def reap(proc):
    if proc.poll() is None:
        proc.kill()
    try:
        proc.communicate(timeout=10)
    except subprocess.TimeoutExpired:  # pragma: no cover - last resort
        proc.terminate()


def free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def wait_for(predicate, *, timeout=15.0, interval=0.02, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {message}")


def test_kill_dash_nine_recovery_round_trip(tmp_path):
    state_dir = str(tmp_path / "state")
    first = spawn("--port", "0", "--http-port", "0",
                  "--state-dir", state_dir, "--snapshot-interval", "0.1")
    try:
        banner = read_banner(first)
        assert f"state_dir={state_dir}" in banner
        assert "restored=0" in banner
        address = tcp_address(banner)

        steady = WatchdogClient(address, client_name="steady")
        steady.connect()
        steady.register("steady", make_hypothesis("steady"))
        victim = WatchdogClient(address, client_name="victim",
                                reconnect=False)
        victim.connect()
        victim.register("victim", make_hypothesis("victim"))
        for _ in range(5):
            steady.heartbeat("steady.step", task="steady.T")
            victim.heartbeat("victim.step", task="victim.T")
            steady.flush()
            victim.flush()
            time.sleep(0.01)

        # Wait for a snapshot covering both registrations, then murder
        # the daemon mid-stream — no farewell, no final snapshot.
        snapshot_path = os.path.join(state_dir, "snapshot.json")

        def snapshot_has_both():
            try:
                with open(snapshot_path, encoding="utf-8") as handle:
                    payload = json.load(handle)
            except (OSError, ValueError):
                return None
            names = {
                record["name"]
                for shard in payload["fleet"]["shards"]
                for record in shard["registrations"]
            }
            return payload if names == {"steady", "victim"} else None

        pre_kill = wait_for(snapshot_has_both,
                            message="snapshot with both registrations")
        killed_at = time.monotonic()
        first.send_signal(signal.SIGKILL)
        first.wait(timeout=10)
        steady._drop_connection()
        victim._drop_connection()

        # Restart from the same state directory on a fresh port.
        second = spawn("--port", "0", "--http-port", "0",
                       "--state-dir", state_dir,
                       "--snapshot-interval", "0.1")
        try:
            banner = read_banner(second)
            # Zero lost registrations.
            assert "restored=2" in banner
            restarted_at = time.monotonic()
            address = tcp_address(banner)
            health_url = http_url(banner)

            with urllib.request.urlopen(health_url + "/healthz",
                                        timeout=5) as rsp:
                health = json.loads(rsp.read())
            assert health["registrations"] == 2
            assert health["restored_registrations"] == 2
            assert health["role"] == "primary"

            # Differential check: the restored fleet carries exactly the
            # per-registration bookkeeping the dead daemon snapshotted.
            snapshotted = {
                record["name"]: record
                for shard in pre_kill["fleet"]["shards"]
                for record in shard["registrations"]
            }
            assert health["indications"] == sum(
                r["indications"] for r in snapshotted.values())

            # The steady client reconnects (its ordinary re-register
            # replay) and keeps heartbeating; the victim stays dead, so
            # its registration — restored ACTIVE — must produce a
            # DETECTION within a bounded gap of the restart.
            steady2 = WatchdogClient(address, client_name="steady",
                                     watch=True)
            steady2.connect()
            ack = steady2.register("steady", make_hypothesis("steady"))
            assert ack.get("rebound") is True

            def victim_detected():
                steady2.heartbeat("steady.step", task="steady.T")
                steady2.flush()
                steady2.poll()
                return next(
                    (d for d in steady2.detections
                     if d.get("runnable") == "victim.step"), None)

            detected = wait_for(victim_detected, timeout=15,
                                message="victim DETECTION after restart")
            assert detected["error_type"] == "aliveness"
            detection_gap = time.monotonic() - killed_at
            # Bounded detection gap: daemon downtime + one aliveness
            # window (10 cycles x 5 ms) + slack, far under the ceiling.
            assert detection_gap < 15.0
            assert restarted_at - killed_at < detection_gap
            steady2.close()
        finally:
            reap(second)
    finally:
        reap(first)


def test_warm_standby_promotes_and_client_fails_over(tmp_path):
    state_dir = str(tmp_path / "state")
    standby_port = free_port()
    primary = spawn("--port", "0", "--http-port", "0",
                    "--state-dir", state_dir, "--snapshot-interval", "0.1")
    standby = None
    try:
        primary_banner = read_banner(primary)
        primary_address = tcp_address(primary_banner)

        # The standby's port is fixed up front: a failover list is
        # static client configuration, known before any failure.
        standby = spawn("--port", str(standby_port), "--standby",
                        "--state-dir", state_dir)
        read_banner(standby, expect="standby")

        client = WatchdogClient(
            primary_address,
            failover=(("127.0.0.1", standby_port),),
            client_name="app", backoff_initial=0.05, backoff_max=0.5,
            max_retries=40)
        client.connect()
        client.register("app", make_hypothesis("app"))
        for _ in range(5):
            client.heartbeat("app.step", task="app.T")
            client.flush()
            time.sleep(0.01)

        # Let a snapshot (or the journal tail) reach the standby, then
        # SIGKILL the primary.
        wait_for(lambda: os.path.exists(
            os.path.join(state_dir, "snapshot.json")),
            message="first snapshot")
        primary.send_signal(signal.SIGKILL)
        primary.wait(timeout=10)

        # The standby notices the stale lock (dead pid) and promotes.
        promoted_banner = wait_for(
            lambda: standby.stdout.readline(),
            timeout=20, message="standby promotion banner")
        assert "promoted listening" in promoted_banner
        assert tcp_address(promoted_banner) == ("127.0.0.1", standby_port)

        # The client's next flush reconnects via the failover list and
        # replays HELLO + REGISTER onto the promoted standby.
        client._drop_connection()
        client.heartbeat("app.step", task="app.T")
        assert wait_for(lambda: client.flush(), timeout=15,
                        message="client failover flush")
        assert client.address == ("127.0.0.1", standby_port)
        assert client.sync()
        client.close()

        standby.send_signal(signal.SIGTERM)
        out, _ = standby.communicate(timeout=15)
        assert standby.returncode == 0
        assert "shutdown" in out
    finally:
        if standby is not None:
            reap(standby)
        reap(primary)
