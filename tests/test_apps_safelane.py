"""Tests for the SafeLane lane departure warning application."""

import pytest

from repro.apps import SafeLaneApp, SafeLaneConfig


def make_app(**config):
    sensor_state = {"offset": 0.0, "velocity": 0.0, "half_width": 1.75}
    warnings = []

    def sensor():
        return sensor_state["offset"], sensor_state["velocity"], sensor_state["half_width"]

    def warner(active, side):
        warnings.append((active, side))

    app = SafeLaneApp(sensor, warner, SafeLaneConfig(**config))
    return app, sensor_state, warnings


def run_cycle(app):
    app.get_lane_position()
    app.ldw_process()
    app.warn_process()


class TestDetection:
    def test_centered_no_warning(self):
        app, state, warnings = make_app()
        run_cycle(app)
        assert not app.state.warning
        assert warnings[-1] == (False, 0)

    def test_large_offset_warns(self):
        app, state, warnings = make_app()
        state["offset"] = 1.7  # 97 % of half-width
        run_cycle(app)
        assert app.state.warning
        assert warnings[-1] == (True, 1)

    def test_side_reported(self):
        app, state, warnings = make_app()
        state["offset"] = -1.7
        run_cycle(app)
        assert warnings[-1] == (True, -1)

    def test_fast_drift_warns_before_boundary(self):
        """TTC-based early warning while still well inside the lane."""
        app, state, warnings = make_app(ttc_threshold_s=1.0)
        state["offset"] = 0.8
        state["velocity"] = 1.2  # crossing in (1.75-0.8)/1.2 = 0.79 s
        run_cycle(app)
        assert app.state.warning
        assert app.state.time_to_crossing_s == pytest.approx(0.79, abs=0.01)

    def test_slow_drift_no_early_warning(self):
        app, state, warnings = make_app(ttc_threshold_s=1.0)
        state["offset"] = 0.8
        state["velocity"] = 0.2  # crossing in 4.75 s
        run_cycle(app)
        assert not app.state.warning

    def test_drifting_back_inward_no_ttc_warning(self):
        app, state, warnings = make_app()
        state["offset"] = 1.0
        state["velocity"] = -1.5  # moving towards centre
        run_cycle(app)
        assert not app.state.warning

    def test_no_velocity_infinite_ttc(self):
        app, state, _ = make_app()
        state["offset"] = 0.5
        run_cycle(app)
        assert app.state.time_to_crossing_s == float("inf")


class TestHysteresis:
    def test_warning_holds_until_release_fraction(self):
        app, state, warnings = make_app(
            offset_engage_fraction=0.9, offset_release_fraction=0.7
        )
        state["offset"] = 1.7
        run_cycle(app)
        assert app.state.warning
        state["offset"] = 1.4  # 80 %: above release threshold
        run_cycle(app)
        assert app.state.warning
        state["offset"] = 1.0  # 57 %: clearly back in lane
        run_cycle(app)
        assert not app.state.warning

    def test_warnings_raised_counts_rising_edges(self):
        app, state, _ = make_app()
        state["offset"] = 1.7
        run_cycle(app)
        run_cycle(app)
        state["offset"] = 0.0
        run_cycle(app)
        state["offset"] = 1.7
        run_cycle(app)
        assert app.state.warnings_raised == 2


class TestApplicationModel:
    def test_builds_three_runnables(self):
        app, _, _ = make_app()
        application = app.build_application()
        assert application.name == "SafeLane"
        assert len(application.runnable_names()) == 3

    def test_wcet_count_enforced(self):
        app, _, _ = make_app()
        with pytest.raises(ValueError):
            app.build_application(wcets=[1])
