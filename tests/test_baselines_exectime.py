"""Tests for the AUTOSAR-OS execution time monitor baseline."""

import pytest

from repro.baselines import ExecutionTimeMonitor
from repro.core import ErrorType
from repro.faults import FaultTarget, LoopCountFault, SkipRunnableFault
from repro.kernel import Segment, Task, ms, seconds
from repro.platform import Ecu, FmfPolicy

from testutil import make_safespeed_mapping, periodic_task


class TestBasicOperation:
    def test_within_budget_clean(self, kernel, alarms):
        periodic_task(kernel, alarms, "T", 5, ms(10), [ms(2)])
        monitor = ExecutionTimeMonitor(kernel)
        monitor.monitor("T", budget=ms(3))
        kernel.run_until(seconds(1))
        assert monitor.violation_count == 0

    def test_over_budget_flagged_at_termination(self, kernel, alarms):
        periodic_task(kernel, alarms, "T", 5, ms(20), [ms(6)])
        monitor = ExecutionTimeMonitor(kernel)
        monitor.monitor("T", budget=ms(3))
        kernel.run_until(ms(100))
        assert monitor.violations_by_task["T"] >= 4

    def test_infinite_loop_caught_by_probe(self, kernel):
        """A task that never terminates is caught mid-flight."""

        def spin(task):
            while True:
                yield Segment(ms(5))

        kernel.add_task(Task("Spin", 5, spin))
        monitor = ExecutionTimeMonitor(kernel, probe_period=ms(1))
        monitor.monitor("Spin", budget=ms(10))
        kernel.activate_task("Spin")
        kernel.run_until(ms(100))
        assert monitor.violation_count == 1
        assert monitor.violation_times[0] <= ms(12)

    def test_one_flag_per_activation(self, kernel, alarms):
        periodic_task(kernel, alarms, "T", 5, ms(50), [ms(10)])
        monitor = ExecutionTimeMonitor(kernel, probe_period=ms(1))
        monitor.monitor("T", budget=ms(3))
        kernel.run_until(ms(99))  # exactly one activation (at 50 ms)
        assert monitor.violation_count == 1  # probe + terminate = still 1

    def test_invalid_parameters(self, kernel):
        monitor = ExecutionTimeMonitor(kernel)
        with pytest.raises(ValueError):
            monitor.monitor("T", budget=0)
        with pytest.raises(ValueError):
            ExecutionTimeMonitor(kernel, probe_period=0)

    def test_budget_excludes_preemption_time(self, kernel, alarms):
        """Execution-time monitoring budgets CPU time, not response
        time: a heavily preempted task within budget is not flagged."""
        periodic_task(kernel, alarms, "Low", 2, ms(20), [ms(4)])
        periodic_task(kernel, alarms, "Hi", 9, ms(5), [ms(3)])
        monitor = ExecutionTimeMonitor(kernel)
        monitor.monitor("Low", budget=ms(5))
        kernel.run_until(seconds(1))
        # Low's response time is way over 5 ms, but its CPU use is 4 ms.
        assert monitor.violation_count == 0

    def test_detector_interface(self, kernel, alarms):
        periodic_task(kernel, alarms, "T", 5, ms(20), [ms(6)])
        monitor = ExecutionTimeMonitor(kernel)
        monitor.monitor("T", budget=ms(3))
        kernel.run_until(ms(60))
        assert monitor.first_detection_after(0) is not None


class TestGranularityBlindSpot:
    def test_runnable_repetition_caught_task_level_only(self):
        """A corrupted loop counter doubles the task's CPU: the budget
        monitor fires but cannot attribute beyond the task, while the
        Software Watchdog names the runnable."""
        ecu = Ecu(
            "central",
            make_safespeed_mapping(),
            watchdog_period=ms(10),
            fmf_policy=FmfPolicy(ecu_faulty_task_threshold=99,
                                 max_app_restarts=10**9),
        )
        monitor = ExecutionTimeMonitor(ecu.kernel)
        monitor.monitor("SafeSpeedTask", budget=ms(5))  # nominal 4 ms
        ecu.run_until(ms(200))
        LoopCountFault("SAFE_CC_process", repeat=3).inject(FaultTarget.from_ecu(ecu))
        ecu.run_until(ecu.now + seconds(1))
        assert monitor.violation_count > 0  # 8 ms > 5 ms budget
        detected = ecu.watchdog.detected_per_runnable.get("SAFE_CC_process", {})
        assert detected.get(ErrorType.ARRIVAL_RATE, 0) > 0

    def test_skipped_runnable_invisible(self):
        """Doing too little is invisible to a budget monitor."""
        ecu = Ecu(
            "central",
            make_safespeed_mapping(),
            watchdog_period=ms(10),
            fmf_policy=FmfPolicy(ecu_faulty_task_threshold=99,
                                 max_app_restarts=10**9),
        )
        monitor = ExecutionTimeMonitor(ecu.kernel)
        monitor.monitor("SafeSpeedTask", budget=ms(5))
        ecu.run_until(ms(200))
        SkipRunnableFault("SafeSpeedTask", "SAFE_CC_process").inject(
            FaultTarget.from_ecu(ecu)
        )
        ecu.run_until(ecu.now + seconds(1))
        assert monitor.violation_count == 0
        assert ecu.watchdog.detection_count(ErrorType.PROGRAM_FLOW) > 0
