"""Tests for the task work-item model (Segment, Wait, sequence_body)."""

import pytest

from repro.kernel import Kernel, Segment, Task, Wait, ms, sequence_body


class TestSegment:
    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Segment(-1)

    def test_zero_duration_allowed(self):
        assert Segment(0).duration == 0

    def test_callbacks_optional(self):
        segment = Segment(10)
        assert segment.on_start is None and segment.on_end is None


class TestWait:
    def test_empty_mask_rejected(self):
        with pytest.raises(ValueError):
            Wait(0)

    def test_mask_stored(self):
        assert Wait(0x5).mask == 0x5


class TestSequenceBody:
    def test_factories_run_in_order_each_activation(self, kernel):
        order = []

        def factory(tag, duration):
            def items(task):
                yield Segment(duration, on_end=lambda: order.append(tag))

            return items

        body = sequence_body([factory("a", ms(1)), factory("b", ms(2))])
        kernel.add_task(Task("T", 5, body, max_activations=2))
        kernel.activate_task("T")
        kernel.activate_task("T")
        kernel.run_until(ms(20))
        assert order == ["a", "b", "a", "b"]

    def test_empty_sequence_terminates_immediately(self, kernel):
        from repro.kernel import TraceKind

        kernel.add_task(Task("T", 5, sequence_body([])))
        kernel.activate_task("T")
        kernel.run_until(ms(5))
        assert kernel.trace.count(TraceKind.TASK_TERMINATE, "T") == 1
        assert kernel.trace.last(TraceKind.TASK_TERMINATE, "T").time == 0

    def test_factory_list_snapshot(self, kernel):
        """sequence_body snapshots the factory list at build time."""
        factories = [lambda task: iter([Segment(ms(1))])]
        body = sequence_body(factories)
        factories.append(lambda task: iter([Segment(ms(50))]))
        kernel.add_task(Task("T", 5, body))
        kernel.activate_task("T")
        kernel.run_until(ms(10))
        from repro.kernel import TraceKind

        assert kernel.trace.last(TraceKind.TASK_TERMINATE, "T").time == ms(1)


class TestTaskRuntimeReset:
    def test_reset_runtime_state_clears_everything(self):
        task = Task("T", 3, lambda t: iter(()), extended=True)
        task.pending_activations = 1
        task.set_events = 0x7
        task.dynamic_priority = 9
        task.activation_count = 5
        task.preemption_count = 2
        task.reset_runtime_state()
        assert task.pending_activations == 0
        assert task.set_events == 0
        assert task.dynamic_priority == task.priority
        assert task.activation_count == 0
        assert task.preemption_count == 0
