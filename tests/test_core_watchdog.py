"""Tests for the SoftwareWatchdog facade (unit wiring, Figure 2)."""

import pytest

from repro.core import (
    ErrorType,
    FaultHypothesis,
    HypothesisError,
    MonitorState,
    RunnableHypothesis,
    SoftwareWatchdog,
    ThresholdPolicy,
)


def make_watchdog(threshold=3, eager=False, app_of_task=None):
    hyp = FaultHypothesis(thresholds=ThresholdPolicy(default=threshold))
    for name in ("A", "B", "C"):
        hyp.add_runnable(
            RunnableHypothesis(
                name, task="T", aliveness_period=2, min_heartbeats=1,
                arrival_period=2, max_heartbeats=3,
            )
        )
    hyp.allow_sequence(["A", "B", "C"])
    return SoftwareWatchdog(hyp, eager_arrival_detection=eager,
                            app_of_task=app_of_task or {"T": "App"})


def run_healthy_cycle(wd, base_time):
    wd.notify_task_start("T")
    for i, name in enumerate(("A", "B", "C")):
        wd.heartbeat_indication(name, base_time + i, task="T")
    wd.check_cycle(base_time + 9)


class TestWiring:
    def test_invalid_hypothesis_rejected_at_construction(self):
        hyp = FaultHypothesis()
        hyp.allow_flow("ghost1", "ghost2")
        with pytest.raises(HypothesisError):
            SoftwareWatchdog(hyp)

    def test_healthy_operation_no_detections(self):
        wd = make_watchdog()
        for cycle in range(10):
            run_healthy_cycle(wd, cycle * 10)
        assert wd.detection_count() == 0
        assert wd.ecu_state() is MonitorState.OK

    def test_heartbeat_feeds_both_units(self):
        wd = make_watchdog()
        wd.heartbeat_indication("B", 1, task="T")  # illegal entry
        assert wd.detected[ErrorType.PROGRAM_FLOW] == 1
        assert wd.hbm.snapshot("B")["AC"] == 1

    def test_fault_listener_invoked(self):
        wd = make_watchdog()
        seen = []
        wd.add_fault_listener(seen.append)
        wd.heartbeat_indication("C", 1, task="T")
        assert len(seen) == 1
        assert seen[0].error_type is ErrorType.PROGRAM_FLOW

    def test_errors_reach_tsi(self):
        wd = make_watchdog(threshold=2)
        faults = []
        wd.add_task_fault_listener(faults.append)
        wd.heartbeat_indication("B", 1, task="T")
        wd.heartbeat_indication("B", 2, task="T")  # B->B also illegal
        assert len(faults) == 1
        assert wd.task_state("T") is MonitorState.FAULTY

    def test_application_state_roll_up(self):
        wd = make_watchdog(threshold=1)
        wd.heartbeat_indication("C", 1, task="T")
        assert wd.application_state("App") is MonitorState.FAULTY


class TestActivationStatusGating:
    def test_deactivated_runnable_raises_no_flow_errors(self):
        """A heartbeat from a runnable with AS=False must be invisible
        to the PFC unit too: deactivation (e.g. of a terminated
        application) must not raise PROGRAM_FLOW errors."""
        wd = make_watchdog()
        wd.set_activation_status("B", False)
        wd.notify_task_start("T")
        wd.heartbeat_indication("B", 1, task="T")  # would be illegal entry
        assert wd.detected[ErrorType.PROGRAM_FLOW] == 0
        assert wd.detection_count() == 0

    def test_deactivated_runnable_does_not_perturb_stream(self):
        """The deactivated runnable must not become the stream's
        predecessor: the remaining active sequence stays legal."""
        wd = make_watchdog()
        wd.set_activation_status("C", False)
        wd.notify_task_start("T")
        wd.heartbeat_indication("A", 1, task="T")
        wd.heartbeat_indication("B", 2, task="T")
        wd.heartbeat_indication("C", 3, task="T")  # inactive: invisible
        # Predecessor is still B; C's heartbeat did not advance the
        # stream to an (inactive) state that would flag the next A.
        assert wd.pfc._last["T"] == "B"
        assert wd.detected[ErrorType.PROGRAM_FLOW] == 0

    def test_reactivated_runnable_is_checked_again(self):
        wd = make_watchdog()
        wd.set_activation_status("B", False)
        wd.set_activation_status("B", True)
        wd.notify_task_start("T")
        wd.heartbeat_indication("B", 1, task="T")  # illegal entry again
        assert wd.detected[ErrorType.PROGRAM_FLOW] == 1

    def test_unknown_runnable_still_counted(self):
        wd = make_watchdog()
        wd.heartbeat_indication("ghost", 1, task="T")
        assert wd.hbm.unknown_heartbeats == 1

    def test_set_activation_status_unknown_raises(self):
        wd = make_watchdog()
        with pytest.raises(ValueError, match="ghost"):
            wd.set_activation_status("ghost", False)


class TestCheckCycle:
    def test_aliveness_detection_via_cycles(self):
        wd = make_watchdog()
        wd.check_cycle(10)
        wd.check_cycle(20)  # period 2 expires, no heartbeats recorded
        assert wd.detected[ErrorType.ALIVENESS] == 3  # A, B and C all missed
        assert wd.check_cycle_count == 2

    def test_detection_count_filters(self):
        wd = make_watchdog()
        wd.check_cycle(10)
        wd.check_cycle(20)
        assert wd.detection_count(ErrorType.ALIVENESS) == 3
        assert wd.detection_count(ErrorType.ALIVENESS, runnable="A") == 1
        assert wd.detection_count(runnable="A") == 1
        assert wd.detection_count(ErrorType.PROGRAM_FLOW) == 0

    def test_activation_status_gate(self):
        wd = make_watchdog()
        wd.set_activation_status("A", False)
        wd.set_activation_status("B", False)
        wd.set_activation_status("C", False)
        wd.check_cycle(10)
        wd.check_cycle(20)
        assert wd.detection_count() == 0


class TestCapture:
    def test_capture_records_counters_and_results(self):
        wd = make_watchdog()
        history = wd.enable_capture()
        wd.heartbeat_indication("A", 1, task="T")
        wd.check_cycle(10)
        wd.check_cycle(20)
        assert len(history) == 2
        assert "A.AC" in history.series
        assert "AM_Result" in history.series
        assert "TaskState.T" in history.series
        # B and C missed the period -> AM_Result is 2 at the second cycle.
        assert history.column("AM_Result") == [0, 2]

    def test_task_state_in_capture_flips(self):
        wd = make_watchdog(threshold=2)
        history = wd.enable_capture()
        wd.check_cycle(10)
        wd.check_cycle(20)  # 3 aliveness errors (one per runnable)
        wd.check_cycle(30)
        wd.check_cycle(40)  # second error for each -> threshold 2 -> faulty
        column = history.column("TaskState.T")
        assert column[-1] == 1
        assert column[0] == 0


class TestSupervisionReports:
    def test_reports_cover_every_monitored_runnable(self):
        wd = make_watchdog()
        wd.heartbeat_indication("C", 1, task="T")  # one flow error
        reports = wd.supervision_reports(time=100)
        by_name = {r.runnable: r for r in reports}
        assert set(by_name) == {"A", "B", "C"}
        assert by_name["C"].state is MonitorState.SUSPICIOUS
        assert by_name["C"].error_counts[ErrorType.PROGRAM_FLOW] == 1
        assert by_name["A"].state is MonitorState.OK
        assert by_name["A"].total_errors == 0


class TestReset:
    def test_reset_clears_all_state(self):
        wd = make_watchdog(threshold=1)
        wd.heartbeat_indication("C", 1, task="T")
        assert wd.ecu_state() is MonitorState.FAULTY
        wd.reset()
        assert wd.detection_count() == 0
        assert wd.ecu_state() is MonitorState.OK
        assert wd.check_cycle_count == 0

    def test_after_reset_operates_normally(self):
        wd = make_watchdog()
        wd.reset()
        run_healthy_cycle(wd, 0)
        assert wd.detection_count() == 0
