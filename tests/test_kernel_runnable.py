"""Tests for the runnable model and sequence charts."""

import pytest

from repro.kernel import (
    Kernel,
    KernelConfigError,
    Runnable,
    SequenceChart,
    Task,
    TraceKind,
    ms,
    runnable_sequence_body,
)


class TestRunnableBasics:
    def test_negative_wcet_rejected(self, kernel):
        with pytest.raises(KernelConfigError):
            Runnable("bad", kernel, wcet=-1)

    def test_behaviour_called_once_per_execution(self, kernel, alarms):
        calls = []
        r = Runnable("R", kernel, wcet=ms(1),
                     behaviour=lambda rn, t: calls.append(kernel.clock.now))
        kernel.add_task(Task("T", 1, runnable_sequence_body([r])))
        alarms.alarm_activate_task("A", "T").set_rel(ms(10), ms(10))
        kernel.run_until(ms(35))
        assert calls == [ms(11), ms(21), ms(31)]
        assert r.execution_count == 3

    def test_entry_and_exit_glue_order(self, kernel):
        events = []
        r = Runnable("R", kernel, wcet=ms(1),
                     behaviour=lambda rn, t: events.append("behaviour"))
        r.add_entry_glue(lambda rn, t: events.append("entry"))
        r.add_exit_glue(lambda rn, t: events.append("exit"))
        kernel.add_task(Task("T", 1, runnable_sequence_body([r])))
        kernel.activate_task("T")
        kernel.run_until(ms(10))
        assert events == ["entry", "behaviour", "exit"]

    def test_disabled_runnable_skipped(self, kernel):
        r1 = Runnable("R1", kernel, wcet=ms(1))
        r2 = Runnable("R2", kernel, wcet=ms(1))
        r2.enabled = False
        kernel.add_task(Task("T", 1, runnable_sequence_body([r1, r2])))
        kernel.activate_task("T")
        kernel.run_until(ms(10))
        assert r1.execution_count == 1
        assert r2.execution_count == 0
        # Task still terminates on time without the disabled runnable.
        assert kernel.trace.last(TraceKind.TASK_TERMINATE, "T").time == ms(1)

    def test_repeat_executes_multiple_times(self, kernel):
        r = Runnable("R", kernel, wcet=ms(1))
        r.repeat = 3
        kernel.add_task(Task("T", 1, runnable_sequence_body([r])))
        kernel.activate_task("T")
        kernel.run_until(ms(10))
        assert r.execution_count == 3
        assert kernel.trace.last(TraceKind.TASK_TERMINATE, "T").time == ms(3)

    def test_execution_time_fn_jitter(self, kernel):
        times = iter([ms(1), ms(3), ms(2)])
        r = Runnable("R", kernel, wcet=ms(1), execution_time_fn=lambda: next(times))
        kernel.add_task(Task("T", 1, runnable_sequence_body([r]), max_activations=3))
        for _ in range(3):
            kernel.activate_task("T")
        kernel.run_until(ms(20))
        terminates = [rec.time for rec in kernel.trace.filter(kind=TraceKind.TASK_TERMINATE)]
        assert terminates == [ms(1), ms(4), ms(6)]

    def test_negative_execution_time_fn_raises(self, kernel):
        r = Runnable("R", kernel, wcet=0, execution_time_fn=lambda: -5)
        kernel.add_task(Task("T", 1, runnable_sequence_body([r])))
        kernel.activate_task("T")
        with pytest.raises(ValueError):
            kernel.run_until(ms(10))

    def test_trace_records_start_and_end(self, kernel):
        r = Runnable("R", kernel, wcet=ms(2))
        kernel.add_task(Task("T", 1, runnable_sequence_body([r])))
        kernel.activate_task("T")
        kernel.run_until(ms(10))
        start = kernel.trace.first(TraceKind.RUNNABLE_START, "R")
        end = kernel.trace.first(TraceKind.RUNNABLE_END, "R")
        assert start.time == 0
        assert end.time == ms(2)
        assert start.info["task"] == "T"


class TestSequenceChart:
    def make_chart(self, kernel, names=("A", "B", "C")):
        runnables = [Runnable(n, kernel, wcet=ms(1)) for n in names]
        return SequenceChart("Chart", runnables), runnables

    def test_empty_chart_rejected(self, kernel):
        with pytest.raises(KernelConfigError):
            SequenceChart("Chart", [])

    def test_duplicate_names_rejected(self, kernel):
        r = Runnable("A", kernel, wcet=1)
        with pytest.raises(KernelConfigError):
            SequenceChart("Chart", [r, r])

    def test_nominal_order(self, kernel):
        chart, runnables = self.make_chart(kernel)
        kernel.add_task(Task("T", 1, chart.body()))
        kernel.activate_task("T")
        kernel.run_until(ms(10))
        starts = [r.subject for r in kernel.trace.filter(kind=TraceKind.RUNNABLE_START)]
        assert starts == ["A", "B", "C"]

    def test_nominal_pairs(self, kernel):
        chart, _ = self.make_chart(kernel)
        assert chart.nominal_pairs() == [("A", "B"), ("B", "C")]

    def test_custom_decision_function(self, kernel):
        chart, runnables = self.make_chart(kernel)
        sequence = chart.runnables

        def decide(task, step, previous):
            # Skip B: step by predecessor position in the nominal order.
            index = 0 if previous is None else sequence.index(previous) + 1
            while index < len(sequence) and sequence[index].name == "B":
                index += 1
            return sequence[index] if index < len(sequence) else None

        chart.decide = decide
        kernel.add_task(Task("T", 1, chart.body()))
        kernel.activate_task("T")
        kernel.run_until(ms(10))
        starts = [r.subject for r in kernel.trace.filter(kind=TraceKind.RUNNABLE_START)]
        assert starts == ["A", "C"]

    def test_reset_decision_restores_nominal(self, kernel):
        chart, _ = self.make_chart(kernel)
        chart.decide = lambda task, step, prev: None
        chart.reset_decision()
        kernel.add_task(Task("T", 1, chart.body()))
        kernel.activate_task("T")
        kernel.run_until(ms(10))
        assert kernel.trace.count(TraceKind.RUNNABLE_END) == 3
