"""Tests for the fixed-priority schedulability analysis."""

import pytest

from repro.kernel import ms
from repro.platform import (
    AnalysisError,
    TaskTiming,
    assign_rate_monotonic_priorities,
    is_schedulable,
    liu_layland_bound,
    response_time,
    response_time_analysis,
    total_utilization,
    utilization_test,
)


class TestTaskTiming:
    def test_utilization(self):
        t = TaskTiming("T", wcet=2, period=10, priority=1)
        assert t.utilization == 0.2

    def test_implicit_deadline(self):
        t = TaskTiming("T", wcet=2, period=10, priority=1)
        assert t.effective_deadline == 10

    def test_explicit_deadline(self):
        t = TaskTiming("T", wcet=2, period=10, priority=1, deadline=7)
        assert t.effective_deadline == 7

    def test_invalid_parameters(self):
        with pytest.raises(AnalysisError):
            TaskTiming("T", wcet=-1, period=10, priority=1)
        with pytest.raises(AnalysisError):
            TaskTiming("T", wcet=1, period=0, priority=1)
        with pytest.raises(AnalysisError):
            TaskTiming("T", wcet=1, period=10, priority=1, deadline=0)


class TestUtilizationTest:
    def test_liu_layland_known_values(self):
        assert liu_layland_bound(1) == pytest.approx(1.0)
        assert liu_layland_bound(2) == pytest.approx(0.8284, abs=1e-3)
        assert liu_layland_bound(3) == pytest.approx(0.7798, abs=1e-3)

    def test_bound_requires_tasks(self):
        with pytest.raises(AnalysisError):
            liu_layland_bound(0)

    def test_under_bound_passes(self):
        tasks = [
            TaskTiming("A", wcet=1, period=10, priority=2),
            TaskTiming("B", wcet=2, period=20, priority=1),
        ]
        assert total_utilization(tasks) == pytest.approx(0.2)
        assert utilization_test(tasks)

    def test_over_bound_fails(self):
        tasks = [
            TaskTiming("A", wcet=5, period=10, priority=2),
            TaskTiming("B", wcet=8, period=20, priority=1),
        ]
        assert not utilization_test(tasks)

    def test_empty_set_schedulable(self):
        assert utilization_test([])


class TestResponseTimeAnalysis:
    def classic_set(self):
        # Well-known example: C=(1,2,3), T=(4,6,12) under RM.
        return [
            TaskTiming("T1", wcet=1, period=4, priority=3),
            TaskTiming("T2", wcet=2, period=6, priority=2),
            TaskTiming("T3", wcet=3, period=12, priority=1),
        ]

    def test_known_response_times(self):
        tasks = self.classic_set()
        rta = response_time_analysis(tasks)
        assert rta["T1"] == 1
        assert rta["T2"] == 3
        # T3: classic fixed point R = 3 + ceil(R/4)*1 + ceil(R/6)*2 -> 10.
        assert rta["T3"] == 10

    def test_schedulable(self):
        assert is_schedulable(self.classic_set())

    def test_unschedulable_diverges(self):
        tasks = [
            TaskTiming("Hi", wcet=5, period=8, priority=2),
            TaskTiming("Lo", wcet=5, period=10, priority=1),
        ]
        assert response_time(tasks[1], tasks) is None
        assert not is_schedulable(tasks)

    def test_highest_priority_is_own_wcet(self):
        tasks = self.classic_set()
        assert response_time(tasks[0], tasks) == tasks[0].wcet

    def test_full_utilization_boundary(self):
        """U = 1.0 harmonic set is exactly schedulable under RM."""
        tasks = [
            TaskTiming("A", wcet=1, period=2, priority=2),
            TaskTiming("B", wcet=2, period=4, priority=1),
        ]
        assert is_schedulable(tasks)
        assert response_time(tasks[1], tasks) == 4


class TestRateMonotonic:
    def test_shorter_period_higher_priority(self):
        tasks = [
            TaskTiming("Slow", wcet=1, period=100, priority=0),
            TaskTiming("Fast", wcet=1, period=10, priority=0),
        ]
        assigned = {t.name: t.priority for t in assign_rate_monotonic_priorities(tasks)}
        assert assigned["Fast"] > assigned["Slow"]

    def test_ties_broken_by_name(self):
        tasks = [
            TaskTiming("B", wcet=1, period=10, priority=0),
            TaskTiming("A", wcet=1, period=10, priority=0),
        ]
        assigned = {t.name: t.priority for t in assign_rate_monotonic_priorities(tasks)}
        assert assigned["A"] > assigned["B"]

    def test_preserves_other_fields(self):
        tasks = [TaskTiming("A", wcet=3, period=9, priority=0, deadline=8)]
        out = assign_rate_monotonic_priorities(tasks)[0]
        assert (out.wcet, out.period, out.deadline) == (3, 9, 8)


class TestMappingIntegration:
    def test_safespeed_mapping_timings(self, safespeed_mapping):
        timings = safespeed_mapping.task_timings()
        assert len(timings) == 1
        timing = timings[0]
        assert timing.wcet == ms(4)  # 1 + 2 + 1 ms
        assert timing.period == ms(10)
        assert is_schedulable(timings)
