"""Tests for the OSEKtime-style deadline monitor baseline."""

import pytest

from repro.baselines import DeadlineMonitor
from repro.core import ErrorType
from repro.faults import (
    BlockedRunnableFault,
    FaultTarget,
    SkipRunnableFault,
    TimeScalarFault,
)
from repro.kernel import Segment, Task, TraceKind, ms, seconds
from repro.platform import Ecu, FmfPolicy

from testutil import make_safespeed_mapping, periodic_task


@pytest.fixture
def supervised_ecu():
    ecu = Ecu(
        "central",
        make_safespeed_mapping(),
        watchdog_period=ms(10),
        fmf_policy=FmfPolicy(ecu_faulty_task_threshold=99, max_app_restarts=10**9),
    )
    monitor = DeadlineMonitor(ecu.kernel)
    monitor.monitor("SafeSpeedTask", deadline=ms(8))  # WCET 4 ms, period 10 ms
    ecu.run_until(ms(200))
    assert monitor.violation_count == 0
    return ecu, monitor


class TestBasicOperation:
    def test_on_time_task_clean(self, kernel, alarms):
        periodic_task(kernel, alarms, "T", 5, ms(10), [ms(2)])
        monitor = DeadlineMonitor(kernel)
        monitor.monitor("T", deadline=ms(5))
        kernel.run_until(seconds(1))
        assert monitor.violation_count == 0

    def test_overrunning_task_flagged(self, kernel, alarms):
        periodic_task(kernel, alarms, "T", 5, ms(10), [ms(7)])
        monitor = DeadlineMonitor(kernel)
        monitor.monitor("T", deadline=ms(5))
        kernel.run_until(ms(100))
        assert monitor.violation_count > 0
        assert monitor.violations_by_task["T"] > 0

    def test_hung_task_flagged(self, kernel, alarms):
        def hang_body(task):
            yield Segment(seconds(10))

        kernel.add_task(Task("Hang", 5, hang_body))
        monitor = DeadlineMonitor(kernel)
        monitor.monitor("Hang", deadline=ms(20))
        kernel.activate_task("Hang")
        kernel.run_until(ms(100))
        assert monitor.violation_count == 1
        assert monitor.violation_times[0] == ms(20)

    def test_invalid_deadline(self, kernel):
        monitor = DeadlineMonitor(kernel)
        with pytest.raises(ValueError):
            monitor.monitor("T", deadline=0)

    def test_unmonitored_tasks_ignored(self, kernel, alarms):
        periodic_task(kernel, alarms, "T", 5, ms(10), [ms(9)])
        monitor = DeadlineMonitor(kernel)
        kernel.run_until(ms(100))
        assert monitor.violation_count == 0

    def test_detector_interface(self, kernel, alarms):
        periodic_task(kernel, alarms, "T", 5, ms(10), [ms(7)])
        monitor = DeadlineMonitor(kernel)
        monitor.monitor("T", deadline=ms(5))
        kernel.run_until(ms(50))
        assert monitor.first_detection_after(0) == ms(15)  # 10 + 5


class TestGranularityBlindSpot:
    """Task-level deadlines cannot see inside the task (§2)."""

    def test_skipped_runnable_invisible(self, supervised_ecu):
        """Skipping a runnable makes the task FASTER — the deadline
        monitor stays happy while the Software Watchdog flags both the
        flow violation and the missing runnable."""
        ecu, monitor = supervised_ecu
        SkipRunnableFault("SafeSpeedTask", "SAFE_CC_process").inject(
            FaultTarget.from_ecu(ecu)
        )
        ecu.run_until(ecu.now + seconds(2))
        assert monitor.violation_count == 0
        assert ecu.watchdog.detection_count(ErrorType.PROGRAM_FLOW) > 0
        assert ecu.watchdog.detection_count(ErrorType.ALIVENESS) > 0

    def test_task_hang_visible_to_both(self, supervised_ecu):
        ecu, monitor = supervised_ecu
        BlockedRunnableFault("SAFE_CC_process").inject(FaultTarget.from_ecu(ecu))
        # A blocked runnable is skipped in our model (the task still
        # terminates): deadline monitor blind, software watchdog sees it.
        ecu.run_until(ecu.now + seconds(1))
        assert monitor.violation_count == 0
        assert ecu.watchdog.detection_count(ErrorType.ALIVENESS) > 0

    def test_slowed_task_visible_to_both(self, supervised_ecu):
        """A genuinely slowed task (4x period scale means late
        activations, not long executions) — the deadline monitor sees
        nothing wrong per activation; aliveness monitoring does."""
        ecu, monitor = supervised_ecu
        TimeScalarFault("SafeSpeedTask", scalar=4.0).inject(
            FaultTarget.from_ecu(ecu)
        )
        ecu.run_until(ecu.now + seconds(2))
        # Each activation still meets its deadline...
        assert monitor.violation_count == 0
        # ... but the arrival pattern violates the fault hypothesis.
        assert ecu.watchdog.detection_count(ErrorType.ALIVENESS) > 0
