"""Tests reproducing the paper's evaluation figures (the headline result).

These are the acceptance tests of the reproduction: each asserts the
*shape* the paper reports for Figures 5 and 6 and for the two evaluation
cases the text states were "performed as well".
"""

import pytest

from repro.experiments import run_figure5, run_figure5b, run_figure5c, run_figure6
from repro.kernel import ms, seconds


@pytest.fixture(scope="module")
def fig5():
    return run_figure5(warmup=seconds(1), faulty_window=seconds(1),
                       recovery=ms(500))


@pytest.fixture(scope="module")
def fig5b():
    return run_figure5b(warmup=seconds(1), faulty_window=seconds(1),
                        recovery=ms(500))


@pytest.fixture(scope="module")
def fig5c():
    return run_figure5c(warmup=seconds(1), faulty_window=seconds(1),
                        recovery=ms(500))


@pytest.fixture(scope="module")
def fig6():
    return run_figure6()


class TestFigure5Aliveness:
    def test_no_errors_before_injection(self, fig5):
        assert fig5.measurement("errors_before_injection") == 0

    def test_errors_accumulate_during_fault(self, fig5):
        assert fig5.measurement("errors_during_fault") > 10

    def test_am_result_monotone_steps(self, fig5):
        am = fig5.series["AM_Result"]
        assert all(b >= a for a, b in zip(am, am[1:]))
        assert am[-1] > am[0]

    def test_detection_stops_after_recovery(self, fig5):
        # At most a couple of period-straddling detections post-recovery.
        assert fig5.measurement("errors_after_recovery") <= 3

    def test_only_aliveness_errors(self, fig5):
        assert fig5.measurement("arrival_rate_errors") == 0
        assert fig5.measurement("program_flow_errors") == 0

    def test_counter_series_present(self, fig5):
        assert "SAFE_CC_process.AC" in fig5.series
        assert "SAFE_CC_process.CCA" in fig5.series

    def test_rendered_figure(self, fig5):
        assert "Figure 5" in fig5.rendered
        assert "AM_Result" in fig5.rendered


class TestFigure5bArrivalRate:
    def test_arrival_errors_during_fault(self, fig5b):
        assert fig5b.measurement("errors_during_fault") > 10

    def test_clean_before_injection(self, fig5b):
        assert fig5b.measurement("errors_before_injection") == 0

    def test_stops_after_recovery(self, fig5b):
        assert fig5b.measurement("errors_after_recovery") <= 3

    def test_arm_result_monotone(self, fig5b):
        arm = fig5b.series["ARM_Result"]
        assert all(b >= a for a, b in zip(arm, arm[1:]))


class TestFigure5cControlFlow:
    def test_flow_errors_during_fault(self, fig5c):
        assert fig5c.measurement("errors_during_fault") > 10

    def test_clean_before_injection(self, fig5c):
        assert fig5c.measurement("errors_before_injection") == 0

    def test_stops_after_recovery(self, fig5c):
        assert fig5c.measurement("errors_after_recovery") <= 3


class TestFigure6Collaboration:
    def test_task_declared_faulty(self, fig6):
        assert fig6.measurement("task_faulty")

    def test_pfc_threshold_triggers_task_fault(self, fig6):
        """The paper: after the third program flow error the task state
        is set to faulty."""
        assert fig6.measurement("pfc_errors_at_task_fault") == 3

    def test_aliveness_at_most_one_at_task_fault(self, fig6):
        """The paper: only one accumulated aliveness error is reported
        by then — the flow checker wins the root-cause race."""
        assert fig6.measurement("aliveness_errors_at_task_fault") <= 1

    def test_flow_errors_dominate_aliveness(self, fig6):
        """Collaboration shape: the PFC result grows much faster than
        the aliveness result, identifying the real cause."""
        pfc = fig6.series["PFC_Result"][-1]
        am = fig6.series["AM_Result"][-1]
        assert pfc >= 3 * am

    def test_task_state_flips_and_holds(self, fig6):
        state = fig6.series["TaskState_SafeSpeed"]
        assert state[0] == 0
        assert state[-1] == 1
        # Once faulty, stays faulty (no auto-treatment in this figure).
        first_faulty = state.index(1)
        assert all(v == 1 for v in state[first_faulty:])
