"""Tests for wdlint — the fault-hypothesis static analyzer.

One seeded-defect test per diagnostic code (asserting code *and*
severity), plus the renderers, the construction-time ``lint=`` knob on
the watchdog / ECU / HIL layers, and the tool-chain lint step.
"""

import json

import pytest

from repro.core import (
    ErrorType,
    FaultHypothesis,
    RunnableHypothesis,
    SoftwareWatchdog,
    ThresholdPolicy,
)
from repro.kernel import ms
from repro.lint import (
    CODES,
    LintError,
    LintWarning,
    Severity,
    lint_builtin,
    lint_flow_table,
    lint_hypothesis,
)
from repro.platform import TaskMapping, TaskSpec

from testutil import make_safespeed_mapping


def two_task_hypothesis():
    """A healthy two-task hypothesis the defect tests perturb."""
    hyp = FaultHypothesis()
    hyp.add_runnable(RunnableHypothesis(
        "A", task="T1", aliveness_period=2, min_heartbeats=1,
        arrival_period=2, max_heartbeats=3))
    hyp.add_runnable(RunnableHypothesis(
        "B", task="T1", aliveness_period=2, min_heartbeats=1,
        arrival_period=2, max_heartbeats=3))
    hyp.add_runnable(RunnableHypothesis(
        "C", task="T2", aliveness_period=2, min_heartbeats=1,
        arrival_period=2, max_heartbeats=3))
    hyp.allow_sequence(["A", "B"])
    hyp.allow_sequence(["C"])
    return hyp


def only(report, code):
    """The diagnostics of one code, asserting the registry severity."""
    found = report.by_code(code)
    assert found, f"expected {code} in {report.codes()}"
    for diag in found:
        assert diag.severity is CODES[code][1]
    return found


class TestCleanBaseline:
    def test_healthy_hypothesis_is_clean(self):
        report = lint_hypothesis(two_task_hypothesis())
        assert report.clean and report.ok and report.codes() == []

    @pytest.mark.parametrize("name", ["safespeed", "safelane", "steer-by-wire"])
    def test_shipped_app_hypotheses_lint_clean(self, name):
        report = lint_builtin(name)
        assert report.clean, report.render_text()


class TestFlowGraphCodes:
    def test_wd101_unreachable_runnable(self):
        hyp = two_task_hypothesis()
        hyp.add_runnable(RunnableHypothesis(
            "Orphan", task="T1", aliveness_period=2, arrival_period=2,
            max_heartbeats=3))
        hyp.allow_flow("Orphan", "B")  # participates, but nothing leads to it
        diag = only(lint_hypothesis(hyp), "WD101")[0]
        assert diag.severity is Severity.ERROR
        assert diag.subject == "Orphan"

    def test_wd102_dead_transition(self):
        hyp = two_task_hypothesis()
        hyp.allow_flow("A", "ghost")
        diag = only(lint_hypothesis(hyp), "WD102")[0]
        assert diag.severity is Severity.ERROR
        assert diag.subject == "ghost"
        assert ["A", "ghost"] in diag.context["pairs"]

    def test_wd103_missing_entry_point(self):
        hyp = FaultHypothesis()
        hyp.add_runnable(RunnableHypothesis("A", task="T1", max_heartbeats=2))
        hyp.add_runnable(RunnableHypothesis("B", task="T1", max_heartbeats=2))
        hyp.allow_flow("A", "B")  # adjacency only, no (None, A) entry
        report = lint_hypothesis(hyp)
        diag = only(report, "WD103")[0]
        assert diag.severity is Severity.ERROR
        assert diag.subject == "T1"
        # ... and with no entries at all, everything is also unreachable.
        assert report.by_code("WD101")

    def test_wd104_cross_task_transition(self):
        hyp = two_task_hypothesis()
        hyp.allow_flow("B", "C")  # T1 -> T2: stream keying never sees it
        diag = only(lint_hypothesis(hyp), "WD104")[0]
        assert diag.severity is Severity.WARNING
        assert diag.context["predecessor_task"] == "T1"
        assert diag.context["successor_task"] == "T2"

    def test_wd104_edge_grants_no_reachability(self):
        """A runnable reachable only over a cross-task edge is flagged
        unreachable too: the edge can never fire."""
        hyp = two_task_hypothesis()
        hyp.flow_pairs = [p for p in hyp.flow_pairs if p != (None, "C")]
        hyp.allow_flow("B", "C")
        report = lint_hypothesis(hyp)
        assert report.by_code("WD104")
        assert [d.subject for d in report.by_code("WD101")] == ["C"]

    def test_wd105_unreachable_flow_threshold(self):
        hyp = FaultHypothesis(
            thresholds=ThresholdPolicy(per_type={ErrorType.PROGRAM_FLOW: 3}))
        hyp.add_runnable(RunnableHypothesis("A", task="T", max_heartbeats=2))
        diag = only(lint_hypothesis(hyp), "WD105")[0]
        assert diag.severity is Severity.WARNING

    def test_empty_flow_table_is_not_an_error(self):
        hyp = FaultHypothesis()
        hyp.add_runnable(RunnableHypothesis("A", task="T", max_heartbeats=2))
        assert lint_hypothesis(hyp).clean


class TestCounterBoundCodes:
    def test_wd201_contradictory_bounds(self):
        hyp = FaultHypothesis()
        # Aliveness demands >= 3 per 2 cycles; arrival tolerates <= 2 per
        # 2 cycles: every conforming rate alarms one of the two checks.
        hyp.add_runnable(RunnableHypothesis(
            "A", task="T", aliveness_period=2, min_heartbeats=3,
            arrival_period=2, max_heartbeats=2))
        diag = only(lint_hypothesis(hyp), "WD201")[0]
        assert diag.severity is Severity.ERROR
        assert diag.subject == "A"

    def test_wd201_respects_differing_periods(self):
        hyp = FaultHypothesis()
        # >= 1 per 4 cycles vs <= 1 per 2 cycles: feasible (rate 1/4).
        hyp.add_runnable(RunnableHypothesis(
            "A", task="T", aliveness_period=4, min_heartbeats=1,
            arrival_period=2, max_heartbeats=1))
        assert not lint_hypothesis(hyp).by_code("WD201")

    def test_wd202_vacuous_aliveness(self):
        hyp = FaultHypothesis()
        hyp.add_runnable(RunnableHypothesis(
            "A", task="T", min_heartbeats=0, max_heartbeats=2))
        diag = only(lint_hypothesis(hyp), "WD202")[0]
        assert diag.severity is Severity.WARNING

    def test_wd203_vacuous_arrival(self):
        hyp = FaultHypothesis()
        hyp.add_runnable(RunnableHypothesis(
            "A", task="T", min_heartbeats=0, max_heartbeats=0))
        report = lint_hypothesis(hyp)
        diag = only(report, "WD203")[0]
        assert diag.severity is Severity.WARNING
        assert report.by_code("WD202")  # both halves are vacuous/defective

    def test_inactive_runnables_skip_bound_checks(self):
        hyp = FaultHypothesis()
        hyp.add_runnable(RunnableHypothesis(
            "A", task="T", min_heartbeats=3, max_heartbeats=0, active=False))
        assert lint_hypothesis(hyp).clean

    def test_wd204_invalid_threshold(self):
        hyp = FaultHypothesis(
            thresholds=ThresholdPolicy(
                default=0, per_type={ErrorType.ALIVENESS: -1}))
        hyp.add_runnable(RunnableHypothesis("A", task="T", max_heartbeats=2))
        found = only(lint_hypothesis(hyp), "WD204")
        assert len(found) == 2  # the default and the per-type entry
        assert all(d.severity is Severity.ERROR for d in found)


class TestSystemCrossChecks:
    def test_wd301_schedule_rate_mismatch_aliveness(self, safespeed_mapping):
        hyp = FaultHypothesis()
        # 10 ms window over a 10 ms task: at most 1 completion; 2 demanded.
        hyp.add_runnable(RunnableHypothesis(
            "GetSensorValue", task="SafeSpeedTask", aliveness_period=1,
            min_heartbeats=2, arrival_period=2, max_heartbeats=5))
        report = lint_hypothesis(
            hyp, mapping=safespeed_mapping, watchdog_period=ms(10))
        diag = only(report, "WD301")[0]
        assert diag.severity is Severity.ERROR
        assert diag.context["bound"] == "min_heartbeats"

    def test_wd301_schedule_rate_mismatch_arrival(self, safespeed_mapping):
        hyp = FaultHypothesis()
        # 40 ms arrival window nominally delivers 4 runs; 2 tolerated.
        hyp.add_runnable(RunnableHypothesis(
            "GetSensorValue", task="SafeSpeedTask", aliveness_period=8,
            min_heartbeats=1, arrival_period=4, max_heartbeats=2))
        report = lint_hypothesis(
            hyp, mapping=safespeed_mapping, watchdog_period=ms(10))
        diag = only(report, "WD301")[0]
        assert diag.context["bound"] == "max_heartbeats"

    def test_wd302_task_attribution_mismatch(self, safespeed_mapping):
        hyp = FaultHypothesis()
        hyp.add_runnable(RunnableHypothesis(
            "GetSensorValue", task="WrongTask", aliveness_period=2,
            arrival_period=2, max_heartbeats=3))
        diag = only(lint_hypothesis(
            hyp, mapping=safespeed_mapping, watchdog_period=ms(10)),
            "WD302")[0]
        assert diag.severity is Severity.ERROR
        assert diag.context["mapped_task"] == "SafeSpeedTask"

    def test_wd303_unplaced_runnable(self, safespeed_mapping):
        hyp = FaultHypothesis()
        hyp.add_runnable(RunnableHypothesis("ghost", task="SafeSpeedTask"))
        diag = only(lint_hypothesis(
            hyp, mapping=safespeed_mapping, watchdog_period=ms(10)),
            "WD303")[0]
        assert diag.severity is Severity.ERROR

    def test_generated_hypothesis_cross_checks_clean(self, safespeed_mapping):
        from repro.platform import SystemBuilder

        builder = SystemBuilder(safespeed_mapping, watchdog_period=ms(10))
        report = lint_hypothesis(
            builder.derive_hypothesis(), mapping=safespeed_mapping,
            watchdog_period=ms(10))
        assert report.clean, report.render_text()

    def test_mapping_requires_watchdog_period(self, safespeed_mapping):
        with pytest.raises(ValueError):
            lint_hypothesis(two_task_hypothesis(), mapping=safespeed_mapping)


class TestFlowTableLint:
    def test_mined_style_table_is_clean(self):
        from repro.core import FlowTable

        table = FlowTable()
        table.allow_sequence(["A", "B", "C"])
        report = lint_flow_table(
            table, task_of={"A": "T", "B": "T", "C": "T"})
        assert report.clean

    def test_pairs_roundtrip_through_flow_table(self):
        from repro.core import FlowTable

        hyp = two_task_hypothesis()
        table = FlowTable.from_hypothesis(hyp)
        assert sorted(table.pairs(), key=str) == sorted(
            set(hyp.flow_pairs), key=str)


class TestRenderers:
    def test_text_rendering(self):
        hyp = two_task_hypothesis()
        hyp.allow_flow("A", "ghost")
        report = lint_hypothesis(hyp, source="unit")
        text = report.render_text()
        assert text.startswith("unit:")
        assert "WD102" in text and "error" in text

    def test_json_rendering(self):
        hyp = two_task_hypothesis()
        hyp.allow_flow("A", "ghost")
        report = lint_hypothesis(hyp, source="unit")
        data = json.loads(report.render_json())
        assert data["source"] == "unit"
        assert data["ok"] is False
        assert data["summary"]["errors"] >= 1
        codes = [d["code"] for d in data["diagnostics"]]
        assert "WD102" in codes
        entry = data["diagnostics"][codes.index("WD102")]
        assert entry["slug"] == "dead-transition"
        assert entry["severity"] == "error"

    def test_clean_report_renders_ok(self):
        report = lint_hypothesis(two_task_hypothesis(), source="unit")
        assert report.render_text() == "unit: ok"

    def test_source_stamped_on_diagnostics(self):
        hyp = two_task_hypothesis()
        hyp.allow_flow("A", "ghost")
        report = lint_hypothesis(hyp, source="stamped")
        assert all(d.source == "stamped" for d in report.diagnostics)


class TestConstructionTimeKnob:
    def contradictory(self):
        # Passes FaultHypothesis.validate() but cannot be satisfied.
        hyp = FaultHypothesis()
        hyp.add_runnable(RunnableHypothesis(
            "A", task="T", aliveness_period=2, min_heartbeats=3,
            arrival_period=2, max_heartbeats=2))
        hyp.allow_sequence(["A"])
        return hyp

    def test_lint_error_refuses_construction(self):
        with pytest.raises(LintError) as excinfo:
            SoftwareWatchdog(self.contradictory(), lint="error")
        assert "WD201" in str(excinfo.value)
        assert excinfo.value.report.by_code("WD201")

    def test_lint_warn_default_warns_and_builds(self):
        with pytest.warns(LintWarning, match="WD201"):
            wd = SoftwareWatchdog(self.contradictory())
        assert wd.hypothesis.runnables

    def test_lint_off_is_silent(self, recwarn):
        SoftwareWatchdog(self.contradictory(), lint="off")
        assert not [w for w in recwarn.list
                    if issubclass(w.category, LintWarning)]

    def test_clean_hypothesis_never_warns(self, recwarn):
        SoftwareWatchdog(two_task_hypothesis())
        assert not [w for w in recwarn.list
                    if issubclass(w.category, LintWarning)]

    def test_unknown_lint_mode_rejected(self):
        with pytest.raises(ValueError, match="lint mode"):
            SoftwareWatchdog(two_task_hypothesis(), lint="loud")

    def test_ecu_threads_lint_knob(self, recwarn):
        from repro.platform import Ecu

        # The generated hypothesis is clean, so even "error" constructs.
        ecu = Ecu("node", make_safespeed_mapping(), watchdog_period=ms(10),
                  lint="error")
        assert ecu.watchdog.detection_count() == 0
        assert not [w for w in recwarn.list
                    if issubclass(w.category, LintWarning)]

    def test_hil_validator_threads_lint_knob(self):
        from repro.validator import HilValidator

        rig = HilValidator(lint="error", include_steering=True)
        assert rig.ecu.watchdog.hypothesis.runnables


class TestToolchainLintStep:
    def test_pipeline_lints_generated_hypothesis(self):
        from repro.experiments import run_toolchain
        from repro.kernel import seconds

        report = run_toolchain(horizon=seconds(0.1))
        assert report.lint_ok
        assert report.lint_diagnostics == []
