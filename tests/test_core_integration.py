"""Tests for OSEK integration: glue code and the watchdog task binding."""

import pytest

from repro.core import (
    FaultHypothesis,
    RunnableHypothesis,
    SoftwareWatchdog,
    WatchdogTaskBinding,
    install_glue_on_all,
    install_heartbeat_glue,
)
from repro.core.reports import ErrorType
from repro.kernel import (
    AlarmTable,
    Kernel,
    Runnable,
    Task,
    TraceKind,
    ms,
    runnable_sequence_body,
)


def build_system(kernel, alarms, *, period=ms(10), aliveness_period=2,
                 check_cost=0, wd_priority=20):
    names = ["A", "B", "C"]
    runnables = [Runnable(n, kernel, wcet=ms(1)) for n in names]
    kernel.add_task(Task("AppTask", 5, runnable_sequence_body(runnables)))
    alarms.alarm_activate_task("AppAlarm", "AppTask").set_rel(period, period)
    hyp = FaultHypothesis()
    for name in names:
        hyp.add_runnable(
            RunnableHypothesis(name, task="AppTask",
                               aliveness_period=aliveness_period,
                               arrival_period=aliveness_period,
                               max_heartbeats=3)
        )
    hyp.allow_sequence(names)
    wd = SoftwareWatchdog(hyp)
    install_glue_on_all(wd, runnables)
    binding = WatchdogTaskBinding(
        kernel, alarms, wd, period=period, priority=wd_priority,
        check_cost=check_cost,
    )
    return wd, binding, runnables


class TestGlue:
    def test_glue_reports_heartbeats(self, kernel, alarms):
        wd, binding, runnables = build_system(kernel, alarms)
        kernel.run_until(ms(100))
        assert wd.hbm.heartbeat_count > 0
        assert kernel.trace.count(TraceKind.HEARTBEAT, "A") >= 9

    def test_glue_records_trace_with_task(self, kernel, alarms):
        wd, _, _ = build_system(kernel, alarms)
        kernel.run_until(ms(30))
        record = kernel.trace.first(TraceKind.HEARTBEAT, "A")
        assert record.info["task"] == "AppTask"

    def test_install_single(self, kernel):
        r = Runnable("solo", kernel, wcet=ms(1))
        hyp = FaultHypothesis()
        hyp.add_runnable(RunnableHypothesis("solo"))
        wd = SoftwareWatchdog(hyp)
        install_heartbeat_glue(wd, r)
        kernel.add_task(Task("T", 1, runnable_sequence_body([r])))
        kernel.activate_task("T")
        kernel.run_until(ms(10))
        assert wd.hbm.heartbeat_count == 1


class TestBinding:
    def test_periodic_check_cycles(self, kernel, alarms):
        wd, binding, _ = build_system(kernel, alarms)
        kernel.run_until(ms(100))
        assert wd.check_cycle_count == 10
        assert kernel.trace.count(TraceKind.WATCHDOG_CHECK) == 10

    def test_invalid_period_rejected(self, kernel, alarms):
        hyp = FaultHypothesis()
        wd = SoftwareWatchdog(hyp)
        with pytest.raises(ValueError):
            WatchdogTaskBinding(kernel, alarms, wd, period=0, priority=1)

    def test_healthy_no_false_positives(self, kernel, alarms):
        wd, _, _ = build_system(kernel, alarms)
        kernel.run_until(ms(500))
        assert wd.detection_count() == 0

    def test_check_cost_consumes_cpu(self, kernel, alarms):
        wd, binding, _ = build_system(kernel, alarms, check_cost=ms(1))
        kernel.run_until(ms(105))
        assert kernel.task_cpu_ticks[binding.task_name] == 10 * ms(1)

    def test_task_start_resets_flow_stream(self, kernel, alarms):
        """Each task activation may legally restart at the entry point —
        the binding's pre-task hook must reset the PFC stream."""
        wd, _, _ = build_system(kernel, alarms)
        kernel.run_until(ms(200))
        assert wd.detected[ErrorType.PROGRAM_FLOW] == 0

    def test_blocked_runnable_detected_end_to_end(self, kernel, alarms):
        wd, _, runnables = build_system(kernel, alarms)
        kernel.run_until(ms(100))
        runnables[1].enabled = False  # block B
        kernel.run_until(ms(300))
        assert wd.detected[ErrorType.ALIVENESS] > 0
        assert wd.detected[ErrorType.PROGRAM_FLOW] > 0  # A -> C illegal
        assert wd.detection_count(ErrorType.ALIVENESS, runnable="B") > 0
        # A and C keep running: no aliveness errors for them.
        assert wd.detection_count(ErrorType.ALIVENESS, runnable="A") == 0
        assert wd.detection_count(ErrorType.ALIVENESS, runnable="C") == 0

    def test_watchdog_priority_above_hog(self, kernel, alarms):
        """The watchdog check still runs while a lower-priority hog
        starves the application: the starvation is detected."""
        wd, binding, _ = build_system(kernel, alarms, wd_priority=20)

        def hog_body(task):
            from repro.kernel import Segment

            while True:
                yield Segment(ms(100))

        kernel.add_task(Task("Hog", 10, hog_body))  # above app (5), below wd
        kernel.queue.schedule(ms(100), lambda: kernel.activate_task("Hog"))
        kernel.run_until(ms(400))
        assert wd.detected[ErrorType.ALIVENESS] > 0
        assert wd.check_cycle_count == 40
