"""Tests for the target-MCU overhead projection (outlook's S12XF study)."""

import pytest

from repro.analysis import (
    CORTEX_M7,
    S12XF,
    check_cycle_cycles,
    heartbeat_cycles,
    project_cpu_load,
    projection_rows,
)
from repro.analysis.mcu import McuProfile


class TestPrimitiveCosts:
    def test_heartbeat_cost_composition(self):
        cost = heartbeat_cycles(S12XF)
        expected = (
            S12XF.cycles_call_overhead
            + S12XF.cycles_table_probe
            + 2 * S12XF.cycles_counter_inc
            + S12XF.cycles_compare
        )
        assert cost == expected

    def test_check_cost_scales_with_runnables(self):
        assert check_cycle_cycles(S12XF, 20) > check_cycle_cycles(S12XF, 10)
        delta = check_cycle_cycles(S12XF, 11) - check_cycle_cycles(S12XF, 10)
        assert delta == (3 * S12XF.cycles_counter_inc + 2 * S12XF.cycles_compare)

    def test_modern_mcu_cheaper_per_op(self):
        assert heartbeat_cycles(CORTEX_M7) < heartbeat_cycles(S12XF)


class TestProjection:
    def test_validator_workload_feasible_on_s12xf(self):
        """The outlook's feasibility question: the full validator
        workload costs well under 1 % CPU on the S12XF."""
        load = project_cpu_load(
            S12XF,
            monitored_runnables=9,
            heartbeats_per_second=900.0,
            check_period_s=0.01,
        )
        assert load["cpu_fraction"] < 0.01

    def test_cpu_fraction_composition(self):
        load = project_cpu_load(
            S12XF, monitored_runnables=9,
            heartbeats_per_second=900.0, check_period_s=0.01,
        )
        assert load["total_cycles_per_s"] == pytest.approx(
            load["heartbeat_cycles_per_s"] + load["check_cycles_per_s"]
        )

    def test_load_scales_with_heartbeat_rate(self):
        low = project_cpu_load(S12XF, monitored_runnables=9,
                               heartbeats_per_second=100.0, check_period_s=0.01)
        high = project_cpu_load(S12XF, monitored_runnables=9,
                                heartbeats_per_second=10_000.0,
                                check_period_s=0.01)
        assert high["cpu_fraction"] > low["cpu_fraction"]

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            project_cpu_load(S12XF, monitored_runnables=1,
                             heartbeats_per_second=1.0, check_period_s=0.0)

    def test_projection_rows(self):
        rows = projection_rows()
        assert {r["mcu"] for r in rows} == {S12XF.name, CORTEX_M7.name}
        assert all(r["cpu_percent"] < 1.0 for r in rows)

    def test_custom_profile(self):
        slow = McuProfile("slow", clock_hz=1_000_000, cycles_table_probe=100,
                          cycles_counter_inc=20, cycles_compare=10,
                          cycles_call_overhead=100)
        load = project_cpu_load(slow, monitored_runnables=9,
                                heartbeats_per_second=900.0,
                                check_period_s=0.01)
        assert load["cpu_fraction"] > 0.1  # a 1 MHz part would struggle
