"""Tests for hypothesis serialization and design-time analysis."""

import json

import pytest

from repro.core import (
    ErrorType,
    FaultHypothesis,
    FindingSeverity,
    RunnableHypothesis,
    ThresholdPolicy,
    analyze_hypothesis,
    hypothesis_from_dict,
    hypothesis_to_dict,
    is_deployable,
)
from repro.kernel import ms
from repro.platform import SystemBuilder
from repro.kernel import Kernel

from testutil import make_safespeed_mapping


def sample_hypothesis():
    hyp = FaultHypothesis(
        thresholds=ThresholdPolicy(default=4, per_type={ErrorType.PROGRAM_FLOW: 3})
    )
    hyp.add_runnable(
        RunnableHypothesis("A", task="T", aliveness_period=2, min_heartbeats=1,
                           arrival_period=3, max_heartbeats=5)
    )
    hyp.add_runnable(RunnableHypothesis("B", task="T", active=False))
    hyp.allow_sequence(["A", "B"])
    return hyp


class TestSerialization:
    def test_roundtrip_preserves_everything(self):
        original = sample_hypothesis()
        restored = hypothesis_from_dict(hypothesis_to_dict(original))
        assert set(restored.runnables) == {"A", "B"}
        a = restored.runnables["A"]
        assert (a.aliveness_period, a.min_heartbeats) == (2, 1)
        assert (a.arrival_period, a.max_heartbeats) == (3, 5)
        assert not restored.runnables["B"].active
        assert restored.flow_pairs == original.flow_pairs
        assert restored.thresholds.default == 4
        assert restored.thresholds.per_type[ErrorType.PROGRAM_FLOW] == 3

    def test_json_compatible(self):
        data = hypothesis_to_dict(sample_hypothesis())
        restored = hypothesis_from_dict(json.loads(json.dumps(data)))
        assert set(restored.runnables) == {"A", "B"}

    def test_version_checked(self):
        data = hypothesis_to_dict(sample_hypothesis())
        data["version"] = 99
        with pytest.raises(ValueError):
            hypothesis_from_dict(data)

    def test_invalid_flow_rejected_on_load(self):
        data = hypothesis_to_dict(sample_hypothesis())
        data["flow_pairs"].append({"predecessor": "ghost", "successor": "A"})
        with pytest.raises(Exception):
            hypothesis_from_dict(data)

    def test_roundtrip_of_generated_hypothesis(self, safespeed_mapping):
        system = SystemBuilder(safespeed_mapping, watchdog_period=ms(10)).build(
            Kernel()
        )
        restored = hypothesis_from_dict(hypothesis_to_dict(system.hypothesis))
        assert set(restored.runnables) == set(system.hypothesis.runnables)

    def test_lossless_roundtrip_through_json(self):
        """dump -> json -> load -> dump is the identity, including the
        awkward corners: ``None``-predecessor entry pairs and
        ``per_type`` dictionaries keyed by :class:`ErrorType`."""
        original = sample_hypothesis()
        original.thresholds.per_type[ErrorType.ALIVENESS] = 2
        original.thresholds.per_type[ErrorType.ARRIVAL_RATE] = 5
        first = hypothesis_to_dict(original)
        # Entry points serialize with an explicit JSON null predecessor.
        assert {"predecessor": None, "successor": "A"} in first["flow_pairs"]
        # ErrorType keys serialize as their wire values, not enum reprs.
        assert set(first["thresholds"]["per_type"]) == {
            "program_flow", "aliveness", "arrival_rate"
        }
        restored = hypothesis_from_dict(json.loads(json.dumps(first)))
        assert hypothesis_to_dict(restored) == first
        assert (None, "A") in restored.flow_pairs
        assert restored.thresholds.per_type[ErrorType.ARRIVAL_RATE] == 5

    def test_load_without_validation(self):
        """``validate=False`` admits defective configs so wdlint can
        diagnose them instead of the loader rejecting them outright."""
        data = hypothesis_to_dict(sample_hypothesis())
        data["thresholds"]["default"] = 0
        with pytest.raises(Exception):
            hypothesis_from_dict(data)
        loaded = hypothesis_from_dict(data, validate=False)
        assert loaded.thresholds.default == 0


class TestAnalysis:
    def test_generated_hypothesis_is_deployable(self, safespeed_mapping):
        system = SystemBuilder(safespeed_mapping, watchdog_period=ms(10)).build(
            Kernel()
        )
        findings = analyze_hypothesis(
            system.hypothesis, safespeed_mapping, watchdog_period=ms(10)
        )
        assert is_deployable(findings), [str(f) for f in findings]

    def test_impossible_min_heartbeats_flagged(self, safespeed_mapping):
        hyp = FaultHypothesis()
        # Window = 1 x 10 ms; a 10 ms task guarantees 0 completions in it.
        hyp.add_runnable(
            RunnableHypothesis("GetSensorValue", task="SafeSpeedTask",
                               aliveness_period=1, min_heartbeats=2,
                               arrival_period=2, max_heartbeats=5)
        )
        findings = analyze_hypothesis(hyp, safespeed_mapping,
                                      watchdog_period=ms(10))
        errors = [f for f in findings if f.severity is FindingSeverity.ERROR]
        assert any("min_heartbeats" in f.message for f in errors)
        assert not is_deployable(findings)

    def test_too_tight_arrival_bound_flagged(self, safespeed_mapping):
        hyp = FaultHypothesis()
        # 4 nominal executions per 40 ms window, bound of 2: false alarms.
        hyp.add_runnable(
            RunnableHypothesis("GetSensorValue", task="SafeSpeedTask",
                               aliveness_period=8, min_heartbeats=1,
                               arrival_period=4, max_heartbeats=2)
        )
        findings = analyze_hypothesis(hyp, safespeed_mapping,
                                      watchdog_period=ms(10))
        assert any("max_heartbeats" in f.message and
                   f.severity is FindingSeverity.ERROR for f in findings)

    def test_loose_window_warned(self, safespeed_mapping):
        hyp = FaultHypothesis()
        hyp.add_runnable(
            RunnableHypothesis("GetSensorValue", task="SafeSpeedTask",
                               aliveness_period=50, min_heartbeats=1,
                               arrival_period=2, max_heartbeats=3)
        )
        findings = analyze_hypothesis(hyp, safespeed_mapping,
                                      watchdog_period=ms(10))
        warnings = [f for f in findings if f.severity is FindingSeverity.WARNING]
        assert any("near-total starvation" in f.message for f in warnings)
        assert is_deployable(findings)  # warnings do not block deployment

    def test_unplaced_runnable_flagged(self, safespeed_mapping):
        hyp = FaultHypothesis()
        hyp.add_runnable(RunnableHypothesis("ghost", task="SafeSpeedTask"))
        findings = analyze_hypothesis(hyp, safespeed_mapping,
                                      watchdog_period=ms(10))
        assert any("not placed" in f.message for f in findings)

    def test_wrong_task_attribution_flagged(self, safespeed_mapping):
        hyp = FaultHypothesis()
        hyp.add_runnable(
            RunnableHypothesis("GetSensorValue", task="WrongTask",
                               aliveness_period=2, arrival_period=2,
                               max_heartbeats=3)
        )
        findings = analyze_hypothesis(hyp, safespeed_mapping,
                                      watchdog_period=ms(10))
        assert any("places it on" in f.message for f in findings)

    def test_unschedulable_task_flagged(self):
        mapping = make_safespeed_mapping(period=ms(3))  # 4 ms work / 3 ms
        hyp = FaultHypothesis()
        hyp.add_runnable(
            RunnableHypothesis("GetSensorValue", task="SafeSpeedTask",
                               aliveness_period=2, arrival_period=2,
                               max_heartbeats=5)
        )
        findings = analyze_hypothesis(hyp, mapping, watchdog_period=ms(10))
        assert any("not schedulable" in f.message for f in findings)

    def test_finding_str(self):
        from repro.core import HypothesisFinding

        finding = HypothesisFinding(FindingSeverity.ERROR, "R", "broken")
        assert "[error] R: broken" == str(finding)
