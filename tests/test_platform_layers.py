"""Tests for the EASIS layered topology model (Figure 1)."""

import pytest

from repro.platform import (
    Layer,
    ModuleKind,
    SoftwareTopology,
    TopologyError,
    build_easis_topology,
)


class TestModulePlacement:
    def test_add_module(self):
        topo = SoftwareTopology()
        module = topo.add_module("OS", Layer.L2_DRIVERS_MCAL, ModuleKind.OPERATING_SYSTEM)
        assert module.occupies(Layer.L2_DRIVERS_MCAL)
        assert not module.occupies(Layer.L3_ISS_SERVICES)

    def test_duplicate_module_rejected(self):
        topo = SoftwareTopology()
        topo.add_module("A", Layer.L5_APPLICATIONS, ModuleKind.APPLICATION)
        with pytest.raises(TopologyError):
            topo.add_module("A", Layer.L5_APPLICATIONS, ModuleKind.APPLICATION)

    def test_spanning_adjacent_layers(self):
        topo = SoftwareTopology()
        os_module = topo.add_module(
            "OS", Layer.L2_DRIVERS_MCAL, ModuleKind.OPERATING_SYSTEM,
            spans=Layer.L3_ISS_SERVICES,
        )
        assert os_module.occupies(Layer.L2_DRIVERS_MCAL)
        assert os_module.occupies(Layer.L3_ISS_SERVICES)

    def test_span_must_be_adjacent(self):
        topo = SoftwareTopology()
        with pytest.raises(TopologyError):
            topo.add_module(
                "bad", Layer.L2_DRIVERS_MCAL, ModuleKind.DRIVER,
                spans=Layer.L5_APPLICATIONS,
            )

    def test_modules_on_layer(self):
        topo = build_easis_topology()
        l3 = {m.name for m in topo.modules_on(Layer.L3_ISS_SERVICES)}
        assert "SoftwareWatchdog" in l3
        assert "FaultManagementFramework" in l3
        assert "OperatingSystem" in l3  # spans L2-L3


class TestInterfaces:
    def test_provide_and_resolve(self):
        topo = SoftwareTopology()
        topo.add_module("Svc", Layer.L3_ISS_SERVICES, ModuleKind.DEPENDABILITY_SERVICE)
        topo.provide("Svc", "svc.api")
        assert topo.provider_of("svc.api").name == "Svc"

    def test_double_provide_rejected(self):
        topo = SoftwareTopology()
        topo.add_module("A", Layer.L3_ISS_SERVICES, ModuleKind.DEPENDABILITY_SERVICE)
        topo.add_module("B", Layer.L3_ISS_SERVICES, ModuleKind.DEPENDABILITY_SERVICE)
        topo.provide("A", "api")
        with pytest.raises(TopologyError):
            topo.provide("B", "api")

    def test_connect_same_layer(self):
        topo = SoftwareTopology()
        topo.add_module("A", Layer.L3_ISS_SERVICES, ModuleKind.DEPENDABILITY_SERVICE)
        topo.add_module("B", Layer.L3_ISS_SERVICES, ModuleKind.DEPENDABILITY_SERVICE)
        topo.provide("A", "api")
        topo.connect("B", "api")
        assert [m.name for m in topo.consumers_of("api")] == ["B"]

    def test_connect_layer_above_provider(self):
        topo = SoftwareTopology()
        topo.add_module("Low", Layer.L2_DRIVERS_MCAL, ModuleKind.DRIVER)
        topo.add_module("High", Layer.L3_ISS_SERVICES, ModuleKind.DEPENDABILITY_SERVICE)
        topo.provide("Low", "io")
        topo.connect("High", "io")

    def test_layering_violation_rejected(self):
        """An application (L5) may not directly use L2 drivers."""
        topo = SoftwareTopology()
        topo.add_module("Drv", Layer.L2_DRIVERS_MCAL, ModuleKind.DRIVER)
        topo.add_module("App", Layer.L5_APPLICATIONS, ModuleKind.APPLICATION)
        topo.provide("Drv", "io")
        with pytest.raises(TopologyError):
            topo.connect("App", "io")

    def test_upward_use_rejected(self):
        """A driver may not call up into applications."""
        topo = SoftwareTopology()
        topo.add_module("Drv", Layer.L2_DRIVERS_MCAL, ModuleKind.DRIVER)
        topo.add_module("App", Layer.L3_ISS_SERVICES, ModuleKind.APPLICATION)
        topo.provide("App", "callback")
        with pytest.raises(TopologyError):
            topo.connect("Drv", "callback")

    def test_unknown_interface(self):
        topo = SoftwareTopology()
        topo.add_module("A", Layer.L3_ISS_SERVICES, ModuleKind.DEPENDABILITY_SERVICE)
        with pytest.raises(TopologyError):
            topo.connect("A", "ghost")

    def test_unknown_module(self):
        topo = SoftwareTopology()
        with pytest.raises(TopologyError):
            topo.provide("ghost", "api")


class TestReferenceTopology:
    def test_builds_and_validates(self):
        topo = build_easis_topology()
        topo.validate()

    def test_watchdog_interfaces_present(self):
        """The two main interfaces of §4.4 exist in the reference
        topology: heartbeat indications in, fault reports out."""
        topo = build_easis_topology()
        assert topo.provider_of("watchdog.heartbeat_indication").name == "SoftwareWatchdog"
        assert topo.provider_of("fmf.fault_report").name == "FaultManagementFramework"
        consumers = [m.name for m in topo.consumers_of("fmf.fault_report")]
        assert "SoftwareWatchdog" in consumers

    def test_five_layers_populated(self):
        topo = build_easis_topology()
        for layer in Layer:
            assert topo.modules_on(layer), f"layer {layer} empty"

    def test_os_spans_l2_l3(self):
        topo = build_easis_topology()
        os_module = topo.modules["OperatingSystem"]
        assert os_module.layer_range() == (
            Layer.L2_DRIVERS_MCAL,
            Layer.L3_ISS_SERVICES,
        )
