"""Tests for the validator node models and the rig frame catalogue."""

import pytest

from repro.apps import EnvironmentSimulation, Road, SpeedLimitZone, Vehicle
from repro.kernel import Kernel, ms, seconds
from repro.network import CanBus, Message
from repro.network.gateway import TcpLink
from repro.validator import SignalStore, build_validator_catalog
from repro.validator.nodes import (
    ActuatorNode,
    DrivingDynamicsNode,
    EnvironmentNode,
    ID_ACTUATOR_CMD,
    ID_VEHICLE_SPEED,
    LightControlNode,
)


@pytest.fixture
def catalog():
    return build_validator_catalog()


class TestCatalog:
    def test_all_frames_defined(self, catalog):
        for name in ("VehicleSpeed", "ActuatorCmd", "SpeedCommand",
                     "LanePosition", "Warning", "Handwheel", "SteerCmd",
                     "RoadWheel", "TelematicsLimit"):
            assert catalog.by_name(name) is not None

    def test_speed_resolution(self, catalog):
        spec = catalog.by_name("VehicleSpeed")
        payload = spec.pack({"speed_kph": 123.45, "accel_mps2": -2.5})
        values = spec.unpack(payload)
        assert values["speed_kph"] == pytest.approx(123.45, abs=0.01)
        assert values["accel_mps2"] == pytest.approx(-2.5, abs=0.002)

    def test_warning_side_encoding(self, catalog):
        spec = catalog.by_name("Warning")
        for side in (-1.0, 0.0, 1.0):
            values = spec.unpack(spec.pack({"active": 1.0, "side": side}))
            assert values["side"] == side


class TestSignalStore:
    def make_message(self, catalog, name="VehicleSpeed", timestamp=5, **values):
        spec = catalog.by_name(name)
        return Message(spec=spec, payload=spec.pack(values), timestamp=timestamp)

    def test_latest_value_semantics(self, catalog):
        store = SignalStore()
        store.ingest(self.make_message(catalog, speed_kph=10.0))
        store.ingest(self.make_message(catalog, speed_kph=20.0, timestamp=9))
        assert store.value("VehicleSpeed", "speed_kph") == pytest.approx(20.0, abs=0.01)
        assert store.received_count == 2

    def test_default_before_first_receipt(self, catalog):
        store = SignalStore()
        assert store.value("VehicleSpeed", "speed_kph", default=99.0) == 99.0

    def test_age(self, catalog):
        store = SignalStore()
        assert store.age("VehicleSpeed", now=100) is None
        store.ingest(self.make_message(catalog, timestamp=40, speed_kph=1.0))
        assert store.age("VehicleSpeed", now=100) == 60


class TestDrivingDynamicsNode:
    def test_publishes_speed_and_lane(self, kernel, catalog):
        can = CanBus("c", kernel)
        tx = can.attach("dyn")
        rx = can.attach("rx")
        store = SignalStore()
        rx.on_receive(store.ingest)
        vehicle = Vehicle()
        vehicle.state.speed_mps = 10.0
        node = DrivingDynamicsNode(
            kernel, vehicle, EnvironmentSimulation(), catalog, tx
        )
        node.start()
        kernel.run_until(ms(50))
        assert store.value("VehicleSpeed", "speed_kph") > 30.0
        assert "LanePosition" in store._latest
        assert vehicle.step_count >= 9

    def test_step_period_respected(self, kernel, catalog):
        can = CanBus("c", kernel)
        node = DrivingDynamicsNode(
            kernel, Vehicle(), EnvironmentSimulation(), catalog,
            can.attach("dyn"), step_period=ms(20),
        )
        node.start()
        kernel.run_until(ms(100))
        assert node.published_count == 5


class TestActuatorNode:
    def test_applies_received_commands(self, kernel, catalog):
        can = CanBus("c", kernel)
        ctrl = can.attach("central")
        act = can.attach("act")
        vehicle = Vehicle()
        ActuatorNode(kernel, vehicle, catalog, act)
        ctrl.send(catalog.by_name("ActuatorCmd"), {"throttle": 0.5, "brake": 0.0})
        kernel.run_until(ms(10))
        assert vehicle.commands.throttle == pytest.approx(0.5, abs=0.01)

    def test_staleness_guard_releases_throttle(self, kernel, catalog):
        """The fault-tolerant actuator node decays to a safe state when
        the command stream dies (the paper's fault-tolerant actuator)."""
        can = CanBus("c", kernel)
        ctrl = can.attach("central")
        act = can.attach("act")
        vehicle = Vehicle()
        node = ActuatorNode(kernel, vehicle, catalog, act, timeout=ms(100))
        node.start()
        ctrl.send(catalog.by_name("ActuatorCmd"), {"throttle": 0.8, "brake": 0.0})
        kernel.run_until(ms(50))
        assert vehicle.commands.throttle > 0.7
        # Command stream stops: guard zeroes the throttle after timeout.
        kernel.run_until(ms(300))
        assert vehicle.commands.throttle == 0.0
        assert node.safe_state_entries == 1


class TestEnvironmentNode:
    def test_sends_effective_limit_over_tcp(self, kernel, catalog):
        env = EnvironmentSimulation(road=Road(speed_zones=[SpeedLimitZone(0, 70)]))
        vehicle = Vehicle()
        tcp = TcpLink("t", kernel, latency=ms(1))
        got = []
        tcp.on_receive(lambda m: got.append(m.value("limit_kph")))
        EnvironmentNode(kernel, env, vehicle, catalog, tcp, period=ms(50)).start()
        kernel.run_until(ms(200))
        assert got and got[0] == pytest.approx(70.0, abs=0.01)

    def test_commanded_limit_caps(self, kernel, catalog):
        env = EnvironmentSimulation(road=Road(speed_zones=[SpeedLimitZone(0, 100)]))
        env.commanded_limit_kph = 30.0
        tcp = TcpLink("t", kernel, latency=ms(1))
        got = []
        tcp.on_receive(lambda m: got.append(m.value("limit_kph")))
        EnvironmentNode(kernel, env, Vehicle(), catalog, tcp, period=ms(50)).start()
        kernel.run_until(ms(120))
        assert got[-1] == pytest.approx(30.0, abs=0.01)


class TestLightControlNode:
    def test_lamp_follows_warnings(self, kernel, catalog):
        can = CanBus("c", kernel)
        central = can.attach("central")
        light = LightControlNode(can.attach("light"))
        spec = catalog.by_name("Warning")
        central.send(spec, {"active": 1.0, "side": 1.0})
        kernel.run_until(ms(5))
        assert light.lamp_on
        assert light.activations == 1
        central.send(spec, {"active": 0.0, "side": 0.0})
        kernel.run_until(ms(10))
        assert not light.lamp_on
        # Re-activation counts a new rising edge.
        central.send(spec, {"active": 1.0, "side": -1.0})
        kernel.run_until(ms(15))
        assert light.activations == 2
