"""Unit tests for the timed event queue."""

import pytest

from repro.kernel import EventQueue


class TestScheduling:
    def test_empty_queue(self):
        queue = EventQueue()
        assert len(queue) == 0
        assert queue.next_time() is None
        assert queue.pop_due(1_000_000) == []

    def test_schedule_and_pop(self):
        queue = EventQueue()
        fired = []
        queue.schedule(10, lambda: fired.append("a"))
        assert queue.next_time() == 10
        due = queue.pop_due(10)
        assert len(due) == 1
        due[0].callback()
        assert fired == ["a"]

    def test_negative_time_rejected(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.schedule(-1, lambda: None)

    def test_pop_due_respects_time(self):
        queue = EventQueue()
        queue.schedule(10, lambda: None)
        queue.schedule(20, lambda: None)
        assert len(queue.pop_due(15)) == 1
        assert queue.next_time() == 20

    def test_fifo_order_at_same_instant(self):
        queue = EventQueue()
        order = []
        for tag in ("first", "second", "third"):
            queue.schedule(5, lambda tag=tag: order.append(tag))
        for event in queue.pop_due(5):
            event.callback()
        assert order == ["first", "second", "third"]

    def test_time_ordering(self):
        queue = EventQueue()
        queue.schedule(30, lambda: None, label="late")
        queue.schedule(10, lambda: None, label="early")
        due = queue.pop_due(100)
        assert [e.label for e in due] == ["early", "late"]

    def test_len_tracks_live_events(self):
        queue = EventQueue()
        e1 = queue.schedule(10, lambda: None)
        queue.schedule(20, lambda: None)
        assert len(queue) == 2
        e1.cancel()
        assert len(queue) == 1


class TestCancellation:
    def test_cancelled_event_not_returned(self):
        queue = EventQueue()
        event = queue.schedule(10, lambda: None)
        event.cancel()
        assert queue.pop_due(100) == []

    def test_cancel_is_idempotent(self):
        queue = EventQueue()
        event = queue.schedule(10, lambda: None)
        event.cancel()
        event.cancel()
        assert len(queue) == 0

    def test_next_time_skips_cancelled(self):
        queue = EventQueue()
        early = queue.schedule(10, lambda: None)
        queue.schedule(20, lambda: None)
        early.cancel()
        assert queue.next_time() == 20

    def test_clear_cancels_everything(self):
        queue = EventQueue()
        events = [queue.schedule(i, lambda: None) for i in range(1, 6)]
        queue.clear()
        assert len(queue) == 0
        assert all(e.cancelled for e in events)
        assert queue.pop_due(100) == []


class TestPopNext:
    def test_pop_next_single(self):
        queue = EventQueue()
        queue.schedule(5, lambda: None, label="a")
        queue.schedule(5, lambda: None, label="b")
        first = queue.pop_next(5)
        assert first.label == "a"
        assert len(queue) == 1

    def test_pop_next_none_when_future(self):
        queue = EventQueue()
        queue.schedule(50, lambda: None)
        assert queue.pop_next(10) is None
        assert len(queue) == 1

    def test_pop_next_allows_mid_dispatch_cancellation(self):
        """The reset-inside-a-callback property: events popped one at a
        time can be cancelled by an earlier callback at the same time."""
        queue = EventQueue()
        fired = []
        second = queue.schedule(5, lambda: fired.append("second"))
        # first event scheduled later in FIFO but cancels `second`... the
        # first-scheduled event fires first, so schedule canceller first.
        queue = EventQueue()
        fired = []

        def canceller():
            fired.append("canceller")
            second.cancel()

        e1 = queue.schedule(5, canceller)
        second = queue.schedule(5, lambda: fired.append("second"))
        while True:
            event = queue.pop_next(5)
            if event is None:
                break
            event.callback()
        assert fired == ["canceller"]
