"""Tests for the HIL validator rig (integration of all substrates)."""

import pytest

from repro.apps import Road, SpeedLimitZone
from repro.core import ErrorType, MonitorState
from repro.kernel import ms, seconds
from repro.validator import HilValidator, SAFESPEED_TASK


@pytest.fixture(scope="module")
def warm_rig():
    """A rig that has driven for 20 simulated seconds (shared, read-only)."""
    rig = HilValidator()
    rig.run(seconds(20))
    return rig


class TestHealthyRig:
    def test_no_false_positives(self, warm_rig):
        summary = warm_rig.summary()
        assert summary["aliveness_errors"] == 0
        assert summary["arrival_rate_errors"] == 0
        assert summary["program_flow_errors"] == 0
        assert summary["ecu_state"] == "ok"

    def test_vehicle_drives(self, warm_rig):
        assert warm_rig.vehicle.state.speed_kph > 30.0
        assert warm_rig.vehicle.state.distance_m > 50.0

    def test_all_buses_carry_traffic(self, warm_rig):
        summary = warm_rig.summary()
        assert summary["can_frames"] > 1000
        assert summary["flexray_cycles"] > 1000
        assert summary["gateway_forwards"] > 10

    def test_speed_command_reaches_central_node(self, warm_rig):
        limit = warm_rig.central_store.value("SpeedCommand", "limit_kph", 0.0)
        assert limit == pytest.approx(100.0, abs=1.0)

    def test_steering_tracks(self, warm_rig):
        assert warm_rig.steering is not None
        assert warm_rig.steering.state.samples > 1000
        assert warm_rig.steering.state.max_tracking_error_rad < 0.05

    def test_capture_runs(self, warm_rig):
        speed = warm_rig.capture.get("speed_kph")
        assert len(speed.values) > 1000
        assert speed.max() > 30.0

    def test_watchdog_cycles(self, warm_rig):
        assert warm_rig.ecu.watchdog.check_cycle_count >= 1990


class TestSpeedRegulation:
    def test_respects_commanded_limit(self):
        rig = HilValidator(
            road=Road(speed_zones=[SpeedLimitZone(0.0, 50.0)]),
        )
        rig.run(seconds(40))
        assert rig.vehicle.state.speed_kph <= 52.0
        assert rig.vehicle.state.speed_kph >= 40.0

    def test_limit_change_with_distance(self):
        rig = HilValidator(
            road=Road(speed_zones=[SpeedLimitZone(0.0, 80.0),
                                   SpeedLimitZone(400.0, 40.0)]),
            initial_speed_kph=60.0,
        )
        rig.run(seconds(60))
        assert rig.vehicle.state.distance_m > 400.0
        assert rig.vehicle.state.speed_kph <= 42.0


class TestRigOptions:
    def test_without_steering(self):
        rig = HilValidator(include_steering=False)
        assert rig.steering is None
        rig.run(seconds(2))
        assert rig.summary()["aliveness_errors"] == 0

    def test_custom_driver_profile(self):
        rig = HilValidator(driver_profile=lambda t: 0.5)
        rig.run(seconds(3))
        # Constant handwheel of 0.5 rad -> roadwheel ~ 0.5/16.
        assert rig.vehicle.state.steering_rad == pytest.approx(0.5 / 16, abs=0.01)

    def test_probe_counters_layout(self):
        rig = HilValidator()
        rig.probe_counters("SAFE_CC_process")
        rig.run(seconds(1))
        assert "SAFE_CC_process.AC" in rig.capture.series
        series = rig.capture.get("SAFE_CC_process.AC")
        assert len(series.values) > 0

    def test_start_idempotent(self):
        rig = HilValidator()
        rig.start()
        rig.start()
        rig.run(ms(100))
        assert rig.kernel.clock.now >= ms(100)


class TestCentralNodeIsolation:
    def test_ecu_reads_only_from_bus(self):
        """The central ECU's speed view lags the plant by bus latency —
        proof it has no direct reference to the vehicle model."""
        rig = HilValidator(initial_speed_kph=80.0)
        rig.run(ms(50))
        store_speed = rig.central_store.value("VehicleSpeed", "speed_kph", 0.0)
        assert store_speed > 0.0  # arrived over CAN
        assert rig.safespeed.state.speed_kph > 0.0
