"""Tests for the AC/ARC/CCA/CCAR/AS counter set."""

from repro.core import CounterHistory, RunnableCounters


class TestRunnableCounters:
    def test_initial_state(self):
        c = RunnableCounters()
        assert (c.ac, c.arc, c.cca, c.ccar) == (0, 0, 0, 0)
        assert c.active

    def test_heartbeat_increments_both(self):
        c = RunnableCounters()
        c.record_heartbeat()
        c.record_heartbeat()
        assert c.ac == 2 and c.arc == 2

    def test_inactive_ignores_heartbeats(self):
        c = RunnableCounters(active=False)
        c.record_heartbeat()
        assert c.ac == 0 and c.arc == 0

    def test_reset_aliveness_leaves_arrival(self):
        c = RunnableCounters()
        c.record_heartbeat()
        c.cca = 3
        c.ccar = 3
        c.reset_aliveness()
        assert c.ac == 0 and c.cca == 0
        assert c.arc == 1 and c.ccar == 3

    def test_reset_arrival_leaves_aliveness(self):
        c = RunnableCounters()
        c.record_heartbeat()
        c.cca = 2
        c.ccar = 2
        c.reset_arrival()
        assert c.arc == 0 and c.ccar == 0
        assert c.ac == 1 and c.cca == 2

    def test_reset_all(self):
        c = RunnableCounters()
        c.record_heartbeat()
        c.cca = c.ccar = 5
        c.reset_all()
        assert (c.ac, c.arc, c.cca, c.ccar) == (0, 0, 0, 0)

    def test_snapshot_keys(self):
        snap = RunnableCounters().snapshot()
        assert set(snap) == {"AC", "ARC", "CCA", "CCAR", "AS"}
        assert snap["AS"] == 1


class TestCounterHistory:
    def test_capture_builds_series(self):
        h = CounterHistory()
        h.capture(10, {"AC": 1})
        h.capture(20, {"AC": 2})
        assert h.times == [10, 20]
        assert h.column("AC") == [1, 2]
        assert len(h) == 2

    def test_new_key_padded_backwards(self):
        h = CounterHistory()
        h.capture(10, {"AC": 1})
        h.capture(20, {"AC": 2, "ARC": 7})
        assert h.column("ARC") == [0, 7]

    def test_missing_key_padded_forwards(self):
        h = CounterHistory()
        h.capture(10, {"AC": 1, "ARC": 5})
        h.capture(20, {"AC": 2})
        assert h.column("ARC") == [5, 5]

    def test_unknown_column_is_zeros(self):
        h = CounterHistory()
        h.capture(10, {"AC": 1})
        assert h.column("nothing") == [0]
