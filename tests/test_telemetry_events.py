"""Tests for structured telemetry events and sinks."""

import json

import pytest

from repro.telemetry import (
    EVENT_SCHEMA_VERSION,
    InMemorySink,
    JsonlFileSink,
    KIND_DETECTION,
    KIND_TASK_FAULT,
    NULL_SINK,
    NullSink,
    TelemetryEvent,
    read_jsonl,
)


def make_event(time=100, kind=KIND_DETECTION, subject="R",
               data=None):
    return TelemetryEvent(time=time, kind=kind, subject=subject,
                          data=data or {"error_type": "aliveness"})


class TestTelemetryEvent:
    def test_schema_version_stamped(self):
        assert make_event().schema == EVENT_SCHEMA_VERSION

    def test_jsonl_round_trip(self):
        event = make_event(data={"a": 1, "nested": {"b": [1, 2]}})
        line = event.to_jsonl()
        assert "\n" not in line
        assert TelemetryEvent.from_jsonl(line) == event

    def test_jsonl_is_key_sorted(self):
        payload = json.loads(make_event().to_jsonl())
        assert list(payload) == sorted(payload)

    def test_from_dict_defaults(self):
        event = TelemetryEvent.from_dict(
            {"time": 5, "kind": "custom", "subject": "x"}
        )
        assert event.data == {}
        assert event.schema == EVENT_SCHEMA_VERSION

    def test_from_dict_preserves_foreign_schema(self):
        event = TelemetryEvent.from_dict(
            {"time": 5, "kind": "custom", "subject": "x", "schema": 99}
        )
        assert event.schema == 99

    def test_frozen(self):
        with pytest.raises(AttributeError):
            make_event().time = 0


class TestNullSink:
    def test_disabled_and_silent(self):
        sink = NullSink()
        assert sink.enabled is False
        sink.emit(make_event())  # swallowed, no error
        assert NULL_SINK.enabled is False


class TestInMemorySink:
    def test_collects_in_order(self):
        sink = InMemorySink()
        assert sink.enabled is True
        first = make_event(time=1)
        second = make_event(time=2, kind=KIND_TASK_FAULT, subject="T")
        sink.emit(first)
        sink.emit(second)
        assert sink.events == [first, second]
        assert len(sink) == 2

    def test_filter_by_kind_and_subject(self):
        sink = InMemorySink()
        sink.emit(make_event(subject="A"))
        sink.emit(make_event(subject="B"))
        sink.emit(make_event(kind=KIND_TASK_FAULT, subject="A"))
        assert len(sink.filter(kind=KIND_DETECTION)) == 2
        assert len(sink.filter(subject="A")) == 2
        assert len(sink.filter(kind=KIND_DETECTION, subject="A")) == 1

    def test_kinds_first_seen_order(self):
        sink = InMemorySink()
        sink.emit(make_event(kind="b"))
        sink.emit(make_event(kind="a"))
        sink.emit(make_event(kind="b"))
        assert sink.kinds() == ["b", "a"]

    def test_clear(self):
        sink = InMemorySink()
        sink.emit(make_event())
        sink.clear()
        assert len(sink) == 0


class TestJsonlFileSink:
    def test_writes_one_line_per_event(self, tmp_path):
        path = tmp_path / "events.jsonl"
        events = [make_event(time=t) for t in (1, 2, 3)]
        with JsonlFileSink(str(path)) as sink:
            for event in events:
                sink.emit(event)
            assert sink.emitted == 3
        assert read_jsonl(path.read_text().splitlines()) == events

    def test_append_mode_extends_stream(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlFileSink(str(path)) as sink:
            sink.emit(make_event(time=1))
        with JsonlFileSink(str(path), mode="a") as sink:
            sink.emit(make_event(time=2))
        times = [e.time for e in read_jsonl(path.read_text().splitlines())]
        assert times == [1, 2]

    def test_emit_after_close_raises(self, tmp_path):
        sink = JsonlFileSink(str(tmp_path / "e.jsonl"))
        sink.close()
        sink.close()  # idempotent
        with pytest.raises(ValueError):
            sink.emit(make_event())

    def test_invalid_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlFileSink(str(tmp_path / "e.jsonl"), mode="r")

    def test_flush_every_makes_lines_durable(self, tmp_path):
        # With flush_every=2 the file must contain flushed lines while
        # the sink is still open (a killed daemon loses at most the
        # unflushed tail).
        path = tmp_path / "e.jsonl"
        sink = JsonlFileSink(str(path), flush_every=2)
        sink.emit(make_event(time=1))
        sink.emit(make_event(time=2))
        on_disk = path.read_text().splitlines()
        assert len(on_disk) == 2
        sink.emit(make_event(time=3))  # buffered, below the next flush
        sink.close()
        assert len(path.read_text().splitlines()) == 3

    def test_explicit_flush(self, tmp_path):
        path = tmp_path / "e.jsonl"
        sink = JsonlFileSink(str(path))  # default: no periodic flushing
        sink.emit(make_event(time=1))
        sink.flush()
        assert len(path.read_text().splitlines()) == 1
        sink.close()
        sink.flush()  # no-op once closed

    def test_flush_every_validated(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlFileSink(str(tmp_path / "e.jsonl"), flush_every=0)


class TestReadJsonl:
    def test_blank_lines_skipped(self):
        line = make_event().to_jsonl()
        parsed = read_jsonl(["", line, "   ", line, ""])
        assert len(parsed) == 2

    def test_trailing_partial_line_tolerated(self):
        # A crash-truncated stream: the last line was cut mid-write.
        lines = [make_event(time=t).to_jsonl() for t in (1, 2)]
        truncated = make_event(time=3).to_jsonl()[:17]
        parsed = read_jsonl(lines + [truncated])
        assert [e.time for e in parsed] == [1, 2]

    def test_trailing_blank_after_partial_still_tolerated(self):
        lines = [make_event(time=1).to_jsonl(), '{"tru', "", "   "]
        assert [e.time for e in read_jsonl(lines)] == [1]

    def test_mid_stream_corruption_still_raises(self):
        # A malformed line *followed by more records* is corruption,
        # not truncation.
        good = make_event().to_jsonl()
        with pytest.raises(json.JSONDecodeError):
            read_jsonl([good, "not json", good])

    def test_strict_raises_on_trailing_partial(self):
        good = make_event().to_jsonl()
        with pytest.raises(json.JSONDecodeError):
            read_jsonl([good, "not json"], strict=True)

    def test_missing_field_counts_as_partial(self):
        # Truncation can also cut inside the JSON object, leaving
        # valid JSON that is not a valid event record.
        assert read_jsonl(['{"schema": 1, "time": 3}']) == []
        with pytest.raises(KeyError):
            read_jsonl(['{"schema": 1, "time": 3}'], strict=True)
