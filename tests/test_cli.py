"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        for argv in (["figures"], ["coverage"], ["overhead"], ["latency"],
                     ["treatment"], ["reconfig"], ["distributed"], ["jitter"],
                     ["toolchain"], ["rig"], ["all"]):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_requires_subcommand(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_figures_which_validated(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["figures", "--which", "7"])


class TestExecution:
    def test_rig_command(self, capsys):
        assert main(["rig", "--seconds", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "HIL validator" in out
        assert "can_frames" in out

    def test_jitter_command(self, capsys):
        assert main(["jitter"]) == 0
        out = capsys.readouterr().out
        assert "schedule table" in out
        assert "alarms (synchronous)" in out

    def test_toolchain_command(self, capsys):
        assert main(["toolchain"]) == 0
        out = capsys.readouterr().out
        assert "bounds_hold=True" in out

    def test_single_figure(self, capsys):
        assert main(["figures", "--which", "6"]) == 0
        out = capsys.readouterr().out
        assert "collaboration of fault detection units" in out
        assert "PFC_Result" in out
