"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        for argv in (["figures"], ["coverage"], ["overhead"], ["latency"],
                     ["treatment"], ["reconfig"], ["distributed"], ["jitter"],
                     ["toolchain"], ["rig"], ["lint"], ["metrics"], ["serve"],
                     ["all"]):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_requires_subcommand(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_figures_which_validated(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["figures", "--which", "7"])


class TestExecution:
    def test_rig_command(self, capsys):
        assert main(["rig", "--seconds", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "HIL validator" in out
        assert "can_frames" in out

    def test_jitter_command(self, capsys):
        assert main(["jitter"]) == 0
        out = capsys.readouterr().out
        assert "schedule table" in out
        assert "alarms (synchronous)" in out

    def test_toolchain_command(self, capsys):
        assert main(["toolchain"]) == 0
        out = capsys.readouterr().out
        assert "bounds_hold=True" in out
        assert "lint_ok=True" in out

    def test_single_figure(self, capsys):
        assert main(["figures", "--which", "6"]) == 0
        out = capsys.readouterr().out
        assert "collaboration of fault detection units" in out
        assert "PFC_Result" in out


class TestLintCommand:
    def seeded_defect_file(self, tmp_path):
        from repro.core import (
            FaultHypothesis,
            RunnableHypothesis,
            hypothesis_to_dict,
        )

        hyp = FaultHypothesis()
        hyp.add_runnable(RunnableHypothesis(
            "A", task="T", aliveness_period=2, min_heartbeats=3,
            arrival_period=2, max_heartbeats=2))
        hyp.allow_sequence(["A"])
        hyp.allow_flow("A", "ghost")
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(hypothesis_to_dict(hyp)))
        return path

    def test_lint_default_targets_text(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "safespeed: ok" in out
        assert "safelane: ok" in out
        assert "steer-by-wire: ok" in out
        assert "0 error(s)" in out

    def test_lint_json_mode(self, capsys):
        assert main(["lint", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert len(payload["reports"]) == 3
        assert all(r["ok"] for r in payload["reports"])

    def test_lint_seeded_defect_file(self, capsys, tmp_path):
        path = self.seeded_defect_file(tmp_path)
        assert main(["lint", str(path)]) == 1
        out = capsys.readouterr().out
        assert "WD201" in out  # contradictory bounds
        assert "WD102" in out  # dead transition

    def test_lint_seeded_defect_file_json(self, capsys, tmp_path):
        path = self.seeded_defect_file(tmp_path)
        assert main(["lint", "--format", "json", str(path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        codes = [d["code"] for r in payload["reports"]
                 for d in r["diagnostics"]]
        assert "WD201" in codes and "WD102" in codes

    def test_lint_missing_file_exit_2(self, capsys, tmp_path):
        assert main(["lint", str(tmp_path / "nope.json")]) == 2
        assert "nope.json" in capsys.readouterr().out

    def test_lint_strict_promotes_warnings(self, capsys, tmp_path):
        from repro.core import (
            FaultHypothesis,
            RunnableHypothesis,
            hypothesis_to_dict,
        )

        hyp = FaultHypothesis()
        hyp.add_runnable(RunnableHypothesis(
            "A", task="T", min_heartbeats=0, max_heartbeats=2))
        path = tmp_path / "warn.json"
        path.write_text(json.dumps(hypothesis_to_dict(hyp)))
        assert main(["lint", str(path)]) == 0
        capsys.readouterr()
        assert main(["lint", "--strict", str(path)]) == 1
        assert "WD202" in capsys.readouterr().out


class TestMetricsCommand:
    def test_prometheus_exposition_renders(self, capsys):
        assert main(["metrics", "rig", "--seconds", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE wd_hbm_check_cycles_total counter" in out
        assert "wd_hbm_cycle_duration_seconds_bucket" in out
        assert 'wd_detections_total{error_type="aliveness"} 0' in out
        # Every sample line is "name{labels} value" or a # comment.
        for line in out.splitlines():
            assert line.startswith("#") or len(line.rsplit(" ", 1)) == 2

    def test_json_format_parses(self, capsys):
        assert main(["metrics", "rig", "--seconds", "0.5",
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = [family["name"] for family in payload["metrics"]]
        assert "wd_hbm_check_cycles_total" in names
        assert "wd_tsi_ecu_state" in names

    def test_faulty_scenario_records_detections(self, capsys):
        assert main(["metrics", "faulty", "--seconds", "1",
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        by_name = {family["name"]: family for family in payload["metrics"]}
        detections = by_name["wd_detections_total"]["series"]
        aliveness = next(s for s in detections
                         if s["labels"] == {"error_type": "aliveness"})
        assert aliveness["value"] > 0
        assert "fmf_treatments_total" in by_name

    def test_telemetry_flag_writes_jsonl(self, capsys, tmp_path):
        from repro.telemetry import KIND_DETECTION, read_jsonl

        path = tmp_path / "events.jsonl"
        assert main(["metrics", "faulty", "--seconds", "1",
                     "--telemetry", str(path)]) == 0
        capsys.readouterr()
        events = read_jsonl(path.read_text().splitlines())
        assert events
        assert all(e.schema == 1 for e in events)
        assert any(e.kind == KIND_DETECTION for e in events)

    def test_unknown_scenario_exit_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["metrics", "bogus"])
        assert excinfo.value.code == 2

    def test_unknown_format_exit_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["metrics", "rig", "--format", "yaml"])
        assert excinfo.value.code == 2

    def test_coverage_flag_writes_result_rows(self, capsys, tmp_path):
        from repro.telemetry import (
            KIND_METRICS_SNAPSHOT,
            KIND_RESULT_ROW,
            read_jsonl,
        )

        path = tmp_path / "coverage.jsonl"
        assert main(["coverage", "--telemetry", str(path)]) == 0
        capsys.readouterr()
        kinds = [e.kind for e in read_jsonl(path.read_text().splitlines())]
        assert KIND_RESULT_ROW in kinds
        assert kinds[-1] == KIND_METRICS_SNAPSHOT
