"""Differential equivalence: expiry-wheel vs full-scan check cycles.

The wheel strategy is an optimization, not a behavior change: over any
heartbeat schedule — including activation-status flips, eager arrival
detection, resets and initially-inactive runnables — it must emit a
bit-for-bit identical error stream (type, runnable, interned id, time,
details, order) and identical counter snapshots to the reference scan.

The schedules here are randomized hypothesis-style loops with fixed
seeds, so failures reproduce deterministically.
"""

import random

import pytest

from repro.core import ErrorType, FaultHypothesis, RunnableHypothesis
from repro.core.heartbeat import HeartbeatMonitoringUnit


def _random_hypothesis(rng):
    hyp = FaultHypothesis()
    for i in range(rng.randint(1, 8)):
        hyp.add_runnable(
            RunnableHypothesis(
                f"R{i}",
                task=f"T{i % 3}",
                aliveness_period=rng.randint(1, 6),
                min_heartbeats=rng.randint(0, 3),
                arrival_period=rng.randint(1, 6),
                max_heartbeats=rng.randint(0, 4),
                active=rng.random() > 0.2,
            )
        )
    return hyp


def _make_pair(hyp, eager):
    scan = HeartbeatMonitoringUnit(hyp, strategy="scan",
                                   eager_arrival_detection=eager)
    wheel = HeartbeatMonitoringUnit(hyp, strategy="wheel",
                                    eager_arrival_detection=eager)
    scan_errors, wheel_errors = [], []
    scan.add_listener(scan_errors.append)
    wheel.add_listener(wheel_errors.append)
    return scan, wheel, scan_errors, wheel_errors


def _drive_both(seed, *, eager, cycles=120, with_resets=False):
    """Feed one random schedule into both strategies, comparing
    snapshots after every cycle and error streams at the end."""
    rng = random.Random(seed)
    hyp = _random_hypothesis(rng)
    scan, wheel, scan_errors, wheel_errors = _make_pair(hyp, eager)
    names = list(hyp.runnables)
    for t in range(cycles):
        for _ in range(rng.randint(0, 4)):
            name = rng.choice(names)
            scan.heartbeat(name, time=t)
            wheel.heartbeat(name, time=t)
        if rng.random() < 0.15:
            name = rng.choice(names)
            active = rng.random() < 0.5
            scan.set_activation_status(name, active)
            wheel.set_activation_status(name, active)
        if rng.random() < 0.02:
            ghost = f"ghost{rng.randint(0, 3)}"
            scan.heartbeat(ghost, time=t)
            wheel.heartbeat(ghost, time=t)
        if with_resets and rng.random() < 0.03:
            scan.reset()
            wheel.reset()
        scan_cycle_errors = scan.cycle(time=t)
        wheel_cycle_errors = wheel.cycle(time=t)
        assert wheel_cycle_errors == scan_cycle_errors, (seed, t)
        for name in names:
            assert wheel.snapshot(name) == scan.snapshot(name), (seed, t, name)
    assert wheel_errors == scan_errors, seed
    assert wheel.heartbeat_count == scan.heartbeat_count
    assert wheel.unknown_heartbeats == scan.unknown_heartbeats
    return scan, wheel, scan_errors


@pytest.mark.parametrize("seed", range(25))
def test_randomized_schedules_period_end(seed):
    _drive_both(seed, eager=False)


@pytest.mark.parametrize("seed", range(25))
def test_randomized_schedules_eager(seed):
    _drive_both(seed, eager=True)


@pytest.mark.parametrize("seed", range(10))
def test_randomized_schedules_with_resets(seed):
    _drive_both(seed, eager=seed % 2 == 0, with_resets=True)


def test_errors_carry_matching_interned_ids():
    """Both strategies assign the same configuration-time slot ids and
    attach them to every error they emit."""
    _, wheel, errors = _drive_both(424242, eager=True)
    assert errors, "schedule produced no errors; pick a different seed"
    for error in errors:
        assert error.runnable_id == wheel.slot_of[error.runnable]


def test_wheel_visits_only_due_slots():
    """The wheel's per-cycle work tracks due checks, not population:
    with every period equal to p, only one cycle in p visits anything."""
    hyp = FaultHypothesis()
    for i in range(50):
        hyp.add_runnable(
            RunnableHypothesis(f"R{i}", aliveness_period=10, min_heartbeats=0,
                               arrival_period=10, max_heartbeats=100)
        )
    wheel = HeartbeatMonitoringUnit(hyp, strategy="wheel")
    scan = HeartbeatMonitoringUnit(hyp, strategy="scan")
    for t in range(100):
        wheel.cycle(t)
        scan.cycle(t)
    assert scan.slots_visited == 50 * 100
    assert wheel.slots_visited == 50 * 10  # one visit per slot per period


def test_error_order_matches_scan_slot_order():
    """When several runnables fail in the same cycle the wheel reports
    them in slot order, aliveness before arrival — the scan's order."""
    hyp = FaultHypothesis()
    for name in ("B_second", "A_first"):  # registration order != sorted
        hyp.add_runnable(
            RunnableHypothesis(name, aliveness_period=2, min_heartbeats=1,
                               arrival_period=2, max_heartbeats=0)
        )
    scan, wheel, scan_errors, wheel_errors = _make_pair(hyp, eager=False)
    for unit in (scan, wheel):
        unit.heartbeat("B_second", 0)
        unit.heartbeat("A_first", 0)
        unit.cycle(1)
        unit.cycle(2)
    assert [
        (e.runnable, e.error_type) for e in scan_errors
    ] == [
        ("B_second", ErrorType.ARRIVAL_RATE),
        ("A_first", ErrorType.ARRIVAL_RATE),
    ]
    assert wheel_errors == scan_errors
