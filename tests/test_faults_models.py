"""Tests for the fault model catalogue (§4.5 injection mechanisms)."""

import pytest

from repro.core import ErrorType
from repro.faults import (
    BlockedRunnableFault,
    ErrorInjector,
    FaultTarget,
    HeartbeatCorruptionFault,
    HeartbeatOmissionFault,
    InterruptStormFault,
    InvalidBranchFault,
    LoopCountFault,
    SkipRunnableFault,
    TimeScalarFault,
)
from repro.kernel import TraceKind, ms, seconds
from repro.platform import Ecu, FmfPolicy

from testutil import make_safespeed_mapping


@pytest.fixture
def ecu():
    # A generous FMF budget keeps treatment from resetting the ECU, so
    # cumulative detection counters stay observable for assertions.
    policy = FmfPolicy(ecu_faulty_task_threshold=99, max_app_restarts=10**9)
    e = Ecu("central", make_safespeed_mapping(), watchdog_period=ms(10),
            fmf_policy=policy)
    e.run_until(ms(200))  # warm, healthy
    assert e.watchdog.detection_count() == 0
    return e


def run_with(ecu, fault, duration=seconds(1)):
    target = FaultTarget.from_ecu(ecu)
    fault.inject(target)
    ecu.run_until(ecu.now + duration)
    return target


class TestBlockedRunnable:
    def test_provokes_aliveness_errors(self, ecu):
        run_with(ecu, BlockedRunnableFault("SAFE_CC_process"))
        assert ecu.watchdog.detection_count(ErrorType.ALIVENESS,
                                            runnable="SAFE_CC_process") > 0

    def test_restore_recovers(self, ecu):
        target = FaultTarget.from_ecu(ecu)
        fault = BlockedRunnableFault("SAFE_CC_process")
        fault.inject(target)
        ecu.run_until(ecu.now + ms(500))
        fault.restore(target)
        ecu.run_until(ecu.now + ms(100))  # flush straddling period
        count = ecu.watchdog.detection_count()
        ecu.run_until(ecu.now + seconds(1))
        assert ecu.watchdog.detection_count() == count

    def test_trace_records_injection(self, ecu):
        run_with(ecu, BlockedRunnableFault("SAFE_CC_process"), duration=ms(10))
        records = ecu.kernel.trace.filter(kind=TraceKind.FAULT_INJECTED)
        assert len(records) == 1
        assert records[0].info["fault_class"] == "BlockedRunnableFault"

    def test_double_inject_noop(self, ecu):
        target = FaultTarget.from_ecu(ecu)
        fault = BlockedRunnableFault("SAFE_CC_process")
        fault.inject(target)
        fault.inject(target)
        assert len(ecu.kernel.trace.filter(kind=TraceKind.FAULT_INJECTED)) == 1


class TestTimeScalar:
    def test_slow_scalar_provokes_aliveness(self, ecu):
        run_with(ecu, TimeScalarFault("SafeSpeedTask", scalar=4.0))
        assert ecu.watchdog.detection_count(ErrorType.ALIVENESS) > 0
        assert ecu.watchdog.detection_count(ErrorType.PROGRAM_FLOW) == 0

    def test_fast_scalar_provokes_arrival_rate(self):
        # Short runnables so the dispatch rate can actually quadruple
        # (a saturated 4 ms task cannot exceed its own execution rate).
        mapping = make_safespeed_mapping(wcets=(ms(0.5), ms(1), ms(0.5)))
        ecu = Ecu("central", mapping, watchdog_period=ms(10),
                  fmf_policy=FmfPolicy(ecu_faulty_task_threshold=99,
                                       max_app_restarts=10**9))
        ecu.run_until(ms(200))
        run_with(ecu, TimeScalarFault("SafeSpeedTask", scalar=0.25))
        assert ecu.watchdog.detection_count(ErrorType.ARRIVAL_RATE) > 0

    def test_expected_error_classification(self):
        assert TimeScalarFault("T", 4.0).expected_error == "aliveness"
        assert TimeScalarFault("T", 0.25).expected_error == "arrival_rate"

    def test_invalid_scalar(self):
        with pytest.raises(ValueError):
            TimeScalarFault("T", 0.0)

    def test_restore_resumes_nominal_period(self, ecu):
        target = FaultTarget.from_ecu(ecu)
        fault = TimeScalarFault("SafeSpeedTask", scalar=4.0)
        fault.inject(target)
        ecu.run_until(ecu.now + ms(300))
        fault.restore(target)
        count_at_restore = ecu.kernel.trace.count(
            TraceKind.TASK_ACTIVATE, "SafeSpeedTask"
        )
        ecu.run_until(ecu.now + ms(500))
        activations = (
            ecu.kernel.trace.count(TraceKind.TASK_ACTIVATE, "SafeSpeedTask")
            - count_at_restore
        )
        assert activations == 50  # back to 10 ms period


class TestLoopCount:
    def test_provokes_arrival_rate_error(self, ecu):
        run_with(ecu, LoopCountFault("GetSensorValue", repeat=4))
        assert ecu.watchdog.detection_count(ErrorType.ARRIVAL_RATE,
                                            runnable="GetSensorValue") > 0

    def test_self_loop_also_flow_error(self, ecu):
        run_with(ecu, LoopCountFault("GetSensorValue", repeat=4), duration=ms(100))
        # GetSensorValue -> GetSensorValue is not in the look-up table.
        assert ecu.watchdog.detection_count(ErrorType.PROGRAM_FLOW) > 0

    def test_invalid_repeat(self):
        with pytest.raises(ValueError):
            LoopCountFault("R", repeat=1)

    def test_restore(self, ecu):
        target = FaultTarget.from_ecu(ecu)
        fault = LoopCountFault("GetSensorValue", repeat=4)
        fault.inject(target)
        fault.restore(target)
        assert target.runnables["GetSensorValue"].repeat == 1


class TestFlowFaults:
    def test_skip_runnable_flow_and_aliveness(self, ecu):
        run_with(ecu, SkipRunnableFault("SafeSpeedTask", "SAFE_CC_process"))
        assert ecu.watchdog.detection_count(ErrorType.PROGRAM_FLOW) > 0
        assert ecu.watchdog.detection_count(ErrorType.ALIVENESS,
                                            runnable="SAFE_CC_process") > 0

    def test_invalid_branch_detected(self, ecu):
        run_with(
            ecu,
            InvalidBranchFault("SafeSpeedTask", at_step=1, branch_to="Speed_process"),
            duration=ms(200),
        )
        assert ecu.watchdog.detection_count(ErrorType.PROGRAM_FLOW) > 0

    def test_restore_restores_nominal_sequence(self, ecu):
        target = FaultTarget.from_ecu(ecu)
        fault = SkipRunnableFault("SafeSpeedTask", "SAFE_CC_process")
        fault.inject(target)
        ecu.run_until(ecu.now + ms(200))
        fault.restore(target)
        executions = target.runnables["SAFE_CC_process"].execution_count
        ecu.run_until(ecu.now + ms(200))
        assert target.runnables["SAFE_CC_process"].execution_count > executions


class TestHeartbeatFaults:
    def test_corruption_provokes_flow_error(self, ecu):
        run_with(
            ecu,
            HeartbeatCorruptionFault("SAFE_CC_process", reported_as="Speed_process"),
            duration=ms(300),
        )
        assert ecu.watchdog.detection_count(ErrorType.PROGRAM_FLOW) > 0
        # The real runnable's heartbeats vanish -> aliveness too.
        assert ecu.watchdog.detection_count(ErrorType.ALIVENESS,
                                            runnable="SAFE_CC_process") > 0

    def test_corruption_restore(self, ecu):
        target = FaultTarget.from_ecu(ecu)
        fault = HeartbeatCorruptionFault("SAFE_CC_process", reported_as="Speed_process")
        fault.inject(target)
        assert target.runnables["SAFE_CC_process"].name == "Speed_process"
        fault.restore(target)
        assert target.runnables["SAFE_CC_process"].name == "SAFE_CC_process"

    def test_omission_silent_functional_but_detected(self, ecu):
        target = run_with(ecu, HeartbeatOmissionFault("SAFE_CC_process"))
        # Runnable still executes (functionally healthy)...
        assert target.runnables["SAFE_CC_process"].execution_count > 20
        # ... but the watchdog flags missing aliveness indications.
        assert ecu.watchdog.detection_count(ErrorType.ALIVENESS,
                                            runnable="SAFE_CC_process") > 0

    def test_omission_restore_reinstalls_glue(self, ecu):
        target = FaultTarget.from_ecu(ecu)
        fault = HeartbeatOmissionFault("SAFE_CC_process")
        fault.inject(target)
        assert target.runnables["SAFE_CC_process"].exit_glue == []
        fault.restore(target)
        assert len(target.runnables["SAFE_CC_process"].exit_glue) == 1


class TestInterruptStorm:
    def test_storm_starves_application(self, ecu):
        # Steal 95 % of the CPU: the 4 ms task takes ~80 ms per run.
        run_with(ecu, InterruptStormFault(period=ms(2), isr_duration=ms(1.9)))
        assert ecu.watchdog.detection_count(ErrorType.ALIVENESS) > 0

    def test_storm_stops_on_restore(self, ecu):
        target = FaultTarget.from_ecu(ecu)
        fault = InterruptStormFault(period=ms(2), isr_duration=ms(1.6))
        fault.inject(target)
        ecu.run_until(ecu.now + ms(300))
        fires = fault._isr.fire_count if fault._isr else 0
        fault.restore(target)
        ecu.run_until(ecu.now + ms(300))
        # The rearm chain checks `active` and dies after restore.
        isr_enters = ecu.kernel.trace.count(TraceKind.ISR_ENTER)
        assert isr_enters <= fires + 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            InterruptStormFault(period=0, isr_duration=1)
