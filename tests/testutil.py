"""Shared helper builders for the test suite (import as `testutil`)."""

from __future__ import annotations

from repro.kernel import AlarmTable, Kernel, Runnable, Task, ms, runnable_sequence_body
from repro.platform import (
    Application,
    RunnableSpec,
    SoftwareComponent,
    TaskMapping,
    TaskSpec,
)


def make_safespeed_mapping(
    *,
    period=ms(10),
    priority=5,
    wcets=(ms(1), ms(2), ms(1)),
    restartable=True,
    ecu_reset_allowed=True,
) -> TaskMapping:
    """The canonical SafeSpeed mapping used across many tests."""
    app = Application(
        "SafeSpeed", restartable=restartable, ecu_reset_allowed=ecu_reset_allowed
    )
    swc = SoftwareComponent("SpeedControl")
    names = ["GetSensorValue", "SAFE_CC_process", "Speed_process"]
    for name, wcet in zip(names, wcets):
        swc.add(RunnableSpec(name, wcet=wcet))
    app.add_component(swc)
    mapping = TaskMapping([app])
    mapping.add_task(TaskSpec("SafeSpeedTask", priority=priority, period=period))
    mapping.map_sequence("SafeSpeedTask", names)
    return mapping


def periodic_task(kernel: Kernel, alarms: AlarmTable, name: str, priority: int,
                  period: int, wcets) -> list:
    """Create a periodic task of runnables; returns the runnables."""
    runnables = [
        Runnable(f"{name}.r{i}", kernel, wcet=w) for i, w in enumerate(wcets)
    ]
    kernel.add_task(Task(name, priority, runnable_sequence_body(runnables)))
    alarms.alarm_activate_task(f"{name}Alarm", name).set_rel(period, period)
    return runnables
