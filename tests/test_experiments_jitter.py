"""Tests for the E7 release-offset ablation (alarms vs schedule table)."""

import pytest

from repro.experiments import run_alarm_release, run_schedule_table_release
from repro.kernel import seconds


@pytest.fixture(scope="module")
def alarm_rows():
    return {r.task: r for r in run_alarm_release(seconds(2))}


@pytest.fixture(scope="module")
def table_rows():
    return {r.task: r for r in run_schedule_table_release(seconds(2))}


class TestJitterAblation:
    def test_synchronous_releases_queue_up(self, alarm_rows):
        """With simultaneous releases, lower-priority tasks inherit the
        whole burst: worst responses stack 3/5/7 ms."""
        assert alarm_rows["Alpha"].worst_response_us == 3000
        assert alarm_rows["Beta"].worst_response_us == 5000
        assert alarm_rows["Gamma"].worst_response_us == 7000

    def test_offsets_flatten_worst_responses(self, table_rows):
        for row in table_rows.values():
            assert row.worst_response_us == 3000

    def test_offsets_strictly_better_for_low_priority(self, alarm_rows, table_rows):
        assert (
            table_rows["Gamma"].worst_response_us
            < alarm_rows["Gamma"].worst_response_us
        )

    def test_interference_jitter_present_in_both(self, alarm_rows, table_rows):
        """The non-harmonic interferer makes responses vary either way;
        the ablation is about worst case, not about removing jitter."""
        assert alarm_rows["Gamma"].response_jitter_us > 0
        assert table_rows["Gamma"].response_jitter_us > 0
