"""Tests for the layered HW+SW watchdog arrangement (§2).

"With the increasing density of applications on one ECU, the hardware
watchdog should be supplemented with software services" — supplemented,
not replaced.  The layered arrangement kicks the hardware watchdog from
the Software Watchdog's check task: each stage covers the other's blind
spot.
"""

import pytest

from repro.baselines import HardwareWatchdog
from repro.core import ErrorType, attach_hardware_watchdog_kick
from repro.faults import BlockedRunnableFault, FaultTarget
from repro.kernel import Segment, Task, ms, seconds
from repro.platform import Ecu, FmfPolicy

from testutil import make_safespeed_mapping


@pytest.fixture
def layered():
    ecu = Ecu(
        "central",
        make_safespeed_mapping(),
        watchdog_period=ms(10),
        fmf_policy=FmfPolicy(ecu_faulty_task_threshold=10**6,
                             max_app_restarts=10**6),
        fmf_auto_treatment=False,
    )
    hw = HardwareWatchdog(ecu.kernel, timeout=ms(50))
    attach_hardware_watchdog_kick(ecu.binding, hw)
    hw.start()
    return ecu, hw


class TestLayeredArrangement:
    def test_healthy_neither_stage_fires(self, layered):
        ecu, hw = layered
        ecu.run_until(seconds(2))
        assert not hw.expired
        assert ecu.watchdog.detection_count() == 0
        assert hw.kick_count >= 195  # one kick per check cycle

    def test_application_fault_caught_by_software_stage_only(self, layered):
        ecu, hw = layered
        ecu.run_until(ms(200))
        BlockedRunnableFault("SAFE_CC_process").inject(FaultTarget.from_ecu(ecu))
        ecu.run_until(seconds(2))
        assert ecu.watchdog.detection_count(ErrorType.ALIVENESS) > 0
        assert not hw.expired  # the kick stream (watchdog task) is healthy

    def test_watchdog_death_caught_by_hardware_stage(self, layered):
        """A runaway above the Software Watchdog's priority kills the
        check task — and with it the kick stream: the hardware stage is
        the one that still fires."""
        ecu, hw = layered
        wd_priority = ecu.kernel.tasks[ecu.binding.task_name].priority

        def runaway_body(task):
            while True:
                yield Segment(ms(100))

        ecu.kernel.add_task(Task("Runaway", wd_priority + 1, runaway_body))
        ecu.run_until(ms(200))
        checks_before = ecu.watchdog.check_cycle_count
        ecu.kernel.activate_task("Runaway")
        ecu.run_until(ecu.now + seconds(1))
        # The software stage is dead ...
        assert ecu.watchdog.check_cycle_count == checks_before
        # ... and the hardware stage detects that within its timeout.
        assert hw.expired
        assert hw.expiry_times[0] <= ms(200) + ms(60)
