"""Tests for the ControlDesk-style parameter store and capture."""

import pytest

from repro.kernel import Kernel, ms
from repro.validator import Capture, ParameterStore


class Holder:
    def __init__(self):
        self.value = 1.0
        self.other = 5.0


class TestParameterStore:
    def test_register_and_set(self, kernel):
        store = ParameterStore(kernel)
        holder = Holder()
        store.register_attribute("p", holder, "value")
        store.set_now("p", 3.5)
        assert holder.value == 3.5
        assert store.get("p").value == 3.5

    def test_duplicate_rejected(self, kernel):
        store = ParameterStore(kernel)
        holder = Holder()
        store.register_attribute("p", holder, "value")
        with pytest.raises(ValueError):
            store.register_attribute("p", holder, "other")

    def test_unknown_parameter(self, kernel):
        store = ParameterStore(kernel)
        with pytest.raises(KeyError):
            store.get("ghost")

    def test_set_at_scheduled_change(self, kernel):
        store = ParameterStore(kernel)
        holder = Holder()
        store.register_attribute("p", holder, "value")
        store.set_at(ms(10), "p", 9.0)
        kernel.run_until(ms(5))
        assert holder.value == 1.0
        kernel.run_until(ms(15))
        assert holder.value == 9.0

    def test_set_at_unknown_fails_fast(self, kernel):
        store = ParameterStore(kernel)
        with pytest.raises(KeyError):
            store.set_at(ms(10), "ghost", 1.0)

    def test_change_log(self, kernel):
        store = ParameterStore(kernel)
        holder = Holder()
        store.register_attribute("p", holder, "value")
        store.set_now("p", 2.0)
        store.set_at(ms(5), "p", 3.0)
        kernel.run_until(ms(10))
        assert store.change_log == [(0, "p", 2.0), (ms(5), "p", 3.0)]

    def test_custom_getter_setter(self, kernel):
        store = ParameterStore(kernel)
        box = {"v": 0.0}
        store.register("p", lambda: box["v"], lambda x: box.__setitem__("v", x))
        store.set_now("p", 7.0)
        assert box["v"] == 7.0

    def test_parameters_listing(self, kernel):
        store = ParameterStore(kernel)
        holder = Holder()
        store.register_attribute("a", holder, "value")
        store.register_attribute("b", holder, "other")
        assert [p.name for p in store.parameters()] == ["a", "b"]


class TestCapture:
    def test_periodic_sampling(self, kernel):
        capture = Capture(kernel, sample_period=ms(10))
        holder = Holder()
        capture.add_attribute_probe("v", holder, "value")
        capture.start()
        kernel.run_until(ms(45))
        series = capture.get("v")
        assert series.times == [ms(10), ms(20), ms(30), ms(40)]
        assert series.values == [1.0] * 4

    def test_samples_track_changes(self, kernel):
        capture = Capture(kernel, sample_period=ms(10))
        holder = Holder()
        capture.add_attribute_probe("v", holder, "value")
        capture.start()
        kernel.queue.schedule(ms(15), lambda: setattr(holder, "value", 8.0))
        kernel.run_until(ms(30))
        assert capture.get("v").values == [1.0, 8.0, 8.0]

    def test_stop_halts_sampling(self, kernel):
        capture = Capture(kernel, sample_period=ms(10))
        holder = Holder()
        capture.add_attribute_probe("v", holder, "value")
        capture.start()
        kernel.run_until(ms(25))
        capture.stop()
        kernel.run_until(ms(100))
        assert len(capture.get("v").values) == 2

    def test_duplicate_probe_rejected(self, kernel):
        capture = Capture(kernel)
        holder = Holder()
        capture.add_attribute_probe("v", holder, "value")
        with pytest.raises(ValueError):
            capture.add_attribute_probe("v", holder, "other")

    def test_bad_sample_period(self, kernel):
        with pytest.raises(ValueError):
            Capture(kernel, sample_period=0)

    def test_series_helpers(self, kernel):
        capture = Capture(kernel, sample_period=ms(10))
        holder = Holder()
        capture.add_attribute_probe("v", holder, "value")
        capture.start()
        kernel.queue.schedule(ms(15), lambda: setattr(holder, "value", 4.0))
        kernel.run_until(ms(35))
        series = capture.get("v")
        assert series.max() == 4.0
        assert series.final() == 4.0
        assert series.at(ms(12)) == 1.0
        assert series.at(ms(22)) == 4.0
        assert series.at(0) is None

    def test_as_dict(self, kernel):
        capture = Capture(kernel, sample_period=ms(10))
        holder = Holder()
        capture.add_attribute_probe("v", holder, "value")
        capture.start()
        kernel.run_until(ms(20))
        assert capture.as_dict() == {"v": [1.0, 1.0]}

    def test_unknown_probe(self, kernel):
        capture = Capture(kernel)
        with pytest.raises(KeyError):
            capture.get("ghost")
