"""Supervision across domain borders: frames routed through the gateway.

EASIS supervises *integrated* safety systems whose nodes live on
different vehicle domains.  Here a supervised node publishes on a body
CAN; the supervisor sits on a chassis CAN; the gateway whitelists and
routes the supervision frame id between them — and node death is still
detected end-to-end (with the gateway hop visible in the latency).
"""

import pytest

from repro.core import (
    MonitorState,
    RemoteSupervisor,
    SupervisionPublisher,
    make_supervision_frame_spec,
)
from repro.core.hypothesis import FaultHypothesis, RunnableHypothesis
from repro.core.watchdog import SoftwareWatchdog
from repro.kernel import Kernel, ms
from repro.network import CanBus, Gateway, Route


@pytest.fixture
def rig():
    kernel = Kernel()
    body_can = CanBus("body", kernel)
    chassis_can = CanBus("chassis", kernel)

    # Supervised node on the body domain.
    hyp = FaultHypothesis()
    hyp.add_runnable(RunnableHypothesis("R", task="T"))
    watchdog = SoftwareWatchdog(hyp)
    spec = make_supervision_frame_spec(0, "bodynode")
    body_ctrl = body_can.attach("bodynode")
    publisher = SupervisionPublisher(watchdog, spec, body_ctrl.send)

    # Gateway routes the supervision id across the border.
    gw = Gateway("gw", kernel, forwarding_latency=ms(1))
    gw.add_can_port("body", body_can.attach("gw-body"))
    gw.add_can_port("chassis", chassis_can.attach("gw-chassis"))
    gw.add_route(Route(source_port="body", frame_id=spec.frame_id,
                       destination_port="chassis"))

    # Supervisor on the chassis domain.
    supervisor = RemoteSupervisor(check_period=3)
    supervisor.watch("bodynode", spec.frame_id)
    sup_ctrl = chassis_can.attach("supervisor")
    sup_ctrl.accept(spec.frame_id)
    sup_ctrl.on_receive(supervisor.on_message)

    state = {"publishing": True}

    def tick():
        if state["publishing"]:
            publisher.publish()
        supervisor.cycle(kernel.clock.now)
        kernel.queue.schedule(kernel.clock.now + ms(10), tick,
                              persistent=True)

    kernel.queue.schedule(ms(10), tick, persistent=True)
    return kernel, supervisor, state, gw


class TestCrossDomainSupervision:
    def test_frames_cross_the_border(self, rig):
        kernel, supervisor, state, gw = rig
        kernel.run_until(ms(500))
        assert gw.forwarded_count >= 48
        assert supervisor.peers["bodynode"].frames_received >= 45
        assert supervisor.peer_state("bodynode") is MonitorState.OK

    def test_node_death_detected_across_domains(self, rig):
        kernel, supervisor, state, gw = rig
        kernel.run_until(ms(500))
        state["publishing"] = False  # node dies
        kernel.run_until(ms(600))
        assert supervisor.peer_state("bodynode") is MonitorState.FAULTY
        assert supervisor.peers["bodynode"].node_aliveness_errors >= 1

    def test_unwhitelisted_ids_do_not_cross(self, rig):
        kernel, supervisor, state, gw = rig
        from repro.network.frames import FrameSpec, SignalSpec

        other = FrameSpec("Other", 0x123)
        other.add_signal(SignalSpec("v", 0, 8))
        body_sender = gw.ports["body"]
        # Send an unrelated frame on the body bus: the gateway drops it.
        dropped_before = gw.dropped_count
        # Reuse a fresh controller on the body bus.
        kernel.run_until(ms(100))
        # find the body bus through the gateway's receive path: send via a
        # new controller attached to the same bus object used in fixture.
        # (The fixture keeps the bus reachable through closures only, so
        # route a frame by invoking the gateway entry point directly.)
        from repro.network.frames import Message

        gw.on_message("body", Message(spec=other, payload=other.pack({"v": 1}),
                                      timestamp=kernel.clock.now))
        assert gw.dropped_count == dropped_before + 1

    def test_gateway_hop_adds_bounded_latency(self, rig):
        kernel, supervisor, state, gw = rig
        kernel.run_until(ms(200))
        status = supervisor.peers["bodynode"]
        # Publication at t, arrival after one CAN tx + 1 ms forward + tx.
        assert status.last_seen is not None
        assert status.last_seen % ms(10) <= ms(2)
