"""Tests for the tracing subsystem."""

from repro.kernel import Trace, TraceKind, TraceRecord


def rec(time, kind=TraceKind.CUSTOM, subject="s", **info):
    return TraceRecord(time=time, kind=kind, subject=subject, info=info)


class TestTraceBasics:
    def test_emit_and_len(self):
        trace = Trace()
        trace.emit(rec(1))
        trace.emit(rec(2))
        assert len(trace) == 2

    def test_record_convenience(self):
        trace = Trace()
        trace.record(5, TraceKind.HEARTBEAT, "R1", task="T")
        assert trace[0].time == 5
        assert trace[0].info["task"] == "T"

    def test_iteration_order(self):
        trace = Trace()
        for t in (1, 2, 3):
            trace.emit(rec(t))
        assert [r.time for r in trace] == [1, 2, 3]

    def test_clear(self):
        trace = Trace()
        trace.emit(rec(1))
        trace.clear()
        assert len(trace) == 0

    def test_str_rendering(self):
        record = rec(42, TraceKind.HEARTBEAT, "R1", task="T")
        text = str(record)
        assert "heartbeat" in text and "R1" in text and "task=T" in text


class TestCapacity:
    def test_ring_capacity_drops_oldest(self):
        trace = Trace(capacity=3)
        for t in range(5):
            trace.emit(rec(t))
        assert len(trace) == 3
        assert [r.time for r in trace] == [2, 3, 4]
        assert trace.dropped == 2


class TestQueries:
    def build(self):
        trace = Trace()
        trace.emit(rec(10, TraceKind.TASK_ACTIVATE, "A"))
        trace.emit(rec(20, TraceKind.TASK_TERMINATE, "A"))
        trace.emit(rec(30, TraceKind.TASK_ACTIVATE, "B"))
        trace.emit(rec(40, TraceKind.TASK_ACTIVATE, "A"))
        return trace

    def test_filter_by_kind(self):
        trace = self.build()
        assert len(trace.filter(kind=TraceKind.TASK_ACTIVATE)) == 3

    def test_filter_by_subject(self):
        trace = self.build()
        assert len(trace.filter(subject="A")) == 3

    def test_filter_by_window(self):
        trace = self.build()
        assert len(trace.filter(start=15, end=40)) == 2

    def test_count(self):
        trace = self.build()
        assert trace.count(TraceKind.TASK_ACTIVATE, "A") == 2

    def test_first_and_last(self):
        trace = self.build()
        assert trace.first(TraceKind.TASK_ACTIVATE, "A").time == 10
        assert trace.last(TraceKind.TASK_ACTIVATE, "A").time == 40
        assert trace.first(TraceKind.ECU_RESET) is None

    def test_subjects(self):
        trace = self.build()
        assert trace.subjects(TraceKind.TASK_ACTIVATE) == ["A", "B"]

    def test_dump_limit(self):
        trace = self.build()
        assert len(trace.dump(limit=2).splitlines()) == 2


class TestListeners:
    def test_subscribe_receives_live_records(self):
        trace = Trace()
        seen = []
        trace.subscribe(seen.append)
        trace.emit(rec(1))
        assert len(seen) == 1

    def test_unsubscribe(self):
        trace = Trace()
        seen = []
        trace.subscribe(seen.append)
        trace.unsubscribe(seen.append)
        trace.emit(rec(1))
        assert seen == []
