"""Tests for campaign execution and coverage accounting."""

import pytest

from repro.faults import (
    BlockedRunnableFault,
    Campaign,
    CampaignResult,
    CampaignSystem,
    DetectionRecorder,
    FaultTarget,
    RunResult,
    TimeScalarFault,
    watchdog_detector,
)
from repro.kernel import ms, seconds
from repro.platform import Ecu, FmfPolicy

from testutil import make_safespeed_mapping


def system_factory():
    ecu = Ecu(
        "central",
        make_safespeed_mapping(),
        watchdog_period=ms(10),
        fmf_policy=FmfPolicy(ecu_faulty_task_threshold=99, max_app_restarts=10**9),
    )
    detector = watchdog_detector(ecu.watchdog)
    return CampaignSystem(
        target=FaultTarget.from_ecu(ecu),
        detectors=[detector],
        run_until=ecu.run_until,
        now=lambda: ecu.now,
        context={"ecu": ecu},
    )


class TestDetectionRecorder:
    def test_first_detection_after(self):
        recorder = DetectionRecorder("d")
        recorder.record(10)
        recorder.record(20)
        assert recorder.first_detection_after(5) == 10
        assert recorder.first_detection_after(15) == 20
        assert recorder.first_detection_after(25) is None

    def test_clear(self):
        recorder = DetectionRecorder("d")
        recorder.record(10)
        recorder.clear()
        assert recorder.first_detection_after(0) is None

    def test_out_of_order_records_are_sorted(self):
        """Regression: the bisect-based query needs sorted times, so an
        out-of-order ``record`` must insort rather than append."""
        recorder = DetectionRecorder("d")
        for t in (30, 10, 20, 10):
            recorder.record(t)
        assert recorder.times == [10, 10, 20, 30]
        assert recorder.first_detection_after(5) == 10
        assert recorder.first_detection_after(11) == 20
        assert recorder.first_detection_after(21) == 30
        assert recorder.first_detection_after(31) is None

    def test_exact_boundary_is_inclusive(self):
        recorder = DetectionRecorder("d")
        recorder.record(10)
        assert recorder.first_detection_after(10) == 10


class TestRunResult:
    def test_latency_and_detected(self):
        run = RunResult(
            fault_name="f", fault_class="F", expected_error="aliveness",
            inject_time=100, detections={"d": 150, "missed": None},
        )
        assert run.latency("d") == 50
        assert run.detected_by("d")
        assert not run.detected_by("missed")
        assert run.latency("missed") is None


class TestCampaign:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Campaign(system_factory, warmup=-1, observation=10)
        with pytest.raises(ValueError):
            Campaign(system_factory, warmup=0, observation=0)

    def test_single_fault_detected(self):
        campaign = Campaign(system_factory, warmup=ms(200), observation=ms(800))
        result = campaign.execute(
            [lambda s: BlockedRunnableFault("SAFE_CC_process")]
        )
        assert len(result.runs) == 1
        run = result.runs[0]
        assert run.fault_class == "BlockedRunnableFault"
        assert run.detected_by("SoftwareWatchdog")
        assert run.latency("SoftwareWatchdog") > 0

    def test_each_run_fresh_system(self):
        seen = []

        def factory():
            system = system_factory()
            seen.append(system)
            return system

        campaign = Campaign(factory, warmup=ms(100), observation=ms(300))
        campaign.execute(
            [
                lambda s: BlockedRunnableFault("SAFE_CC_process"),
                lambda s: BlockedRunnableFault("GetSensorValue"),
            ]
        )
        assert len(seen) == 2
        assert seen[0] is not seen[1]

    def test_transient_campaign_restores(self):
        campaign = Campaign(
            system_factory, warmup=ms(200), observation=seconds(1),
            transient_duration=ms(300),
        )
        result = campaign.execute([lambda s: BlockedRunnableFault("SAFE_CC_process")])
        ecu = None  # the system is internal; assert via detection instead
        assert result.runs[0].detected_by("SoftwareWatchdog")

    def test_coverage_aggregation(self):
        campaign = Campaign(system_factory, warmup=ms(200), observation=ms(800))
        result = campaign.execute(
            [
                lambda s: BlockedRunnableFault("SAFE_CC_process"),
                lambda s: BlockedRunnableFault("Speed_process"),
                lambda s: TimeScalarFault("SafeSpeedTask", 4.0),
            ]
        )
        assert result.coverage("SoftwareWatchdog") == 1.0
        assert result.coverage("SoftwareWatchdog", "BlockedRunnableFault") == 1.0
        assert set(result.fault_classes()) == {
            "BlockedRunnableFault", "TimeScalarFault",
        }
        assert result.detectors() == ["SoftwareWatchdog"]

    def test_latency_statistics(self):
        campaign = Campaign(system_factory, warmup=ms(200), observation=ms(800))
        result = campaign.execute(
            [lambda s: BlockedRunnableFault("SAFE_CC_process")] * 3
        )
        latencies = result.latencies("SoftwareWatchdog")
        assert len(latencies) == 3
        assert result.mean_latency("SoftwareWatchdog") == pytest.approx(
            sum(latencies) / 3
        )

    def test_coverage_table_rows(self):
        campaign = Campaign(system_factory, warmup=ms(200), observation=ms(600))
        result = campaign.execute(
            [lambda s: BlockedRunnableFault("SAFE_CC_process")]
        )
        rows = result.coverage_table()
        assert len(rows) == 1
        assert rows[0]["fault_class"] == "BlockedRunnableFault"
        assert rows[0]["coverage"] == 1.0
        assert rows[0]["runs"] == 1


class TestEmptyResult:
    def test_empty_coverage_zero(self):
        result = CampaignResult()
        assert result.coverage("any") == 0.0
        assert result.mean_latency("any") is None
        assert result.coverage_table() == []
