"""Tests for the CFCSS signature-based control flow checker."""

import pytest

from repro.baselines import (
    BasicBlockGraph,
    CfcssChecker,
    CfgError,
    instructions_per_block,
)


def linear_graph(names=("A", "B", "C", "D")):
    graph = BasicBlockGraph()
    graph.add_path(list(names))
    return graph


def diamond_graph():
    """A -> (B | C) -> D : D is a branch-fan-in block."""
    graph = BasicBlockGraph()
    for name in ("A", "B", "C", "D"):
        graph.add_block(name)
    graph.add_edge("A", "B")
    graph.add_edge("A", "C")
    graph.add_edge("B", "D")
    graph.add_edge("C", "D")
    return graph


class TestGraph:
    def test_duplicate_block(self):
        graph = BasicBlockGraph()
        graph.add_block("A")
        with pytest.raises(CfgError):
            graph.add_block("A")

    def test_unknown_edge_endpoint(self):
        graph = BasicBlockGraph()
        graph.add_block("A")
        with pytest.raises(CfgError):
            graph.add_edge("A", "ghost")

    def test_add_path(self):
        graph = linear_graph()
        assert graph.is_edge("A", "B")
        assert graph.predecessors("D") == ["C"]

    def test_duplicate_edge_ignored(self):
        graph = linear_graph()
        graph.add_edge("A", "B")
        assert graph.successors("A") == ["B"]


class TestInstrumentation:
    def test_unique_signatures(self):
        checker = CfcssChecker(linear_graph(), "A")
        signatures = list(checker.signatures.values())
        assert len(signatures) == len(set(signatures))

    def test_fan_in_identified(self):
        checker = CfcssChecker(diamond_graph(), "A")
        assert checker.fan_in == {"D"}
        assert ("B", "D") in checker.d_adjust
        assert ("C", "D") in checker.d_adjust

    def test_linear_graph_no_fan_in(self):
        checker = CfcssChecker(linear_graph(), "A")
        assert checker.fan_in == set()

    def test_instrumentation_size(self):
        linear = CfcssChecker(linear_graph(), "A")
        assert linear.instrumentation_size() == 2 * 4
        diamond = CfcssChecker(diamond_graph(), "A")
        assert diamond.instrumentation_size() == 2 * 4 + 1 + 2

    def test_unknown_entry(self):
        with pytest.raises(CfgError):
            CfcssChecker(linear_graph(), "ghost")


class TestLegalWalks:
    def test_linear_walk_clean(self):
        checker = CfcssChecker(linear_graph(), "A")
        assert checker.run_walk(["A", "B", "C", "D"]) == 0

    def test_diamond_both_arms_clean(self):
        checker = CfcssChecker(diamond_graph(), "A")
        assert checker.run_walk(["A", "B", "D"]) == 0
        assert checker.run_walk(["A", "C", "D"]) == 0

    def test_loop_walk_clean(self):
        graph = linear_graph(("A", "B"))
        graph.add_edge("B", "A")
        checker = CfcssChecker(graph, "A")
        assert checker.run_walk(["A", "B", "A", "B", "A"]) == 0

    def test_walk_must_start_at_entry(self):
        checker = CfcssChecker(linear_graph(), "A")
        with pytest.raises(CfgError):
            checker.run_walk(["B", "C"])


class TestIllegalWalks:
    def test_skip_detected(self):
        checker = CfcssChecker(linear_graph(), "A")
        assert checker.run_walk(["A", "C", "D"]) == 1
        assert checker.detections[0] == ("A", "C")

    def test_backward_jump_detected(self):
        checker = CfcssChecker(linear_graph(), "A")
        assert checker.run_walk(["A", "B", "A", "B"]) >= 1

    def test_illegal_jump_into_fan_in_detected(self):
        checker = CfcssChecker(diamond_graph(), "A")
        # A -> D directly is illegal (and A is not a D-predecessor).
        assert checker.run_walk(["A", "D"]) == 1

    def test_resync_continues_checking(self):
        checker = CfcssChecker(linear_graph(), "A")
        checker.run_walk(["A", "C", "D"])  # one detection, resynced
        assert checker.run_walk(["A", "B", "C", "D"]) == 0

    def test_aliasing_limitation_exists(self):
        """CFCSS's documented weakness: with shared predecessors, the
        wrong arm of a fan-in can go undetected (branching to a sibling
        whose signature relationship aliases)."""
        # v1 -> {v3, v4}, v2 -> {v3, v4}: classic aliasing example.
        graph = BasicBlockGraph()
        for name in ("v0", "v1", "v2", "v3", "v4"):
            graph.add_block(name)
        graph.add_edge("v0", "v1")
        graph.add_edge("v0", "v2")
        for src in ("v1", "v2"):
            for dst in ("v3", "v4"):
                graph.add_edge(src, dst)
        checker = CfcssChecker(graph, "v0")
        # All legal walks pass.
        for walk in (["v0", "v1", "v3"], ["v0", "v2", "v4"]):
            assert checker.run_walk(walk) == 0


class TestOverheadAccounting:
    def test_instruction_count_grows_with_walk(self):
        checker = CfcssChecker(linear_graph(), "A")
        checker.run_walk(["A", "B", "C", "D"])
        first = checker.instruction_count
        checker.run_walk(["A", "B", "C", "D"])
        assert checker.instruction_count == 2 * first

    def test_linear_cost_is_two_per_block(self):
        checker = CfcssChecker(linear_graph(), "A")
        checker.run_walk(["A", "B", "C", "D"])
        assert checker.instruction_count == 2 * 4

    def test_fan_in_costs_more(self):
        checker = CfcssChecker(diamond_graph(), "A")
        checker.run_walk(["A", "B", "D"])
        # A:2, B:2 (+1 set D), D:3 -> 8
        assert checker.instruction_count == 8

    def test_instructions_per_block_estimate(self):
        assert instructions_per_block(linear_graph()) == pytest.approx(2.0)
        assert instructions_per_block(diamond_graph()) > 2.0
