"""Tests for the steer-by-wire application."""

import math

import pytest

from repro.apps import SteerByWireApp, SteerByWireConfig, Vehicle


def make_app(vehicle=None, handwheel=0.0, **config):
    vehicle = vehicle or Vehicle()
    state = {"handwheel": handwheel}

    def handwheel_port():
        return state["handwheel"]

    def roadwheel_sensor():
        return vehicle.state.steering_rad

    def actuator(angle):
        vehicle.commands.steering_rad = angle

    app = SteerByWireApp(handwheel_port, roadwheel_sensor, actuator,
                         SteerByWireConfig(**config))
    return app, vehicle, state


def run_cycles(app, vehicle, n, dt=0.005):
    for _ in range(n):
        app.read_handwheel()
        app.steering_control()
        app.apply_steering()
        vehicle.step(dt)


class TestRunnables:
    def test_target_scaled_by_ratio(self):
        app, _, state = make_app(handwheel=1.6)
        app.read_handwheel()
        assert app.state.target_rad == pytest.approx(0.1)

    def test_target_clamped(self):
        app, _, state = make_app(handwheel=100.0)
        app.read_handwheel()
        assert app.state.target_rad == app.config.max_roadwheel_rad

    def test_rate_limit_respected(self):
        app, vehicle, state = make_app(handwheel=8.0)
        app.read_handwheel()
        app.steering_control()
        max_step = app.config.max_rate_rps * app.config.sample_time_s
        assert abs(app.state.command_rad) <= max_step + 1e-12


class TestClosedLoop:
    def test_tracks_handwheel(self):
        app, vehicle, state = make_app(handwheel=1.6)  # target 0.1 rad
        vehicle.state.speed_mps = 10.0
        run_cycles(app, vehicle, 400)
        assert vehicle.state.steering_rad == pytest.approx(0.1, abs=0.01)

    def test_returns_to_center(self):
        app, vehicle, state = make_app(handwheel=1.6)
        vehicle.state.speed_mps = 10.0
        run_cycles(app, vehicle, 400)
        state["handwheel"] = 0.0
        run_cycles(app, vehicle, 400)
        assert abs(vehicle.state.steering_rad) < 0.01

    def test_tracking_error_metric(self):
        app, vehicle, state = make_app(handwheel=1.6)
        run_cycles(app, vehicle, 10)
        assert app.state.max_tracking_error_rad > 0.0

    def test_sinusoidal_following(self):
        app, vehicle, state = make_app()
        vehicle.state.speed_mps = 15.0
        for i in range(2_000):
            state["handwheel"] = 1.0 * math.sin(i * 0.005)
            app.read_handwheel()
            app.steering_control()
            app.apply_steering()
            vehicle.step(0.005)
        # The road wheel follows within a small tracking error.
        assert app.state.max_tracking_error_rad < 0.05


class TestApplicationModel:
    def test_defaults_to_non_restartable(self):
        app, _, _ = make_app()
        application = app.build_application()
        assert not application.restartable
        assert not application.ecu_reset_allowed

    def test_three_runnables(self):
        app, _, _ = make_app()
        assert len(app.build_application().runnable_names()) == 3

    def test_wcet_count_enforced(self):
        app, _, _ = make_app()
        with pytest.raises(ValueError):
            app.build_application(wcets=[1, 2, 3, 4])
