"""The asyncio daemon: transport, degradation, backpressure, HTTP."""

import asyncio
import json
import struct

import pytest

from repro.core import FaultHypothesis, RunnableHypothesis
from repro.core.config_io import hypothesis_to_dict
from repro.core.reports import ErrorType, MonitorState
from repro.service import SupervisionServer, WatchdogClient
from repro.service.protocol import (
    FrameDecoder,
    PROTOCOL_VERSION,
    T_ACK,
    T_BYE,
    T_DETECTION,
    T_HEARTBEAT,
    T_HELLO,
    T_REGISTER,
    encode_frame,
)


def make_hyp_dict(prefix: str = "", task: str = "T"):
    hyp = FaultHypothesis()
    hyp.add_runnable(RunnableHypothesis(
        f"{prefix}sense", task=task, aliveness_period=2, min_heartbeats=1,
        arrival_period=2, max_heartbeats=8))
    hyp.add_runnable(RunnableHypothesis(
        f"{prefix}act", task=task, aliveness_period=2, min_heartbeats=1,
        arrival_period=2, max_heartbeats=8))
    hyp.allow_sequence([f"{prefix}sense", f"{prefix}act"])
    return hypothesis_to_dict(hyp)


async def start_server(**kwargs):
    kwargs.setdefault("port", 0)
    kwargs.setdefault("tick_interval", None)
    server = SupervisionServer(**kwargs)
    await server.start()
    return server


async def in_thread(fn, *args):
    return await asyncio.get_running_loop().run_in_executor(None, fn, *args)


async def barrier(peer):
    """HELLO round-trip: frames are dispatched in order per connection,
    so once the ACK arrives every prior indication is enqueued."""
    await peer.send(T_HELLO, client="barrier")
    ack = await peer.recv_frame()
    assert ack.get("ok")


class _WireClient:
    """A raw protocol peer driven from inside the event loop."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer
        self.decoder = FrameDecoder()
        self.frames = []

    @classmethod
    async def connect(cls, server):
        reader, writer = await asyncio.open_connection(
            server.host, server.port)
        return cls(reader, writer)

    async def send(self, type, **data):
        self.writer.write(encode_frame(type, **data))
        await self.writer.drain()

    async def send_raw(self, payload: bytes):
        self.writer.write(payload)
        await self.writer.drain()

    async def recv_frame(self, timeout=5.0):
        while not self.frames:
            chunk = await asyncio.wait_for(
                self.reader.read(65536), timeout=timeout)
            assert chunk, "server closed the connection"
            self.frames.extend(self.decoder.feed(chunk))
        return self.frames.pop(0)

    async def close(self):
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class TestWireServer:
    def test_hello_register_heartbeat_bye(self):
        async def scenario():
            server = await start_server()
            peer = await _WireClient.connect(server)
            await peer.send(T_HELLO, client="it")
            ack = await peer.recv_frame()
            assert ack.type == T_ACK and ack.get("ok")
            assert ack.get("server") == server.name
            await peer.send(T_REGISTER, name="p", hypothesis=make_hyp_dict())
            ack = await peer.recv_frame()
            assert ack.get("ok") and ack.get("shard") == 0
            await peer.send(T_HEARTBEAT, name="p",
                            batch=[["sense", 5, "T"], ["act", 6, "T"]])
            await barrier(peer)
            await server.drain()
            registration = server.fleet.registration("p")
            assert registration.indications == 2
            await peer.send(T_BYE)
            ack = await peer.recv_frame()
            assert ack.get("ok") and ack.get("re") == T_BYE
            await peer.close()
            await asyncio.sleep(0.02)
            assert not registration.active
            await server.stop()
        asyncio.run(scenario())

    def test_malformed_payload_gets_error_ack_connection_survives(self):
        async def scenario():
            server = await start_server()
            peer = await _WireClient.connect(server)
            await peer.send_raw(struct.pack("!I", 9) + b"{not json")
            ack = await peer.recv_frame()
            assert ack.type == T_ACK and not ack.get("ok")
            # The same connection still works afterwards.
            await peer.send(T_HELLO, client="still-here")
            ack = await peer.recv_frame()
            assert ack.get("ok")
            assert server.telemetry.counter(
                "service_malformed_frames_total").value == 1
            await peer.close()
            await server.stop()
        asyncio.run(scenario())

    def test_corrupt_length_header_closes_connection(self):
        async def scenario():
            server = await start_server()
            peer = await _WireClient.connect(server)
            await peer.send_raw(struct.pack("!I", 1 << 30) + b"junk")
            ack = await peer.recv_frame()
            assert not ack.get("ok")
            chunk = await asyncio.wait_for(peer.reader.read(65536), timeout=5)
            assert chunk == b""  # server hung up: framing is unrecoverable
            await peer.close()
            await server.stop()
        asyncio.run(scenario())

    def test_register_rejections(self):
        async def scenario():
            server = await start_server()
            peer = await _WireClient.connect(server)
            await peer.send(T_REGISTER, hypothesis=make_hyp_dict())
            assert not (await peer.recv_frame()).get("ok")  # missing name
            await peer.send(T_REGISTER, name="p", hypothesis="nope")
            assert not (await peer.recv_frame()).get("ok")  # not an object
            await peer.send(T_REGISTER, name="p", hypothesis={"version": 9})
            nack = await peer.recv_frame()
            assert not nack.get("ok")
            assert "invalid hypothesis" in nack.get("error")
            await peer.close()
            await server.stop()
        asyncio.run(scenario())

    def test_registration_bound_to_live_connection_not_stealable(self):
        async def scenario():
            server = await start_server()
            owner = await _WireClient.connect(server)
            await owner.send(T_REGISTER, name="p", hypothesis=make_hyp_dict())
            assert (await owner.recv_frame()).get("ok")
            thief = await _WireClient.connect(server)
            await thief.send(T_REGISTER, name="p", hypothesis=make_hyp_dict())
            nack = await thief.recv_frame()
            assert not nack.get("ok")
            assert "live connection" in nack.get("error")
            await owner.close()
            await thief.close()
            await server.stop()
        asyncio.run(scenario())

    def test_server_only_frame_from_client_nacked(self):
        async def scenario():
            server = await start_server()
            peer = await _WireClient.connect(server)
            await peer.send(T_DETECTION, name="p")
            nack = await peer.recv_frame()
            assert not nack.get("ok")
            assert "may not send" in nack.get("error")
            await peer.close()
            await server.stop()
        asyncio.run(scenario())

    def test_null_heartbeat_time_stamped_by_server(self):
        async def scenario():
            server = await start_server()
            peer = await _WireClient.connect(server)
            await peer.send(T_REGISTER, name="p", hypothesis=make_hyp_dict())
            await peer.recv_frame()
            await peer.send(T_HEARTBEAT, name="p", batch=[["sense", None, "T"]])
            await barrier(peer)
            await server.drain()
            assert server.fleet.registration("p").indications == 1
            await peer.close()
            await server.stop()
        asyncio.run(scenario())


class TestDegradation:
    def test_disconnect_without_bye_becomes_missed_heartbeats(self):
        async def scenario():
            server = await start_server()
            peer = await _WireClient.connect(server)
            await peer.send(T_REGISTER, name="p", hypothesis=make_hyp_dict())
            assert (await peer.recv_frame()).get("ok")
            await peer.send(T_HEARTBEAT, name="p",
                            batch=[["sense", 1, "T"], ["act", 2, "T"]])
            await barrier(peer)
            await server.drain()
            await peer.close()  # vanish without BYE
            await asyncio.sleep(0.02)
            registration = server.fleet.registration("p")
            assert registration.active  # NOT deactivated: crash suspected
            assert not registration.connected
            detections = []
            server.fleet.add_detection_listener(
                lambda name, e: detections.append(e))
            for cycle in range(1, 16):
                server.tick(cycle * 10)
            assert any(e.error_type is ErrorType.ALIVENESS for e in detections)
            assert server.fleet.registration_states()["p"] is MonitorState.FAULTY
            assert server.telemetry.counter(
                "service_disconnects_total", graceful="false").value == 1
            await server.stop()
        asyncio.run(scenario())

    def test_backpressure_drops_oldest_and_counts(self):
        async def scenario():
            server = await start_server(queue_limit=10)
            peer = await _WireClient.connect(server)
            await peer.send(T_REGISTER, name="p", hypothesis=make_hyp_dict())
            assert (await peer.recv_frame()).get("ok")
            # Flood 50 indications in one frame without yielding to the
            # drain task: only the newest 10 survive.
            batch = [["sense", t, "T"] for t in range(50)]
            await peer.send(T_HEARTBEAT, name="p", batch=batch)
            # Let the reader task ingest the frame (it enqueues
            # synchronously while dispatching).
            for _ in range(50):
                await asyncio.sleep(0)
                if server.telemetry.counter(
                        "service_indications_total").value == 50:
                    break
            await server.drain()
            dropped = server.telemetry.counter(
                "service_dropped_indications_total").value
            applied = server.fleet.registration("p").indications
            assert applied + dropped == 50
            assert dropped >= 1
            assert server.health()["dropped"] == dropped
            await peer.close()
            await server.stop()
        asyncio.run(scenario())


class TestSdkAgainstServer:
    def test_sdk_register_heartbeat_detection_push(self):
        async def scenario():
            server = await start_server(shards=2)
            address = (server.host, server.port)

            def client_setup():
                client = WatchdogClient(address, client_name="sdk",
                                        batch_size=4)
                client.connect()
                ack = client.register("p", make_hyp_dict())
                assert ack["shard"] == 0
                for t in (10, 20, 30):
                    client.task_start("T", t)
                    client.heartbeat("sense", t, "T")
                    client.heartbeat("act", t + 1, "T")
                assert client.sync()
                return client

            client = await in_thread(client_setup)
            await server.drain()
            assert server.tick(100) == []
            for t in (200, 300, 400, 500):
                server.tick(t)
            await asyncio.sleep(0.02)
            await in_thread(client.poll)
            assert client.detections
            assert {d["error_type"] for d in client.detections} == {"aliveness"}
            scopes = {s["scope"] for s in client.states}
            assert "fleet" in scopes
            await in_thread(client.close)
            await asyncio.sleep(0.02)
            assert not server.fleet.registration("p").active
            await server.stop()
        asyncio.run(scenario())

    def test_unix_socket_transport(self, tmp_path):
        async def scenario():
            path = str(tmp_path / "wd.sock")
            server = SupervisionServer(unix_path=path, tick_interval=None)
            await server.start()

            def client_work():
                with WatchdogClient(path, client_name="unix") as client:
                    client.register("p", make_hyp_dict())
                    client.heartbeat("sense", 1, "T")
                    assert client.sync()
                return True

            assert await in_thread(client_work)
            await server.drain()
            assert server.fleet.registration("p").indications == 1
            await server.stop()
            import os
            assert not os.path.exists(path)  # unlinked on stop
        asyncio.run(scenario())


class TestHttp:
    def test_metrics_and_healthz(self):
        async def scenario():
            server = await start_server(http_port=0)
            peer = await _WireClient.connect(server)
            await peer.send(T_REGISTER, name="p", hypothesis=make_hyp_dict())
            await peer.recv_frame()
            await peer.send(T_HEARTBEAT, name="p", batch=[["sense", 1, "T"]])
            await barrier(peer)
            await server.drain()
            server.tick(10)

            async def http_get(path):
                reader, writer = await asyncio.open_connection(
                    server.host, server.http_port)
                writer.write(f"GET {path} HTTP/1.0\r\n\r\n".encode())
                await writer.drain()
                raw = await asyncio.wait_for(reader.read(-1), timeout=5)
                writer.close()
                await writer.wait_closed()
                head, _, body = raw.partition(b"\r\n\r\n")
                return head.decode("latin-1"), body.decode()

            head, body = await http_get("/metrics")
            assert "200 OK" in head
            assert "service_indications_total 1" in body
            assert "# TYPE service_tick_duration_seconds histogram" in body
            assert "wd_hbm_heartbeats_total" in body  # watchdog units share it

            head, body = await http_get("/healthz")
            assert "200 OK" in head
            health = json.loads(body)
            assert health["status"] == "ok"
            assert health["registrations"] == 1
            assert health["shards"] == 1

            head, _ = await http_get("/nope")
            assert "404" in head
            await peer.close()
            await server.stop()
        asyncio.run(scenario())

    def test_post_rejected(self):
        async def scenario():
            server = await start_server(http_port=0)
            reader, writer = await asyncio.open_connection(
                server.host, server.http_port)
            writer.write(b"POST /metrics HTTP/1.0\r\n\r\n")
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(-1), timeout=5)
            assert b"405" in raw
            writer.close()
            await writer.wait_closed()
            await server.stop()
        asyncio.run(scenario())


class TestTicker:
    def test_real_time_ticker_drives_check_cycles(self):
        async def scenario():
            server = await start_server(tick_interval=0.005)
            await asyncio.sleep(0.06)
            await server.stop()
            assert server.fleet.stats()["ticks"] >= 5
        asyncio.run(scenario())

    def test_needs_some_listener(self):
        with pytest.raises(ValueError):
            SupervisionServer()

    def test_protocol_version_pinned(self):
        # The ACK path asserts v=1 framing end to end; a bump must be
        # deliberate.
        assert PROTOCOL_VERSION == 1
