"""The asyncio daemon: transport, degradation, backpressure, HTTP."""

import asyncio
import json
import struct

import pytest

from repro.core import FaultHypothesis, RunnableHypothesis
from repro.core.config_io import hypothesis_to_dict
from repro.core.reports import ErrorType, MonitorState
from repro.service import SupervisionServer, WatchdogClient
from repro.service.protocol import (
    FrameDecoder,
    PROTOCOL_VERSION,
    T_ACK,
    T_BYE,
    T_DETECTION,
    T_HEARTBEAT,
    T_HELLO,
    T_REGISTER,
    encode_frame,
)


def make_hyp_dict(prefix: str = "", task: str = "T"):
    hyp = FaultHypothesis()
    hyp.add_runnable(RunnableHypothesis(
        f"{prefix}sense", task=task, aliveness_period=2, min_heartbeats=1,
        arrival_period=2, max_heartbeats=8))
    hyp.add_runnable(RunnableHypothesis(
        f"{prefix}act", task=task, aliveness_period=2, min_heartbeats=1,
        arrival_period=2, max_heartbeats=8))
    hyp.allow_sequence([f"{prefix}sense", f"{prefix}act"])
    return hypothesis_to_dict(hyp)


async def start_server(**kwargs):
    kwargs.setdefault("port", 0)
    kwargs.setdefault("tick_interval", None)
    server = SupervisionServer(**kwargs)
    await server.start()
    return server


async def in_thread(fn, *args):
    return await asyncio.get_running_loop().run_in_executor(None, fn, *args)


async def barrier(peer):
    """HELLO round-trip: frames are dispatched in order per connection,
    so once the ACK arrives every prior indication is enqueued."""
    await peer.send(T_HELLO, client="barrier")
    ack = await peer.recv_frame()
    assert ack.get("ok")


class _WireClient:
    """A raw protocol peer driven from inside the event loop."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer
        self.decoder = FrameDecoder()
        self.frames = []

    @classmethod
    async def connect(cls, server):
        reader, writer = await asyncio.open_connection(
            server.host, server.port)
        return cls(reader, writer)

    async def send(self, type, **data):
        self.writer.write(encode_frame(type, **data))
        await self.writer.drain()

    async def send_raw(self, payload: bytes):
        self.writer.write(payload)
        await self.writer.drain()

    async def recv_frame(self, timeout=5.0):
        while not self.frames:
            chunk = await asyncio.wait_for(
                self.reader.read(65536), timeout=timeout)
            assert chunk, "server closed the connection"
            self.frames.extend(self.decoder.feed(chunk))
        return self.frames.pop(0)

    async def close(self):
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class TestWireServer:
    def test_hello_register_heartbeat_bye(self):
        async def scenario():
            server = await start_server()
            peer = await _WireClient.connect(server)
            await peer.send(T_HELLO, client="it")
            ack = await peer.recv_frame()
            assert ack.type == T_ACK and ack.get("ok")
            assert ack.get("server") == server.name
            await peer.send(T_REGISTER, name="p", hypothesis=make_hyp_dict())
            ack = await peer.recv_frame()
            assert ack.get("ok") and ack.get("shard") == 0
            await peer.send(T_HEARTBEAT, name="p",
                            batch=[["sense", 5, "T"], ["act", 6, "T"]])
            await barrier(peer)
            await server.drain()
            registration = server.fleet.registration("p")
            assert registration.indications == 2
            await peer.send(T_BYE)
            ack = await peer.recv_frame()
            assert ack.get("ok") and ack.get("re") == T_BYE
            await peer.close()
            await asyncio.sleep(0.02)
            assert not registration.active
            await server.stop()
        asyncio.run(scenario())

    def test_malformed_payload_gets_error_ack_connection_survives(self):
        async def scenario():
            server = await start_server()
            peer = await _WireClient.connect(server)
            await peer.send_raw(struct.pack("!I", 9) + b"{not json")
            ack = await peer.recv_frame()
            assert ack.type == T_ACK and not ack.get("ok")
            # The same connection still works afterwards.
            await peer.send(T_HELLO, client="still-here")
            ack = await peer.recv_frame()
            assert ack.get("ok")
            assert server.telemetry.counter(
                "service_malformed_frames_total").value == 1
            await peer.close()
            await server.stop()
        asyncio.run(scenario())

    def test_corrupt_length_header_closes_connection(self):
        async def scenario():
            server = await start_server()
            peer = await _WireClient.connect(server)
            await peer.send_raw(struct.pack("!I", 1 << 30) + b"junk")
            ack = await peer.recv_frame()
            assert not ack.get("ok")
            chunk = await asyncio.wait_for(peer.reader.read(65536), timeout=5)
            assert chunk == b""  # server hung up: framing is unrecoverable
            await peer.close()
            await server.stop()
        asyncio.run(scenario())

    def test_register_rejections(self):
        async def scenario():
            server = await start_server()
            peer = await _WireClient.connect(server)
            await peer.send(T_REGISTER, hypothesis=make_hyp_dict())
            assert not (await peer.recv_frame()).get("ok")  # missing name
            await peer.send(T_REGISTER, name="p", hypothesis="nope")
            assert not (await peer.recv_frame()).get("ok")  # not an object
            await peer.send(T_REGISTER, name="p", hypothesis={"version": 9})
            nack = await peer.recv_frame()
            assert not nack.get("ok")
            assert "invalid hypothesis" in nack.get("error")
            await peer.close()
            await server.stop()
        asyncio.run(scenario())

    def test_duplicate_register_takes_over_idempotently(self):
        """Regression: a reconnecting client replays REGISTER before the
        server notices its old (half-open) connection died.  That used
        to be rejected as "bound to a live connection", stranding the
        client; now the identical hypothesis rebinds idempotently and
        the new connection takes over the push channel."""
        async def scenario():
            server = await start_server()
            old = await _WireClient.connect(server)
            await old.send(T_REGISTER, name="p", hypothesis=make_hyp_dict())
            first = await old.recv_frame()
            assert first.get("ok")
            assert first.get("rebound") is False
            first_conn = server._conn_of["p"]
            new = await _WireClient.connect(server)
            await new.send(T_REGISTER, name="p", hypothesis=make_hyp_dict())
            ack = await new.recv_frame()
            assert ack.get("ok")
            assert ack.get("rebound") is True
            assert ack.get("shard") == first.get("shard")
            # Exactly one registration — the REGISTER was idempotent.
            assert len(server.fleet.registrations) == 1
            # The push channel follows the newest connection; the stale
            # binding no longer claims the registration.
            assert server._conn_of["p"] is not first_conn
            assert "p" not in first_conn.registrations
            await old.close()
            await new.close()
            await server.stop()
        asyncio.run(scenario())

    def test_duplicate_register_different_hypothesis_still_rejected(self):
        async def scenario():
            server = await start_server()
            owner = await _WireClient.connect(server)
            await owner.send(T_REGISTER, name="p", hypothesis=make_hyp_dict())
            assert (await owner.recv_frame()).get("ok")
            thief = await _WireClient.connect(server)
            other = make_hyp_dict()
            other["runnables"][0]["aliveness_period"] = 99
            await thief.send(T_REGISTER, name="p", hypothesis=other)
            nack = await thief.recv_frame()
            assert not nack.get("ok")
            assert "different hypothesis" in nack.get("error")
            await owner.close()
            await thief.close()
            await server.stop()
        asyncio.run(scenario())

    def test_server_only_frame_from_client_nacked(self):
        async def scenario():
            server = await start_server()
            peer = await _WireClient.connect(server)
            await peer.send(T_DETECTION, name="p")
            nack = await peer.recv_frame()
            assert not nack.get("ok")
            assert "may not send" in nack.get("error")
            await peer.close()
            await server.stop()
        asyncio.run(scenario())

    def test_null_heartbeat_time_stamped_by_server(self):
        async def scenario():
            server = await start_server()
            peer = await _WireClient.connect(server)
            await peer.send(T_REGISTER, name="p", hypothesis=make_hyp_dict())
            await peer.recv_frame()
            await peer.send(T_HEARTBEAT, name="p", batch=[["sense", None, "T"]])
            await barrier(peer)
            await server.drain()
            assert server.fleet.registration("p").indications == 1
            await peer.close()
            await server.stop()
        asyncio.run(scenario())


class TestDegradation:
    def test_disconnect_without_bye_becomes_missed_heartbeats(self):
        async def scenario():
            server = await start_server()
            peer = await _WireClient.connect(server)
            await peer.send(T_REGISTER, name="p", hypothesis=make_hyp_dict())
            assert (await peer.recv_frame()).get("ok")
            await peer.send(T_HEARTBEAT, name="p",
                            batch=[["sense", 1, "T"], ["act", 2, "T"]])
            await barrier(peer)
            await server.drain()
            await peer.close()  # vanish without BYE
            await asyncio.sleep(0.02)
            registration = server.fleet.registration("p")
            assert registration.active  # NOT deactivated: crash suspected
            assert not registration.connected
            detections = []
            server.fleet.add_detection_listener(
                lambda name, e: detections.append(e))
            for cycle in range(1, 16):
                server.tick(cycle * 10)
            assert any(e.error_type is ErrorType.ALIVENESS for e in detections)
            assert server.fleet.registration_states()["p"] is MonitorState.FAULTY
            assert server.telemetry.counter(
                "service_disconnects_total", graceful="false").value == 1
            await server.stop()
        asyncio.run(scenario())

    def test_backpressure_drops_oldest_and_counts(self):
        async def scenario():
            server = await start_server(queue_limit=10)
            peer = await _WireClient.connect(server)
            await peer.send(T_REGISTER, name="p", hypothesis=make_hyp_dict())
            assert (await peer.recv_frame()).get("ok")
            # Flood 50 indications in one frame without yielding to the
            # drain task: only the newest 10 survive.
            batch = [["sense", t, "T"] for t in range(50)]
            await peer.send(T_HEARTBEAT, name="p", batch=batch)
            # Let the reader task ingest the frame (it enqueues
            # synchronously while dispatching).
            for _ in range(50):
                await asyncio.sleep(0)
                if server.telemetry.counter(
                        "service_indications_total").value == 50:
                    break
            await server.drain()
            dropped = server.telemetry.counter(
                "service_dropped_indications_total").value
            applied = server.fleet.registration("p").indications
            assert applied + dropped == 50
            assert dropped >= 1
            assert server.health()["dropped"] == dropped
            await peer.close()
            await server.stop()
        asyncio.run(scenario())


class TestSdkAgainstServer:
    def test_sdk_register_heartbeat_detection_push(self):
        async def scenario():
            server = await start_server(shards=2)
            address = (server.host, server.port)

            def client_setup():
                client = WatchdogClient(address, client_name="sdk",
                                        batch_size=4)
                client.connect()
                ack = client.register("p", make_hyp_dict())
                assert ack["shard"] == 0
                for t in (10, 20, 30):
                    client.task_start("T", t)
                    client.heartbeat("sense", t, "T")
                    client.heartbeat("act", t + 1, "T")
                assert client.sync()
                return client

            client = await in_thread(client_setup)
            await server.drain()
            assert server.tick(100) == []
            for t in (200, 300, 400, 500):
                server.tick(t)
            await asyncio.sleep(0.02)
            await in_thread(client.poll)
            assert client.detections
            assert {d["error_type"] for d in client.detections} == {"aliveness"}
            scopes = {s["scope"] for s in client.states}
            assert "fleet" in scopes
            await in_thread(client.close)
            await asyncio.sleep(0.02)
            assert not server.fleet.registration("p").active
            await server.stop()
        asyncio.run(scenario())

    def test_unix_socket_transport(self, tmp_path):
        async def scenario():
            path = str(tmp_path / "wd.sock")
            server = SupervisionServer(unix_path=path, tick_interval=None)
            await server.start()

            def client_work():
                with WatchdogClient(path, client_name="unix") as client:
                    client.register("p", make_hyp_dict())
                    client.heartbeat("sense", 1, "T")
                    assert client.sync()
                return True

            assert await in_thread(client_work)
            await server.drain()
            assert server.fleet.registration("p").indications == 1
            await server.stop()
            import os
            assert not os.path.exists(path)  # unlinked on stop
        asyncio.run(scenario())


class TestHttp:
    def test_metrics_and_healthz(self):
        async def scenario():
            server = await start_server(http_port=0)
            peer = await _WireClient.connect(server)
            await peer.send(T_REGISTER, name="p", hypothesis=make_hyp_dict())
            await peer.recv_frame()
            await peer.send(T_HEARTBEAT, name="p", batch=[["sense", 1, "T"]])
            await barrier(peer)
            await server.drain()
            server.tick(10)

            async def http_get(path):
                reader, writer = await asyncio.open_connection(
                    server.host, server.http_port)
                writer.write(f"GET {path} HTTP/1.0\r\n\r\n".encode())
                await writer.drain()
                raw = await asyncio.wait_for(reader.read(-1), timeout=5)
                writer.close()
                await writer.wait_closed()
                head, _, body = raw.partition(b"\r\n\r\n")
                return head.decode("latin-1"), body.decode()

            head, body = await http_get("/metrics")
            assert "200 OK" in head
            assert "service_indications_total 1" in body
            assert "# TYPE service_tick_duration_seconds histogram" in body
            assert "wd_hbm_heartbeats_total" in body  # watchdog units share it

            head, body = await http_get("/healthz")
            assert "200 OK" in head
            health = json.loads(body)
            assert health["status"] == "ok"
            assert health["registrations"] == 1
            assert health["shards"] == 1

            head, _ = await http_get("/nope")
            assert "404" in head
            await peer.close()
            await server.stop()
        asyncio.run(scenario())

    def test_post_rejected(self):
        async def scenario():
            server = await start_server(http_port=0)
            reader, writer = await asyncio.open_connection(
                server.host, server.http_port)
            writer.write(b"POST /metrics HTTP/1.0\r\n\r\n")
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(-1), timeout=5)
            assert b"405" in raw
            writer.close()
            await writer.wait_closed()
            await server.stop()
        asyncio.run(scenario())


class TestTicker:
    def test_real_time_ticker_drives_check_cycles(self):
        async def scenario():
            server = await start_server(tick_interval=0.005)
            await asyncio.sleep(0.06)
            await server.stop()
            assert server.fleet.stats()["ticks"] >= 5
        asyncio.run(scenario())

    def test_needs_some_listener(self):
        with pytest.raises(ValueError):
            SupervisionServer()

    def test_protocol_version_pinned(self):
        # The ACK path asserts v=1 framing end to end; a bump must be
        # deliberate.
        assert PROTOCOL_VERSION == 1


class TestQueueAccounting:
    """Eviction and failure accounting of the shard queues: nothing the
    queue or a handler does may leave join()/drain() hanging."""

    def test_eviction_then_join_terminates(self):
        """Regression (flood-then-drain): every evicted item's join()
        obligation must be consumed by the eviction itself."""
        from repro.service.server import _DropOldestQueue

        async def scenario():
            queue = _DropOldestQueue(4)
            for n in range(25):  # 21 evictions, 4 survivors
                queue.put_nowait(n)
            assert queue.dropped == 21
            assert len(queue) == 4
            for _ in range(4):
                await queue.get()
                queue.task_done()
            await asyncio.wait_for(queue.join(), timeout=2)
        asyncio.run(scenario())

    def test_eviction_does_not_wake_pending_join(self):
        """Regression: eviction used to route through the task_done
        path, which momentarily set the idle event (a full queue of 1
        drops to 0 unfinished before the new item is counted) —
        Event.set() wakes waiters irrevocably, so a concurrent join()
        could return while the just-enqueued indication was still
        unprocessed, making a SYNC ack lie."""
        from repro.service.server import _DropOldestQueue

        async def scenario():
            queue = _DropOldestQueue(1)
            queue.put_nowait("a")
            waiter = asyncio.ensure_future(queue.join())
            await asyncio.sleep(0)            # waiter parked on idle
            assert queue.put_nowait("b") == 1  # evicts "a"
            await asyncio.sleep(0)
            assert not waiter.done()          # "b" is still unprocessed
            assert await queue.get() == "b"
            queue.task_done()
            await asyncio.wait_for(waiter, timeout=2)
        asyncio.run(scenario())

    def test_eviction_while_consumer_in_flight(self):
        from repro.service.server import _DropOldestQueue

        async def scenario():
            queue = _DropOldestQueue(2)
            queue.put_nowait("a")
            queue.put_nowait("b")
            item = await queue.get()          # "a" in flight
            queue.put_nowait("c")             # evicts "b"
            queue.put_nowait("d")             # evicts nothing (room)
            assert queue.dropped == 0 or queue.dropped == 1
            queue.task_done()                 # finish "a"
            while len(queue):
                await queue.get()
                queue.task_done()
            await asyncio.wait_for(queue.join(), timeout=2)
            assert item == "a"
        asyncio.run(scenario())

    def test_flood_then_drain_does_not_hang(self):
        """End-to-end regression: a flood that evicts most of the queue
        must still let SupervisionServer.drain() return."""
        async def scenario():
            server = await start_server(queue_limit=5)
            peer = await _WireClient.connect(server)
            await peer.send(T_REGISTER, name="p", hypothesis=make_hyp_dict())
            assert (await peer.recv_frame()).get("ok")
            await peer.send(T_HEARTBEAT, name="p",
                            batch=[["sense", t, "T"] for t in range(200)])
            await barrier(peer)
            await asyncio.wait_for(server.drain(), timeout=5)
            dropped = server.telemetry.counter(
                "service_dropped_indications_total").value
            applied = server.fleet.registration("p").indications
            assert applied + dropped == 200
            await peer.close()
            await server.stop()
        asyncio.run(scenario())

    def test_poisoned_indication_does_not_kill_drain(self):
        """Regression: a handler exception used to kill the shard's
        drain task, leaving the queue unconsumed and drain() hanging
        forever; now the failure is counted and draining continues."""
        async def scenario():
            server = await start_server()
            peer = await _WireClient.connect(server)
            await peer.send(T_REGISTER, name="p", hypothesis=make_hyp_dict())
            assert (await peer.recv_frame()).get("ok")
            shard = server.fleet.shard_for("p")
            original = shard.heartbeat

            def exploding(registration, runnable, time, task=None):
                if runnable == "poison":
                    raise RuntimeError("boom")
                original(registration, runnable, time, task)

            shard.heartbeat = exploding
            await peer.send(T_HEARTBEAT, name="p", batch=[
                ["sense", 1, "T"], ["poison", 2, "T"], ["act", 3, "T"],
            ])
            await barrier(peer)
            await asyncio.wait_for(server.drain(), timeout=5)
            assert server.handler_errors == 1
            assert server.telemetry.counter(
                "service_handler_errors_total").value == 1
            # The items after the poison were still applied.
            assert server.fleet.registration("p").indications == 2
            assert server.health()["handler_errors"] == 1
            await peer.close()
            await server.stop()
        asyncio.run(scenario())
