"""Tests for the hardware watchdog baseline and its blind spots."""

import pytest

from repro.baselines import HardwareWatchdog, attach_kick_glue, attach_kick_task
from repro.core import ErrorType
from repro.faults import BlockedRunnableFault, FaultTarget, InterruptStormFault
from repro.kernel import AlarmTable, Kernel, ms, seconds
from repro.platform import Ecu, FmfPolicy

from testutil import make_safespeed_mapping


class TestBasicOperation:
    def test_expires_without_kick(self, kernel):
        wd = HardwareWatchdog(kernel, timeout=ms(50))
        wd.start()
        kernel.run_until(ms(200))
        assert wd.expired
        assert wd.expiry_times[0] == ms(50)

    def test_regular_kicks_prevent_expiry(self, kernel):
        wd = HardwareWatchdog(kernel, timeout=ms(50))
        wd.start()

        def kick_loop():
            wd.kick()
            kernel.queue.schedule(kernel.clock.now + ms(20), kick_loop)

        kernel.queue.schedule(ms(10), kick_loop)
        kernel.run_until(seconds(1))
        assert not wd.expired
        assert wd.kick_count > 40

    def test_invalid_parameters(self, kernel):
        with pytest.raises(ValueError):
            HardwareWatchdog(kernel, timeout=0)
        with pytest.raises(ValueError):
            HardwareWatchdog(kernel, timeout=10, window_open=10)

    def test_detector_interface(self, kernel):
        wd = HardwareWatchdog(kernel, timeout=ms(50))
        wd.start()
        kernel.run_until(ms(120))
        assert wd.first_detection_after(0) == ms(50)
        assert wd.first_detection_after(ms(60)) == ms(100)


class TestWindowedMode:
    def test_early_kick_detected(self, kernel):
        wd = HardwareWatchdog(kernel, timeout=ms(50), window_open=ms(20))
        wd.start()
        kernel.queue.schedule(ms(30), wd.kick)  # legal (after window opens)
        kernel.queue.schedule(ms(35), wd.kick)  # early: 5 ms after last kick
        kernel.run_until(ms(40))
        assert len(wd.early_kick_times) == 1

    def test_kick_inside_window_ok(self, kernel):
        wd = HardwareWatchdog(kernel, timeout=ms(50), window_open=ms(20))
        wd.start()
        for t in (ms(30), ms(60), ms(90)):
            kernel.queue.schedule(t, wd.kick)
        kernel.run_until(ms(100))
        assert wd.early_kick_times == []
        assert not wd.expired


class TestKickArrangements:
    def test_kick_task(self, kernel, alarms):
        wd = HardwareWatchdog(kernel, timeout=ms(50))
        task = attach_kick_task(kernel, wd)
        alarms.alarm_activate_task("kick", task.name).set_rel(ms(20), ms(20))
        wd.start()
        kernel.run_until(seconds(1))
        assert not wd.expired

    def test_kick_glue(self, kernel, alarms):
        from repro.kernel import Runnable, Task, runnable_sequence_body

        wd = HardwareWatchdog(kernel, timeout=ms(50))
        r = Runnable("main", kernel, wcet=ms(1))
        attach_kick_glue(wd, r)
        kernel.add_task(Task("Main", 1, runnable_sequence_body([r])))
        alarms.alarm_activate_task("m", "Main").set_rel(ms(20), ms(20))
        wd.start()
        kernel.run_until(seconds(1))
        assert not wd.expired


class TestGranularityBlindSpot:
    """The paper's core argument: the hardware watchdog misses
    runnable-level faults the Software Watchdog catches."""

    def build_supervised_ecu(self):
        ecu = Ecu(
            "central",
            make_safespeed_mapping(),
            watchdog_period=ms(10),
            fmf_policy=FmfPolicy(ecu_faulty_task_threshold=99,
                                 max_app_restarts=10**9),
        )
        hw = HardwareWatchdog(ecu.kernel, timeout=ms(100))
        # Conventional arrangement: the OS-level kick task at priority 1.
        task = attach_kick_task(ecu.kernel, hw)
        ecu.alarms.alarm_activate_task("hwkick", task.name).set_rel(ms(30), ms(30))
        hw.start()
        ecu.run_until(ms(200))
        return ecu, hw

    def test_blocked_runnable_invisible_to_hw_watchdog(self):
        ecu, hw = self.build_supervised_ecu()
        BlockedRunnableFault("SAFE_CC_process").inject(FaultTarget.from_ecu(ecu))
        ecu.run_until(ecu.now + seconds(2))
        # Software watchdog sees it; hardware watchdog does not.
        assert ecu.watchdog.detection_count(ErrorType.ALIVENESS) > 0
        assert not hw.expired

    def test_cpu_starvation_visible_to_both(self):
        """A runaway task above every application priority starves both
        the applications and the kick task: the classic fault class both
        watchdogs catch."""
        ecu = Ecu(
            "central",
            make_safespeed_mapping(),
            watchdog_period=ms(10),
            fmf_policy=FmfPolicy(ecu_faulty_task_threshold=99,
                                 max_app_restarts=10**9),
        )
        hw = HardwareWatchdog(ecu.kernel, timeout=ms(100))
        kick = attach_kick_task(ecu.kernel, hw)
        ecu.alarms.alarm_activate_task("hwkick", kick.name).set_rel(ms(30), ms(30))

        from repro.kernel import Segment, Task

        def runaway_body(task):
            while True:
                yield Segment(ms(100))

        ecu.kernel.add_task(Task("Runaway", 9, runaway_body))
        hw.start()
        ecu.run_until(ms(200))
        ecu.kernel.activate_task("Runaway")
        ecu.run_until(ecu.now + seconds(2))
        assert hw.expired
        assert ecu.watchdog.detection_count(ErrorType.ALIVENESS) > 0

    def test_storm_survivable_through_fmf_restarts(self):
        """Even a theft rate above 100 % is masked from the HW watchdog
        because the FMF keeps restarting the starved application, leaving
        idle gaps where the kick task runs — the SW watchdog still
        detects and drives the recovery."""
        ecu, hw = self.build_supervised_ecu()
        InterruptStormFault(period=ms(2), isr_duration=ms(4)).inject(
            FaultTarget.from_ecu(ecu)
        )
        ecu.run_until(ecu.now + seconds(2))
        assert not hw.expired
        assert ecu.watchdog.detection_count(ErrorType.ALIVENESS) > 0
        assert ecu.application_restart_counts.get("SafeSpeed", 0) > 0

    def test_degrading_storm_only_software_watchdog(self):
        """A storm that slows tasks ~10x still leaves idle gaps where the
        kick task runs: the HW watchdog stays silent while the Software
        Watchdog flags the period violations."""
        ecu, hw = self.build_supervised_ecu()
        InterruptStormFault(period=ms(2), isr_duration=ms(1.9)).inject(
            FaultTarget.from_ecu(ecu)
        )
        ecu.run_until(ecu.now + seconds(2))
        assert not hw.expired
        assert ecu.watchdog.detection_count(ErrorType.ALIVENESS) > 0
