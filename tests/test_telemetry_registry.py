"""Tests for the telemetry instruments and registry."""

import json
import math

import pytest

from repro.telemetry import (
    Counter,
    DEFAULT_DURATION_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        counter = Counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13

    def test_may_go_negative(self):
        gauge = Gauge("g")
        gauge.dec(3)
        assert gauge.value == -3


class TestHistogram:
    def test_observations_land_in_cumulative_buckets(self):
        hist = Histogram("h", buckets=(1.0, 2.0, 5.0))
        for value in (0.5, 1.5, 1.5, 10.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == pytest.approx(13.5)
        assert hist.minimum == 0.5
        assert hist.maximum == 10.0
        # (le, cumulative) pairs: values <= 1 / <= 2 / <= 5 / +Inf.
        assert hist.cumulative_buckets() == [
            (1.0, 1), (2.0, 3), (5.0, 3), (math.inf, 4),
        ]

    def test_boundary_value_falls_in_its_bucket(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        hist.observe(1.0)  # le="1" is an inclusive upper bound
        assert hist.cumulative_buckets()[0] == (1.0, 1)

    def test_mean(self):
        hist = Histogram("h", buckets=(10.0,))
        assert hist.mean is None
        hist.observe(2.0)
        hist.observe(4.0)
        assert hist.mean == pytest.approx(3.0)

    def test_empty_bucket_list_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())

    def test_unsorted_or_duplicate_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))

    def test_quantile_empty_is_none(self):
        assert Histogram("h", buckets=(1.0,)).quantile(50) is None

    def test_quantile_clamped_to_true_extremes(self):
        hist = Histogram("h", buckets=(1.0, 100.0))
        hist.observe(0.5)
        hist.observe(0.7)
        # Bucket upper bounds over-estimate (both fall in le=1.0), but
        # the estimate is clamped into [minimum, maximum].
        assert hist.quantile(0) >= 0.5
        assert hist.quantile(100) <= 0.7

    def test_quantile_overflow_uses_true_maximum(self):
        hist = Histogram("h", buckets=(1.0,))
        hist.observe(42.0)  # lands in the +Inf overflow bucket
        assert hist.quantile(50) == 42.0

    def test_quantile_matches_percentile_on_exact_buckets(self):
        # When every observation sits exactly on a bucket bound the
        # virtual sample equals the real one, so the estimate is the
        # plain percentile of the observations.
        from repro.analysis import percentile

        values = [1.0, 2.0, 5.0, 5.0]
        hist = Histogram("h", buckets=(1.0, 2.0, 5.0))
        for value in values:
            hist.observe(value)
        assert hist.quantile(50) == percentile(sorted(values), 50)


class TestRegistryFactories:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("hits_total", "hits")
        b = registry.counter("hits_total")
        assert a is b

    def test_label_values_create_distinct_series(self):
        registry = MetricsRegistry()
        wheel = registry.histogram("dur_seconds", strategy="wheel")
        scan = registry.histogram("dur_seconds", strategy="scan")
        assert wheel is not scan
        assert registry.get("dur_seconds", strategy="wheel") is wheel

    def test_label_order_is_not_part_of_identity(self):
        registry = MetricsRegistry()
        a = registry.counter("c", x="1", y="2")
        b = registry.counter("c", y="2", x="1")
        assert a is b

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("metric")
        with pytest.raises(ValueError):
            registry.gauge("metric")

    def test_invalid_metric_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("bad-name")

    def test_invalid_label_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c", **{"bad-label": "v"})

    def test_families_in_creation_order(self):
        registry = MetricsRegistry()
        registry.counter("b_total")
        registry.gauge("a_current")
        assert registry.families() == ["b_total", "a_current"]

    def test_value_shortcut(self):
        registry = MetricsRegistry()
        registry.counter("c", kind="x").inc(7)
        assert registry.value("c", kind="x") == 7
        assert registry.value("c", kind="missing") is None
        assert registry.get("never_created") is None


class TestPrometheusExposition:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("hits_total", "Total hits", route="/a").inc(3)
        registry.gauge("depth", "Queue depth").set(2.5)
        text = registry.render_prometheus()
        assert "# HELP hits_total Total hits" in text
        assert "# TYPE hits_total counter" in text
        assert 'hits_total{route="/a"} 3' in text
        assert "# TYPE depth gauge" in text
        assert "depth 2.5" in text
        assert text.endswith("\n")

    def test_histogram_exposition(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", "Latency", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(5.0)
        text = registry.render_prometheus()
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert "lat_seconds_sum 5.05" in text
        assert "lat_seconds_count 2" in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", path='say "hi"\n').inc()
        text = registry.render_prometheus()
        assert 'path="say \\"hi\\"\\n"' in text

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""


class TestJsonExport:
    def test_snapshot_round_trips_through_json(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "count").inc(2)
        registry.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        parsed = json.loads(registry.render_json())
        assert parsed == registry.snapshot()
        by_name = {f["name"]: f for f in parsed["metrics"]}
        assert by_name["c_total"]["type"] == "counter"
        assert by_name["c_total"]["series"][0]["value"] == 2
        hist = by_name["h_seconds"]["series"][0]
        assert hist["count"] == 1
        assert hist["buckets"][-1]["le"] == "+Inf"

    def test_default_duration_buckets_are_increasing(self):
        assert list(DEFAULT_DURATION_BUCKETS) == sorted(DEFAULT_DURATION_BUCKETS)


class TestNullRegistry:
    def test_disabled_flag(self):
        assert NullRegistry().enabled is False
        assert MetricsRegistry().enabled is True
        assert NULL_REGISTRY.enabled is False

    def test_instruments_are_shared_no_ops(self):
        registry = NullRegistry()
        counter = registry.counter("c")
        gauge = registry.gauge("g")
        hist = registry.histogram("h")
        assert counter is gauge is hist
        counter.inc(5)
        gauge.set(3)
        hist.observe(1.0)
        assert counter.value == 0
        assert hist.quantile(50) is None

    def test_exports_are_empty(self):
        registry = NullRegistry()
        registry.counter("c").inc()
        assert registry.families() == []
        assert registry.instruments() == []
        assert registry.get("c") is None
        assert registry.value("c") is None
        assert registry.render_prometheus() == ""
        assert registry.snapshot() == {"metrics": []}
        assert json.loads(registry.render_json()) == {"metrics": []}
