"""Tests for OSEK counters and alarms."""

import pytest

from repro.kernel import (
    AlarmTable,
    KernelConfigError,
    OsCounter,
    Segment,
    ServiceError,
    StatusType,
    Task,
    TraceKind,
    ms,
)


class TestOsCounter:
    def test_value_at(self):
        counter = OsCounter("C", ticks_per_increment=100)
        assert counter.value_at(0) == 0
        assert counter.value_at(250) == 2

    def test_to_ticks(self):
        counter = OsCounter("C", ticks_per_increment=100)
        assert counter.to_ticks(5) == 500

    def test_wrapping(self):
        counter = OsCounter("C", ticks_per_increment=1, max_allowed_value=9)
        assert counter.value_at(25) == 5

    def test_bad_ticks_per_increment(self):
        with pytest.raises(KernelConfigError):
            OsCounter("C", ticks_per_increment=0)


class TestAlarmOneShot:
    def test_one_shot_fires_once(self, kernel, alarms):
        fired = []
        alarm = alarms.alarm_callback("A", lambda: fired.append(kernel.clock.now))
        alarm.set_rel(ms(5))
        kernel.run_until(ms(50))
        assert fired == [ms(5)]
        assert not alarm.armed

    def test_rearm_after_expiry(self, kernel, alarms):
        fired = []
        alarm = alarms.alarm_callback("A", lambda: fired.append(kernel.clock.now))
        alarm.set_rel(ms(5))
        kernel.run_until(ms(10))
        alarm.set_rel(ms(5))
        kernel.run_until(ms(30))
        assert fired == [ms(5), ms(15)]

    def test_set_while_armed_rejected(self, kernel, alarms):
        alarm = alarms.alarm_callback("A", lambda: None)
        assert alarm.set_rel(ms(5)) is StatusType.E_OK
        assert alarm.set_rel(ms(5)) is StatusType.E_OS_STATE

    def test_bad_offset(self, kernel, alarms):
        alarm = alarms.alarm_callback("A", lambda: None)
        assert alarm.set_rel(0) is StatusType.E_OS_VALUE
        assert alarm.set_rel(-5) is StatusType.E_OS_VALUE

    def test_set_abs(self, kernel, alarms):
        fired = []
        alarm = alarms.alarm_callback("A", lambda: fired.append(kernel.clock.now))
        alarm.set_abs(ms(7))
        kernel.run_until(ms(20))
        assert fired == [ms(7)]

    def test_set_abs_in_past_rejected(self, kernel, alarms):
        kernel.run_until(ms(10))
        alarm = alarms.alarm_callback("A", lambda: None)
        assert alarm.set_abs(ms(5)) is StatusType.E_OS_VALUE


class TestAlarmCyclic:
    def test_cyclic_fires_repeatedly(self, kernel, alarms):
        fired = []
        alarm = alarms.alarm_callback("A", lambda: fired.append(kernel.clock.now))
        alarm.set_rel(ms(10), ms(10))
        kernel.run_until(ms(45))
        assert fired == [ms(10), ms(20), ms(30), ms(40)]
        assert alarm.expiry_count == 4
        assert alarm.armed

    def test_cancel_stops_cycle(self, kernel, alarms):
        fired = []
        alarm = alarms.alarm_callback("A", lambda: fired.append(1))
        alarm.set_rel(ms(10), ms(10))
        kernel.run_until(ms(25))
        assert alarm.cancel() is StatusType.E_OK
        kernel.run_until(ms(100))
        assert len(fired) == 2

    def test_cancel_unarmed_rejected(self, kernel, alarms):
        alarm = alarms.alarm_callback("A", lambda: None)
        assert alarm.cancel() is StatusType.E_OS_NOFUNC

    def test_time_to_expiry(self, kernel, alarms):
        alarm = alarms.alarm_callback("A", lambda: None)
        assert alarm.time_to_expiry() is None
        alarm.set_rel(ms(10))
        assert alarm.time_to_expiry() == ms(10)
        kernel.run_until(ms(4))
        assert alarm.time_to_expiry() == ms(6)


class TestAlarmActions:
    def test_activate_task_action(self, kernel, alarms):
        def body(task):
            yield Segment(10)

        kernel.add_task(Task("T", 1, body))
        alarms.alarm_activate_task("A", "T").set_rel(ms(5), ms(5))
        kernel.run_until(ms(22))
        assert kernel.trace.count(TraceKind.TASK_TERMINATE, "T") == 4

    def test_set_event_action(self, kernel, alarms):
        from repro.kernel import Wait

        hits = []

        def body(task):
            while True:
                yield Wait(0x1)
                kernel.clear_event(task, 0x1)
                yield Segment(10, on_end=lambda: hits.append(kernel.clock.now))

        kernel.add_task(Task("Ext", 2, body, extended=True, autostart=True))
        alarms.alarm_set_event("A", "Ext", 0x1).set_rel(ms(10), ms(10))
        kernel.run_until(ms(35))
        assert len(hits) == 3

    def test_counter_scaling(self, kernel):
        """Alarms on a slow counter expire at scaled times."""
        slow = OsCounter("slow", ticks_per_increment=ms(1))
        table = AlarmTable(kernel, system_counter=slow)
        fired = []
        table.alarm_callback("A", lambda: fired.append(kernel.clock.now)).set_rel(5, 5)
        kernel.run_until(ms(12))
        assert fired == [ms(5), ms(10)]


class TestAlarmTable:
    def test_duplicate_alarm_rejected(self, kernel, alarms):
        alarms.alarm_callback("A", lambda: None)
        with pytest.raises(KernelConfigError):
            alarms.alarm_callback("A", lambda: None)

    def test_get_unknown_raises(self, kernel, alarms):
        with pytest.raises(ServiceError):
            alarms.get("ghost")

    def test_cancel_all(self, kernel, alarms):
        a = alarms.alarm_callback("A", lambda: None)
        b = alarms.alarm_callback("B", lambda: None)
        a.set_rel(ms(5), ms(5))
        b.set_rel(ms(7))
        alarms.cancel_all()
        assert not a.armed and not b.armed

    def test_rearm_after_reset_restores_cyclic_only(self, kernel, alarms):
        fired = {"cyclic": 0, "oneshot": 0}
        cyc = alarms.alarm_callback("C", lambda: fired.__setitem__("cyclic", fired["cyclic"] + 1))
        one = alarms.alarm_callback("O", lambda: fired.__setitem__("oneshot", fired["oneshot"] + 1))
        cyc.set_rel(ms(10), ms(10))
        one.set_rel(ms(15))
        kernel.run_until(ms(1))
        kernel.soft_reset()  # queue cleared
        alarms.rearm_after_reset()
        kernel.run_until(ms(40))
        assert fired["cyclic"] == 3  # 11, 21, 31 (re-armed at reset time 1)
        assert fired["oneshot"] == 0  # one-shots stay lost
