"""Tests for the text plotting utilities."""

from repro.analysis import format_table, panel, render_panels, resample, sparkline


class TestResample:
    def test_short_series_unchanged(self):
        assert resample([1, 2, 3], 10) == [1, 2, 3]

    def test_downsampling_preserves_endpoints_roughly(self):
        values = list(range(100))
        out = resample(values, 10)
        assert len(out) == 10
        assert out[0] == 0

    def test_empty(self):
        assert resample([], 10) == []
        assert resample([1], 0) == []


class TestSparkline:
    def test_flat_series(self):
        line = sparkline([5, 5, 5])
        assert len(line) == 3
        assert len(set(line)) == 1

    def test_rising_series_uses_higher_blocks(self):
        line = sparkline([0, 1, 2, 3])
        assert line[0] != line[-1]

    def test_empty(self):
        assert sparkline([]) == ""


class TestPanel:
    def test_contains_name_and_range(self):
        text = panel("AM Result", [0, 0, 1, 1, 2])
        assert "AM Result" in text
        assert "min=0" in text and "max=2" in text

    def test_no_data(self):
        assert "(no data)" in panel("X", [])

    def test_step_change_rendered(self):
        text = panel("step", [0] * 10 + [10] * 10, height=4)
        assert "•" in text

    def test_render_panels_stacked(self):
        text = render_panels(
            {"a": [1, 2, 3], "b": [3, 2, 1]}, title="Figure 5"
        )
        assert "=== Figure 5 ===" in text
        assert "a " in text and "b " in text


class TestFormatTable:
    def test_basic_rows(self):
        text = format_table([
            {"name": "x", "value": 1},
            {"name": "longer", "value": 2},
        ])
        lines = text.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert len(lines) == 4  # header + rule + 2 rows

    def test_empty(self):
        assert format_table([]) == "(empty table)"

    def test_none_rendered_as_dash(self):
        text = format_table([{"a": None}])
        assert "-" in text.splitlines()[-1]

    def test_float_formatting(self):
        text = format_table([{"a": 0.123456}])
        assert "0.123" in text

    def test_column_selection(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]
