"""End-to-end SafeLane: a drifting vehicle triggers the warning chain.

Exercises the full loop the rig wires up: vehicle drifts (driver steer)
→ dynamics node publishes LanePosition on CAN → SafeLane runnables on
the central ECU detect the departure → Warning frame on CAN → light
control node lamp — all while the Software Watchdog supervises the lot
without false alarms.
"""

import pytest

from repro.kernel import seconds
from repro.platform import FmfPolicy
from repro.validator import HilValidator

OBSERVE = FmfPolicy(ecu_faulty_task_threshold=10**6, max_app_restarts=10**6)


@pytest.fixture(scope="module")
def drifting_rig():
    """Driver holds a constant handwheel angle: the vehicle arcs out of
    the straight lane."""
    rig = HilValidator(
        fmf_policy=OBSERVE,
        fmf_auto_treatment=False,
        initial_speed_kph=60.0,
        driver_profile=lambda t: 0.8 if t > 3.0 else 0.0,
    )
    rig.run(seconds(10))
    return rig


class TestLaneDepartureChain:
    def test_vehicle_actually_drifts(self, drifting_rig):
        offset = drifting_rig.environment.lateral_offset(
            drifting_rig.vehicle.state
        )
        assert abs(offset) > 1.0

    def test_safelane_raises_warning(self, drifting_rig):
        assert drifting_rig.safelane.state.warnings_raised >= 1
        assert drifting_rig.safelane.state.warning

    def test_lamp_activated_over_can(self, drifting_rig):
        assert drifting_rig.light_node.activations >= 1
        assert drifting_rig.light_node.lamp_on

    def test_warning_side_matches_drift_direction(self, drifting_rig):
        offset = drifting_rig.environment.lateral_offset(
            drifting_rig.vehicle.state
        )
        expected_side = 1 if offset > 0 else -1
        assert drifting_rig.safelane.state.warning_side == expected_side

    def test_watchdog_silent_throughout(self, drifting_rig):
        """Functional events (warnings) are not timing faults."""
        assert drifting_rig.ecu.watchdog.detection_count() == 0

    def test_no_warning_when_driving_straight(self):
        rig = HilValidator(
            fmf_policy=OBSERVE, fmf_auto_treatment=False,
            initial_speed_kph=60.0, driver_profile=lambda t: 0.0,
        )
        rig.run(seconds(8))
        assert rig.safelane.state.warnings_raised == 0
        assert not rig.light_node.lamp_on
