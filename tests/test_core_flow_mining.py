"""Tests for mining the flow table from healthy execution traces."""

import pytest

from repro.core import ErrorType, FlowTable
from repro.core.flowcheck import ProgramFlowCheckingUnit
from repro.faults import FaultTarget, InvalidBranchFault
from repro.kernel import ms, seconds
from repro.platform import Ecu, FmfPolicy

from testutil import make_safespeed_mapping

OBSERVE = FmfPolicy(ecu_faulty_task_threshold=10**6, max_app_restarts=10**6)


@pytest.fixture
def golden_ecu():
    """An ECU after a healthy golden run."""
    ecu = Ecu("golden", make_safespeed_mapping(), watchdog_period=ms(10),
              fmf_policy=OBSERVE, fmf_auto_treatment=False)
    ecu.run_until(seconds(1))
    assert ecu.watchdog.detection_count() == 0
    return ecu


class TestMining:
    def test_mined_table_matches_designed_table(self, golden_ecu):
        mined = FlowTable.mine_from_trace(golden_ecu.kernel.trace)
        designed = golden_ecu.watchdog.pfc.table
        names = ["GetSensorValue", "SAFE_CC_process", "Speed_process"]
        assert mined.entry_points() == designed.entry_points()
        for pred in [None] + names:
            for succ in names:
                assert mined.is_allowed(pred, succ) == designed.is_allowed(
                    pred, succ
                ), (pred, succ)

    def test_mined_table_accepts_replay(self, golden_ecu):
        """Replaying the golden trace through a checker built from the
        mined table yields zero violations (mining is sound w.r.t. the
        run it learned from)."""
        from repro.kernel.tracing import TraceKind

        mined = FlowTable.mine_from_trace(golden_ecu.kernel.trace)
        pfc = ProgramFlowCheckingUnit(mined)
        for record in golden_ecu.kernel.trace:
            if record.kind is TraceKind.TASK_ACTIVATE:
                pfc.reset_stream(record.subject)
            elif record.kind is TraceKind.HEARTBEAT:
                pfc.observe(record.subject, record.time,
                            record.info.get("task"))
        assert pfc.violation_count == 0

    def test_mined_table_still_detects_faults(self, golden_ecu):
        """A fresh system using the mined table flags an invalid branch
        exactly like the designed table does."""
        mined = FlowTable.mine_from_trace(golden_ecu.kernel.trace)
        ecu = Ecu("replay", make_safespeed_mapping(), watchdog_period=ms(10),
                  fmf_policy=OBSERVE, fmf_auto_treatment=False)
        ecu.watchdog.pfc.table = mined
        ecu.run_until(ms(300))
        assert ecu.watchdog.detection_count(ErrorType.PROGRAM_FLOW) == 0
        InvalidBranchFault("SafeSpeedTask", 1, "Speed_process").inject(
            FaultTarget.from_ecu(ecu)
        )
        ecu.run_until(ms(600))
        assert ecu.watchdog.detection_count(ErrorType.PROGRAM_FLOW) > 0

    def test_runnable_filter_restricts_mining(self, golden_ecu):
        mined = FlowTable.mine_from_trace(
            golden_ecu.kernel.trace,
            runnables={"GetSensorValue", "Speed_process"},
        )
        assert not mined.is_monitored("SAFE_CC_process")
        # The filtered runnable is bridged over, like non-critical ones.
        assert mined.is_allowed("GetSensorValue", "Speed_process")

    def test_mining_empty_trace(self):
        from repro.kernel import Trace

        mined = FlowTable.mine_from_trace(Trace())
        assert mined.pair_count() == 0


class TestStreamKeyUnification:
    """Mining and runtime checking must agree on the stream a heartbeat
    belongs to, for every fallback: explicit task context, configured
    task attribution, and the global stream."""

    ATTRIBUTION = {"A": "T1", "B": "T1", "X": "T2", "Y": "T2"}

    def _taskless_trace(self):
        """A healthy run whose heartbeats carry NO task context — two
        tasks interleaving, distinguishable only via attribution."""
        from repro.kernel import Trace
        from repro.kernel.tracing import TraceKind

        trace = Trace()
        for base in (0, 100):
            trace.record(base + 0, TraceKind.TASK_ACTIVATE, "T1")
            trace.record(base + 1, TraceKind.TASK_ACTIVATE, "T2")
            # interleaved under preemption: A X B Y
            trace.record(base + 2, TraceKind.HEARTBEAT, "A")
            trace.record(base + 3, TraceKind.HEARTBEAT, "X")
            trace.record(base + 4, TraceKind.HEARTBEAT, "B")
            trace.record(base + 5, TraceKind.HEARTBEAT, "Y")
        return trace

    def _replay(self, trace, pfc):
        from repro.kernel.tracing import TraceKind

        for record in trace:
            if record.kind is TraceKind.TASK_ACTIVATE:
                pfc.reset_stream(record.subject)
            elif record.kind is TraceKind.HEARTBEAT:
                pfc.observe(record.subject, record.time,
                            record.info.get("task"))

    def test_mine_then_replay_round_trip_with_attribution(self):
        """A table mined from a healthy taskless trace — with the same
        task attribution the checker uses — never flags a replay of
        that trace."""
        trace = self._taskless_trace()
        mined = FlowTable.mine_from_trace(
            trace, task_attribution=self.ATTRIBUTION
        )
        pfc = ProgramFlowCheckingUnit(mined,
                                      task_attribution=self.ATTRIBUTION)
        self._replay(trace, pfc)
        assert pfc.violation_count == 0

    def test_attribution_separates_interleaved_streams(self):
        """With attribution the mined table learns the per-task
        sequences, not the interleaving: A→X is NOT whitelisted."""
        mined = FlowTable.mine_from_trace(
            self._taskless_trace(), task_attribution=self.ATTRIBUTION
        )
        assert mined.is_allowed("A", "B")
        assert mined.is_allowed("X", "Y")
        assert not mined.is_allowed("A", "X")
        assert not mined.is_allowed("B", "Y")

    def test_mismatched_keying_was_the_bug(self):
        """Documents the defect this fixes: mining into the global
        stream while the checker attributes per task flags the very
        trace the table was mined from."""
        trace = self._taskless_trace()
        mined = FlowTable.mine_from_trace(trace)  # no attribution: global
        pfc = ProgramFlowCheckingUnit(mined,
                                      task_attribution=self.ATTRIBUTION)
        self._replay(trace, pfc)
        assert pfc.violation_count > 0
