"""Tests for mining the flow table from healthy execution traces."""

import pytest

from repro.core import ErrorType, FlowTable
from repro.core.flowcheck import ProgramFlowCheckingUnit
from repro.faults import FaultTarget, InvalidBranchFault
from repro.kernel import ms, seconds
from repro.platform import Ecu, FmfPolicy

from testutil import make_safespeed_mapping

OBSERVE = FmfPolicy(ecu_faulty_task_threshold=10**6, max_app_restarts=10**6)


@pytest.fixture
def golden_ecu():
    """An ECU after a healthy golden run."""
    ecu = Ecu("golden", make_safespeed_mapping(), watchdog_period=ms(10),
              fmf_policy=OBSERVE, fmf_auto_treatment=False)
    ecu.run_until(seconds(1))
    assert ecu.watchdog.detection_count() == 0
    return ecu


class TestMining:
    def test_mined_table_matches_designed_table(self, golden_ecu):
        mined = FlowTable.mine_from_trace(golden_ecu.kernel.trace)
        designed = golden_ecu.watchdog.pfc.table
        names = ["GetSensorValue", "SAFE_CC_process", "Speed_process"]
        assert mined.entry_points() == designed.entry_points()
        for pred in [None] + names:
            for succ in names:
                assert mined.is_allowed(pred, succ) == designed.is_allowed(
                    pred, succ
                ), (pred, succ)

    def test_mined_table_accepts_replay(self, golden_ecu):
        """Replaying the golden trace through a checker built from the
        mined table yields zero violations (mining is sound w.r.t. the
        run it learned from)."""
        from repro.kernel.tracing import TraceKind

        mined = FlowTable.mine_from_trace(golden_ecu.kernel.trace)
        pfc = ProgramFlowCheckingUnit(mined)
        for record in golden_ecu.kernel.trace:
            if record.kind is TraceKind.TASK_ACTIVATE:
                pfc.reset_stream(record.subject)
            elif record.kind is TraceKind.HEARTBEAT:
                pfc.observe(record.subject, record.time,
                            record.info.get("task"))
        assert pfc.violation_count == 0

    def test_mined_table_still_detects_faults(self, golden_ecu):
        """A fresh system using the mined table flags an invalid branch
        exactly like the designed table does."""
        mined = FlowTable.mine_from_trace(golden_ecu.kernel.trace)
        ecu = Ecu("replay", make_safespeed_mapping(), watchdog_period=ms(10),
                  fmf_policy=OBSERVE, fmf_auto_treatment=False)
        ecu.watchdog.pfc.table = mined
        ecu.run_until(ms(300))
        assert ecu.watchdog.detection_count(ErrorType.PROGRAM_FLOW) == 0
        InvalidBranchFault("SafeSpeedTask", 1, "Speed_process").inject(
            FaultTarget.from_ecu(ecu)
        )
        ecu.run_until(ms(600))
        assert ecu.watchdog.detection_count(ErrorType.PROGRAM_FLOW) > 0

    def test_runnable_filter_restricts_mining(self, golden_ecu):
        mined = FlowTable.mine_from_trace(
            golden_ecu.kernel.trace,
            runnables={"GetSensorValue", "Speed_process"},
        )
        assert not mined.is_monitored("SAFE_CC_process")
        # The filtered runnable is bridged over, like non-critical ones.
        assert mined.is_allowed("GetSensorValue", "Speed_process")

    def test_mining_empty_trace(self):
        from repro.kernel import Trace

        mined = FlowTable.mine_from_trace(Trace())
        assert mined.pair_count() == 0
