"""Integration tests: telemetry threaded through the watchdog stack.

The ``telemetry=`` / ``event_sink=`` knobs flow from the facades
(:class:`SoftwareWatchdog`, :class:`Ecu`, :class:`Campaign`) into the
three units; these tests assert the instruments and the structured
event stream reflect what actually happened.
"""

import pytest

from repro.core import (
    ErrorType,
    FaultHypothesis,
    MonitorState,
    RunnableHypothesis,
    SoftwareWatchdog,
    ThresholdPolicy,
)
from repro.faults import BlockedRunnableFault, Campaign, ErrorInjector, FaultTarget
from repro.experiments.coverage import standard_fault_specs
from repro.kernel import ms, seconds
from repro.lint import LintWarning
from repro.platform import Ecu
from repro.telemetry import (
    InMemorySink,
    KIND_DETECTION,
    KIND_ECU_STATE_CHANGE,
    KIND_LINT_WARNING,
    KIND_TASK_FAULT,
    KIND_TREATMENT,
    MetricsRegistry,
)

from testutil import make_safespeed_mapping


def make_instrumented_watchdog(threshold=3):
    registry = MetricsRegistry()
    sink = InMemorySink()
    hyp = FaultHypothesis(thresholds=ThresholdPolicy(default=threshold))
    for name in ("A", "B", "C"):
        hyp.add_runnable(
            RunnableHypothesis(
                name, task="T", aliveness_period=2, min_heartbeats=1,
                arrival_period=2, max_heartbeats=3,
            )
        )
    hyp.allow_sequence(["A", "B", "C"])
    wd = SoftwareWatchdog(hyp, app_of_task={"T": "App"},
                          telemetry=registry, event_sink=sink)
    return wd, registry, sink


class TestWatchdogInstruments:
    def test_healthy_run_counts_cycles_and_heartbeats(self):
        wd, registry, sink = make_instrumented_watchdog()
        for cycle in range(5):
            base = cycle * 10
            wd.notify_task_start("T")
            for i, name in enumerate(("A", "B", "C")):
                wd.heartbeat_indication(name, base + i, task="T")
            wd.check_cycle(base + 9)
        wd.sync_telemetry()
        assert registry.value("wd_hbm_check_cycles_total") == 5
        assert registry.value("wd_hbm_heartbeats_total") == 15
        assert registry.value("wd_pfc_observations_total") == 15
        assert registry.value("wd_pfc_violations_total") == 0
        for et in ErrorType:
            assert registry.value("wd_detections_total",
                                  error_type=et.value) == 0
        # Healthy: no detection/fault narrative, at most lint warnings.
        assert KIND_DETECTION not in sink.kinds()

    def test_detections_counted_by_error_type(self):
        wd, registry, sink = make_instrumented_watchdog()
        wd.heartbeat_indication("B", 1, task="T")  # illegal flow entry
        wd.check_cycle(10)
        wd.check_cycle(20)  # aliveness period expires for all three
        assert registry.value(
            "wd_detections_total", error_type="program_flow"
        ) == wd.detected[ErrorType.PROGRAM_FLOW] == 1
        assert registry.value(
            "wd_detections_total", error_type="aliveness"
        ) == wd.detected[ErrorType.ALIVENESS]

    def test_detection_events_carry_the_error(self):
        wd, _registry, sink = make_instrumented_watchdog()
        wd.heartbeat_indication("B", 7, task="T")
        events = sink.filter(kind=KIND_DETECTION)
        assert len(events) == 1
        event = events[0]
        assert event.subject == "B"
        assert event.time == 7
        assert event.data["error_type"] == "program_flow"
        assert event.data["task"] == "T"

    def test_task_fault_and_ecu_state_events(self):
        wd, registry, sink = make_instrumented_watchdog(threshold=2)
        for t in (10, 20, 30, 40):  # two expiries per runnable
            wd.check_cycle(t)
        assert wd.ecu_state() is MonitorState.FAULTY
        faults = sink.filter(kind=KIND_TASK_FAULT)
        assert faults and faults[0].subject == "T"
        assert faults[0].data["trigger_error_type"] == "aliveness"
        changes = sink.filter(kind=KIND_ECU_STATE_CHANGE)
        assert changes
        assert changes[0].data["old_state"] == "ok"
        assert changes[-1].data["new_state"] == "faulty"
        assert "T" in changes[-1].data["faulty_tasks"]
        # The TSI gauges agree with the derived states.
        assert registry.value("wd_tsi_task_state", task="T") == 2
        assert registry.value("wd_tsi_application_state", application="App") == 2
        assert registry.value("wd_tsi_ecu_state") == 2
        assert registry.value("wd_tsi_faulty_tasks") == 1

    def test_reset_syncs_then_zeroes(self):
        wd, registry, _sink = make_instrumented_watchdog()
        wd.heartbeat_indication("A", 1, task="T")
        wd.check_cycle(10)
        wd.reset()
        # Pre-reset activity was folded in before the counters zeroed
        # (reset may land mid sync interval).
        assert registry.value("wd_hbm_check_cycles_total") == 1
        assert registry.value("wd_hbm_heartbeats_total") == 1
        assert registry.value("wd_tsi_ecu_state") == 0
        wd.check_cycle(10)
        wd.sync_telemetry()
        assert registry.value("wd_hbm_check_cycles_total") == 2

    def test_lint_warning_events(self):
        registry = MetricsRegistry()
        sink = InMemorySink()
        hyp = FaultHypothesis()
        hyp.add_runnable(RunnableHypothesis(
            "A", task="T", min_heartbeats=0, max_heartbeats=2))
        with pytest.warns(LintWarning):
            SoftwareWatchdog(hyp, name="lintable",
                             telemetry=registry, event_sink=sink)
        warnings = sink.filter(kind=KIND_LINT_WARNING, subject="lintable")
        assert warnings
        assert any(w.data["code"] == "WD202" for w in warnings)
        assert all(w.data["severity"] in ("warning", "error")
                   for w in warnings)


class TestEcuInstruments:
    def test_injected_fault_reaches_fmf_metrics_and_events(self):
        registry = MetricsRegistry()
        sink = InMemorySink()
        ecu = Ecu(
            "central",
            make_safespeed_mapping(),
            watchdog_period=ms(10),
            telemetry=registry,
            event_sink=sink,
        )
        injector = ErrorInjector(FaultTarget.from_ecu(ecu))
        injector.inject_at(ms(300), BlockedRunnableFault("SAFE_CC_process"),
                           restore_at=ms(600))
        ecu.run_until(seconds(1))
        ecu.watchdog.sync_telemetry()
        detections = registry.value("wd_detections_total",
                                    error_type="aliveness")
        # Counters are monotonic: an ECU-reset treatment zeroes the
        # watchdog's in-run tallies but never the exported total.
        assert detections >= ecu.watchdog.detection_count(ErrorType.ALIVENESS)
        assert detections > 0
        assert registry.value("fmf_faults_total", category="aliveness") > 0
        treatments = sink.filter(kind=KIND_TREATMENT)
        assert treatments  # the FMF restarted the faulty application
        actions = {t.data["action"] for t in treatments}
        total_treated = sum(
            inst.value for inst in registry.instruments("fmf_treatments_total")
        )
        assert total_treated == len(treatments)
        assert actions  # every event names its action
        assert sink.filter(kind=KIND_DETECTION)


class TestCampaignInstruments:
    def test_serial_campaign_counts_runs(self):
        registry = MetricsRegistry()
        campaign = Campaign("coverage", warmup=ms(200), observation=ms(300),
                            telemetry=registry)
        specs = standard_fault_specs(1)[:2]
        result = campaign.execute(specs)
        assert len(result.runs) == 2
        assert registry.value("campaign_runs_total") == 2
        histogram = registry.get("campaign_run_seconds")
        assert histogram.count == 2
        assert histogram.sum > 0

    def test_parallel_campaign_reports_utilization(self):
        registry = MetricsRegistry()
        campaign = Campaign("coverage", warmup=ms(200), observation=ms(300),
                            telemetry=registry)
        specs = standard_fault_specs(1)[:2]
        result = campaign.execute(specs, workers=2)
        assert len(result.runs) == 2
        assert registry.value("campaign_runs_total") == 2
        utilization = registry.value("campaign_worker_utilization")
        assert 0.0 < utilization <= 1.0
