"""Tests for the E6 distributed-supervision study."""

import pytest

from repro.experiments import (
    run_distributed_supervision,
    run_supervision_latency_sweep,
)
from repro.kernel import ms


@pytest.fixture(scope="module")
def report():
    return run_distributed_supervision()


class TestDistributedE6:
    def test_crash_detected_quickly(self, report):
        assert report.crash_detect_latency_ms is not None
        assert report.crash_detect_latency_ms <= 70.0

    def test_healthy_peer_isolated(self, report):
        assert report.healthy_peer_verdict == "ok"

    def test_degradation_propagates_without_false_alarm(self, report):
        assert report.degraded_state_mirrored
        assert report.degraded_no_false_node_alarm

    def test_recovery(self, report):
        assert report.recovered_verdict == "ok"

    def test_heartbeat_stream_rate(self, report):
        # One supervision frame per 10 ms watchdog cycle.
        assert report.frames_per_second == pytest.approx(100.0, abs=2.0)
        assert report.sequence_gaps == 0

    def test_latency_tracks_check_window(self):
        rows = run_supervision_latency_sweep(check_periods=[2, 10])
        assert all(r["detected"] for r in rows)
        assert rows[0]["detect_latency_ms"] < rows[1]["detect_latency_ms"]
        for row in rows:
            assert row["detect_latency_ms"] <= 2 * row["check_window_ms"] + 10
