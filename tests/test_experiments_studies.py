"""Tests for the extension studies (E1–E5, F3)."""

import pytest

from repro.experiments import (
    flow_checking_rows,
    passive_vs_polling_rows,
    run_coverage_campaign,
    run_escalation_sweep,
    run_latency_study,
    run_reconfiguration,
    run_threshold_sweep,
    run_toolchain,
    watchdog_cpu_rows,
)
from repro.analysis import coverage_matrix
from repro.kernel import ms, seconds


@pytest.fixture(scope="module")
def coverage():
    return run_coverage_campaign(observation=seconds(1))


class TestCoverageE1:
    def test_software_watchdog_covers_everything(self, coverage):
        matrix = coverage_matrix(coverage)
        for fault_class, per_detector in matrix.items():
            assert per_detector["SoftwareWatchdog"] == 1.0, fault_class

    def test_hw_watchdog_blind_to_runnable_faults(self, coverage):
        matrix = coverage_matrix(coverage)
        for fault_class in ("BlockedRunnableFault", "SkipRunnableFault",
                            "InvalidBranchFault", "TimeScalarFault"):
            assert matrix[fault_class]["HardwareWatchdog"] == 0.0, fault_class

    def test_hw_watchdog_catches_cpu_starvation(self, coverage):
        matrix = coverage_matrix(coverage)
        assert matrix["_RunawayFault"]["HardwareWatchdog"] == 1.0

    def test_deadline_monitor_blind_to_flow_faults(self, coverage):
        matrix = coverage_matrix(coverage)
        for fault_class in ("SkipRunnableFault", "InvalidBranchFault"):
            assert matrix[fault_class]["DeadlineMonitor"] == 0.0

    def test_software_watchdog_strictly_dominates(self, coverage):
        """Aggregate coverage ordering: SW watchdog > every baseline."""
        sw = coverage.coverage("SoftwareWatchdog")
        for baseline in ("HardwareWatchdog", "DeadlineMonitor", "ExecTimeMonitor"):
            assert sw > coverage.coverage(baseline)

    def test_sw_latency_bounded_by_monitoring_periods(self, coverage):
        for latency in coverage.latencies("SoftwareWatchdog"):
            assert latency <= ms(50)


class TestOverheadE2:
    def test_lookup_table_order_of_magnitude_cheaper(self):
        rows = {r["technique"]: r for r in flow_checking_rows()}
        assert (
            rows["lookup-table"]["runtime_ops"] * 10
            <= rows["CFCSS"]["runtime_ops"]
        )

    def test_lookup_table_fewer_static_sites(self):
        rows = {r["technique"]: r for r in flow_checking_rows()}
        assert rows["lookup-table"]["static_sites"] < rows["CFCSS"]["static_sites"]

    def test_watchdog_cpu_share_small_at_paper_operating_point(self):
        rows = watchdog_cpu_rows(periods=[ms(10)], check_costs=[50],
                                 horizon=seconds(2))
        assert rows[0]["cpu_share"] < 0.02
        assert rows[0]["false_positives"] == 0

    def test_cpu_share_scales_with_cost_and_period(self):
        rows = watchdog_cpu_rows(periods=[ms(5), ms(20)], check_costs=[10, 200],
                                 horizon=seconds(2))
        by_key = {(r["watchdog_period_ms"], r["check_cost_us"]): r["cpu_share"]
                  for r in rows}
        assert by_key[(5.0, 200)] > by_key[(5.0, 10)]
        assert by_key[(5.0, 200)] > by_key[(20.0, 200)]

    def test_passive_beats_polling_for_slow_tasks(self):
        rows = passive_vs_polling_rows()
        slow = {r["design"]: r["ops"] for r in rows
                if r["scenario"] == "slow 100 ms task"}
        assert slow["passive heartbeats (paper)"] < slow["active polling"]


class TestLatencyE3:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_latency_study(repetitions=1)

    def test_full_detection_everywhere(self, rows):
        assert all(r["detected"] == 1.0 for r in rows)

    def test_eager_arrival_cuts_latency(self, rows):
        by_mode = {
            (r["fault"], r["check_mode"]): r["mean_latency_ms"] for r in rows
        }
        key = "arrival rate (loop counter)"
        assert by_mode[(key, "eager-arrival")] < by_mode[(key, "period-end")]

    def test_flow_latency_shortest(self, rows):
        """Flow errors are flagged on the offending heartbeat itself —
        faster than any period-based check."""
        period_end = [r for r in rows if r["check_mode"] == "period-end"]
        flow = next(r for r in period_end if "program flow" in r["fault"])
        for other in period_end:
            if other is not flow:
                assert flow["mean_latency_ms"] <= other["mean_latency_ms"]


class TestTreatmentE4:
    def test_threshold_sweep_monotone(self):
        rows = run_threshold_sweep(thresholds=[1, 3, 6], observation=seconds(2))
        times = [r.time_to_task_fault_ms for r in rows]
        assert all(t is not None for t in times)
        assert times[0] < times[1] < times[2]

    def test_permanent_fault_escalates_to_reset(self):
        rows = run_escalation_sweep(budgets=[1, 3], observation=seconds(2))
        assert all(r.resets > 0 for r in rows)
        assert rows[0].time_to_first_reset_ms < rows[1].time_to_first_reset_ms
        assert not rows[0].recovered

    def test_transient_fault_recovers_without_further_resets(self):
        rows = run_escalation_sweep(budgets=[3], observation=seconds(2),
                                    transient_duration=ms(400))
        assert rows[0].recovered


class TestReconfigE5:
    @pytest.fixture(scope="class")
    def report(self):
        return run_reconfiguration(observation=seconds(4), settle=seconds(3))

    def test_safelane_terminated_not_ecu_reset(self, report):
        assert report.safelane_terminated
        assert report.ecu_resets == 0

    def test_safespeed_unaffected(self, report):
        assert report.safespeed_state == "ok"
        assert report.speed_regulated

    def test_no_alarm_flood_after_termination(self, report):
        assert report.detections_after_termination == 0


class TestToolchainF3:
    @pytest.fixture(scope="class")
    def report(self):
        return run_toolchain()

    def test_mapping_schedulable(self, report):
        assert report.schedulable
        assert report.utilization < 1.0

    def test_rta_bounds_hold_in_simulation(self, report):
        assert report.bounds_hold
        for task, worst in report.observed_worst.items():
            assert worst <= report.rta_bounds[task]

    def test_system_fully_built(self, report):
        assert report.runnable_count == 9
        assert report.task_count == 3
        assert report.hypothesis_size == 9
