"""Tests for campaign metrics and the overhead model."""

import pytest

from repro.analysis import (
    LatencyStats,
    build_runnable_cfg,
    compare_flow_checking,
    coverage_matrix,
    coverage_report,
    latency_stats,
    measure_cfcss,
    measure_lookup_table,
    percentile,
)
from repro.faults.campaigns import CampaignResult, RunResult


def make_result():
    result = CampaignResult()
    result.runs.append(
        RunResult("f1", "Blocked", "aliveness", 100,
                  {"SW": 150, "HW": None})
    )
    result.runs.append(
        RunResult("f2", "Blocked", "aliveness", 100,
                  {"SW": 200, "HW": None})
    )
    result.runs.append(
        RunResult("f3", "Branch", "program_flow", 100,
                  {"SW": 120, "HW": 900})
    )
    return result


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_interpolation(self):
        assert percentile([0, 10], 50) == 5.0

    def test_extremes(self):
        assert percentile([1, 2, 3], 0) == 1
        assert percentile([1, 2, 3], 100) == 3

    def test_single_element(self):
        assert percentile([7], 95) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_q_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1, 2, 3], -0.1)
        with pytest.raises(ValueError):
            percentile([1, 2, 3], 100.1)

    def test_duplicate_heavy_input_stays_in_bounds(self):
        assert percentile([5, 5, 5, 5], 100) == 5.0
        assert percentile([5, 5, 5, 5], 0) == 5.0

    def test_accepts_lazy_sequence_view(self):
        # Only __len__ and non-negative __getitem__ are required — the
        # telemetry Histogram.quantile estimator passes a bucket view.
        class View:
            def __len__(self):
                return 3

            def __getitem__(self, index):
                return [10, 20, 30][index]

        assert percentile(View(), 50) == 20


class TestLatencyStats:
    def test_from_values(self):
        stats = LatencyStats.from_values([10, 20, 30])
        assert stats.count == 3
        assert stats.mean == 20.0
        assert stats.maximum == 30

    def test_empty_is_none(self):
        assert LatencyStats.from_values([]) is None

    def test_via_campaign(self):
        stats = latency_stats(make_result(), "SW")
        assert stats.count == 3
        assert stats.mean == pytest.approx((50 + 100 + 20) / 3)


class TestCoverageViews:
    def test_matrix(self):
        matrix = coverage_matrix(make_result())
        assert matrix["Blocked"]["SW"] == 1.0
        assert matrix["Blocked"]["HW"] == 0.0
        assert matrix["Branch"]["HW"] == 1.0

    def test_report_renders(self):
        text = coverage_report(make_result())
        assert "Blocked" in text
        assert "SW" in text
        assert "100.0" in text  # SW coverage on Blocked


class TestOverheadModel:
    def test_cfg_builder_shape(self):
        graph = build_runnable_cfg(["A", "B"], blocks_per_runnable=5)
        # 5 chain blocks + 1 alt block per runnable.
        assert len(graph.blocks()) == 12
        assert graph.is_edge("A.b4", "B.b0")
        assert graph.is_edge("A.b0", "A.alt")

    def test_cfcss_measurement(self):
        result = measure_cfcss(["A", "B"], blocks_per_runnable=5, executions=10)
        assert result.technique == "CFCSS"
        assert result.blocks_executed == 100
        assert result.runtime_ops >= 2 * result.blocks_executed

    def test_lookup_measurement(self):
        from repro.core.flowcheck import FlowTable, ProgramFlowCheckingUnit

        table = FlowTable()
        table.allow_cycle(["A", "B"])
        pfc = ProgramFlowCheckingUnit(table)
        result = measure_lookup_table(pfc, ["A", "B"], blocks_per_runnable=5,
                                      executions=10)
        assert result.runtime_ops == 20  # one probe per heartbeat
        assert result.blocks_executed == 100

    def test_lookup_table_wins_on_runtime(self):
        rows = compare_flow_checking(["A", "B", "C"], blocks_per_runnable=10,
                                     executions=20)
        by_technique = {row["technique"]: row for row in rows}
        cfcss = by_technique["CFCSS"]
        lookup = by_technique["lookup-table"]
        # The paper's claim: an order of magnitude less runtime overhead
        # and far fewer modification sites.
        assert lookup["runtime_ops"] * 10 <= cfcss["runtime_ops"]
        assert lookup["static_sites"] < cfcss["static_sites"]

    def test_overhead_gap_grows_with_block_count(self):
        small = compare_flow_checking(["A", "B"], blocks_per_runnable=5,
                                      executions=10)
        large = compare_flow_checking(["A", "B"], blocks_per_runnable=50,
                                      executions=10)

        def ratio(rows):
            by = {r["technique"]: r for r in rows}
            return by["CFCSS"]["runtime_ops"] / by["lookup-table"]["runtime_ops"]

        assert ratio(large) > ratio(small)
