"""Unit tests for the simulated time base."""

import pytest

from repro.kernel import SimClock, ms, seconds, to_ms, to_s, us


class TestUnits:
    def test_us_is_base_unit(self):
        assert us(1) == 1

    def test_ms_is_thousand_ticks(self):
        assert ms(1) == 1_000

    def test_seconds_is_million_ticks(self):
        assert seconds(1) == 1_000_000

    def test_fractional_ms(self):
        assert ms(1.5) == 1_500

    def test_fractional_us_rounds(self):
        assert us(1.4) == 1
        assert us(1.6) == 2

    def test_roundtrip_ms(self):
        assert to_ms(ms(25)) == 25.0

    def test_roundtrip_seconds(self):
        assert to_s(seconds(3)) == 3.0

    def test_zero(self):
        assert ms(0) == 0
        assert seconds(0) == 0


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0

    def test_advance(self):
        clock = SimClock()
        clock.advance_to(100)
        assert clock.now == 100

    def test_advance_to_same_time_allowed(self):
        clock = SimClock()
        clock.advance_to(50)
        clock.advance_to(50)
        assert clock.now == 50

    def test_backwards_rejected(self):
        clock = SimClock()
        clock.advance_to(100)
        with pytest.raises(ValueError):
            clock.advance_to(99)

    def test_reset(self):
        clock = SimClock()
        clock.advance_to(500)
        clock.reset()
        assert clock.now == 0
