"""Tests for the OSEK scheduler: dispatch, preemption, services."""

import pytest

from repro.kernel import (
    AlarmTable,
    Kernel,
    KernelConfigError,
    Runnable,
    Segment,
    StatusType,
    Task,
    TaskState,
    TraceKind,
    Wait,
    ms,
    runnable_sequence_body,
)


def simple_task(kernel, name, priority, duration, **kwargs):
    """A one-segment task."""

    def body(task):
        yield Segment(duration, label=f"{name}:work")

    return kernel.add_task(Task(name, priority, body, **kwargs))


class TestConfiguration:
    def test_duplicate_task_rejected(self, kernel):
        simple_task(kernel, "A", 1, 10)
        with pytest.raises(KernelConfigError):
            simple_task(kernel, "A", 2, 10)

    def test_negative_priority_rejected(self, kernel):
        with pytest.raises(KernelConfigError):
            Task("bad", -1, lambda t: iter(()))

    def test_extended_task_single_activation(self):
        with pytest.raises(KernelConfigError):
            Task("bad", 1, lambda t: iter(()), extended=True, max_activations=2)

    def test_no_tasks_after_start(self, kernel):
        kernel.start()
        with pytest.raises(KernelConfigError):
            simple_task(kernel, "late", 1, 10)


class TestBasicExecution:
    def test_activation_runs_to_termination(self, kernel):
        task = simple_task(kernel, "A", 1, 100)
        kernel.activate_task("A")
        kernel.run_until(1_000)
        assert task.state is TaskState.SUSPENDED
        assert kernel.trace.count(TraceKind.TASK_TERMINATE, "A") == 1
        assert kernel.trace.last(TraceKind.TASK_TERMINATE, "A").time == 100

    def test_unknown_task_activation(self, kernel):
        assert kernel.activate_task("nope") is StatusType.E_OS_ID

    def test_activation_limit(self, kernel):
        simple_task(kernel, "A", 1, 1_000_000)
        kernel.start()
        assert kernel.activate_task("A") is StatusType.E_OK
        assert kernel.activate_task("A") is StatusType.E_OS_LIMIT

    def test_multiple_activations_queue(self, kernel):
        def body(task):
            yield Segment(10)

        kernel.add_task(Task("A", 1, body, max_activations=3))
        kernel.start()
        for _ in range(3):
            assert kernel.activate_task("A") is StatusType.E_OK
        kernel.run_until(1_000)
        assert kernel.trace.count(TraceKind.TASK_TERMINATE, "A") == 3

    def test_autostart(self, kernel):
        simple_task(kernel, "A", 1, 10, autostart=True)
        kernel.run_until(100)
        assert kernel.trace.count(TraceKind.TASK_TERMINATE, "A") == 1

    def test_idle_advances_clock_to_end(self, kernel):
        kernel.run_until(5_000)
        assert kernel.clock.now == 5_000

    def test_zero_duration_segment(self, kernel):
        fired = []

        def body(task):
            yield Segment(0, on_start=lambda: fired.append("s"),
                          on_end=lambda: fired.append("e"))

        kernel.add_task(Task("Z", 1, body))
        kernel.activate_task("Z")
        kernel.run_until(10)
        assert fired == ["s", "e"]


class TestPreemption:
    def test_higher_priority_preempts(self, kernel, alarms):
        low = simple_task(kernel, "Low", 1, ms(10))
        simple_task(kernel, "High", 5, ms(2))
        alarms.alarm_activate_task("L", "Low").set_rel(ms(1))
        alarms.alarm_activate_task("H", "High").set_rel(ms(5))
        kernel.run_until(ms(30))
        assert low.preemption_count == 1
        # Low loses 2ms to High: terminates at 1 + 10 + 2 = 13ms.
        assert kernel.trace.last(TraceKind.TASK_TERMINATE, "Low").time == ms(13)
        assert kernel.trace.last(TraceKind.TASK_TERMINATE, "High").time == ms(7)

    def test_equal_priority_fifo(self, kernel, alarms):
        simple_task(kernel, "A", 3, ms(5))
        simple_task(kernel, "B", 3, ms(5))
        alarms.alarm_activate_task("AA", "A").set_rel(ms(1))
        alarms.alarm_activate_task("AB", "B").set_rel(ms(2))
        kernel.run_until(ms(30))
        # B activated while A runs; equal priority does not preempt.
        assert kernel.trace.last(TraceKind.TASK_TERMINATE, "A").time == ms(6)
        assert kernel.trace.last(TraceKind.TASK_TERMINATE, "B").time == ms(11)

    def test_non_preemptable_runs_to_completion(self, kernel, alarms):
        low = simple_task(kernel, "Low", 1, ms(10), preemptable=False)
        simple_task(kernel, "High", 5, ms(2))
        alarms.alarm_activate_task("L", "Low").set_rel(ms(1))
        alarms.alarm_activate_task("H", "High").set_rel(ms(5))
        kernel.run_until(ms(30))
        assert low.preemption_count == 0
        assert kernel.trace.last(TraceKind.TASK_TERMINATE, "Low").time == ms(11)
        # High waits for Low to finish.
        assert kernel.trace.last(TraceKind.TASK_TERMINATE, "High").time == ms(13)

    def test_preempted_task_resumes_before_equal_priority(self, kernel, alarms):
        """A preempted task stays at the head of its priority queue."""
        order = []

        def make_body(tag, duration):
            def body(task):
                yield Segment(duration, on_end=lambda: order.append(tag))

            return body

        kernel.add_task(Task("P1", 2, make_body("P1", ms(6))))
        kernel.add_task(Task("P2", 2, make_body("P2", ms(2))))
        kernel.add_task(Task("Hi", 9, make_body("Hi", ms(1))))
        alarms_ = AlarmTable(kernel)
        alarms_.alarm_activate_task("a1", "P1").set_rel(ms(1))
        alarms_.alarm_activate_task("a2", "P2").set_rel(ms(2))  # queued behind P1
        alarms_.alarm_activate_task("ah", "Hi").set_rel(ms(3))  # preempts P1
        kernel.run_until(ms(30))
        assert order == ["Hi", "P1", "P2"]


class TestEventsAndWaiting:
    def test_wait_and_set_event(self, kernel):
        progress = []

        def body(task):
            progress.append("before")
            yield Wait(0x1)
            progress.append("after")
            yield Segment(10)

        kernel.add_task(Task("Ext", 2, body, extended=True))
        kernel.activate_task("Ext")
        kernel.run_until(100)
        assert progress == ["before"]
        assert kernel.task_state("Ext") is TaskState.WAITING
        kernel.set_event("Ext", 0x1)
        kernel.run_until(300)
        assert progress == ["before", "after"]
        assert kernel.task_state("Ext") is TaskState.SUSPENDED

    def test_wait_returns_immediately_if_event_set(self, kernel):
        def body(task):
            yield Segment(10)
            yield Wait(0x2)
            yield Segment(10)

        kernel.add_task(Task("Ext", 2, body, extended=True))
        kernel.activate_task("Ext")
        kernel.run_until(5)
        kernel.set_event("Ext", 0x2)
        kernel.run_until(100)
        assert kernel.task_state("Ext") is TaskState.SUSPENDED

    def test_set_event_on_suspended_task_errors(self, kernel):
        kernel.add_task(Task("Ext", 2, lambda t: iter(()), extended=True))
        kernel.start()
        assert kernel.set_event("Ext", 1) is StatusType.E_OS_STATE

    def test_set_event_on_basic_task_errors(self, kernel):
        simple_task(kernel, "Basic", 1, 10)
        kernel.activate_task("Basic")
        assert kernel.set_event("Basic", 1) is StatusType.E_OS_ACCESS

    def test_wait_in_basic_task_errors(self, kernel):
        def body(task):
            yield Wait(0x1)

        kernel.add_task(Task("Basic", 1, body))
        kernel.activate_task("Basic")
        kernel.run_until(100)
        assert kernel.trace.count(TraceKind.SERVICE_ERROR) >= 1

    def test_clear_event(self, kernel):
        task = Task("Ext", 2, lambda t: iter(()), extended=True)
        kernel.add_task(task)
        kernel.start()
        kernel.activate_task("Ext")
        kernel.set_event("Ext", 0x5)
        kernel.clear_event(task, 0x1)
        assert kernel.get_event("Ext") == 0x4


class TestResources:
    def test_priority_ceiling_raises_priority(self, kernel):
        holder = {}

        def body(task):
            def grab():
                kernel.get_resource(task, "R")
                holder["prio"] = task.dynamic_priority

            def release():
                kernel.release_resource(task, "R")

            yield Segment(10, on_start=grab)
            yield Segment(10, on_end=release)

        task = kernel.add_task(Task("A", 1, body))
        simple_task(kernel, "B", 5, 10)
        kernel.add_resource("R", ceiling=7)
        kernel.activate_task("A")
        kernel.run_until(100)
        assert holder["prio"] == 7
        assert task.dynamic_priority == 1

    def test_ceiling_blocks_preemption(self, kernel, alarms):
        """A task holding a resource with high ceiling is not preempted
        by a medium-priority task."""

        def body(task):
            def grab():
                kernel.get_resource(task, "R")

            def release():
                kernel.release_resource(task, "R")

            yield Segment(ms(1), on_start=grab)
            yield Segment(ms(8))
            yield Segment(ms(1), on_end=release)

        low = kernel.add_task(Task("Low", 1, body))
        simple_task(kernel, "Mid", 5, ms(2))
        kernel.add_resource("R", ceiling=6)
        alarms.alarm_activate_task("L", "Low").set_rel(ms(1))
        alarms.alarm_activate_task("M", "Mid").set_rel(ms(3))
        kernel.run_until(ms(30))
        # Mid (prio 5) was held off for the whole critical section: it
        # only starts once Low releases R at ms(11).
        assert kernel.trace.first(TraceKind.TASK_START, "Mid").time >= ms(11)
        # Low's actual work (its last segment) completed before Mid ran.
        low_segments_done = kernel.trace.last(TraceKind.RESOURCE_RELEASE, "R")
        assert low_segments_done.time == ms(11)

    def test_double_get_rejected(self, kernel):
        task = simple_task(kernel, "A", 1, 10)
        kernel.add_resource("R")
        kernel.start()
        assert kernel.get_resource(task, "R") is StatusType.E_OK
        assert kernel.get_resource(task, "R") is StatusType.E_OS_ACCESS

    def test_release_by_non_holder_rejected(self, kernel):
        a = simple_task(kernel, "A", 1, 10)
        b = simple_task(kernel, "B", 1, 10)
        kernel.add_resource("R")
        kernel.start()
        kernel.get_resource(a, "R")
        assert kernel.release_resource(b, "R") is StatusType.E_OS_NOFUNC

    def test_default_ceiling_is_max_priority(self, kernel):
        simple_task(kernel, "A", 3, 10)
        simple_task(kernel, "B", 8, 10)
        resource = kernel.add_resource("R")
        assert resource.ceiling == 8

    def test_terminate_holding_resource_reports_and_releases(self, kernel):
        def body(task):
            yield Segment(10, on_end=lambda: kernel.get_resource(task, "R"))

        kernel.add_task(Task("Leaky", 1, body))
        kernel.add_resource("R", ceiling=5)
        kernel.activate_task("Leaky")
        kernel.run_until(100)
        assert kernel.resources["R"].holder is None
        errors = kernel.trace.filter(kind=TraceKind.SERVICE_ERROR)
        assert any("E_OS_RESOURCE" in str(r.info.get("status")) for r in errors)


class TestChainTask:
    def test_chain_activates_target_on_termination(self, kernel):
        def body(task):
            yield Segment(10, on_end=lambda: kernel.chain_task(task, "Next"))

        kernel.add_task(Task("First", 2, body))
        simple_task(kernel, "Next", 2, 10)
        kernel.activate_task("First")
        kernel.run_until(100)
        assert kernel.trace.count(TraceKind.TASK_TERMINATE, "Next") == 1

    def test_chain_unknown_target(self, kernel):
        task = simple_task(kernel, "A", 1, 10)
        assert kernel.chain_task(task, "ghost") is StatusType.E_OS_ID


class TestForceTerminate:
    def test_force_terminate_ready_task(self, kernel, alarms):
        simple_task(kernel, "Low", 1, ms(50))
        kernel.activate_task("Low")
        kernel.run_until(ms(5))  # mid-segment... Low is running now
        # force_terminate of the running task is refused
        assert kernel.force_terminate("Low") is StatusType.E_OS_STATE

    def test_force_terminate_suspended_task_ok(self, kernel):
        simple_task(kernel, "A", 1, 10)
        kernel.start()
        assert kernel.force_terminate("A") is StatusType.E_OK

    def test_force_terminate_unknown(self, kernel):
        assert kernel.force_terminate("ghost") is StatusType.E_OS_ID

    def test_force_terminate_clears_pending_activations(self, kernel, alarms):
        low = simple_task(kernel, "Low", 1, ms(30))
        hi = simple_task(kernel, "Hi", 9, ms(1))

        def killer():
            kernel.force_terminate("Low")

        kernel.activate_task("Low")
        kernel.run_until(ms(2))
        kernel.queue.schedule(ms(5), killer)
        # When the event fires, Hi is not involved; Low is running -> the
        # call is made from kernel context while Low is current: refused.
        kernel.run_until(ms(10))
        # Low kept running because it was the running task at the instant.
        assert low.state is not None  # smoke: no crash


class TestShutdownAndReset:
    def test_shutdown_stops_dispatching(self, kernel, alarms):
        simple_task(kernel, "A", 1, ms(1))
        alarms.alarm_activate_task("AA", "A").set_rel(ms(1), ms(1))
        kernel.queue.schedule(ms(5), kernel.shutdown_os)
        kernel.run_until(ms(100))
        assert kernel.clock.now <= ms(6)

    def test_soft_reset_restores_pristine_state(self, kernel, alarms):
        task = simple_task(kernel, "A", 1, ms(2), autostart=True)
        kernel.run_until(ms(1))
        kernel.soft_reset()
        assert task.state in (TaskState.READY, TaskState.RUNNING)  # autostart again
        assert kernel.reset_count == 1
        assert kernel.trace.count(TraceKind.ECU_RESET) == 1

    def test_soft_reset_clears_event_queue(self, kernel):
        fired = []
        kernel.queue.schedule(ms(10), lambda: fired.append(1))
        kernel.soft_reset()
        kernel.run_until(ms(20))
        assert fired == []


class TestAccounting:
    def test_utilization(self, kernel, alarms):
        simple_task(kernel, "A", 1, ms(2))
        alarms.alarm_activate_task("AA", "A").set_rel(ms(10), ms(10))
        kernel.run_until(ms(100))
        assert kernel.utilization() == pytest.approx(0.18, abs=0.03)

    def test_per_task_cpu(self, kernel, alarms):
        simple_task(kernel, "A", 1, ms(3))
        alarms.alarm_activate_task("AA", "A").set_rel(ms(10), ms(10))
        kernel.run_until(ms(50))
        assert kernel.task_cpu_ticks["A"] == 4 * ms(3)

    def test_task_state_query_unknown(self, kernel):
        from repro.kernel import ServiceError

        with pytest.raises(ServiceError):
            kernel.task_state("ghost")
