"""Second batch of hypothesis property tests: extensions and substrates."""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.apps import VotedSensor
from repro.baselines import BasicBlockGraph, CfcssChecker
from repro.core import make_supervision_frame_spec
from repro.core.config_io import hypothesis_from_dict, hypothesis_to_dict
from repro.core.hypothesis import FaultHypothesis, RunnableHypothesis
from repro.kernel import EventQueue, Kernel, ScheduleTable, Segment, Task, TraceKind


# ----------------------------------------------------------------------
# persistent events vs ECU reset
# ----------------------------------------------------------------------
@given(
    flags=st.lists(st.booleans(), min_size=1, max_size=40),
)
def test_clear_transient_keeps_exactly_persistent_events(flags):
    queue = EventQueue()
    for index, persistent in enumerate(flags):
        queue.schedule(index + 1, lambda: None, persistent=persistent)
    queue.clear_transient()
    survivors = []
    while True:
        event = queue.pop_next(10_000)
        if event is None:
            break
        survivors.append(event.when)
    expected = [i + 1 for i, persistent in enumerate(flags) if persistent]
    assert survivors == expected


# ----------------------------------------------------------------------
# voted sensor
# ----------------------------------------------------------------------
@given(
    base=st.floats(min_value=-100, max_value=100, allow_nan=False),
    outlier=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    position=st.integers(min_value=0, max_value=2),
)
def test_median_masks_any_single_outlier(base, outlier, position):
    values = [base, base, base]
    values[position] = outlier
    voter = VotedSensor(
        [lambda v=v: v for v in values], miscompare_tolerance=0.5
    )
    assert voter.read().value == base


@given(
    values=st.lists(
        st.floats(min_value=-1000, max_value=1000, allow_nan=False),
        min_size=3, max_size=3,
    )
)
def test_vote_bounded_by_channel_values(values):
    voter = VotedSensor(
        [lambda v=v: v for v in values], miscompare_tolerance=1e9
    )
    result = voter.read()
    assert min(values) <= result.value <= max(values)


# ----------------------------------------------------------------------
# hypothesis serialization
# ----------------------------------------------------------------------
@given(st.data())
@settings(max_examples=40)
def test_hypothesis_roundtrip_is_lossless(data):
    hypothesis = FaultHypothesis()
    count = data.draw(st.integers(min_value=1, max_value=6))
    names = [f"r{i}" for i in range(count)]
    for name in names:
        hypothesis.add_runnable(
            RunnableHypothesis(
                name,
                task=data.draw(st.sampled_from(["T1", "T2", None])),
                aliveness_period=data.draw(st.integers(1, 10)),
                min_heartbeats=data.draw(st.integers(0, 5)),
                arrival_period=data.draw(st.integers(1, 10)),
                max_heartbeats=data.draw(st.integers(0, 10)),
                active=data.draw(st.booleans()),
            )
        )
    hypothesis.allow_sequence(names)
    restored = hypothesis_from_dict(hypothesis_to_dict(hypothesis))
    assert hypothesis_to_dict(restored) == hypothesis_to_dict(hypothesis)


# ----------------------------------------------------------------------
# supervision frame encoding
# ----------------------------------------------------------------------
@given(
    sequence=st.integers(min_value=0, max_value=0xFFFF),
    state=st.integers(min_value=0, max_value=2),
    errors=st.integers(min_value=0, max_value=1023),
)
def test_supervision_frame_roundtrip(sequence, state, errors):
    spec = make_supervision_frame_spec(0, "n")
    values = spec.unpack(spec.pack({
        "sequence": sequence, "ecu_state": state,
        "aliveness_errors": errors, "arrival_errors": errors,
        "flow_errors": errors, "faulty_tasks": min(errors, 63),
    }))
    assert values["sequence"] == sequence
    assert values["ecu_state"] == state
    assert values["aliveness_errors"] == errors


# ----------------------------------------------------------------------
# CFCSS on random DAGs: legal walks never flagged
# ----------------------------------------------------------------------
@given(st.data())
@settings(max_examples=40)
def test_cfcss_accepts_every_legal_walk(data):
    n = data.draw(st.integers(min_value=2, max_value=8))
    graph = BasicBlockGraph()
    names = [f"b{i}" for i in range(n)]
    for name in names:
        graph.add_block(name)
    # Random forward edges guarantee a DAG; ensure a chain exists.
    for i in range(n - 1):
        graph.add_edge(names[i], names[i + 1])
    for _ in range(data.draw(st.integers(0, n))):
        i = data.draw(st.integers(0, n - 2))
        j = data.draw(st.integers(i + 1, n - 1))
        graph.add_edge(names[i], names[j])

    checker = CfcssChecker(graph, names[0])
    # Walk: start at entry, repeatedly follow a random legal edge.
    walk = [names[0]]
    current = names[0]
    for _ in range(data.draw(st.integers(0, 12))):
        successors = graph.successors(current)
        if not successors:
            break
        current = data.draw(st.sampled_from(sorted(successors)))
        walk.append(current)
    assert checker.run_walk(walk) == 0


# ----------------------------------------------------------------------
# schedule tables: activations land exactly at offsets
# ----------------------------------------------------------------------
@given(
    offsets=st.lists(st.integers(min_value=0, max_value=9), min_size=1,
                     max_size=4, unique=True),
)
@settings(max_examples=30, deadline=None)
def test_schedule_table_fires_at_configured_offsets(offsets):
    kernel = Kernel()

    def body(task):
        yield Segment(1)

    kernel.add_task(Task("T", 5, body, max_activations=10))
    table = ScheduleTable("tbl", kernel, period=10_000)
    for offset in offsets:
        table.add_task_activation(offset * 1000, "T")
    table.start_rel(0)
    kernel.run_until(29_999)
    activations = [
        r.time for r in kernel.trace.filter(kind=TraceKind.TASK_ACTIVATE)
    ]
    expected = sorted(
        offset * 1000 + period_start
        for period_start in (0, 10_000, 20_000)
        for offset in offsets
    )
    assert activations == expected
