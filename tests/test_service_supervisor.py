"""The synchronous supervision core: shards, registration, fleet rollup."""

import pytest

from repro.core import FaultHypothesis, RunnableHypothesis
from repro.core.config_io import hypothesis_to_dict
from repro.core.reports import ErrorType, MonitorState
from repro.service import Fleet, RegistrationError, SupervisorShard


def make_hypothesis(prefix: str = "", task: str = "T") -> FaultHypothesis:
    hyp = FaultHypothesis()
    hyp.add_runnable(RunnableHypothesis(
        f"{prefix}sense", task=task, aliveness_period=2, min_heartbeats=1,
        arrival_period=2, max_heartbeats=8))
    hyp.add_runnable(RunnableHypothesis(
        f"{prefix}act", task=task, aliveness_period=2, min_heartbeats=1,
        arrival_period=2, max_heartbeats=8))
    hyp.allow_sequence([f"{prefix}sense", f"{prefix}act"])
    return hyp


def hyp_dict(prefix: str = "", task: str = "T"):
    return hypothesis_to_dict(make_hypothesis(prefix, task))


class TestRegistration:
    def test_register_builds_wheel_watchdog(self):
        shard = SupervisorShard()
        registration = shard.register("p", hyp_dict())
        assert registration.watchdog.hbm.strategy == "wheel"
        assert registration.shard_index == 0
        assert registration.lint_diagnostics == []

    def test_invalid_hypothesis_rejected(self):
        shard = SupervisorShard()
        with pytest.raises(RegistrationError, match="invalid hypothesis"):
            shard.register("p", {"version": 99})

    def test_lint_error_rejected(self):
        # WD201: aliveness demands more heartbeats than arrival
        # tolerates — error severity, rejected even without strict.
        hyp = FaultHypothesis()
        hyp.add_runnable(RunnableHypothesis(
            "a", task="T", aliveness_period=2, min_heartbeats=10,
            arrival_period=2, max_heartbeats=1))
        shard = SupervisorShard(strict=False)
        with pytest.raises(RegistrationError, match="WD201"):
            shard.register("p", hypothesis_to_dict(hyp))

    def test_strict_rejects_warnings(self):
        # WD202: min_heartbeats=0 is a vacuous aliveness check (warning).
        hyp = FaultHypothesis()
        hyp.add_runnable(RunnableHypothesis("a", task="T", min_heartbeats=0))
        lenient = SupervisorShard(strict=False)
        strict = SupervisorShard(strict=True)
        registration = lenient.register("p", hypothesis_to_dict(hyp))
        assert any("WD202" in d for d in registration.lint_diagnostics)
        with pytest.raises(RegistrationError, match="strict"):
            strict.register("p", hypothesis_to_dict(hyp))

    def test_duplicate_name_same_hypothesis_rebinds(self):
        shard = SupervisorShard()
        first = shard.register("p", hyp_dict())
        first.deactivate()
        again = shard.register("p", hyp_dict())
        assert again is first
        assert again.active

    def test_duplicate_name_different_hypothesis_rejected(self):
        shard = SupervisorShard()
        shard.register("p", hyp_dict())
        with pytest.raises(RegistrationError, match="already in use"):
            shard.register("p", hyp_dict(prefix="other."))

    def test_deactivate_reactivate_respects_configured_as(self):
        hyp = make_hypothesis()
        hyp.runnables["act"].active = False
        shard = SupervisorShard()
        registration = shard.register("p", hypothesis_to_dict(hyp))
        registration.deactivate()
        assert not registration.watchdog.hbm.slot_active(
            registration.watchdog.hbm.slot_of["sense"])
        registration.reactivate()
        hbm = registration.watchdog.hbm
        assert hbm.slot_active(hbm.slot_of["sense"])
        assert not hbm.slot_active(hbm.slot_of["act"])


class TestSupervision:
    def test_heartbeats_prevent_detections(self):
        shard = SupervisorShard()
        shard.register("p", hyp_dict())
        for cycle in range(1, 7):
            shard.task_start("p", "T")
            shard.heartbeat("p", "sense", cycle * 10, "T")
            shard.heartbeat("p", "act", cycle * 10 + 1, "T")
            assert shard.tick(cycle * 10 + 5) == []

    def test_silence_detected(self):
        shard = SupervisorShard()
        shard.register("p", hyp_dict())
        detections = []
        shard.add_detection_listener(lambda name, e: detections.append((name, e)))
        for cycle in range(1, 5):
            shard.tick(cycle * 10)
        assert detections
        assert {name for name, _ in detections} == {"p"}
        assert {e.error_type for _, e in detections} == {ErrorType.ALIVENESS}
        assert shard.registrations["p"].detections == len(detections)

    def test_unknown_registration_ignored(self):
        shard = SupervisorShard()
        shard.heartbeat("ghost", "sense", 1, "T")
        shard.task_start("ghost", "T")
        assert shard.processed == 0

    def test_deactivated_registration_stays_silent(self):
        shard = SupervisorShard()
        shard.register("p", hyp_dict())
        shard.deregister("p")
        for cycle in range(1, 6):
            assert shard.tick(cycle * 10) == []


class TestFleet:
    def test_round_robin_assignment(self):
        fleet = Fleet(shards=2)
        a = fleet.register("a", hyp_dict(prefix="a."))
        b = fleet.register("b", hyp_dict(prefix="b."))
        c = fleet.register("c", hyp_dict(prefix="c."))
        assert [a.shard_index, b.shard_index, c.shard_index] == [0, 1, 0]

    def test_rejected_register_does_not_advance_round_robin(self):
        fleet = Fleet(shards=2)
        with pytest.raises(RegistrationError):
            fleet.register("bad", {"version": 99})
        ok = fleet.register("ok", hyp_dict())
        assert ok.shard_index == 0

    def test_rebind_routes_to_owning_shard(self):
        fleet = Fleet(shards=2)
        fleet.register("a", hyp_dict(prefix="a."))
        fleet.register("b", hyp_dict(prefix="b."))
        again = fleet.register("b", hyp_dict(prefix="b."))
        assert again.shard_index == 1

    def test_state_rollup_worst_of(self):
        fleet = Fleet(shards=2)
        fleet.register("healthy", hyp_dict(prefix="h.", task="HT"))
        fleet.register("crashed", hyp_dict(prefix="c.", task="CT"))
        assert fleet.fleet_state() is MonitorState.OK
        for cycle in range(1, 10):
            # Only the healthy registration heartbeats.
            fleet.task_start("healthy", "HT")
            fleet.heartbeat("healthy", "h.sense", cycle * 10, "HT")
            fleet.heartbeat("healthy", "h.act", cycle * 10 + 1, "HT")
            fleet.tick(cycle * 10 + 5)
        assert fleet.registration_states()["healthy"] is MonitorState.OK
        assert fleet.registration_states()["crashed"] is MonitorState.FAULTY
        assert fleet.fleet_state() is MonitorState.FAULTY
        assert fleet.task_states()["crashed"]["CT"] is MonitorState.FAULTY

    def test_fleet_state_change_events(self):
        fleet = Fleet()
        changes = []
        fleet.add_fleet_state_listener(changes.append)
        fleet.register("p", hyp_dict())
        for cycle in range(1, 10):
            fleet.tick(cycle * 10)
        assert changes
        assert changes[0].old_state is MonitorState.OK
        assert changes[-1].new_state is MonitorState.FAULTY
        assert any("p.T" in change.faulty_tasks for change in changes
                   if change.new_state is MonitorState.FAULTY)
        assert fleet.state_changes == changes

    def test_detections_forwarded_with_registration_name(self):
        fleet = Fleet(shards=3)
        seen = []
        fleet.add_detection_listener(lambda name, e: seen.append(name))
        fleet.register("a", hyp_dict(prefix="a."))
        fleet.register("b", hyp_dict(prefix="b."))
        for cycle in range(1, 4):
            fleet.tick(cycle * 10)
        assert set(seen) == {"a", "b"}

    def test_attach_fmf_records_faults(self):
        from repro.platform.fmf import FaultManagementFramework

        fleet = Fleet()
        fmf = FaultManagementFramework()  # observe-only: no ECU actions
        fleet.attach_fmf(fmf)
        fleet.register("p", hyp_dict())
        for cycle in range(1, 10):
            fleet.tick(cycle * 10)
        assert fmf.fault_log
        categories = {record.category for record in fmf.fault_log}
        assert "aliveness" in categories
        assert "task_faulty" in categories

    def test_stats(self):
        fleet = Fleet(shards=2)
        fleet.register("p", hyp_dict())
        fleet.heartbeat("p", "sense", 1, "T")
        fleet.task_start("p", "T")
        fleet.tick(10)
        stats = fleet.stats()
        assert stats["shards"] == 2
        assert stats["registrations"] == 1
        assert stats["indications"] == 1
        assert stats["task_starts"] == 1
        assert stats["ticks"] == 1

    def test_needs_at_least_one_shard(self):
        with pytest.raises(ValueError):
            Fleet(shards=0)
