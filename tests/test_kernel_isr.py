"""Tests for the ISR model."""

import pytest

from repro.kernel import (
    InterruptController,
    KernelConfigError,
    Segment,
    Task,
    TraceKind,
    ms,
)


class TestIsrBasics:
    def test_fire_runs_handler(self, kernel):
        controller = InterruptController(kernel)
        hits = []
        isr = controller.register("rx", lambda: hits.append(kernel.clock.now))
        isr.schedule_at(ms(5))
        kernel.run_until(ms(10))
        assert hits == [ms(5)]
        assert isr.fire_count == 1

    def test_duplicate_name_rejected(self, kernel):
        controller = InterruptController(kernel)
        controller.register("rx", lambda: None)
        with pytest.raises(KernelConfigError):
            controller.register("rx", lambda: None)

    def test_negative_duration_rejected(self, kernel):
        controller = InterruptController(kernel)
        with pytest.raises(KernelConfigError):
            controller.register("rx", lambda: None, duration=-1)

    def test_trace_records_entry_exit(self, kernel):
        controller = InterruptController(kernel)
        isr = controller.register("rx", lambda: None)
        isr.schedule_at(ms(2))
        kernel.run_until(ms(5))
        assert kernel.trace.count(TraceKind.ISR_ENTER, "rx") == 1
        assert kernel.trace.count(TraceKind.ISR_EXIT, "rx") == 1


class TestTimeTheft:
    def test_isr_duration_delays_running_task(self, kernel):
        def body(task):
            yield Segment(ms(10))

        kernel.add_task(Task("T", 1, body))
        controller = InterruptController(kernel)
        isr = controller.register("rx", lambda: None, duration=ms(2))
        kernel.activate_task("T")
        isr.schedule_at(ms(5))
        kernel.run_until(ms(30))
        # Task needed 10ms CPU but lost 2ms to the ISR.
        assert kernel.trace.last(TraceKind.TASK_TERMINATE, "T").time == ms(12)

    def test_isr_on_idle_cpu_steals_nothing(self, kernel):
        controller = InterruptController(kernel)
        isr = controller.register("rx", lambda: None, duration=ms(2))
        isr.schedule_at(ms(5))

        def body(task):
            yield Segment(ms(3))

        kernel.add_task(Task("T", 1, body))
        kernel.queue.schedule(ms(10), lambda: kernel.activate_task("T"))
        kernel.run_until(ms(30))
        assert kernel.trace.last(TraceKind.TASK_TERMINATE, "T").time == ms(13)

    def test_periodic_isr_storm(self, kernel):
        def body(task):
            yield Segment(ms(10))

        kernel.add_task(Task("T", 1, body))
        controller = InterruptController(kernel)
        isr = controller.register("storm", lambda: None, duration=ms(1))
        isr.schedule_periodic(ms(2))
        kernel.activate_task("T")
        kernel.run_until(ms(60))
        assert isr.fire_count >= 10
        # Massive slowdown: 10ms of work under ~50% theft takes ~19ms.
        end = kernel.trace.last(TraceKind.TASK_TERMINATE, "T").time
        assert end >= ms(18)

    def test_periodic_isr_bad_period(self, kernel):
        controller = InterruptController(kernel)
        isr = controller.register("rx", lambda: None)
        with pytest.raises(KernelConfigError):
            isr.schedule_periodic(0)

    def test_isr_can_activate_task(self, kernel):
        def body(task):
            yield Segment(ms(1))

        kernel.add_task(Task("T", 5, body))
        controller = InterruptController(kernel)
        isr = controller.register("rx", lambda: kernel.activate_task("T"))
        isr.schedule_at(ms(3))
        kernel.run_until(ms(10))
        assert kernel.trace.count(TraceKind.TASK_TERMINATE, "T") == 1
