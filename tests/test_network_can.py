"""Tests for the CAN bus simulation."""

import random

import pytest

from repro.kernel import Kernel, ms
from repro.network import CanBus, FrameSpec, SignalSpec, can_frame_bits


def make_bus(kernel, **kwargs):
    return CanBus("test", kernel, **kwargs)


def frame(name="F", frame_id=0x100):
    spec = FrameSpec(name, frame_id)
    spec.add_signal(SignalSpec("v", 0, 16, scale=0.01))
    return spec


class TestFrameBits:
    def test_standard_frame_size(self):
        assert can_frame_bits(8) == 47 + 64

    def test_stuffing_adds_bits(self):
        assert can_frame_bits(8, worst_case_stuffing=True) > can_frame_bits(8)


class TestDelivery:
    def test_broadcast_to_other_controllers(self, kernel):
        bus = make_bus(kernel)
        tx = bus.attach("tx")
        rx = bus.attach("rx")
        got = []
        rx.on_receive(got.append)
        tx.send(frame(), {"v": 50.0})
        kernel.run_until(ms(10))
        assert len(got) == 1
        assert got[0].value("v") == pytest.approx(50.0, abs=0.01)

    def test_sender_does_not_receive_own_frame(self, kernel):
        bus = make_bus(kernel)
        tx = bus.attach("tx")
        got = []
        tx.on_receive(got.append)
        tx.send(frame(), {"v": 1.0})
        kernel.run_until(ms(10))
        assert got == []

    def test_transmission_takes_wire_time(self, kernel):
        bus = make_bus(kernel, bitrate_bps=500_000)
        tx = bus.attach("tx")
        rx = bus.attach("rx")
        arrival = []
        rx.on_receive(lambda m: arrival.append(kernel.clock.now))
        tx.send(frame(), {"v": 1.0})
        kernel.run_until(ms(10))
        expected = (can_frame_bits(8) * 1_000_000) // 500_000
        assert arrival == [expected]

    def test_acceptance_filter(self, kernel):
        bus = make_bus(kernel)
        tx = bus.attach("tx")
        rx = bus.attach("rx")
        rx.accept(0x200)
        got = []
        rx.on_receive(got.append)
        tx.send(frame("A", 0x100), {"v": 1.0})
        tx.send(frame("B", 0x200), {"v": 2.0})
        kernel.run_until(ms(10))
        assert [m.frame_id for m in got] == [0x200]

    def test_empty_filter_receives_all(self, kernel):
        bus = make_bus(kernel)
        tx = bus.attach("tx")
        rx = bus.attach("rx")
        got = []
        rx.on_receive(got.append)
        tx.send(frame("A", 0x100), {"v": 1.0})
        tx.send(frame("B", 0x200), {"v": 2.0})
        kernel.run_until(ms(10))
        assert len(got) == 2


class TestArbitration:
    def test_lowest_id_wins(self, kernel):
        bus = make_bus(kernel)
        a = bus.attach("a")
        b = bus.attach("b")
        rx = bus.attach("rx")
        order = []
        rx.on_receive(lambda m: order.append(m.frame_id))
        # Occupy the bus so the next two contend.
        a.send(frame("first", 0x50), {"v": 0})
        b.send(frame("hi", 0x300), {"v": 0})
        a.send(frame("lo", 0x100), {"v": 0})
        kernel.run_until(ms(10))
        assert order == [0x50, 0x100, 0x300]

    def test_fifo_within_same_id(self, kernel):
        bus = make_bus(kernel)
        a = bus.attach("a")
        rx = bus.attach("rx")
        values = []
        rx.on_receive(lambda m: values.append(round(m.value("v"))))
        for v in (1, 2, 3):
            a.send(frame(), {"v": v})
        kernel.run_until(ms(10))
        assert values == [1, 2, 3]

    def test_pending_high_water_mark(self, kernel):
        bus = make_bus(kernel)
        a = bus.attach("a")
        for v in range(5):
            a.send(frame(), {"v": v})
        assert bus.max_pending_seen == 4  # first started immediately


class TestFaults:
    def test_corruption_triggers_retransmission(self, kernel):
        bus = make_bus(kernel, corruption_probability=0.5,
                       rng=random.Random(42))
        tx = bus.attach("tx")
        rx = bus.attach("rx")
        got = []
        rx.on_receive(got.append)
        for v in range(20):
            tx.send(frame(), {"v": v})
        kernel.run_until(ms(100))
        # Every frame eventually delivered despite corruption.
        assert len(got) == 20
        assert bus.corrupted_count > 0

    def test_bus_off_after_many_errors(self, kernel):
        bus = make_bus(kernel, corruption_probability=0.95,
                       rng=random.Random(1))
        tx = bus.attach("tx")
        for v in range(40):
            tx.send(frame(), {"v": v})
        kernel.run_until(ms(500))
        assert tx.bus_off
        # A bus-off controller silently drops new frames.
        assert tx.send(frame(), {"v": 0}) is None

    def test_bus_off_recovery(self, kernel):
        bus = make_bus(kernel, corruption_probability=0.95, rng=random.Random(1))
        tx = bus.attach("tx")
        for v in range(40):
            tx.send(frame(), {"v": v})
        kernel.run_until(ms(500))
        assert tx.bus_off
        tx.recover_bus_off()
        assert not tx.bus_off
        assert tx.tx_error_counter == 0

    def test_tec_decrements_on_success(self, kernel):
        bus = make_bus(kernel)
        tx = bus.attach("tx")
        tx.tx_error_counter = 5
        tx.send(frame(), {"v": 1})
        kernel.run_until(ms(10))
        assert tx.tx_error_counter == 4

    def test_invalid_parameters(self, kernel):
        with pytest.raises(ValueError):
            CanBus("x", kernel, bitrate_bps=0)
        with pytest.raises(ValueError):
            CanBus("x", kernel, corruption_probability=1.5)


class TestUtilization:
    def test_offered_load_estimate(self, kernel):
        bus = make_bus(kernel, bitrate_bps=500_000)
        load = bus.utilization_estimate({0x100: 100.0, 0x200: 100.0})
        expected = 2 * 100.0 * can_frame_bits(8) / 500_000
        assert load == pytest.approx(expected)
