"""Cross-module integration tests: interactions the unit tests can't see.

Each test exercises a chain that crosses at least three subsystems —
bus faults vs watchdog, ECU reset vs the live rig, watchdog supervision
under heavy network load, the full detect→treat→recover loop on the HIL
validator.
"""

import random

import pytest

from repro.core import ErrorType, MonitorState
from repro.faults import BlockedRunnableFault, ErrorInjector, FaultTarget
from repro.kernel import ms, seconds, TraceKind
from repro.platform import FmfPolicy
from repro.validator import HilValidator

OBSERVE = FmfPolicy(ecu_faulty_task_threshold=10**6, max_app_restarts=10**6)


class TestBusFaultsVsWatchdog:
    def test_can_corruption_does_not_fool_the_watchdog(self):
        """Heavy CAN corruption delays sensor data but heartbeats are
        local to the ECU: the watchdog must stay silent."""
        rig = HilValidator(fmf_policy=OBSERVE, fmf_auto_treatment=False)
        rig.can.corruption_probability = 0.3
        rig.can.rng = random.Random(7)
        rig.run(seconds(5))
        assert rig.ecu.watchdog.detection_count() == 0
        assert rig.can.corrupted_count > 100
        # Retransmission kept the data flowing.
        assert rig.central_store.value("VehicleSpeed", "speed_kph") > 0.0

    def test_stale_sensor_data_is_an_application_problem(self):
        """Killing the dynamics node's publications starves the
        *application's data*, not its execution: the watchdog correctly
        reports nothing (runnables still run on schedule) while the
        application-level staleness guard reacts.  This boundary is the
        reason the paper pairs the watchdog with application-level
        plausibility checks."""
        rig = HilValidator(fmf_policy=OBSERVE, fmf_auto_treatment=False,
                           initial_speed_kph=50.0)
        rig.run(seconds(2))
        # Cut the dynamics node's tick chain by making its bus interface
        # drop everything (bus-off).
        rig.dynamics_node.can.bus_off = True
        rig.run(seconds(1))
        assert rig.ecu.watchdog.detection_count() == 0  # execution is fine
        age = rig.central_store.age("VehicleSpeed", rig.kernel.clock.now)
        assert age is not None and age > seconds(0.9)


class TestEcuResetOnLiveRig:
    def test_reset_mid_drive_recovers_control(self):
        """An ECU software reset must not kill the plant: the world keeps
        running (persistent events) and control resumes after restart."""
        rig = HilValidator(fmf_policy=OBSERVE, fmf_auto_treatment=False,
                           initial_speed_kph=40.0)
        rig.run(seconds(3))
        speed_before = rig.vehicle.state.speed_kph
        assert speed_before > 30.0
        rig.ecu.software_reset()
        rig.run(seconds(5))
        # Buses and nodes survived; the application is steering again.
        assert rig.dynamics_node.vehicle.step_count > 1000
        assert rig.safespeed.state.samples > 0
        assert rig.vehicle.state.speed_kph > 20.0
        assert rig.ecu.watchdog.detection_count() == 0

    def test_reset_clears_watchdog_but_not_world_traffic(self):
        rig = HilValidator(fmf_policy=OBSERVE, fmf_auto_treatment=False)
        rig.run(seconds(1))
        frames_before = rig.can.delivered_count
        rig.ecu.software_reset()
        rig.run(ms(200))
        assert rig.can.delivered_count > frames_before  # world kept talking
        assert rig.ecu.watchdog.check_cycle_count <= 21  # restarted counting


class TestFullDetectTreatRecoverLoop:
    def test_transient_fault_on_the_rig_end_to_end(self):
        """Detection → FMF restart → recovery, while driving."""
        rig = HilValidator(
            fmf_policy=FmfPolicy(ecu_faulty_task_threshold=10,
                                 max_app_restarts=100),
        )
        rig.run(seconds(2))
        injector = ErrorInjector(FaultTarget.from_ecu(rig.ecu))
        fault = BlockedRunnableFault("SAFE_CC_process")
        injector.inject_at(rig.kernel.clock.now + ms(100), fault,
                           restore_at=rig.kernel.clock.now + ms(600))
        rig.run(seconds(2))
        assert rig.ecu.application_restart_counts.get("SafeSpeed", 0) >= 1
        assert len(rig.ecu.reset_times) == 0
        detections = rig.ecu.watchdog.detection_count()
        rig.run(seconds(2))
        assert rig.ecu.watchdog.detection_count() == detections  # healed
        # Vehicle control survived the whole episode.
        assert rig.vehicle.state.speed_kph > 20.0

    def test_watchdog_supervises_through_heavy_interrupt_load(self):
        """CAN receive interrupts steal CPU without breaking supervision:
        no false positives at realistic bus load."""
        rig = HilValidator(fmf_policy=OBSERVE, fmf_auto_treatment=False)
        # Every frame delivery costs the running task 20 µs (rx ISR).
        isr = rig.ecu.interrupts.register("can_rx", lambda: None, duration=20)
        original_deliver = rig.can._complete

        def deliver_with_isr(controller, message, corrupted):
            isr.fire()
            original_deliver(controller, message, corrupted)

        rig.can._complete = deliver_with_isr
        rig.run(seconds(4))
        assert isr.fire_count > 1000
        assert rig.ecu.watchdog.detection_count() == 0


class TestTracingAcrossTheStack:
    def test_trace_tells_the_whole_story(self):
        """One trace carries kernel, watchdog, bus and injection events —
        the analysis layer can reconstruct the experiment."""
        rig = HilValidator(fmf_policy=OBSERVE, fmf_auto_treatment=False)
        injector = ErrorInjector(FaultTarget.from_ecu(rig.ecu))
        injector.inject_at(seconds(1), BlockedRunnableFault("SAFE_CC_process"))
        rig.run(seconds(2))
        trace = rig.kernel.trace
        assert trace.count(TraceKind.FAULT_INJECTED) == 1
        assert trace.count(TraceKind.WATCHDOG_CHECK) >= 195
        assert trace.count(TraceKind.HEARTBEAT, "GetSensorValue") >= 190

        from repro.analysis import detection_latency, heartbeat_gaps

        detections = [e.time for e in rig.ecu.watchdog.tsi.error_log()]
        latencies = detection_latency(trace, detections)
        assert latencies[0] is not None and latencies[0] <= ms(30)
        gaps = heartbeat_gaps(trace, "Speed_process")
        assert max(gaps) <= ms(11)  # Speed_process kept its cadence
