"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.kernel import AlarmTable, Kernel
from repro.platform import TaskMapping

from testutil import make_safespeed_mapping


@pytest.fixture
def kernel() -> Kernel:
    """A fresh kernel."""
    return Kernel()


@pytest.fixture
def alarms(kernel: Kernel) -> AlarmTable:
    """An alarm table on the fresh kernel."""
    return AlarmTable(kernel)


@pytest.fixture
def safespeed_mapping() -> TaskMapping:
    return make_safespeed_mapping()
