"""E4 — fault treatment escalation (§3.4).

Regenerates the threshold sweep (time-to-task-fault vs TSI threshold)
and the restart-budget escalation table for permanent and transient
faults.
"""

from benchutil import run_once

from repro.analysis import format_table
from repro.experiments import run_escalation_sweep, run_threshold_sweep
from repro.kernel import ms, seconds


def test_bench_threshold_sweep(benchmark):
    rows = run_once(benchmark, run_threshold_sweep, thresholds=[1, 2, 3, 4, 6],
                    observation=seconds(2))
    times = [r.time_to_task_fault_ms for r in rows]
    assert all(t is not None for t in times)
    assert times == sorted(times)
    print()
    print(format_table([r.__dict__ for r in rows]))


def test_bench_escalation_sweep(benchmark):
    def sweep():
        permanent = run_escalation_sweep(budgets=[1, 2, 4],
                                         observation=seconds(2))
        transient = run_escalation_sweep(budgets=[3], observation=seconds(2),
                                         transient_duration=ms(400))
        return permanent + transient

    rows = run_once(benchmark, sweep)
    permanent = [r for r in rows if r.fault_kind == "permanent"]
    assert all(r.resets > 0 for r in permanent)
    assert rows[-1].recovered  # the transient case heals
    print()
    print(format_table([r.__dict__ for r in rows]))
