"""Instrumentation-overhead benchmark: live registry vs null registry.

Telemetry rides the watchdog's hottest path — the per-period check
cycle — so its cost model matters: high-frequency tallies stay plain
ints and are folded into registry counters once per cycle, and only the
cycle-duration timing runs per cycle when the registry is live.  The
acceptance bound: at 1000 supervised runnables the fully instrumented
cycle must stay within 1.15× of the null-registry cycle.

Both paths also drive a heartbeat per due runnable per cycle so the
comparison covers the heartbeat hot path, not just the check loop.
"""

import time

from repro.experiments.overhead import _staggered_unit
from repro.telemetry import MetricsRegistry, NullRegistry

RUNNABLES = 1000
#: Monitoring period in check cycles → 1 % of the deadlines due per cycle.
PERIOD = 100
CYCLES = 400
REPEATS = 5


def _per_cycle_seconds(unit, cycles: int = CYCLES) -> float:
    """Wall time per check cycle, heartbeating every due slot first."""
    names = unit.names
    start_cycle = unit.cycle_count
    begin = time.perf_counter()
    for c in range(cycles):
        now = start_cycle + c
        # The slots re-armed at warm-up cycle (now % PERIOD) fall due
        # now — heartbeat exactly those, keeping the run healthy.
        for i in range(now % PERIOD, len(names), PERIOD):
            unit.heartbeat(names[i], now)
        unit.cycle(time=now)
    return (time.perf_counter() - begin) / cycles


def _best_of(unit, repeats: int = REPEATS) -> float:
    """Minimum per-cycle cost over several measurement rounds (the
    standard noise filter for microbenchmarks)."""
    return min(_per_cycle_seconds(unit) for _ in range(repeats))


def test_bench_telemetry_overhead_within_bound(benchmark):
    """Acceptance: instrumented hot path ≤ 1.15× the null-registry path."""
    null_unit = _staggered_unit(RUNNABLES, PERIOD, "wheel",
                                telemetry=NullRegistry())
    live_unit = _staggered_unit(RUNNABLES, PERIOD, "wheel",
                                telemetry=MetricsRegistry())
    null_cost = _best_of(null_unit)
    live_cost = benchmark.pedantic(
        _best_of, args=(live_unit,), rounds=1, iterations=1
    )
    ratio = live_cost / null_cost
    print(f"\nper-cycle: null {null_cost * 1e6:.2f} us, "
          f"live {live_cost * 1e6:.2f} us, ratio {ratio:.3f}x")
    assert ratio <= 1.15, (
        f"instrumented cycle {ratio:.3f}x the null-registry cycle "
        f"(null {null_cost * 1e6:.2f} us, live {live_cost * 1e6:.2f} us)"
    )
    # The live run actually recorded what happened: every cycle timed,
    # every heartbeat and slot visit folded into the counters.
    live_unit.sync_telemetry()
    registry = live_unit.telemetry
    assert registry.value("wd_hbm_check_cycles_total") >= CYCLES * REPEATS
    assert registry.value("wd_hbm_heartbeats_total") > 0


def test_bench_null_registry_is_free(benchmark):
    """The default (no telemetry= at all) must cost the same as an
    explicit NullRegistry — the knob's absence is not a tax."""
    default_unit = _staggered_unit(RUNNABLES, PERIOD, "wheel")
    null_unit = _staggered_unit(RUNNABLES, PERIOD, "wheel",
                                telemetry=NullRegistry())
    default_cost = _best_of(default_unit)
    null_cost = benchmark.pedantic(
        _best_of, args=(null_unit,), rounds=1, iterations=1
    )
    ratio = null_cost / default_cost
    print(f"\nper-cycle: default {default_cost * 1e6:.2f} us, "
          f"explicit-null {null_cost * 1e6:.2f} us, ratio {ratio:.3f}x")
    assert 0.8 <= ratio <= 1.25
