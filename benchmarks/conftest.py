"""Benchmark suite configuration.

Every benchmark regenerates one table or figure from DESIGN.md's
experiment index.  Heavy end-to-end experiments run with ``rounds=1``
(they are simulations, not microbenchmarks); hot-path microbenchmarks
use normal pytest-benchmark calibration.

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the
regenerated tables and figures.

Tier-2 smoke: the first test of every benchmark file is additionally
marked ``bench_smoke``, so

    pytest benchmarks/ -m bench_smoke --benchmark-disable -q

runs one fast iteration per file — enough to catch benchmark code rot
(import errors, renamed experiment APIs, broken assertions) without
paying for calibration or full simulation sweeps.
"""

import pytest


def pytest_collection_modifyitems(config, items):
    """Mark the first collected test of each benchmark module with
    ``bench_smoke`` (the tier-2 rot check; see module docstring)."""
    seen_modules = set()
    for item in items:
        module = getattr(item, "module", None)
        name = getattr(module, "__name__", None)
        if name is None or name in seen_modules:
            continue
        seen_modules.add(name)
        item.add_marker(pytest.mark.bench_smoke)
