"""Benchmark suite configuration.

Every benchmark regenerates one table or figure from DESIGN.md's
experiment index.  Heavy end-to-end experiments run with ``rounds=1``
(they are simulations, not microbenchmarks); hot-path microbenchmarks
use normal pytest-benchmark calibration.

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the
regenerated tables and figures.
"""
