"""E5 — dynamic reconfiguration / fault containment (outlook).

Regenerates the containment scenario: SafeLane permanently faulty on
the shared ECU is terminated (not reset) while SafeSpeed keeps
regulating the vehicle speed.
"""

from benchutil import run_once

from repro.experiments import run_reconfiguration
from repro.kernel import seconds


def test_bench_reconfiguration(benchmark):
    report = run_once(benchmark, run_reconfiguration,
                      observation=seconds(4), settle=seconds(3))
    assert report.safelane_terminated
    assert report.ecu_resets == 0
    assert report.speed_regulated
    assert report.detections_after_termination == 0
    print()
    for key, value in report.__dict__.items():
        print(f"  {key}: {value}")
