"""Shared helpers for the benchmark suite (import as `benchutil`)."""


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark an expensive experiment exactly once."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
