"""F4 (Figure 4) — SafeSpeed runnables and program flow.

Benchmarks the modelled application itself: the three-runnable control
path in closed loop with the vehicle model, and the full HIL rig's
simulation throughput.
"""

from benchutil import run_once

from repro.apps import SafeSpeedApp, Vehicle
from repro.kernel import seconds
from repro.validator import HilValidator


def test_bench_safespeed_control_step(benchmark):
    vehicle = Vehicle()
    app = SafeSpeedApp(
        lambda: (vehicle.state.speed_kph, 60.0),
        lambda throttle, brake: (
            setattr(vehicle.commands, "throttle", throttle),
            setattr(vehicle.commands, "brake", brake),
        ),
    )

    def control_cycle():
        app.get_sensor_value()
        app.safe_cc_process()
        app.speed_process()
        vehicle.step(0.01)

    benchmark(control_cycle)
    assert app.state.samples > 0


def test_bench_hil_rig_throughput(benchmark):
    """Simulated seconds per wall-clock second of the full validator."""

    def run_rig():
        rig = HilValidator()
        rig.run(seconds(5))
        return rig

    rig = run_once(benchmark, run_rig)
    summary = rig.summary()
    assert summary["aliveness_errors"] == 0
    assert summary["can_frames"] > 1000
    print()
    print("rig summary:", summary)
