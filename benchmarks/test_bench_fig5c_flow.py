"""F5c (stated in §4.5) — test with injected control flow error.

Regenerates the control-flow evaluation case: an invalid execution
branch bypasses a runnable; the look-up-table checker flags every
occurrence and the "PFC Result" curve steps up.
"""

from benchutil import run_once

from repro.experiments import run_figure5c
from repro.kernel import ms, seconds


def test_bench_figure5c(benchmark):
    result = run_once(
        benchmark,
        run_figure5c,
        warmup=seconds(1),
        faulty_window=seconds(1),
        recovery=ms(500),
    )
    assert result.measurement("errors_before_injection") == 0
    assert result.measurement("errors_during_fault") > 10
    assert result.measurement("errors_after_recovery") <= 3
    print()
    print(result.rendered)
    print("measured:", {k: v for k, v in result.measurements.items()})
