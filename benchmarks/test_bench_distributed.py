"""E6 — distributed supervision across ECU borders (outlook extension).

Regenerates the node-crash / degradation / recovery study on the
two-node rig and the crash-detection-latency sweep over the remote
supervisor's check window.
"""

from benchutil import run_once

from repro.analysis import format_table
from repro.experiments import (
    run_distributed_supervision,
    run_supervision_latency_sweep,
)


def test_bench_distributed_supervision(benchmark):
    report = run_once(benchmark, run_distributed_supervision)
    assert report.crash_detect_latency_ms <= 70.0
    assert report.healthy_peer_verdict == "ok"
    assert report.recovered_verdict == "ok"
    print()
    for key, value in report.__dict__.items():
        print(f"  {key}: {value}")


def test_bench_supervision_latency_sweep(benchmark):
    rows = run_once(benchmark, run_supervision_latency_sweep)
    assert all(r["detected"] for r in rows)
    latencies = [r["detect_latency_ms"] for r in rows]
    assert latencies == sorted(latencies)
    print()
    print(format_table(rows))
