"""E3 — detection latency per fault class and check mode.

Regenerates the latency table, including the period-end vs
eager-arrival ablation of DESIGN.md.
"""

from benchutil import run_once

from repro.analysis import format_table
from repro.experiments import run_latency_study


def test_bench_latency_study(benchmark):
    rows = run_once(benchmark, run_latency_study, repetitions=1)
    assert all(r["detected"] == 1.0 for r in rows)
    by_mode = {(r["fault"], r["check_mode"]): r["mean_latency_ms"] for r in rows}
    key = "arrival rate (loop counter)"
    assert by_mode[(key, "eager-arrival")] < by_mode[(key, "period-end")]
    print()
    print(format_table(rows))
