"""F5b (stated in §4.5) — test with injected arrival rate error.

Regenerates the arrival-rate evaluation case: a manipulated loop
counter repeats a runnable, the ARC/CCAR counters overflow and the
"ARM Result" curve steps up.
"""

from benchutil import run_once

from repro.experiments import run_figure5b
from repro.kernel import ms, seconds


def test_bench_figure5b(benchmark):
    result = run_once(
        benchmark,
        run_figure5b,
        warmup=seconds(1),
        faulty_window=seconds(1),
        recovery=ms(500),
    )
    assert result.measurement("errors_before_injection") == 0
    assert result.measurement("errors_during_fault") > 10
    assert result.measurement("errors_after_recovery") <= 3
    print()
    print(result.rendered)
    print("measured:", {k: v for k, v in result.measurements.items()})
