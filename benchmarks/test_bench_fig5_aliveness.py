"""F5 (Figure 5) — test with injected aliveness error.

Regenerates the paper's Figure 5: the SafeSpeed task slowed via the
time-scalar slider, the focus runnable's AC/CCA counters and the
cumulative "AM Result" curve captured at 10 ms samples.
"""

from benchutil import run_once

from repro.experiments import run_figure5
from repro.kernel import ms, seconds


def test_bench_figure5(benchmark):
    result = run_once(
        benchmark,
        run_figure5,
        warmup=seconds(1),
        faulty_window=seconds(1),
        recovery=ms(500),
    )
    assert result.measurement("errors_before_injection") == 0
    assert result.measurement("errors_during_fault") > 10
    assert result.measurement("errors_after_recovery") <= 3
    print()
    print(result.rendered)
    print("measured:", {k: v for k, v in result.measurements.items()})
