"""F1 (Figure 1) — EASIS software topology: construction and lookups.

Regenerates the layered-platform structure and benchmarks the service
framework's hot paths (interface resolution is on the heartbeat path in
a registry-mediated deployment).
"""

from repro.platform import (
    Layer,
    ServiceRegistry,
    build_easis_topology,
)
from repro.platform.services import DependabilityService


def test_bench_topology_construction(benchmark):
    topo = benchmark(build_easis_topology)
    assert topo.provider_of("watchdog.heartbeat_indication").name == "SoftwareWatchdog"
    # Print the regenerated Figure 1 structure.
    for layer in reversed(list(Layer)):
        names = ", ".join(m.name for m in topo.modules_on(layer))
        print(f"L{int(layer)}: {names}")


def test_bench_topology_validation(benchmark):
    topo = build_easis_topology()
    benchmark(topo.validate)


def test_bench_service_resolution(benchmark):
    registry = ServiceRegistry()
    for i in range(20):
        svc = DependabilityService(f"Svc{i}")
        svc.provide_interface(f"svc{i}.api", lambda: None)
        registry.register(svc)
    resolve = registry.resolve
    result = benchmark(lambda: resolve("svc10.api"))
    assert callable(result)
