"""Recovery trajectory of the supervision daemon (restore + detection gap).

The dependability claim behind ``--state-dir`` is quantitative: after the
watchdog daemon itself dies, a restart must (a) rebuild the full fleet
state — registrations, Activation Status, HBM/ARC/TSI counter blocks —
from snapshot + journal fast enough to be invisible next to process
respawn latency, and (b) resume supervision so that an application that
died *with* the daemon is still reported within one aliveness window of
the restart.  This benchmark measures both numbers in-process:

* **restore_seconds** — wall-clock for ``SupervisionServer.start()`` to
  load a snapshot of ``N_REGISTRATIONS - JOURNAL_TAIL`` registrations
  plus a ``JOURNAL_TAIL``-record journal tail (the simulated-crash
  leftovers) and come up serving;
* **detection_gap_seconds** — restore time plus the wait until every
  restored-ACTIVE registration whose application never came back is
  surfaced as a DETECTION by the ticker.

Results are appended to ``BENCH_service_recovery.json`` at the repo
root so the recovery trajectory is tracked across PRs.
"""

import asyncio
import json
import os
import time

from repro.core import FaultHypothesis, RunnableHypothesis
from repro.service import SupervisionServer, WatchdogClient

N_REGISTRATIONS = 200
JOURNAL_TAIL = 50          # registrations journaled after the last snapshot
TICK_S = 0.005             # 5 ms check cycle, same as the serve smoke tests
ALIVENESS_CYCLES = 20      # silence budget before a DETECTION (~100 ms)

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_RESULTS_PATH = os.path.join(_REPO_ROOT, "BENCH_service_recovery.json")


def make_hypothesis(name):
    hyp = FaultHypothesis()
    hyp.add_runnable(RunnableHypothesis(
        f"{name}.step", task=f"{name}.T",
        aliveness_period=ALIVENESS_CYCLES, min_heartbeats=1,
        arrival_period=ALIVENESS_CYCLES, max_heartbeats=1000))
    return hyp


def _register_many(host, port, names):
    """Blocking SDK client run from an executor thread (the asyncio
    daemon owns the main thread, exactly like the ingest benchmark)."""
    client = WatchdogClient((host, port), client_name="bench")
    client.connect()
    for name in names:
        client.register(name, make_hypothesis(name))
    # No farewell BYE: these applications "die with the daemon", so the
    # restored registrations stay ACTIVE and must be detected.
    client.close(say_bye=False)


async def _recovery_run(state_dir):
    loop = asyncio.get_running_loop()
    names = [f"app{i:04d}" for i in range(N_REGISTRATIONS)]
    snapshotted, tail = names[:-JOURNAL_TAIL], names[-JOURNAL_TAIL:]

    # Act 1 — populate a daemon, snapshot, leave a journal tail, crash.
    server = SupervisionServer(port=0, tick_interval=None,
                               state_dir=state_dir, snapshot_interval=None)
    await server.start()
    await loop.run_in_executor(
        None, _register_many, server.host, server.port, snapshotted)
    await server.drain()
    server.write_snapshot()
    await loop.run_in_executor(
        None, _register_many, server.host, server.port, tail)
    await server.drain()
    # Simulated SIGKILL: no farewell snapshot, the journal tail survives
    # only on disk.
    await server.stop(save=False)

    # Act 2 — restart from the state directory; time the restore.
    server = SupervisionServer(port=0, tick_interval=TICK_S,
                               state_dir=state_dir, snapshot_interval=None)
    begin = time.perf_counter()
    await server.start()
    restore_seconds = time.perf_counter() - begin
    restored = server.restored_registrations

    # Act 3 — nobody heartbeats after the crash, so every restored-ACTIVE
    # registration must surface as an aliveness DETECTION.
    detect_begin = time.perf_counter()
    deadline = detect_begin + 30.0
    while server.fleet.stats()["detections"] < N_REGISTRATIONS:
        if time.perf_counter() > deadline:
            raise AssertionError(
                f"only {server.fleet.stats()['detections']} of "
                f"{N_REGISTRATIONS} restored registrations detected")
        await asyncio.sleep(TICK_S)
    detection_wait_seconds = time.perf_counter() - detect_begin
    await server.stop(save=False)
    return {
        "restored": restored,
        "restore_seconds": restore_seconds,
        "detection_wait_seconds": detection_wait_seconds,
        "detection_gap_seconds": restore_seconds + detection_wait_seconds,
    }


def test_bench_service_recovery(benchmark, tmp_path):
    """Acceptance: full restore < 2 s, detection gap < restore + 5 s."""
    result = benchmark.pedantic(
        lambda: asyncio.run(_recovery_run(str(tmp_path / "state"))),
        rounds=1, iterations=1)
    record = {
        "registrations": N_REGISTRATIONS,
        "journal_tail": JOURNAL_TAIL,
        "tick_seconds": TICK_S,
        "aliveness_cycles": ALIVENESS_CYCLES,
        "restore_seconds": round(result["restore_seconds"], 6),
        "detection_wait_seconds": round(result["detection_wait_seconds"], 6),
        "detection_gap_seconds": round(result["detection_gap_seconds"], 6),
    }
    with open(_RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nrecovery: {result['restored']} registrations restored in "
          f"{result['restore_seconds'] * 1000:.1f} ms, silent apps all "
          f"detected after a further "
          f"{result['detection_wait_seconds'] * 1000:.1f} ms "
          f"(gap {result['detection_gap_seconds'] * 1000:.1f} ms) "
          f"-> {_RESULTS_PATH}")
    assert result["restored"] == N_REGISTRATIONS
    assert result["restore_seconds"] < 2.0, (
        f"restore took {result['restore_seconds']:.3f}s for "
        f"{N_REGISTRATIONS} registrations")
    assert result["detection_gap_seconds"] < result["restore_seconds"] + 5.0
