"""Benchmark: parallel campaign execution vs the serial baseline.

The E1 campaign is embarrassingly parallel — every injection is an
independent fresh system — so worker processes should buy near-linear
throughput until runs run out.  The scaling assertion (≥2× at 4
workers) needs ≥4 physical cores and skips with a reason otherwise;
the smoke test verifies the parallel path end to end on any machine.
"""

import os
import time

import pytest

from benchutil import run_once
from repro.experiments.coverage import standard_fault_specs
from repro.faults import Campaign
from repro.kernel import ms

_CPUS = os.cpu_count() or 1


def _campaign(observation=ms(500)):
    return Campaign("coverage", warmup=ms(300), observation=observation)


def test_parallel_campaign_smoke(benchmark):
    """Tier-2 smoke: a 2-worker campaign completes and matches serial."""
    specs = standard_fault_specs(1)
    serial = _campaign().execute(specs)
    parallel = run_once(
        benchmark, lambda: _campaign().execute(specs, workers=2)
    )
    assert parallel.runs == serial.runs


@pytest.mark.skipif(
    _CPUS < 4,
    reason=f"campaign scaling needs >= 4 cores, host has {_CPUS}",
)
def test_four_workers_at_least_2x(benchmark):
    """≥2× throughput at 4 workers on a scaled-up fault list."""
    specs = standard_fault_specs(8)  # 64 runs — amortizes pool start-up

    start = time.perf_counter()
    serial = _campaign().execute(specs)
    serial_elapsed = time.perf_counter() - start

    parallel_result = {}

    def run_parallel():
        start = time.perf_counter()
        parallel_result["result"] = _campaign().execute(specs, workers=4)
        parallel_result["elapsed"] = time.perf_counter() - start

    run_once(benchmark, run_parallel)
    assert parallel_result["result"].runs == serial.runs
    speedup = serial_elapsed / parallel_result["elapsed"]
    print(f"\nserial {serial_elapsed:.2f}s, 4 workers "
          f"{parallel_result['elapsed']:.2f}s, speedup {speedup:.2f}x")
    assert speedup >= 2.0, f"expected >= 2x at 4 workers, got {speedup:.2f}x"
