"""E2 — overhead: look-up-table PFC vs CFCSS, watchdog CPU share,
passive vs polling bookkeeping.

Regenerates the overhead tables behind §3.2.2's design argument, plus a
wall-clock microbenchmark of the two flow-check primitives.
"""

from benchutil import run_once

from repro.analysis import format_table
from repro.baselines import CfcssChecker
from repro.analysis.overhead import build_runnable_cfg
from repro.core.flowcheck import FlowTable, ProgramFlowCheckingUnit
from repro.experiments import (
    flow_checking_rows,
    passive_vs_polling_rows,
    watchdog_cpu_rows,
)
from repro.kernel import ms, seconds


def test_bench_flow_checking_comparison(benchmark):
    rows = run_once(benchmark, flow_checking_rows, executions=500)
    by = {r["technique"]: r for r in rows}
    assert by["lookup-table"]["runtime_ops"] * 10 <= by["CFCSS"]["runtime_ops"]
    print()
    print(format_table(rows))


def test_bench_watchdog_cpu_share(benchmark):
    rows = run_once(
        benchmark, watchdog_cpu_rows,
        periods=[ms(5), ms(10), ms(20)], check_costs=[10, 50, 200],
        horizon=seconds(2),
    )
    paper_point = next(
        r for r in rows
        if r["watchdog_period_ms"] == 10.0 and r["check_cost_us"] == 50
    )
    assert paper_point["cpu_share"] < 0.02
    print()
    print(format_table(rows))


def test_bench_passive_vs_polling(benchmark):
    rows = run_once(benchmark, passive_vs_polling_rows)
    print()
    print(format_table(rows))


def test_bench_lookup_probe_wallclock(benchmark):
    """Wall-clock cost of one look-up-table probe."""
    table = FlowTable()
    table.allow_cycle(["A", "B", "C"])
    pfc = ProgramFlowCheckingUnit(table)
    state = {"i": 0}
    names = ["A", "B", "C"]

    def probe():
        pfc.observe(names[state["i"]], 0)
        state["i"] = (state["i"] + 1) % 3

    benchmark(probe)
    assert pfc.violation_count == 0


def test_bench_cfcss_step_wallclock(benchmark):
    """Wall-clock cost of one CFCSS signature update (per basic block —
    and a runnable has many basic blocks)."""
    graph = build_runnable_cfg(["A", "B", "C"], blocks_per_runnable=10)
    checker = CfcssChecker(graph, "A.b0")
    walk = [b for b in graph.blocks() if not b.endswith(".alt")]
    state = {"i": 0}
    checker.start()

    def step():
        i = state["i"]
        if i == 0:
            checker.start()
        else:
            checker.step(walk[i])
        state["i"] = (i + 1) % len(walk)

    benchmark(step)
