"""Service ingest throughput: heartbeat frames over a loopback socket.

The live supervision daemon's floor: with telemetry enabled it must
sustain ≥ 10k heartbeat *frames*/s (each frame batching several
indications) arriving over TCP loopback while its real-time ticker
keeps running with at most one missed check cycle.  Below that, a
modestly busy ECU rack would outrun its own supervisor.

The measurement runs the daemon in-process (asyncio) with a writer
driving pre-encoded frames from an executor thread — the same bytes the
SDK would produce, minus SDK-side buffering, so the number measures
daemon ingest, not client overhead.  The writer is *paced* 25 % above
the floor rate: an unbounded flood measures peak burst absorption (the
backpressure tests cover that); the dependability claim is that at the
contracted arrival rate every indication is applied on time and the
check-cycle ticker stays on schedule.
"""

import asyncio
import socket
import time

from repro.core import FaultHypothesis, RunnableHypothesis
from repro.core.config_io import hypothesis_to_dict
from repro.service import SupervisionServer
from repro.service.protocol import (
    T_ACK,
    T_HEARTBEAT,
    T_HELLO,
    T_REGISTER,
    FrameDecoder,
    encode_frame,
)

FRAMES = 5_000
BATCH = 8  # indications per frame
FLOOR_FRAMES_PER_S = 10_000
#: Paced send rate: 25 % above the floor.
RATE_FRAMES_PER_S = 12_500
#: Frames per pacing slice (one slice per check cycle at the target rate).
SLICE = RATE_FRAMES_PER_S // 100
#: Ticker period during ingest — realistic 10 ms check cycles.
TICK_S = 0.01


def make_hyp_dict():
    hyp = FaultHypothesis()
    hyp.add_runnable(RunnableHypothesis(
        "hot", task="T", aliveness_period=1_000_000, min_heartbeats=1,
        arrival_period=1_000_000, max_heartbeats=10 ** 9))
    return hypothesis_to_dict(hyp)


def _drive_loopback(host, port):
    """Blocking (executor-thread) writer: register, then fire FRAMES
    pre-encoded heartbeat frames; returns the send-side wall time."""
    sock = socket.create_connection((host, port), timeout=10)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    decoder = FrameDecoder()
    sock.sendall(encode_frame(T_REGISTER, name="p",
                              hypothesis=make_hyp_dict()))
    while True:
        frames = [f for f in decoder.feed(sock.recv(65536))
                  if getattr(f, "type", None) == T_ACK]
        if frames:
            assert frames[0].get("ok"), frames[0].data
            break
    payload = encode_frame(
        T_HEARTBEAT, name="p",
        batch=[["hot", None, "T"]] * BATCH)
    begin = time.perf_counter()
    sent = 0
    while sent < FRAMES:
        for _ in range(min(SLICE, FRAMES - sent)):
            sock.sendall(payload)
            sent += 1
        # Pace to the target rate (sendall returning early just means
        # the kernel buffered the bytes; the deadline keeps the *offered
        # load* at RATE_FRAMES_PER_S).
        deadline = begin + sent / RATE_FRAMES_PER_S
        wait = deadline - time.perf_counter()
        if wait > 0:
            time.sleep(wait)
    # Barrier: frames dispatch in order per connection, so the HELLO
    # ACK proves every heartbeat frame has been decoded and enqueued.
    sock.sendall(encode_frame(T_HELLO, client="bench"))
    while True:
        frames = [f for f in decoder.feed(sock.recv(65536))
                  if getattr(f, "type", None) == T_ACK]
        if frames:
            break
    elapsed = time.perf_counter() - begin
    sock.close()
    return elapsed


async def _ingest_run():
    server = SupervisionServer(port=0, tick_interval=TICK_S,
                               queue_limit=FRAMES * BATCH + 1)
    await server.start()
    loop = asyncio.get_running_loop()
    begin = time.perf_counter()
    send_seconds = await loop.run_in_executor(
        None, _drive_loopback, server.host, server.port)
    await server.drain()
    ingest_seconds = time.perf_counter() - begin
    applied = server.fleet.stats()["indications"]
    missed = server.missed_ticks
    ticks = server.fleet.stats()["ticks"]
    await server.stop()
    return {
        "send_seconds": send_seconds,
        "ingest_seconds": ingest_seconds,
        "applied": applied,
        "missed_ticks": missed,
        "ticks": ticks,
    }


def test_bench_service_ingest_floor(benchmark):
    """Acceptance: ≥ 10k heartbeat frames/s, ≤ 1 missed check cycle."""
    result = benchmark.pedantic(
        lambda: asyncio.run(_ingest_run()), rounds=1, iterations=1
    )
    frames_per_s = FRAMES / result["ingest_seconds"]
    print(f"\ningest: {FRAMES} frames ({FRAMES * BATCH} indications) in "
          f"{result['ingest_seconds']:.3f}s -> {frames_per_s:,.0f} frames/s, "
          f"{result['ticks']} check cycles, "
          f"{result['missed_ticks']} missed")
    assert result["applied"] == FRAMES * BATCH  # nothing dropped
    assert frames_per_s >= FLOOR_FRAMES_PER_S, (
        f"daemon ingested only {frames_per_s:,.0f} frames/s "
        f"(floor {FLOOR_FRAMES_PER_S:,})"
    )
    assert result["missed_ticks"] <= 1, (
        f"ticker missed {result['missed_ticks']} check cycles under load"
    )
