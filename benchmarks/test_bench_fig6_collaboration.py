"""F6 (Figure 6) — collaboration of the fault detection units.

Regenerates the paper's Figure 6: aliveness errors whose real cause is
a program-flow fault; after three PFC errors (the threshold) the task
state flips to faulty while at most one accumulated aliveness error has
been reported — root cause identified.
"""

from benchutil import run_once

from repro.experiments import run_figure6


def test_bench_figure6(benchmark):
    result = run_once(benchmark, run_figure6)
    assert result.measurement("task_faulty")
    assert result.measurement("pfc_errors_at_task_fault") == 3
    assert result.measurement("aliveness_errors_at_task_fault") <= 1
    state = result.series["TaskState_SafeSpeed"]
    assert state[0] == 0 and state[-1] == 1
    print()
    print(result.rendered)
    print("measured:", {k: v for k, v in result.measurements.items()})
