"""F3 (Figure 3) — the model-based development tool chain.

Regenerates the pipeline: functional model → mapping with RM priorities
→ RTA schedulability proof → virtual prototype → simulation, and
cross-validates the analytic response-time bounds against simulation.
"""

from benchutil import run_once

from repro.analysis import format_table
from repro.experiments import run_toolchain
from repro.platform import TaskTiming, response_time_analysis


def test_bench_toolchain_pipeline(benchmark):
    report = run_once(benchmark, run_toolchain)
    assert report.schedulable
    assert report.bounds_hold
    print()
    rows = [
        {
            "task": task,
            "rta_bound_us": report.rta_bounds[task],
            "observed_worst_us": report.observed_worst.get(task),
        }
        for task in report.rta_bounds
    ]
    print(format_table(rows))
    print(f"utilization: {report.utilization:.3f}")


def test_bench_rta_microbenchmark(benchmark):
    tasks = [
        TaskTiming(f"T{i}", wcet=100 + 37 * i, period=1000 * (i + 1),
                   priority=20 - i)
        for i in range(12)
    ]
    result = benchmark(response_time_analysis, tasks)
    assert result["T0"] == tasks[0].wcet
