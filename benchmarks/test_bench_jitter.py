"""E7 — release-offset ablation: alarms vs schedule tables.

Regenerates the worst-case-response comparison between synchronous
alarm releases and staggered schedule-table releases under a
non-harmonic interferer.
"""

from benchutil import run_once

from repro.analysis import format_table
from repro.experiments import run_jitter_ablation


def test_bench_jitter_ablation(benchmark):
    rows = run_once(benchmark, run_jitter_ablation)
    by_key = {(r["task"], r["release_scheme"]): r for r in rows}
    schemes = sorted({r["release_scheme"] for r in rows})
    alarm_scheme = next(s for s in schemes if "alarm" in s)
    table_scheme = next(s for s in schemes if "table" in s)
    assert (
        by_key[("Gamma", table_scheme)]["worst_response_us"]
        < by_key[("Gamma", alarm_scheme)]["worst_response_us"]
    )
    print()
    print(format_table(rows))
