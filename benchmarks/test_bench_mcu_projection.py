"""E2b — watchdog cost projected onto the outlook's target MCU (S12XF).

The paper's outlook evaluates "functionalities and performance ... on an
evaluation microcontroller S12XF from Freescale"; this bench projects
the measured primitive-operation mix onto S12X-class and Cortex-M-class
cycle budgets.
"""

from repro.analysis import S12XF, format_table, project_cpu_load, projection_rows


def test_bench_mcu_projection(benchmark):
    rows = benchmark(projection_rows)
    assert all(r["cpu_percent"] < 1.0 for r in rows)
    print()
    print(format_table(rows))


def test_bench_s12xf_headroom(benchmark):
    """Sweep monitored-runnable count: where does the S12XF saturate?"""

    def sweep():
        out = []
        for runnables in (9, 30, 100, 300):
            load = project_cpu_load(
                S12XF,
                monitored_runnables=runnables,
                heartbeats_per_second=runnables * 100.0,
                check_period_s=0.01,
            )
            out.append({"runnables": runnables,
                        "cpu_percent": round(100 * load["cpu_fraction"], 2)})
        return out

    rows = benchmark(sweep)
    assert rows[0]["cpu_percent"] < 1.0
    assert rows[-1]["cpu_percent"] > rows[0]["cpu_percent"]
    print()
    print(format_table(rows))
