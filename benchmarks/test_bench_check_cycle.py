"""Hot-path microbenchmark: HBM check cycle, full scan vs expiry wheel.

The watchdog check task runs once per period on the supervised target,
so its per-cycle cost is the service's core overhead number.  The scan
strategy visits every monitored runnable every cycle; the expiry wheel
visits only the slots whose aliveness/arrival deadline falls due this
cycle.  At production scale (thousands of supervised runnables, ~1 % of
deadlines due per cycle) the wheel must therefore be at least 5× faster
per cycle, and its cost must be independent of the *undue* population.
"""

import time

from repro.core.heartbeat import HeartbeatMonitoringUnit
from repro.experiments.overhead import _staggered_unit

#: Monitoring period in check cycles → with phase-staggered deadlines,
#: 1/PERIOD of the runnables fall due on every cycle (1 %).
PERIOD = 100
CYCLES = 300


def _per_cycle_seconds(unit: HeartbeatMonitoringUnit, cycles: int = CYCLES) -> float:
    start_cycle = unit.cycle_count
    begin = time.perf_counter()
    for c in range(cycles):
        unit.cycle(time=start_cycle + c)
    return (time.perf_counter() - begin) / cycles


def test_bench_check_cycle_scan_1000(benchmark):
    """Reference: full scan over 1000 runnables, 1 % due per cycle."""
    unit = _staggered_unit(1000, PERIOD, "scan")
    benchmark(unit.cycle, time=unit.cycle_count)


def test_bench_check_cycle_wheel_1000(benchmark):
    """Expiry wheel over the same 1000-runnable configuration."""
    unit = _staggered_unit(1000, PERIOD, "wheel")
    benchmark(unit.cycle, time=unit.cycle_count)


def test_bench_wheel_speedup_at_scale(benchmark):
    """Acceptance: ≥5× per-cycle speedup at 1000 runnables, 1 % due."""
    scan = _staggered_unit(1000, PERIOD, "scan")
    wheel = _staggered_unit(1000, PERIOD, "wheel")
    scan_cost = _per_cycle_seconds(scan)
    wheel_cost = benchmark.pedantic(
        _per_cycle_seconds, args=(wheel,), rounds=1, iterations=1
    )
    speedup = scan_cost / wheel_cost
    print(f"\nper-cycle: scan {scan_cost * 1e6:.1f} us, "
          f"wheel {wheel_cost * 1e6:.1f} us, speedup {speedup:.1f}x")
    assert speedup >= 5.0, (
        f"wheel only {speedup:.1f}x faster than scan "
        f"(scan {scan_cost * 1e6:.1f} us, wheel {wheel_cost * 1e6:.1f} us)"
    )


def test_bench_wheel_cost_independent_of_undue_population(benchmark):
    """The wheel's per-cycle *work* tracks due checks, not the number of
    monitored runnables: growing the undue population 16× must not grow
    the visits per due check at all (deterministic operation count), and
    the wall-clock per due check must stay within noise."""
    small = _staggered_unit(250, PERIOD, "wheel")
    large = _staggered_unit(4000, PERIOD, "wheel")

    def visits_per_cycle(unit):
        before = unit.slots_visited
        start_cycle = unit.cycle_count
        for c in range(CYCLES):
            unit.cycle(time=start_cycle + c)
        return (unit.slots_visited - before) / CYCLES

    small_visits = visits_per_cycle(small)
    large_visits = benchmark.pedantic(
        visits_per_cycle, args=(large,), rounds=1, iterations=1
    )
    # Work scales with due checks only: n/PERIOD per cycle each.
    assert small_visits == 250 / PERIOD
    assert large_visits == 4000 / PERIOD
    # Per-due-check cost is flat: 16x the runnables, 16x the due checks,
    # so the per-cycle time ratio stays near 16 (not 16 * population).
    scan_large = _staggered_unit(4000, PERIOD, "scan")
    assert visits_per_cycle(scan_large) == 4000  # the contrast
