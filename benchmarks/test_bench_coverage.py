"""E1 — fault detection coverage: Software Watchdog vs baselines.

Regenerates the coverage × latency matrix over the full fault catalogue
for all four monitors.  Expected shape: the Software Watchdog covers
every class; the ECU hardware watchdog and the task-granular monitors
cover only the classes visible at their granularity.
"""

from benchutil import run_once

from repro.analysis import coverage_matrix, coverage_report
from repro.experiments import run_coverage_campaign
from repro.kernel import seconds


def test_bench_coverage_campaign(benchmark):
    result = run_once(benchmark, run_coverage_campaign, observation=seconds(1))
    matrix = coverage_matrix(result)
    for fault_class, per_detector in matrix.items():
        assert per_detector["SoftwareWatchdog"] == 1.0, fault_class
    assert matrix["BlockedRunnableFault"]["HardwareWatchdog"] == 0.0
    assert matrix["_RunawayFault"]["HardwareWatchdog"] == 1.0
    print()
    print(coverage_report(result))
