"""F2 (Figure 2) — the Software Watchdog's functional architecture.

Benchmarks the two hot paths of the service as deployed on an ECU:

* ``heartbeat_indication`` — executed by glue code on *every* runnable
  completion (must be cheap: it is the paper's overhead argument),
* ``check_cycle`` — executed once per watchdog period over the whole
  hypothesis.
"""

from repro.core import (
    FaultHypothesis,
    RunnableHypothesis,
    SoftwareWatchdog,
)


def build_watchdog(n_runnables=20):
    hyp = FaultHypothesis()
    names = [f"r{i}" for i in range(n_runnables)]
    for name in names:
        hyp.add_runnable(
            RunnableHypothesis(name, task="T", aliveness_period=2,
                               arrival_period=2, max_heartbeats=3)
        )
    hyp.allow_sequence(names)
    return SoftwareWatchdog(hyp), names


def test_bench_heartbeat_indication(benchmark):
    wd, names = build_watchdog()
    state = {"i": 0, "t": 0}

    def one_heartbeat():
        i = state["i"]
        wd.heartbeat_indication(names[i], state["t"], task="T")
        state["i"] = (i + 1) % len(names)
        if state["i"] == 0:
            wd.notify_task_start("T")
        state["t"] += 1

    benchmark(one_heartbeat)
    assert wd.detected_per_runnable.get(names[1], {}) == {}


def test_bench_check_cycle_20_runnables(benchmark):
    wd, names = build_watchdog(20)
    state = {"t": 0}

    def one_cycle():
        wd.notify_task_start("T")
        for name in names:
            wd.heartbeat_indication(name, state["t"], task="T")
        wd.check_cycle(state["t"])
        state["t"] += 1

    benchmark(one_cycle)
    assert wd.detection_count() == 0


def test_bench_check_cycle_200_runnables(benchmark):
    wd, names = build_watchdog(200)
    state = {"t": 0}

    def one_cycle():
        wd.check_cycle(state["t"])
        state["t"] += 1

    benchmark(one_cycle)


def test_bench_end_to_end_error_path(benchmark):
    """Heartbeat → PFC violation → TSI record → listener fan-out."""
    wd, names = build_watchdog()
    hits = []
    wd.add_fault_listener(hits.append)
    state = {"t": 0}

    def illegal_heartbeat():
        wd.notify_task_start("T")
        wd.heartbeat_indication(names[5], state["t"], task="T")  # bad entry
        state["t"] += 1

    benchmark(illegal_heartbeat)
    assert hits
