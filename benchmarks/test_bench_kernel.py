"""Simulator performance: the substrate's own throughput.

Not a paper figure — these benchmarks size the simulation substrate
itself (events per second, simulated-time throughput vs task count), so
users can budget campaign sizes.
"""

from repro.kernel import (
    AlarmTable,
    EventQueue,
    Kernel,
    Runnable,
    Task,
    ms,
    runnable_sequence_body,
    seconds,
)


def test_bench_event_queue_schedule_pop(benchmark):
    queue = EventQueue()
    state = {"t": 0}

    def schedule_and_pop():
        state["t"] += 10
        queue.schedule(state["t"], lambda: None)
        queue.pop_next(state["t"])

    benchmark(schedule_and_pop)


def test_bench_kernel_simulated_second_10_tasks(benchmark):
    """Wall-clock cost of one simulated second with ten periodic tasks."""

    def run_one_second():
        kernel = Kernel(trace_capacity=1000)
        alarms = AlarmTable(kernel)
        for i in range(10):
            runnable = Runnable(f"r{i}", kernel, wcet=ms(0.5))
            kernel.add_task(Task(f"T{i}", i, runnable_sequence_body([runnable])))
            alarms.alarm_activate_task(f"A{i}", f"T{i}").set_rel(
                ms(10 + i), ms(10 + i)
            )
        kernel.run_until(seconds(1))
        return kernel

    kernel = benchmark.pedantic(run_one_second, rounds=3, iterations=1)
    assert kernel.clock.now == seconds(1)


def test_bench_context_switch_rate(benchmark):
    """Preemption-heavy workload: alternating high/low priority tasks."""

    def run_switchy():
        kernel = Kernel(trace_capacity=1000)
        alarms = AlarmTable(kernel)
        low = Runnable("low", kernel, wcet=ms(9))
        kernel.add_task(Task("Low", 1, runnable_sequence_body([low])))
        hi = Runnable("hi", kernel, wcet=ms(1))
        kernel.add_task(Task("Hi", 9, runnable_sequence_body([hi])))
        alarms.alarm_activate_task("L", "Low").set_rel(ms(10), ms(10))
        alarms.alarm_activate_task("H", "Hi").set_rel(ms(3), ms(3))
        kernel.run_until(seconds(1))
        return kernel

    kernel = benchmark.pedantic(run_switchy, rounds=3, iterations=1)
    assert kernel.tasks["Low"].preemption_count > 100
