"""CAN bus simulation with identifier-based arbitration.

The model follows CAN 2.0A semantics at message granularity:

* the bus is a broadcast medium; at every bus-idle instant the pending
  frame with the *lowest identifier* wins arbitration (bitwise-dominant
  arbitration collapses to a priority queue at this abstraction level),
* frame transmission occupies the bus for ``bits / bitrate``; the frame
  size model includes the standard overhead (SOF, arbitration, control,
  CRC, ACK, EOF, interframe space) plus worst-case bit stuffing,
* receivers with matching acceptance filters get the message at the end
  of transmission,
* an optional fault model corrupts frames with a configurable
  probability; corrupted frames are automatically retransmitted (CAN's
  error signalling) and the transmit error counter grows; controllers
  go *bus-off* past the 255 threshold, exactly the failure mode an
  ECU-level watchdog traditionally guards against.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from ..kernel.scheduler import Kernel
from ..kernel.tracing import TraceKind
from .frames import FrameSpec, Message

Receiver = Callable[[Message], None]

#: Fixed protocol overhead of a standard (11-bit id) CAN data frame, bits.
_CAN_FRAME_OVERHEAD_BITS = 47
#: CAN error counter bus-off threshold.
_BUS_OFF_THRESHOLD = 255
#: Transmit-error-counter increment per detected transmit error.
_TEC_INCREMENT = 8
#: Transmit-error-counter decrement per successful transmission.
_TEC_DECREMENT = 1


def can_frame_bits(length_bytes: int, *, worst_case_stuffing: bool = False) -> int:
    """Wire size of a standard CAN data frame in bits."""
    data_bits = length_bytes * 8
    bits = _CAN_FRAME_OVERHEAD_BITS + data_bits
    if worst_case_stuffing:
        # One stuff bit per 4 bits of the stuffed region (34 + data bits).
        bits += (34 + data_bits) // 4
    return bits


class CanController:
    """One node's attachment to a CAN bus."""

    def __init__(self, name: str, bus: "CanBus") -> None:
        self.name = name
        self.bus = bus
        #: Acceptance filter: frame ids this controller receives; empty
        #: set means receive-all (promiscuous).
        self.acceptance: set = set()
        self._receivers: List[Receiver] = []
        self.tx_error_counter = 0
        self.rx_count = 0
        self.tx_count = 0
        self.bus_off = False

    # ------------------------------------------------------------------
    def accept(self, *frame_ids: int) -> None:
        """Add frame ids to the acceptance filter."""
        self.acceptance.update(frame_ids)

    def on_receive(self, receiver: Receiver) -> None:
        """Register a receive callback (runs in kernel/ISR context)."""
        self._receivers.append(receiver)

    def send(self, spec: FrameSpec, values: Dict[str, float]) -> Optional[Message]:
        """Pack and queue a frame for transmission.

        Returns the queued message, or ``None`` when the controller is
        bus-off (it silently drops, as real hardware does until reset).
        """
        if self.bus_off:
            return None
        message = Message(
            spec=spec,
            payload=spec.pack(values),
            timestamp=self.bus.kernel.clock.now,
            source=self.name,
        )
        self.bus.queue_transmission(self, message)
        return message

    def recover_bus_off(self) -> None:
        """Reset the controller after bus-off (driver-level recovery)."""
        self.bus_off = False
        self.tx_error_counter = 0

    # ------------------------------------------------------------------
    def deliver(self, message: Message) -> None:
        if self.acceptance and message.frame_id not in self.acceptance:
            return
        if message.source == self.name:
            return
        self.rx_count += 1
        for receiver in self._receivers:
            receiver(message)

    def _transmit_succeeded(self) -> None:
        self.tx_count += 1
        self.tx_error_counter = max(0, self.tx_error_counter - _TEC_DECREMENT)

    def _transmit_failed(self) -> None:
        self.tx_error_counter += _TEC_INCREMENT
        if self.tx_error_counter > _BUS_OFF_THRESHOLD:
            self.bus_off = True


class CanBus:
    """A broadcast CAN segment shared by several controllers."""

    def __init__(
        self,
        name: str,
        kernel: Kernel,
        *,
        bitrate_bps: int = 500_000,
        corruption_probability: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if bitrate_bps <= 0:
            raise ValueError("bitrate must be > 0")
        if not 0.0 <= corruption_probability < 1.0:
            raise ValueError("corruption_probability must be in [0, 1)")
        self.name = name
        self.kernel = kernel
        self.bitrate_bps = bitrate_bps
        self.corruption_probability = corruption_probability
        self.rng = rng or random.Random(0)
        self.controllers: List[CanController] = []
        self._pending: List[tuple] = []  # (frame_id, seq, controller, message)
        self._seq = 0
        self._busy = False
        self.delivered_count = 0
        self.corrupted_count = 0
        self.max_pending_seen = 0

    # ------------------------------------------------------------------
    def attach(self, name: str) -> CanController:
        """Attach a new controller to the bus."""
        controller = CanController(name, self)
        self.controllers.append(controller)
        return controller

    def transmission_ticks(self, message: Message) -> int:
        """Bus occupancy of one frame in simulated ticks (µs)."""
        bits = can_frame_bits(message.spec.length_bytes)
        return max(1, (bits * 1_000_000) // self.bitrate_bps)

    # ------------------------------------------------------------------
    def queue_transmission(self, controller: CanController, message: Message) -> None:
        """Enter a frame into arbitration."""
        self._seq += 1
        self._pending.append((message.frame_id, self._seq, controller, message))
        self.max_pending_seen = max(self.max_pending_seen, len(self._pending))
        if not self._busy:
            self._start_next()

    def _start_next(self) -> None:
        if not self._pending:
            self._busy = False
            return
        # Arbitration: lowest identifier wins; FIFO within an id.
        self._pending.sort(key=lambda entry: (entry[0], entry[1]))
        frame_id, _seq, controller, message = self._pending.pop(0)
        self._busy = True
        duration = self.transmission_ticks(message)
        corrupted = (
            self.corruption_probability > 0.0
            and self.rng.random() < self.corruption_probability
        )
        self.kernel.queue.schedule(
            self.kernel.clock.now + duration,
            lambda: self._complete(controller, message, corrupted),
            label=f"can:{self.name}:{frame_id:#x}",
            persistent=True,
        )

    def _complete(
        self, controller: CanController, message: Message, corrupted: bool
    ) -> None:
        if corrupted:
            self.corrupted_count += 1
            controller._transmit_failed()
            self.kernel.trace.record(
                self.kernel.clock.now,
                TraceKind.CUSTOM,
                f"can:{self.name}",
                event="frame_error",
                frame=message.spec.name,
            )
            if not controller.bus_off:
                # Automatic retransmission re-enters arbitration.
                self._seq += 1
                self._pending.append(
                    (message.frame_id, self._seq, controller, message)
                )
        else:
            controller._transmit_succeeded()
            self.delivered_count += 1
            for receiver in self.controllers:
                receiver.deliver(message)
        self._start_next()

    # ------------------------------------------------------------------
    def utilization_estimate(self, messages_per_second: Dict[int, float], length_bytes: int = 8) -> float:
        """Offered-load estimate: Σ rate·frame_time (for design checks)."""
        frame_seconds = can_frame_bits(length_bytes) / self.bitrate_bps
        return sum(rate * frame_seconds for rate in messages_per_second.values())
