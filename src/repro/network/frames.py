"""Frames and signals for the in-vehicle network simulation.

Automotive buses carry *frames* whose payloads pack *signals* — scaled
physical values occupying bit ranges.  This module implements Intel
(little-endian) bit packing with linear scaling, the common denominator
of CAN DBC-style signal databases, so the validator's nodes exchange
realistic engineering values (vehicle speed in km/h, steering angle in
degrees, ...) rather than opaque blobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class FrameError(ValueError):
    """Raised for invalid frame/signal definitions or values."""


@dataclass(frozen=True)
class SignalSpec:
    """One signal inside a frame payload.

    ``raw = (physical - offset) / scale`` occupies ``bit_length`` bits
    starting at ``start_bit`` (Intel byte order, unsigned raw values).
    """

    name: str
    start_bit: int
    bit_length: int
    scale: float = 1.0
    offset: float = 0.0
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    unit: str = ""

    def __post_init__(self) -> None:
        if self.bit_length < 1 or self.bit_length > 64:
            raise FrameError(f"signal {self.name!r}: bit_length out of range")
        if self.start_bit < 0:
            raise FrameError(f"signal {self.name!r}: negative start_bit")
        if self.scale == 0:
            raise FrameError(f"signal {self.name!r}: zero scale")

    @property
    def raw_max(self) -> int:
        return (1 << self.bit_length) - 1

    def encode(self, physical: float) -> int:
        """Physical value → clamped raw integer."""
        low = self.offset
        high = self.offset + self.raw_max * self.scale
        lo, hi = (low, high) if self.scale > 0 else (high, low)
        if self.minimum is not None:
            lo = max(lo, self.minimum)
        if self.maximum is not None:
            hi = min(hi, self.maximum)
        clamped = min(max(physical, lo), hi)
        raw = int(round((clamped - self.offset) / self.scale))
        return min(max(raw, 0), self.raw_max)

    def decode(self, raw: int) -> float:
        """Raw integer → physical value."""
        return raw * self.scale + self.offset


@dataclass
class FrameSpec:
    """A frame layout: identifier, payload size, and packed signals."""

    name: str
    frame_id: int
    length_bytes: int = 8
    signals: List[SignalSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.frame_id < 0:
            raise FrameError(f"frame {self.name!r}: negative id")
        if not 0 < self.length_bytes <= 64:
            raise FrameError(f"frame {self.name!r}: bad length {self.length_bytes}")

    # ------------------------------------------------------------------
    def add_signal(self, spec: SignalSpec) -> SignalSpec:
        """Add a signal, rejecting overlaps and overflow."""
        end = spec.start_bit + spec.bit_length
        if end > self.length_bytes * 8:
            raise FrameError(
                f"frame {self.name!r}: signal {spec.name!r} exceeds payload"
            )
        for existing in self.signals:
            if existing.name == spec.name:
                raise FrameError(f"frame {self.name!r}: duplicate signal {spec.name!r}")
            e_end = existing.start_bit + existing.bit_length
            if spec.start_bit < e_end and existing.start_bit < end:
                raise FrameError(
                    f"frame {self.name!r}: {spec.name!r} overlaps {existing.name!r}"
                )
        self.signals.append(spec)
        return spec

    def signal(self, name: str) -> SignalSpec:
        for spec in self.signals:
            if spec.name == name:
                return spec
        raise FrameError(f"frame {self.name!r}: no signal {name!r}")

    # ------------------------------------------------------------------
    def pack(self, values: Dict[str, float]) -> bytes:
        """Pack physical values into a payload; missing signals are 0."""
        word = 0
        for spec in self.signals:
            physical = values.get(spec.name, spec.offset)
            raw = spec.encode(physical)
            word |= raw << spec.start_bit
        return word.to_bytes(self.length_bytes, "little")

    def unpack(self, payload: bytes) -> Dict[str, float]:
        """Unpack a payload into physical values."""
        if len(payload) != self.length_bytes:
            raise FrameError(
                f"frame {self.name!r}: payload length {len(payload)} != "
                f"{self.length_bytes}"
            )
        word = int.from_bytes(payload, "little")
        out: Dict[str, float] = {}
        for spec in self.signals:
            raw = (word >> spec.start_bit) & spec.raw_max
            out[spec.name] = spec.decode(raw)
        return out


@dataclass(frozen=True)
class Message:
    """One frame instance in flight on a bus."""

    spec: FrameSpec
    payload: bytes
    timestamp: int
    source: str = ""

    @property
    def frame_id(self) -> int:
        return self.spec.frame_id

    def values(self) -> Dict[str, float]:
        """Decoded signal values."""
        return self.spec.unpack(self.payload)

    def value(self, signal: str) -> float:
        return self.values()[signal]


class FrameCatalog:
    """The signal database of one network (DBC-file equivalent)."""

    def __init__(self) -> None:
        self._by_name: Dict[str, FrameSpec] = {}
        self._by_id: Dict[int, FrameSpec] = {}

    def add(self, spec: FrameSpec) -> FrameSpec:
        if spec.name in self._by_name:
            raise FrameError(f"duplicate frame name {spec.name!r}")
        if spec.frame_id in self._by_id:
            raise FrameError(f"duplicate frame id {spec.frame_id:#x}")
        self._by_name[spec.name] = spec
        self._by_id[spec.frame_id] = spec
        return spec

    def define(
        self,
        name: str,
        frame_id: int,
        signals: List[Tuple[str, int, int, float, float]],
        length_bytes: int = 8,
    ) -> FrameSpec:
        """Shorthand: define a frame from (name, start, length, scale,
        offset) tuples."""
        spec = FrameSpec(name, frame_id, length_bytes)
        for sig_name, start, bits, scale, offset in signals:
            spec.add_signal(SignalSpec(sig_name, start, bits, scale, offset))
        return self.add(spec)

    def by_name(self, name: str) -> FrameSpec:
        spec = self._by_name.get(name)
        if spec is None:
            raise FrameError(f"unknown frame {name!r}")
        return spec

    def by_id(self, frame_id: int) -> FrameSpec:
        spec = self._by_id.get(frame_id)
        if spec is None:
            raise FrameError(f"unknown frame id {frame_id:#x}")
        return spec

    def frames(self) -> List[FrameSpec]:
        return list(self._by_name.values())
