"""Inter-domain gateway node.

The EASIS architecture validator includes "a gateway node, which
connects different vehicle domains of TCP/IP, CAN and FlexRay" (§4.1),
and the platform's L3 hosts "ISS gateway services [providing] secured
inter-domain communication services".  This module provides both:

* :class:`TcpLink` — a simple reliable ordered message channel standing
  in for the TCP/IP telematics domain (fixed latency, in-order
  delivery),
* :class:`Gateway` — a routing table mapping (source port, frame id) to
  destination ports, with optional per-route signal translation and an
  authorization whitelist (the "secured" aspect: only whitelisted frame
  ids cross domain borders; everything else is dropped and counted).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..kernel.scheduler import Kernel
from ..kernel.tracing import TraceKind
from .can import CanController
from .flexray import FlexRayController
from .frames import FrameSpec, Message

Receiver = Callable[[Message], None]


class TcpLink:
    """Reliable ordered point-to-point channel (telematics stand-in)."""

    def __init__(self, name: str, kernel: Kernel, *, latency: int = 1000) -> None:
        if latency < 0:
            raise ValueError("latency must be >= 0")
        self.name = name
        self.kernel = kernel
        self.latency = latency
        self._receivers: List[Receiver] = []
        self.sent_count = 0
        self.delivered_count = 0

    def on_receive(self, receiver: Receiver) -> None:
        self._receivers.append(receiver)

    def send(self, spec: FrameSpec, values: Dict[str, float], source: str = "") -> Message:
        """Send a message; it arrives after the configured latency."""
        message = Message(
            spec=spec,
            payload=spec.pack(values),
            timestamp=self.kernel.clock.now,
            source=source or self.name,
        )
        self.sent_count += 1
        self.kernel.queue.schedule(
            self.kernel.clock.now + self.latency,
            lambda: self._deliver(message),
            label=f"tcp:{self.name}",
            persistent=True,
        )
        return message

    def _deliver(self, message: Message) -> None:
        self.delivered_count += 1
        for receiver in self._receivers:
            receiver(message)


@dataclass
class GatewayPort:
    """One attachment of the gateway to a domain network."""

    name: str
    send: Callable[[Message], None]
    #: Called by the underlying network when a message arrives here.
    description: str = ""


@dataclass
class Route:
    """One routing rule."""

    source_port: str
    frame_id: int
    destination_port: str
    #: Optional re-mapping of the frame onto a different spec at the
    #: destination (signal translation across domains).
    translate: Optional[Callable[[Message], Tuple[FrameSpec, Dict[str, float]]]] = None


class Gateway:
    """Routes whitelisted frames between domain networks."""

    def __init__(self, name: str, kernel: Kernel, *, forwarding_latency: int = 100) -> None:
        self.name = name
        self.kernel = kernel
        self.forwarding_latency = forwarding_latency
        self.ports: Dict[str, GatewayPort] = {}
        self.routes: Dict[Tuple[str, int], List[Route]] = {}
        self.forwarded_count = 0
        self.dropped_count = 0

    # ------------------------------------------------------------------
    # port attachment helpers
    # ------------------------------------------------------------------
    def add_can_port(self, name: str, controller: CanController) -> GatewayPort:
        """Attach a CAN controller as a gateway port."""
        port = GatewayPort(
            name=name,
            send=lambda msg: controller.send(msg.spec, msg.values()),
            description=f"CAN via {controller.name}",
        )
        controller.on_receive(lambda msg: self.on_message(name, msg))
        self.ports[name] = port
        return port

    def add_flexray_port(
        self, name: str, controller: FlexRayController, *, tx_slot: Optional[int] = None
    ) -> GatewayPort:
        """Attach a FlexRay controller; outbound frames stage into
        ``tx_slot`` (required if the gateway transmits on this port)."""

        def send(msg: Message) -> None:
            if tx_slot is None:
                raise ValueError(f"port {name!r} has no transmit slot")
            controller.stage(tx_slot, msg.spec, msg.values())

        port = GatewayPort(name=name, send=send, description=f"FlexRay via {controller.name}")
        controller.on_receive(lambda msg: self.on_message(name, msg))
        self.ports[name] = port
        return port

    def add_tcp_port(self, name: str, link: TcpLink) -> GatewayPort:
        """Attach a TCP link as a gateway port."""
        port = GatewayPort(
            name=name,
            send=lambda msg: link.send(msg.spec, msg.values(), source=self.name),
            description=f"TCP via {link.name}",
        )
        link.on_receive(lambda msg: self.on_message(name, msg))
        self.ports[name] = port
        return port

    # ------------------------------------------------------------------
    def add_route(self, route: Route) -> None:
        """Whitelist and route a frame id across a domain border."""
        if route.source_port not in self.ports:
            raise ValueError(f"unknown source port {route.source_port!r}")
        if route.destination_port not in self.ports:
            raise ValueError(f"unknown destination port {route.destination_port!r}")
        key = (route.source_port, route.frame_id)
        self.routes.setdefault(key, []).append(route)

    def on_message(self, port_name: str, message: Message) -> None:
        """Entry point for messages arriving at a port."""
        routes = self.routes.get((port_name, message.frame_id))
        if not routes:
            self.dropped_count += 1
            return
        for route in routes:
            self.kernel.queue.schedule(
                self.kernel.clock.now + self.forwarding_latency,
                lambda r=route, m=message: self._forward(r, m),
                label=f"gw:{self.name}",
                persistent=True,
            )

    def _forward(self, route: Route, message: Message) -> None:
        destination = self.ports[route.destination_port]
        if route.translate is not None:
            spec, values = route.translate(message)
            message = Message(
                spec=spec,
                payload=spec.pack(values),
                timestamp=self.kernel.clock.now,
                source=self.name,
            )
        self.forwarded_count += 1
        self.kernel.trace.record(
            self.kernel.clock.now,
            TraceKind.CUSTOM,
            f"gw:{self.name}",
            event="forward",
            frame=message.spec.name,
            to=route.destination_port,
        )
        destination.send(message)
