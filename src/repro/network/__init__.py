"""In-vehicle network simulation: CAN, FlexRay, TCP link, gateway.

These are the communication substrates of the EASIS architecture
validator (§4.1): sensor/actuator traffic rides CAN and FlexRay, the
telematics domain is a TCP link, and the gateway node routes
whitelisted frames across domain borders.
"""

from .can import CanBus, CanController, can_frame_bits
from .flexray import (
    FlexRayBus,
    FlexRayConfigError,
    FlexRayController,
    FlexRaySchedule,
)
from .frames import (
    FrameCatalog,
    FrameError,
    FrameSpec,
    Message,
    SignalSpec,
)
from .gateway import Gateway, GatewayPort, Route, TcpLink

__all__ = [
    "CanBus",
    "CanController",
    "FlexRayBus",
    "FlexRayConfigError",
    "FlexRayController",
    "FlexRaySchedule",
    "FrameCatalog",
    "FrameError",
    "FrameSpec",
    "Gateway",
    "GatewayPort",
    "Message",
    "Route",
    "SignalSpec",
    "TcpLink",
    "can_frame_bits",
]
