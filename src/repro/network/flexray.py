"""FlexRay bus simulation: TDMA static segment plus dynamic segment.

FlexRay divides time into fixed-length *communication cycles*; each
cycle begins with a **static segment** of equally sized slots assigned
at design time to single senders (contention-free, the property that
makes FlexRay attractive for x-by-wire), followed by a **dynamic
segment** of minislots in which lower slot numbers win access, bounded
by the segment length.

The simulation schedules slot boundaries on the kernel's event queue.
Senders publish into transmit buffers; at a sender's static slot the
buffered frame (if any) is broadcast to every receiver.  Dynamic frames
queue per slot id and drain in priority order while the dynamic segment
has minislots left.  A cycle counter is exposed — the validator uses it
for the FlexRay schedule of the steer-by-wire path (§4.1).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..kernel.scheduler import Kernel
from ..kernel.tracing import TraceKind
from .frames import FrameSpec, Message

Receiver = Callable[[Message], None]


class FlexRayConfigError(ValueError):
    """Raised for invalid schedule configuration."""


class FlexRaySchedule:
    """Static design-time configuration of one FlexRay cluster."""

    def __init__(
        self,
        *,
        cycle_length: int,
        static_slots: int,
        static_slot_length: int,
        dynamic_minislots: int = 0,
        minislot_length: int = 0,
    ) -> None:
        if cycle_length <= 0 or static_slots <= 0 or static_slot_length <= 0:
            raise FlexRayConfigError("cycle/slot parameters must be positive")
        static_segment = static_slots * static_slot_length
        dynamic_segment = dynamic_minislots * minislot_length
        if static_segment + dynamic_segment > cycle_length:
            raise FlexRayConfigError(
                "static + dynamic segments exceed the cycle length"
            )
        self.cycle_length = cycle_length
        self.static_slots = static_slots
        self.static_slot_length = static_slot_length
        self.dynamic_minislots = dynamic_minislots
        self.minislot_length = minislot_length
        #: static slot number (1-based) → sender node name.
        self.slot_owner: Dict[int, str] = {}

    def assign_slot(self, slot: int, owner: str) -> None:
        """Assign a static slot to a sending node."""
        if not 1 <= slot <= self.static_slots:
            raise FlexRayConfigError(f"slot {slot} out of range")
        if slot in self.slot_owner:
            raise FlexRayConfigError(f"slot {slot} already assigned")
        self.slot_owner[slot] = owner

    def slot_start_offset(self, slot: int) -> int:
        """Offset of a static slot's start within the cycle."""
        return (slot - 1) * self.static_slot_length

    def dynamic_segment_offset(self) -> int:
        """Offset of the dynamic segment within the cycle."""
        return self.static_slots * self.static_slot_length


class FlexRayController:
    """One node's attachment to a FlexRay cluster."""

    def __init__(self, name: str, bus: "FlexRayBus") -> None:
        self.name = name
        self.bus = bus
        self._receivers: List[Receiver] = []
        #: static slot → frame staged for the next occurrence of the slot.
        self._tx_buffers: Dict[int, Message] = {}
        self.rx_count = 0
        self.tx_count = 0
        self.missed_updates = 0

    def on_receive(self, receiver: Receiver) -> None:
        self._receivers.append(receiver)

    def stage(self, slot: int, spec: FrameSpec, values: Dict[str, float]) -> Message:
        """Stage a frame into the transmit buffer of a static slot.

        Overwrites any previous staging (latest-value semantics, like a
        real communication buffer); the frame goes out at the slot's next
        occurrence.
        """
        owner = self.bus.schedule.slot_owner.get(slot)
        if owner != self.name:
            raise FlexRayConfigError(
                f"{self.name!r} does not own static slot {slot}"
            )
        if slot in self._tx_buffers:
            self.missed_updates += 1
        message = Message(
            spec=spec,
            payload=spec.pack(values),
            timestamp=self.bus.kernel.clock.now,
            source=self.name,
        )
        self._tx_buffers[slot] = message
        return message

    def send_dynamic(self, slot: int, spec: FrameSpec, values: Dict[str, float]) -> Message:
        """Queue a frame for the dynamic segment under the given slot id."""
        message = Message(
            spec=spec,
            payload=spec.pack(values),
            timestamp=self.bus.kernel.clock.now,
            source=self.name,
        )
        self.bus._dynamic_queue.setdefault(slot, []).append((self, message))
        return message

    # ------------------------------------------------------------------
    def _take(self, slot: int) -> Optional[Message]:
        return self._tx_buffers.pop(slot, None)

    def _deliver(self, message: Message) -> None:
        if message.source == self.name:
            return
        self.rx_count += 1
        for receiver in self._receivers:
            receiver(message)


class FlexRayBus:
    """A FlexRay cluster driven by the kernel's event queue."""

    def __init__(self, name: str, kernel: Kernel, schedule: FlexRaySchedule) -> None:
        self.name = name
        self.kernel = kernel
        self.schedule = schedule
        self.controllers: Dict[str, FlexRayController] = {}
        self.cycle_count = 0
        self.static_frames_sent = 0
        self.dynamic_frames_sent = 0
        self._dynamic_queue: Dict[int, List[tuple]] = {}
        self._started = False

    # ------------------------------------------------------------------
    def attach(self, name: str) -> FlexRayController:
        if name in self.controllers:
            raise FlexRayConfigError(f"duplicate controller {name!r}")
        controller = FlexRayController(name, self)
        self.controllers[name] = controller
        return controller

    def start(self, offset: int = 0) -> None:
        """Begin the TDMA schedule ``offset`` ticks from now."""
        if self._started:
            return
        self._started = True
        self.kernel.queue.schedule(
            self.kernel.clock.now + offset, self._run_cycle, label=f"fr:{self.name}", persistent=True
        )

    # ------------------------------------------------------------------
    def _run_cycle(self) -> None:
        cycle_start = self.kernel.clock.now
        self.cycle_count += 1
        for slot in range(1, self.schedule.static_slots + 1):
            owner = self.schedule.slot_owner.get(slot)
            if owner is None:
                continue
            self.kernel.queue.schedule(
                cycle_start + self.schedule.slot_start_offset(slot)
                + self.schedule.static_slot_length,
                self._make_static_sender(slot, owner),
                label=f"fr:{self.name}:slot{slot}",
                persistent=True,
            )
        if self.schedule.dynamic_minislots > 0:
            self.kernel.queue.schedule(
                cycle_start + self.schedule.dynamic_segment_offset(),
                self._run_dynamic_segment,
                label=f"fr:{self.name}:dyn",
                persistent=True,
            )
        self.kernel.queue.schedule(
            cycle_start + self.schedule.cycle_length,
            self._run_cycle,
            label=f"fr:{self.name}",
        )

    def _make_static_sender(self, slot: int, owner: str) -> Callable[[], None]:
        def fire() -> None:
            controller = self.controllers.get(owner)
            if controller is None:
                return
            message = controller._take(slot)
            if message is None:
                return  # empty slot: null frame on the wire
            controller.tx_count += 1
            self.static_frames_sent += 1
            self._broadcast(message, f"slot{slot}")

        return fire

    def _run_dynamic_segment(self) -> None:
        """Drain dynamic frames in slot-id priority order while minislots
        remain (simplified minislot accounting: one frame consumes the
        minislots covering its wire time, minimum one)."""
        remaining = self.schedule.dynamic_minislots
        for slot in sorted(self._dynamic_queue):
            queue = self._dynamic_queue[slot]
            while queue and remaining > 0:
                controller, message = queue.pop(0)
                cost = max(
                    1,
                    (message.spec.length_bytes * 8)
                    // max(1, self.schedule.minislot_length),
                )
                if cost > remaining:
                    remaining = 0
                    queue.insert(0, (controller, message))
                    break
                remaining -= cost
                controller.tx_count += 1
                self.dynamic_frames_sent += 1
                self._broadcast(message, f"dyn{slot}")
            if remaining == 0:
                break

    def _broadcast(self, message: Message, where: str) -> None:
        self.kernel.trace.record(
            self.kernel.clock.now,
            TraceKind.CUSTOM,
            f"fr:{self.name}",
            event="frame",
            frame=message.spec.name,
            where=where,
        )
        for controller in self.controllers.values():
            controller._deliver(message)
