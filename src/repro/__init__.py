"""repro — Software Watchdog dependability service, DSN 2007 reproduction.

A full Python reproduction of "Application of Software Watchdog as a
Dependability Software Service for Automotive Safety Relevant Systems"
(Chen, Feng, Hiller, Lauer — DSN 2007), including every substrate the
paper relies on:

* :mod:`repro.kernel` — discrete-event OSEK-conforming kernel,
* :mod:`repro.core` — the Software Watchdog (heartbeat monitoring,
  program flow checking, task state indication),
* :mod:`repro.platform` — the EASIS layered platform, Fault Management
  Framework and ECU model,
* :mod:`repro.network` — CAN / FlexRay / TCP-link / gateway,
* :mod:`repro.apps` — SafeSpeed, SafeLane, steer-by-wire, vehicle and
  environment models,
* :mod:`repro.validator` — the HIL architecture validator and
  ControlDesk-style experiment tooling,
* :mod:`repro.faults` — error injection framework and campaigns,
* :mod:`repro.baselines` — hardware watchdog, deadline monitoring,
  execution-time monitoring, CFCSS,
* :mod:`repro.analysis` — metrics, overhead accounting, plots,
* :mod:`repro.telemetry` — metrics registry, structured event export.

Quickstart::

    from repro.kernel import ms, seconds
    from repro.validator import HilValidator
    from repro.faults import FaultTarget, ErrorInjector, BlockedRunnableFault

    rig = HilValidator()
    rig.run(seconds(2))
    injector = ErrorInjector(FaultTarget.from_ecu(rig.ecu))
    injector.inject_now(BlockedRunnableFault("SAFE_CC_process"))
    rig.run(seconds(2))
    print(rig.summary())
"""

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "apps",
    "baselines",
    "core",
    "faults",
    "kernel",
    "network",
    "platform",
    "telemetry",
    "validator",
]
