"""The Software Watchdog — the paper's primary contribution.

Public surface:

* :class:`FaultHypothesis` / :class:`RunnableHypothesis` — the static
  monitoring configuration (periods, heartbeat bounds, flow table,
  thresholds),
* :class:`SoftwareWatchdog` — the service facade wiring the heartbeat
  monitoring, program-flow-checking and task-state-indication units,
* :func:`install_heartbeat_glue` / :class:`WatchdogTaskBinding` — OSEK
  integration (glue code + periodic check task),
* report types (:class:`RunnableError`, :class:`TaskFaultEvent`, ...).
"""

from .config_io import (
    FindingSeverity,
    HypothesisFinding,
    analyze_hypothesis,
    hypothesis_from_dict,
    hypothesis_to_dict,
    is_deployable,
)
from .counters import CounterHistory, RunnableCounters, SlotCounterArrays
from .distributed import (
    NodeAlivenessError,
    PeerStatus,
    RemoteSupervisor,
    SupervisionPublisher,
    make_supervision_frame_spec,
)
from .flowcheck import FlowTable, ProgramFlowCheckingUnit
from .heartbeat import HeartbeatMonitoringUnit
from .hypothesis import (
    FaultHypothesis,
    HypothesisError,
    RunnableHypothesis,
    ThresholdPolicy,
)
from .integration import (
    WatchdogTaskBinding,
    attach_hardware_watchdog_kick,
    install_glue_on_all,
    install_heartbeat_glue,
)
from .reports import (
    EcuStateChange,
    ErrorType,
    MonitorState,
    RunnableError,
    SupervisionReport,
    TaskFaultEvent,
)
from .taskstate import TaskStateIndicationUnit
from .watchdog import SoftwareWatchdog

__all__ = [
    "CounterHistory",
    "EcuStateChange",
    "ErrorType",
    "FaultHypothesis",
    "FindingSeverity",
    "HypothesisFinding",
    "FlowTable",
    "HeartbeatMonitoringUnit",
    "HypothesisError",
    "MonitorState",
    "NodeAlivenessError",
    "PeerStatus",
    "RemoteSupervisor",
    "SupervisionPublisher",
    "ProgramFlowCheckingUnit",
    "RunnableCounters",
    "RunnableError",
    "RunnableHypothesis",
    "SlotCounterArrays",
    "SoftwareWatchdog",
    "SupervisionReport",
    "TaskFaultEvent",
    "TaskStateIndicationUnit",
    "ThresholdPolicy",
    "WatchdogTaskBinding",
    "analyze_hypothesis",
    "attach_hardware_watchdog_kick",
    "hypothesis_from_dict",
    "hypothesis_to_dict",
    "install_glue_on_all",
    "is_deployable",
    "install_heartbeat_glue",
    "make_supervision_frame_spec",
]
