"""Distributed supervision: watchdogs across ECU borders (outlook).

EASIS targets *Integrated Safety Systems* spanning several ECUs and
vehicle domains.  A local Software Watchdog cannot report the death of
its own ECU — when the node hangs, the reporter hangs with it.  The
paper's outlook ("mapping and application of the Software Watchdog to
meet the individual dependability requirements of different safety
systems") points at exactly this gap, which this module closes:

* :class:`SupervisionPublisher` — runs on a supervised ECU; every local
  watchdog check cycle it broadcasts a *supervision frame* on the bus:
  a node-level heartbeat carrying the derived ECU state and the error
  counts, so peers see both "I am alive" and "how healthy I am",
* :class:`RemoteSupervisor` — runs on a supervising ECU; per peer it
  keeps the same AC/CCA counter pair the local unit keeps per runnable,
  flags **node aliveness** errors when a peer's frames stop arriving,
  and mirrors the peer's self-reported state,
* :func:`make_supervision_frame_spec` — the frame layout (fits a single
  8-byte CAN frame).

The design deliberately reuses the paper's counter semantics at node
granularity: the supervision hierarchy is runnable → task → application
→ ECU (local units) → vehicle network (this module).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..network.frames import FrameSpec, Message, SignalSpec
from .reports import ErrorType, MonitorState
from .watchdog import SoftwareWatchdog

#: Default CAN identifier region for supervision frames (one id per node).
SUPERVISION_BASE_ID = 0x700

_STATE_CODE = {
    MonitorState.OK: 0,
    MonitorState.SUSPICIOUS: 1,
    MonitorState.FAULTY: 2,
}
_CODE_STATE = {v: k for k, v in _STATE_CODE.items()}


def make_supervision_frame_spec(node_index: int, node_name: str = "") -> FrameSpec:
    """The supervision frame layout for one node.

    Eight bytes: sequence counter, self-reported ECU state, saturating
    error counts per error type, and the count of faulty tasks.
    """
    spec = FrameSpec(
        name=f"Supervision_{node_name or node_index}",
        frame_id=SUPERVISION_BASE_ID + node_index,
        length_bytes=8,
    )
    spec.add_signal(SignalSpec("sequence", 0, 16))
    spec.add_signal(SignalSpec("ecu_state", 16, 2))
    spec.add_signal(SignalSpec("aliveness_errors", 18, 10))
    spec.add_signal(SignalSpec("arrival_errors", 28, 10))
    spec.add_signal(SignalSpec("flow_errors", 38, 10))
    spec.add_signal(SignalSpec("faulty_tasks", 48, 6))
    return spec


class SupervisionPublisher:
    """Broadcasts a node's watchdog state as a bus heartbeat.

    Attach :meth:`publish` to the local watchdog's check cycle (or any
    periodic context).  Publishing from the *watchdog task itself* makes
    the frame a meaningful node heartbeat: if the OS, the scheduler or
    the watchdog die, the stream stops.
    """

    def __init__(
        self,
        watchdog: SoftwareWatchdog,
        spec: FrameSpec,
        send: Callable[[FrameSpec, Dict[str, float]], object],
    ) -> None:
        self.watchdog = watchdog
        self.spec = spec
        self._send = send
        self.sequence = 0
        self.published_count = 0

    def publish(self) -> None:
        """Send one supervision frame reflecting the current state."""
        watchdog = self.watchdog
        self.sequence = (self.sequence + 1) % 0x10000
        self._send(
            self.spec,
            {
                "sequence": float(self.sequence),
                "ecu_state": float(_STATE_CODE[watchdog.ecu_state()]),
                "aliveness_errors": float(
                    min(1023, watchdog.detected[ErrorType.ALIVENESS])
                ),
                "arrival_errors": float(
                    min(1023, watchdog.detected[ErrorType.ARRIVAL_RATE])
                ),
                "flow_errors": float(
                    min(1023, watchdog.detected[ErrorType.PROGRAM_FLOW])
                ),
                "faulty_tasks": float(min(63, len(watchdog.tsi.faulty_tasks))),
            },
        )
        self.published_count += 1


@dataclass
class PeerStatus:
    """The supervisor's view of one remote node."""

    node: str
    frame_id: int
    #: node-level aliveness counters (same semantics as the runnable AC/CCA).
    ac: int = 0
    cca: int = 0
    last_sequence: Optional[int] = None
    last_seen: Optional[int] = None
    frames_received: int = 0
    sequence_gaps: int = 0
    reported_state: MonitorState = MonitorState.OK
    reported_errors: Dict[str, int] = field(default_factory=dict)
    #: node aliveness verdict derived by the supervisor.
    alive: bool = True
    node_aliveness_errors: int = 0


@dataclass(frozen=True)
class NodeAlivenessError:
    """Raised by the supervisor when a peer's heartbeat stream starves."""

    time: int
    node: str
    ac: int
    min_frames: int


class RemoteSupervisor:
    """Monitors peer ECUs' supervision-frame streams.

    ``cycle()`` follows the local HBM design: it is called periodically
    (typically from the supervising node's own watchdog task) and checks,
    per peer, that at least ``min_frames`` supervision frames arrived
    within ``check_period`` cycles; the counters then reset — including
    on error, per the paper's counter semantics.
    """

    def __init__(
        self,
        name: str = "RemoteSupervisor",
        *,
        check_period: int = 3,
        min_frames: int = 1,
    ) -> None:
        if check_period < 1 or min_frames < 0:
            raise ValueError("check_period >= 1 and min_frames >= 0 required")
        self.name = name
        self.check_period = check_period
        self.min_frames = min_frames
        self.peers: Dict[str, PeerStatus] = {}
        self._by_frame_id: Dict[int, PeerStatus] = {}
        self._listeners: List[Callable[[NodeAlivenessError], None]] = []
        self.cycle_count = 0

    # ------------------------------------------------------------------
    def watch(self, node: str, frame_id: int) -> PeerStatus:
        """Register a peer node by its supervision frame id."""
        if node in self.peers:
            raise ValueError(f"already watching {node!r}")
        status = PeerStatus(node=node, frame_id=frame_id)
        self.peers[node] = status
        self._by_frame_id[frame_id] = status
        return status

    def add_listener(self, listener: Callable[[NodeAlivenessError], None]) -> None:
        """Subscribe to node-aliveness errors (feeds the local FMF)."""
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    def on_message(self, message: Message) -> None:
        """Bus receive hook: ingest supervision frames."""
        status = self._by_frame_id.get(message.frame_id)
        if status is None:
            return
        values = message.values()
        sequence = int(values["sequence"])
        if status.last_sequence is not None:
            expected = (status.last_sequence + 1) % 0x10000
            if sequence != expected:
                status.sequence_gaps += 1
        status.last_sequence = sequence
        status.last_seen = message.timestamp
        status.frames_received += 1
        status.ac += 1
        status.reported_state = _CODE_STATE.get(
            int(values["ecu_state"]), MonitorState.FAULTY
        )
        status.reported_errors = {
            "aliveness": int(values["aliveness_errors"]),
            "arrival_rate": int(values["arrival_errors"]),
            "program_flow": int(values["flow_errors"]),
            "faulty_tasks": int(values["faulty_tasks"]),
        }

    def cycle(self, time: int) -> List[NodeAlivenessError]:
        """One supervision check cycle over all peers."""
        self.cycle_count += 1
        errors: List[NodeAlivenessError] = []
        for status in self.peers.values():
            status.cca += 1
            if status.cca >= self.check_period:
                if status.ac < self.min_frames:
                    status.alive = False
                    status.node_aliveness_errors += 1
                    errors.append(
                        NodeAlivenessError(
                            time=time,
                            node=status.node,
                            ac=status.ac,
                            min_frames=self.min_frames,
                        )
                    )
                else:
                    status.alive = True
                status.ac = 0
                status.cca = 0
        for error in errors:
            for listener in self._listeners:
                listener(error)
        return errors

    # ------------------------------------------------------------------
    def peer_state(self, node: str) -> MonitorState:
        """Combined verdict: dead peers are FAULTY regardless of their
        last self-report; live peers report for themselves."""
        status = self.peers[node]
        if not status.alive:
            return MonitorState.FAULTY
        return status.reported_state

    def network_state(self) -> MonitorState:
        """Worst state over every watched peer."""
        states = [self.peer_state(node) for node in self.peers]
        if MonitorState.FAULTY in states:
            return MonitorState.FAULTY
        if MonitorState.SUSPICIOUS in states:
            return MonitorState.SUSPICIOUS
        return MonitorState.OK
