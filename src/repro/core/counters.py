"""Watchdog counter set: AC, ARC, CCA, CCAR and AS.

The paper (§3.2.1) assigns five data resources to every monitored
runnable:

* **AC** — Aliveness Counter: heartbeats recorded in the current
  aliveness monitoring period,
* **ARC** — Arrival Rate Counter: heartbeats recorded in the current
  arrival-rate monitoring period,
* **CCA** — Cycle Counter for Aliveness: elapsed watchdog check cycles
  of the current aliveness period,
* **CCAR** — Cycle Counter for Arrival Rate: elapsed watchdog check
  cycles of the current arrival-rate period,
* **AS** — Activation Status: whether monitoring of this runnable is
  currently enabled.

"All of those counters are reset to zero, if the periods defined in the
fault hypothesis expire or an error is detected in the last cycle."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class RunnableCounters:
    """The mutable counter state for one monitored runnable."""

    ac: int = 0
    arc: int = 0
    cca: int = 0
    ccar: int = 0
    active: bool = True

    def record_heartbeat(self) -> None:
        """Count one aliveness indication in both period counters."""
        if self.active:
            self.ac += 1
            self.arc += 1

    def reset_aliveness(self) -> None:
        """Start a fresh aliveness monitoring period."""
        self.ac = 0
        self.cca = 0

    def reset_arrival(self) -> None:
        """Start a fresh arrival-rate monitoring period."""
        self.arc = 0
        self.ccar = 0

    def reset_all(self) -> None:
        """Full reset (activation-status change, watchdog restart)."""
        self.reset_aliveness()
        self.reset_arrival()

    def snapshot(self) -> Dict[str, int]:
        """Copy of the counter values (for ControlDesk-style capture)."""
        return {
            "AC": self.ac,
            "ARC": self.arc,
            "CCA": self.cca,
            "CCAR": self.ccar,
            "AS": int(self.active),
        }


class SlotCounterArrays:
    """Flat, slot-indexed counter storage (struct-of-arrays layout).

    The heartbeat monitoring unit interns runnable names to integer
    slots at configuration time and keeps the per-runnable counters in
    parallel flat lists indexed by slot.  This mirrors how the counter
    block would be laid out on the embedded target (one contiguous
    array per counter kind, for cache locality) and removes per-
    heartbeat dict lookups from the hot path — ingress touches
    ``ac[slot]`` / ``arc[slot]`` directly.

    ``cca``/``ccar`` are only maintained by the legacy ``scan`` check
    strategy; the ``wheel`` strategy derives them from its re-arm
    bookkeeping (see :mod:`repro.core.heartbeat`).
    """

    __slots__ = ("ac", "arc", "cca", "ccar", "active")

    def __init__(self) -> None:
        self.ac: List[int] = []
        self.arc: List[int] = []
        self.cca: List[int] = []
        self.ccar: List[int] = []
        self.active: List[bool] = []

    def add_slot(self, active: bool = True) -> int:
        """Append one zeroed slot; returns its index."""
        slot = len(self.ac)
        self.ac.append(0)
        self.arc.append(0)
        self.cca.append(0)
        self.ccar.append(0)
        self.active.append(active)
        return slot

    def __len__(self) -> int:
        return len(self.ac)

    def reset_slot(self, slot: int) -> None:
        """Zero every period counter of one slot (AS change, restart)."""
        self.ac[slot] = 0
        self.arc[slot] = 0
        self.cca[slot] = 0
        self.ccar[slot] = 0

    def reset_all(self) -> None:
        """Zero every period counter of every slot (watchdog restart)."""
        for slot in range(len(self.ac)):
            self.reset_slot(slot)

    def dump_state(self) -> Dict[str, List[int]]:
        """Full JSON-compatible copy of every slot's counters and AS.

        The inverse of :meth:`load_state`; together they make the counter
        block persistable, so a restarted supervision daemon resumes the
        exact monitoring windows a killed one was in.
        """
        return {
            "ac": list(self.ac),
            "arc": list(self.arc),
            "cca": list(self.cca),
            "ccar": list(self.ccar),
            "active": [bool(a) for a in self.active],
        }

    def load_state(self, state: Dict[str, List[int]]) -> None:
        """Overwrite every slot from a :meth:`dump_state` capture.

        The slot layout (count and order) must match — restoring is only
        defined onto a counter block built from the same hypothesis.
        """
        for key in ("ac", "arc", "cca", "ccar", "active"):
            if len(state[key]) != len(self.ac):
                raise ValueError(
                    f"counter state has {len(state[key])} {key!r} slots, "
                    f"this block has {len(self.ac)}"
                )
        self.ac[:] = [int(v) for v in state["ac"]]
        self.arc[:] = [int(v) for v in state["arc"]]
        self.cca[:] = [int(v) for v in state["cca"]]
        self.ccar[:] = [int(v) for v in state["ccar"]]
        self.active[:] = [bool(v) for v in state["active"]]

    def snapshot(self, slot: int, *, cca: Optional[int] = None,
                 ccar: Optional[int] = None) -> Dict[str, int]:
        """Counter values of one slot in the classic AC/ARC/CCA/CCAR/AS
        shape; callers that derive the cycle counters (the wheel
        strategy) pass them explicitly."""
        return {
            "AC": self.ac[slot],
            "ARC": self.arc[slot],
            "CCA": self.cca[slot] if cca is None else cca,
            "CCAR": self.ccar[slot] if ccar is None else ccar,
            "AS": int(self.active[slot]),
        }


@dataclass
class CounterHistory:
    """Time series of counter snapshots, the raw material of the paper's
    ControlDesk plots (Figures 5 and 6)."""

    times: List[int] = field(default_factory=list)
    series: Dict[str, List[int]] = field(default_factory=dict)

    def capture(self, time: int, values: Dict[str, int]) -> None:
        """Append one sample; keys may vary between calls, gaps are padded."""
        self.times.append(time)
        for key, value in values.items():
            column = self.series.setdefault(key, [0] * (len(self.times) - 1))
            column.append(value)
        for key, column in self.series.items():
            if len(column) < len(self.times):
                column.append(column[-1] if column else 0)

    def column(self, key: str) -> List[int]:
        """The full series recorded for ``key`` (padded to equal length)."""
        return self.series.get(key, [0] * len(self.times))

    def __len__(self) -> int:
        return len(self.times)
