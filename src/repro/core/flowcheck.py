"""Program Flow Checking (PFC) unit — look-up table sequence monitoring.

The paper (§3.2.2) deliberately avoids embedded-signature control-flow
checking (CFCSS-style) and instead keeps "a simple approach with a
look-up table ... to minimize performance penalty and extensive
modification requirements of applications": the table stores all legal
predecessor/successor relationships of the monitored runnables, and the
actually observed execution sequence — derived from the same aliveness
indications the HBM unit consumes — is checked against it.

Streams are tracked per task, because runnables of different tasks
interleave under preemption; an interleaved observation must not be
misread as a flow violation.  A task's stream is reset at each task
activation (a new activation may legally start at any whitelisted entry
point).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from ..telemetry import NULL_REGISTRY
from .hypothesis import FaultHypothesis
from .reports import ErrorType, RunnableError

ErrorListener = Callable[[RunnableError], None]

#: Key used for heartbeats that carry no task attribution.
_GLOBAL_STREAM = "<global>"


def stream_key(
    task: Optional[str],
    runnable: str,
    task_attribution: Optional[Dict[str, str]],
) -> str:
    """The per-task stream a heartbeat belongs to.

    Fallback chain: explicit task context on the heartbeat → configured
    runnable→task attribution → the global stream.  Both the runtime
    checker (:meth:`ProgramFlowCheckingUnit.observe`) and table mining
    (:meth:`FlowTable.mine_from_trace`) MUST use this one function: a
    table mined with a different stream keying than the checker replays
    against can flag the very trace it was mined from.
    """
    if task:
        return task
    if task_attribution:
        attributed = task_attribution.get(runnable)
        if attributed:
            return attributed
    return _GLOBAL_STREAM


class FlowTable:
    """The predecessor → successors look-up table."""

    def __init__(self) -> None:
        self._successors: Dict[Optional[str], Set[str]] = {}
        self._monitored: Set[str] = set()

    # ------------------------------------------------------------------
    def allow(self, predecessor: Optional[str], successor: str) -> None:
        """Whitelist one transition; ``None`` predecessor = entry point."""
        self._successors.setdefault(predecessor, set()).add(successor)
        if predecessor is not None:
            self._monitored.add(predecessor)
        self._monitored.add(successor)

    def allow_sequence(self, names: List[str]) -> None:
        """Whitelist a linear sequence including its entry point."""
        if not names:
            return
        self.allow(None, names[0])
        for pred, succ in zip(names, names[1:]):
            self.allow(pred, succ)

    def allow_cycle(self, names: List[str]) -> None:
        """Whitelist a repeating sequence (last element may precede first)."""
        self.allow_sequence(names)
        if len(names) > 1:
            self.allow(names[-1], names[0])

    # ------------------------------------------------------------------
    def is_monitored(self, runnable: str) -> bool:
        """Whether the runnable participates in flow checking at all."""
        return runnable in self._monitored

    def is_allowed(self, predecessor: Optional[str], successor: str) -> bool:
        """Table look-up: may ``successor`` follow ``predecessor``?"""
        return successor in self._successors.get(predecessor, ())

    def successors(self, predecessor: Optional[str]) -> Set[str]:
        """Allowed successors of ``predecessor`` (empty set if none)."""
        return set(self._successors.get(predecessor, ()))

    def entry_points(self) -> Set[str]:
        """Runnables allowed to start a sequence."""
        return set(self._successors.get(None, ()))

    def pair_count(self) -> int:
        """Number of whitelisted (predecessor, successor) pairs."""
        return sum(len(s) for s in self._successors.values())

    def pairs(self) -> List[Tuple[Optional[str], str]]:
        """Every whitelisted pair, entry points as ``(None, successor)``.

        Deterministic order (insertion order of predecessors, successors
        sorted) so review diffs and lint output are stable; this is the
        hand-off format to :func:`repro.lint.lint_flow_pairs`.
        """
        return [
            (pred, succ)
            for pred, succs in self._successors.items()
            for succ in sorted(succs)
        ]

    @classmethod
    def from_hypothesis(cls, hypothesis: FaultHypothesis) -> "FlowTable":
        """Build the table from a fault hypothesis' flow pairs."""
        table = cls()
        for pred, succ in hypothesis.flow_pairs:
            table.allow(pred, succ)
        return table

    @classmethod
    def mine_from_trace(
        cls,
        trace,
        *,
        runnables: Optional[Set[str]] = None,
        task_attribution: Optional[Dict[str, str]] = None,
    ) -> "FlowTable":
        """Learn the look-up table from an observed *healthy* run.

        The paper's table is authored from design knowledge; in practice
        the legal predecessor/successor pairs can also be mined from a
        validated golden execution (the Software-in-the-Loop phase of
        Figure 3).  Heartbeat records are grouped into per-task streams;
        each task activation opens a fresh stream (its first monitored
        runnable becomes an entry point), exactly matching the runtime
        checker's semantics — a table mined from a healthy trace will
        never flag a replay of that trace.

        ``runnables`` restricts mining to the safety-critical set; by
        default every heartbeating runnable is included.

        ``task_attribution`` is the same runnable→task mapping the
        runtime :class:`ProgramFlowCheckingUnit` will be configured
        with.  Pass it whenever the checker has one: heartbeats recorded
        *without* task context are then grouped into the stream the
        checker will actually use (via :func:`stream_key`) instead of
        the global stream, which keeps the mined-table-never-flags-its-
        own-trace guarantee.

        This is a learning aid, not a safety argument: a mined table is
        only as complete as the scenarios the golden run exercised, so
        review it (``pair_count``, ``successors``) before deployment.
        """
        from ..kernel.tracing import TraceKind

        table = cls()
        last: Dict[str, Optional[str]] = {}
        for record in trace:
            if record.kind is TraceKind.TASK_ACTIVATE:
                last[record.subject] = None
            elif record.kind is TraceKind.HEARTBEAT:
                name = record.subject
                if runnables is not None and name not in runnables:
                    continue
                stream = stream_key(
                    record.info.get("task"), name, task_attribution
                )
                table.allow(last.get(stream), name)
                last[stream] = name
        return table


class ProgramFlowCheckingUnit:
    """Checks observed runnable sequences against a :class:`FlowTable`."""

    def __init__(
        self,
        table: FlowTable,
        *,
        task_attribution: Optional[Dict[str, str]] = None,
        telemetry=None,
    ) -> None:
        self.table = table
        #: Maps runnable name → owning task, for attributing errors when a
        #: heartbeat arrives without task context.
        self.task_attribution = dict(task_attribution or {})
        self._last: Dict[str, Optional[str]] = {}
        self._listeners: List[ErrorListener] = []
        self.observation_count = 0
        self.violation_count = 0
        #: Counted look-up operations, for the overhead comparison with
        #: signature-based checking (experiment E2).
        self.lookup_operations = 0
        # Telemetry mirrors of the plain-int tallies above, folded in by
        # :meth:`sync_telemetry` (the facade calls it once per check
        # cycle) so the per-observation hot path stays untouched.
        self.telemetry = telemetry if telemetry is not None else NULL_REGISTRY
        self._tm_enabled = self.telemetry.enabled
        tm = self.telemetry
        self._tm_observations = tm.counter(
            "wd_pfc_observations_total", "Monitored executions observed")
        self._tm_lookups = tm.counter(
            "wd_pfc_lookups_total", "Flow-table look-up operations")
        self._tm_violations = tm.counter(
            "wd_pfc_violations_total", "Illegal transitions detected")
        self._tm_table_pairs = tm.gauge(
            "wd_pfc_table_pairs",
            "Whitelisted (predecessor, successor) pairs in the flow table")
        self._tm_table_pairs.set(table.pair_count())
        self._tm_synced = [0, 0, 0]

    def sync_telemetry(self) -> None:
        """Fold the plain-int tallies into the registry counters and
        refresh the table-size gauge."""
        if not self._tm_enabled:
            return
        last = self._tm_synced
        self._tm_observations.inc(self.observation_count - last[0])
        self._tm_lookups.inc(self.lookup_operations - last[1])
        self._tm_violations.inc(self.violation_count - last[2])
        self._tm_synced = [
            self.observation_count, self.lookup_operations,
            self.violation_count,
        ]
        self._tm_table_pairs.set(self.table.pair_count())

    # ------------------------------------------------------------------
    def add_listener(self, listener: ErrorListener) -> None:
        """Register a sink for detected flow errors (the TSI unit)."""
        self._listeners.append(listener)

    def reset_stream(self, task: Optional[str]) -> None:
        """Restart the sequence of ``task`` (new activation)."""
        self._last[task or _GLOBAL_STREAM] = None

    def reset_all(self) -> None:
        """Forget every stream (watchdog restart)."""
        self._last.clear()

    def snapshot_state(self) -> Dict[str, object]:
        """JSON-compatible checker state (daemon persistence): the
        per-stream predecessors plus the tallies."""
        return {
            "last": dict(self._last),
            "observation_count": self.observation_count,
            "violation_count": self.violation_count,
            "lookup_operations": self.lookup_operations,
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Resume from a :meth:`snapshot_state` capture (the unit must
        carry the same flow table and task attribution)."""
        self._last = dict(state["last"])
        self.observation_count = int(state["observation_count"])
        self.violation_count = int(state["violation_count"])
        self.lookup_operations = int(state["lookup_operations"])
        # Post-restore telemetry deltas count from the restored tallies.
        self._tm_synced = [
            self.observation_count, self.lookup_operations,
            self.violation_count,
        ]

    # ------------------------------------------------------------------
    def observe(
        self, runnable: str, time: int, task: Optional[str] = None
    ) -> Optional[RunnableError]:
        """Feed one observed execution into the checker.

        Returns the emitted :class:`RunnableError` when the transition is
        illegal, else ``None``.  Unmonitored runnables are transparent:
        they neither advance nor disturb the stream (the paper monitors
        "only the sequence of the safety-critical runnables ... to reduce
        the overhead involved during program flow checks").
        """
        if not self.table.is_monitored(runnable):
            return None
        self.observation_count += 1
        stream = stream_key(task, runnable, self.task_attribution)
        previous = self._last.get(stream)
        self.lookup_operations += 1
        error: Optional[RunnableError] = None
        if not self.table.is_allowed(previous, runnable):
            self.violation_count += 1
            error = RunnableError(
                time=time,
                runnable=runnable,
                task=task or self.task_attribution.get(runnable),
                error_type=ErrorType.PROGRAM_FLOW,
                details={"previous": previous, "observed": runnable},
            )
            for listener in self._listeners:
                listener(error)
        # The observed runnable becomes the new predecessor either way:
        # resynchronising on the observed block avoids cascades of
        # secondary violations after a single bad branch.
        self._last[stream] = runnable
        return error

    def expected_next(self, task: Optional[str] = None) -> Set[str]:
        """Successors currently legal for the given task's stream."""
        previous = self._last.get(task or _GLOBAL_STREAM)
        return self.table.successors(previous) | (
            self.table.entry_points() if previous is None else set()
        )
