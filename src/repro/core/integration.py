"""OSEK integration of the Software Watchdog.

The paper integrates the watchdog "across L2 and L3" of the EASIS
platform: it runs as an OS-level periodic activity, and application
runnables carry automatically generated glue code reporting their
aliveness.  This module provides exactly those two integration points
for the simulated kernel:

* :func:`install_heartbeat_glue` — attach the aliveness indication
  routine to a runnable's exit glue,
* :class:`WatchdogTaskBinding` — create the periodic watchdog check task
  (its own OSEK task plus cyclic alarm), including a configurable
  simulated execution cost per check cycle so overhead is visible in
  CPU-utilisation measurements.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..kernel.alarms import AlarmTable
from ..kernel.runnable import Runnable
from ..kernel.scheduler import Kernel
from ..kernel.task import Segment, Task
from ..kernel.tracing import TraceKind
from .watchdog import SoftwareWatchdog


def install_heartbeat_glue(watchdog: SoftwareWatchdog, runnable: Runnable) -> None:
    """Attach the aliveness indication routine to a runnable.

    This is the simulated equivalent of the paper's "automatically
    generated glue code": on every completed execution, the runnable
    reports its heartbeat — and thereby its position in the execution
    sequence — to the Software Watchdog.
    """

    def indicate(r: Runnable, task: Task) -> None:
        now = r.kernel.clock.now
        r.kernel.trace.record(now, TraceKind.HEARTBEAT, r.name, task=task.name)
        watchdog.heartbeat_indication(r.name, now, task.name)

    runnable.add_exit_glue(indicate)


def install_glue_on_all(watchdog: SoftwareWatchdog, runnables: Iterable[Runnable]) -> None:
    """Install heartbeat glue on every given runnable."""
    for runnable in runnables:
        install_heartbeat_glue(watchdog, runnable)


class WatchdogTaskBinding:
    """Runs a :class:`SoftwareWatchdog` as a periodic OSEK task.

    Parameters
    ----------
    kernel, alarms:
        The hosting kernel and its alarm table.
    watchdog:
        The service to drive.
    period:
        Check-cycle period in simulated ticks.  This is the time base of
        the CCA/CCAR cycle counters: a runnable hypothesis with
        ``aliveness_period=5`` is checked every ``5 * period`` ticks.
    priority:
        OSEK priority of the watchdog task.  The paper's service must
        observe timing faults of application tasks, so it should be
        higher-priority than the monitored applications.
    check_cost:
        Simulated CPU ticks one check cycle consumes (the watchdog's own
        runtime overhead; used by the overhead experiment E2).
    """

    def __init__(
        self,
        kernel: Kernel,
        alarms: AlarmTable,
        watchdog: SoftwareWatchdog,
        *,
        period: int,
        priority: int,
        check_cost: int = 0,
        task_name: Optional[str] = None,
        autostart_alarm: bool = True,
    ) -> None:
        if period <= 0:
            raise ValueError("watchdog period must be > 0")
        self.kernel = kernel
        self.watchdog = watchdog
        self.period = period
        self.check_cost = check_cost
        self.task_name = task_name or f"{watchdog.name}Task"

        def body(task: Task):
            yield Segment(
                self.check_cost,
                on_end=self._run_check,
                label=f"{self.task_name}:check",
            )

        #: Callables run in the watchdog task's context after each check
        #: cycle — e.g. a distributed-supervision publisher, which must
        #: live and die with the node's task scheduling.
        self.post_check_hooks: list = []
        self.task = kernel.add_task(
            Task(self.task_name, priority, body, preemptable=False)
        )
        self.alarm = alarms.alarm_activate_task(
            f"{self.task_name}Alarm", self.task_name
        )
        if autostart_alarm:
            self.alarm.set_rel(
                max(1, period // alarms.system_counter.ticks_per_increment),
                max(1, period // alarms.system_counter.ticks_per_increment),
            )
        kernel.hooks.pre_task.append(self._on_task_start)

    # ------------------------------------------------------------------
    def _run_check(self) -> None:
        now = self.kernel.clock.now
        errors = self.watchdog.check_cycle(now)
        self.kernel.trace.record(
            now,
            TraceKind.WATCHDOG_CHECK,
            self.watchdog.name,
            cycle=self.watchdog.check_cycle_count,
            errors=len(errors),
        )
        for hook in self.post_check_hooks:
            hook()

    def _on_task_start(self, kernel: Kernel, task: Task) -> None:
        if task.name != self.task_name:
            self.watchdog.notify_task_start(task.name)


def attach_hardware_watchdog_kick(binding: WatchdogTaskBinding, hw_watchdog) -> None:
    """Layered arrangement of §2: the Software Watchdog *supplements* the
    hardware watchdog rather than replacing it.

    The hardware watchdog is kicked from the Software Watchdog's own
    check task: application-level faults are caught at runnable
    granularity by the software service, while death of the OS, the
    scheduler or the Software Watchdog itself silences the kick stream
    and trips the hardware stage — closing the "who watches the
    watchdog" gap.
    """
    binding.post_check_hooks.append(hw_watchdog.kick)
