"""Fault hypothesis configuration for the Software Watchdog.

The paper (§3.2.1) anchors all monitoring in a *fault hypothesis*: per
runnable, the monitoring periods of the aliveness and arrival-rate
checks (counted in watchdog check cycles, the Cycle Counters CCA and
CCAR) and the expected heartbeat bounds within those periods.  This
module is the declarative side of that hypothesis; the counters
themselves live in :mod:`repro.core.counters`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from .reports import ErrorType


class HypothesisError(ValueError):
    """Raised for an inconsistent fault hypothesis."""


@dataclass
class RunnableHypothesis:
    """Monitoring parameters for one runnable.

    Parameters
    ----------
    runnable:
        Name of the monitored runnable.
    task:
        Name of the OSEK task hosting the runnable (used by the TSI unit
        to aggregate runnable errors into task states).
    aliveness_period:
        Length of the aliveness monitoring period in watchdog check
        cycles (the CCA rollover value).
    min_heartbeats:
        Minimum number of heartbeats expected within one aliveness
        period; fewer indications mean the runnable "is blocked or
        preempted ... and its aliveness indication routine is not
        executed frequently enough".
    arrival_period:
        Length of the arrival-rate monitoring period in watchdog check
        cycles (the CCAR rollover value).
    max_heartbeats:
        Maximum number of heartbeats tolerated within one arrival
        period; more indications mean the runnable "is excessively
        dispatched for execution".
    active:
        Initial Activation Status (AS) of the runnable's monitoring.
    """

    runnable: str
    task: Optional[str] = None
    aliveness_period: int = 1
    min_heartbeats: int = 1
    arrival_period: int = 1
    max_heartbeats: int = 1
    active: bool = True

    def __post_init__(self) -> None:
        if self.aliveness_period < 1:
            raise HypothesisError(
                f"{self.runnable}: aliveness_period must be >= 1"
            )
        if self.arrival_period < 1:
            raise HypothesisError(f"{self.runnable}: arrival_period must be >= 1")
        if self.min_heartbeats < 0:
            raise HypothesisError(f"{self.runnable}: min_heartbeats must be >= 0")
        if self.max_heartbeats < 0:
            raise HypothesisError(f"{self.runnable}: max_heartbeats must be >= 0")


@dataclass
class ThresholdPolicy:
    """TSI thresholds: errors tolerated before a task is declared faulty.

    A threshold of ``n`` means the *n*-th recorded error of that type for
    a runnable flips the hosting task to FAULTY (the paper's Figure 6
    uses a program-flow threshold of 3).  ``per_type`` overrides the
    default for individual error types.
    """

    default: int = 3
    per_type: Dict[ErrorType, int] = field(default_factory=dict)

    def validate(self) -> None:
        """Reject non-positive thresholds at configuration time.

        Runs from :meth:`FaultHypothesis.validate` (and therefore at
        watchdog construction) so a bad policy fails before monitoring
        starts — :meth:`threshold_for` sits in the per-error hot path and
        must stay a plain lookup.
        """
        if self.default < 1:
            raise HypothesisError(
                f"default threshold must be >= 1, got {self.default}"
            )
        for error_type, value in self.per_type.items():
            if value < 1:
                raise HypothesisError(
                    f"threshold for {error_type} must be >= 1, got {value}"
                )

    def threshold_for(self, error_type: ErrorType) -> int:
        return self.per_type.get(error_type, self.default)


@dataclass
class FaultHypothesis:
    """The complete static configuration of one Software Watchdog.

    Collects the per-runnable hypotheses, the allowed program-flow
    transitions (predecessor → successors look-up table, §3.2.2) and the
    TSI threshold policy (§3.2.3).
    """

    runnables: Dict[str, RunnableHypothesis] = field(default_factory=dict)
    flow_pairs: List[Tuple[Optional[str], str]] = field(default_factory=list)
    thresholds: ThresholdPolicy = field(default_factory=ThresholdPolicy)

    def add_runnable(self, hypothesis: RunnableHypothesis) -> RunnableHypothesis:
        """Register monitoring parameters for a runnable (unique name)."""
        if hypothesis.runnable in self.runnables:
            raise HypothesisError(f"duplicate hypothesis for {hypothesis.runnable!r}")
        self.runnables[hypothesis.runnable] = hypothesis
        return hypothesis

    def allow_flow(self, predecessor: Optional[str], successor: str) -> None:
        """Whitelist a predecessor→successor transition.

        A ``None`` predecessor marks ``successor`` as a legal entry point
        (the first monitored runnable of a task activation).
        """
        self.flow_pairs.append((predecessor, successor))

    def allow_sequence(self, names: Iterable[str]) -> None:
        """Whitelist a linear sequence: entry point plus each adjacency."""
        names = list(names)
        if not names:
            return
        self.allow_flow(None, names[0])
        for pred, succ in zip(names, names[1:]):
            self.allow_flow(pred, succ)

    def slot_order(self) -> List[str]:
        """Runnable names in slot order (registration order).

        The heartbeat monitoring unit interns runnable names to integer
        slots in exactly this order; every component that wants to talk
        about runnables by interned id (error reports, the TSI unit,
        flat counter arrays) must use the same ordering.
        """
        return list(self.runnables)

    def tasks(self) -> List[str]:
        """Distinct task names referenced by the hypothesis."""
        seen: Dict[str, None] = {}
        for hyp in self.runnables.values():
            if hyp.task is not None:
                seen.setdefault(hyp.task, None)
        return list(seen)

    def validate(self) -> None:
        """Check cross-references (flow pairs must name known runnables)
        and the threshold policy.

        This guards the hard *consistency* invariants only; the wdlint
        analyzer (:func:`repro.lint.lint_hypothesis`) additionally finds
        configurations that are consistent but defective (unreachable
        runnables, contradictory bounds, schedule mismatches).
        """
        self.thresholds.validate()
        for pred, succ in self.flow_pairs:
            if pred is not None and pred not in self.runnables:
                raise HypothesisError(f"flow predecessor {pred!r} is not monitored")
            if succ not in self.runnables:
                raise HypothesisError(f"flow successor {succ!r} is not monitored")
