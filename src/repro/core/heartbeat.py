"""Heartbeat Monitoring (HBM) unit — aliveness and arrival-rate checks.

The unit implements the paper's "passive approach to record and monitor
the runnable updates" (§3.2.1): heartbeats arriving from the glue code
merely increment counters; all judging happens in :meth:`cycle`, the
periodic check executed by the watchdog task "shortly before the next
period begins".

Two fault types are detected:

* **aliveness** — fewer heartbeats than ``min_heartbeats`` within one
  aliveness period (runnable blocked / starved / not dispatched),
* **arrival rate** — more heartbeats than ``max_heartbeats`` within one
  arrival-rate period (runnable excessively dispatched).

An optional *eager* arrival-rate mode flags the overflow on the very
heartbeat that exceeds the bound instead of waiting for the period end;
this is the ablation knob for the detection-latency experiment (E3).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .counters import RunnableCounters
from .hypothesis import FaultHypothesis, RunnableHypothesis
from .reports import ErrorType, RunnableError

ErrorListener = Callable[[RunnableError], None]


class HeartbeatMonitoringUnit:
    """Aliveness and arrival-rate monitoring of independent runnables."""

    def __init__(
        self,
        hypothesis: FaultHypothesis,
        *,
        eager_arrival_detection: bool = False,
    ) -> None:
        self.hypothesis = hypothesis
        self.eager_arrival_detection = eager_arrival_detection
        self.counters: Dict[str, RunnableCounters] = {}
        self._listeners: List[ErrorListener] = []
        self.cycle_count = 0
        self.heartbeat_count = 0
        self.unknown_heartbeats = 0
        for name, hyp in hypothesis.runnables.items():
            self.counters[name] = RunnableCounters(active=hyp.active)

    # ------------------------------------------------------------------
    def add_listener(self, listener: ErrorListener) -> None:
        """Register a sink for detected runnable errors (the TSI unit)."""
        self._listeners.append(listener)

    def set_activation_status(self, runnable: str, active: bool) -> None:
        """Flip the Activation Status (AS) of one runnable's monitoring.

        Deactivating resets the counters so a later reactivation starts
        from a clean monitoring period.
        """
        counters = self._counters_for(runnable)
        if counters.active != active:
            counters.active = active
            counters.reset_all()

    def activation_status(self, runnable: str) -> bool:
        """Current AS value."""
        return self._counters_for(runnable).active

    # ------------------------------------------------------------------
    def heartbeat(self, runnable: str, time: int, task: Optional[str] = None) -> None:
        """Record one aliveness indication from the glue code.

        Unknown runnables are counted but otherwise ignored — the real
        service would receive indications only from configured glue code,
        but fault injection can corrupt the reported identifier.
        """
        counters = self.counters.get(runnable)
        if counters is None:
            self.unknown_heartbeats += 1
            return
        if not counters.active:
            return
        self.heartbeat_count += 1
        counters.record_heartbeat()
        if self.eager_arrival_detection:
            hyp = self.hypothesis.runnables[runnable]
            if counters.arc > hyp.max_heartbeats:
                self._emit(
                    RunnableError(
                        time=time,
                        runnable=runnable,
                        task=task if task is not None else hyp.task,
                        error_type=ErrorType.ARRIVAL_RATE,
                        details={"arc": counters.arc, "max": hyp.max_heartbeats,
                                 "eager": True},
                    )
                )
                counters.reset_arrival()

    def cycle(self, time: int) -> List[RunnableError]:
        """One watchdog check cycle over all monitored runnables.

        Advances CCA and CCAR; when a period expires the corresponding
        bound is checked, errors are emitted, and the period counters are
        reset (also on error, per the paper).
        Returns the errors detected in this cycle.
        """
        self.cycle_count += 1
        errors: List[RunnableError] = []
        for name, hyp in self.hypothesis.runnables.items():
            counters = self.counters[name]
            if not counters.active:
                continue
            counters.cca += 1
            counters.ccar += 1
            if counters.cca >= hyp.aliveness_period:
                if counters.ac < hyp.min_heartbeats:
                    errors.append(
                        RunnableError(
                            time=time,
                            runnable=name,
                            task=hyp.task,
                            error_type=ErrorType.ALIVENESS,
                            details={"ac": counters.ac, "min": hyp.min_heartbeats},
                        )
                    )
                counters.reset_aliveness()
            if counters.ccar >= hyp.arrival_period:
                if counters.arc > hyp.max_heartbeats:
                    errors.append(
                        RunnableError(
                            time=time,
                            runnable=name,
                            task=hyp.task,
                            error_type=ErrorType.ARRIVAL_RATE,
                            details={"arc": counters.arc, "max": hyp.max_heartbeats},
                        )
                    )
                counters.reset_arrival()
        for error in errors:
            self._emit(error)
        return errors

    # ------------------------------------------------------------------
    def snapshot(self, runnable: str) -> Dict[str, int]:
        """Current counter values of one runnable (for capture/plots)."""
        return self._counters_for(runnable).snapshot()

    def reset(self) -> None:
        """Reset every counter and the cycle count (watchdog restart)."""
        self.cycle_count = 0
        self.heartbeat_count = 0
        self.unknown_heartbeats = 0
        for counters in self.counters.values():
            counters.reset_all()

    # ------------------------------------------------------------------
    def _counters_for(self, runnable: str) -> RunnableCounters:
        counters = self.counters.get(runnable)
        if counters is None:
            raise KeyError(f"runnable {runnable!r} is not monitored")
        return counters

    def _emit(self, error: RunnableError) -> None:
        for listener in self._listeners:
            listener(error)

    def _describe_hypothesis(self, runnable: str) -> RunnableHypothesis:
        return self.hypothesis.runnables[runnable]
