"""Heartbeat Monitoring (HBM) unit — aliveness and arrival-rate checks.

The unit implements the paper's "passive approach to record and monitor
the runnable updates" (§3.2.1): heartbeats arriving from the glue code
merely increment counters; all judging happens in :meth:`cycle`, the
periodic check executed by the watchdog task "shortly before the next
period begins".

Two fault types are detected:

* **aliveness** — fewer heartbeats than ``min_heartbeats`` within one
  aliveness period (runnable blocked / starved / not dispatched),
* **arrival rate** — more heartbeats than ``max_heartbeats`` within one
  arrival-rate period (runnable excessively dispatched).

An optional *eager* arrival-rate mode flags the overflow on the very
heartbeat that exceeds the bound instead of waiting for the period end;
this is the ablation knob for the detection-latency experiment (E3).
An eager detection resets only the Arrival Rate Counter — the period
boundary (CCAR / the wheel deadline) is left untouched, so the arrival
windows stay aligned to ``arrival_period`` exactly as configured.

Check strategies
----------------

Runnable names are interned to integer slots at configuration time and
the counters live in flat slot-indexed arrays
(:class:`~repro.core.counters.SlotCounterArrays`).  Two strategies
decide which slots a check cycle visits:

* ``"wheel"`` (default) — an *expiry wheel*: each runnable's aliveness
  and arrival-rate deadlines are bucketed by the absolute cycle index
  at which they next expire.  A check cycle pops only the buckets that
  are due, judges those slots, and re-arms them one period ahead.
  Per-cycle cost is proportional to the number of *due* checks, not to
  the number of monitored runnables.
* ``"scan"`` — the original implementation: visit every active slot on
  every cycle, increment CCA/CCAR, and check whichever period expired.
  O(runnables) per cycle; kept as the behavioral reference (the two
  strategies are differential-tested for bit-for-bit equal error
  streams).
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Dict, List, Optional

from ..telemetry import NULL_REGISTRY
from .counters import SlotCounterArrays
from .hypothesis import FaultHypothesis, RunnableHypothesis
from .reports import ErrorType, RunnableError

ErrorListener = Callable[[RunnableError], None]

#: Sentinel deadline for a disarmed (deactivated) wheel entry.
_DISARMED = -1

#: Check cycles between automatic telemetry syncs.  Folding the
#: plain-int tallies into registry counters costs several instrument
#: updates, so it is batched; exporters force a sync before rendering.
_TM_SYNC_INTERVAL = 16


class HeartbeatMonitoringUnit:
    """Aliveness and arrival-rate monitoring of independent runnables."""

    def __init__(
        self,
        hypothesis: FaultHypothesis,
        *,
        eager_arrival_detection: bool = False,
        strategy: str = "wheel",
        telemetry=None,
    ) -> None:
        if strategy not in ("wheel", "scan"):
            raise ValueError(f"unknown check strategy {strategy!r} "
                             "(expected 'wheel' or 'scan')")
        self.hypothesis = hypothesis
        self.eager_arrival_detection = eager_arrival_detection
        self.strategy = strategy
        self._listeners: List[ErrorListener] = []
        self.cycle_count = 0
        self.heartbeat_count = 0
        self.unknown_heartbeats = 0
        #: Cumulative number of slots examined by check cycles — the
        #: instrumentation hook for the cycle-cost experiments: with the
        #: scan strategy this grows by the number of active runnables
        #: every cycle, with the wheel strategy only by the number of
        #: *due* ones.
        self.slots_visited = 0
        #: Cumulative number of window-counter resets (an AC reset at
        #: each aliveness-period expiry, an ARC reset at each
        #: arrival-period expiry or eager detection).  A plain int like
        #: ``slots_visited`` so the tally is strategy-independent and
        #: free even without telemetry.
        self.counter_resets = 0
        #: Interned slot index per runnable name (configuration-time).
        self.slot_of: Dict[str, int] = {}
        #: Slot index → runnable name / hypothesis (flat, slot-ordered).
        self.names: List[str] = []
        self._hyps: List[RunnableHypothesis] = []
        self.counters = SlotCounterArrays()
        for name in hypothesis.slot_order():
            hyp = hypothesis.runnables[name]
            slot = self.counters.add_slot(active=hyp.active)
            self.slot_of[name] = slot
            self.names.append(name)
            self._hyps.append(hyp)
        # Wheel bookkeeping (maintained even under the scan strategy so
        # the strategy could be flipped between cycles if ever needed;
        # the cost is two ints per slot).
        self._alive_base: List[int] = [0] * len(self.names)
        self._arr_base: List[int] = [0] * len(self.names)
        self._alive_due: List[int] = [_DISARMED] * len(self.names)
        self._arr_due: List[int] = [_DISARMED] * len(self.names)
        self._alive_wheel: Dict[int, List[int]] = {}
        self._arr_wheel: Dict[int, List[int]] = {}
        for slot in range(len(self.names)):
            if self.counters.active[slot]:
                self._arm_slot(slot)
        # Telemetry: high-frequency tallies stay plain ints on the hot
        # path and are folded into registry counters once per check
        # cycle (sync_telemetry); only the cycle-duration histogram is
        # measured live, gated on ``enabled``.
        self.telemetry = telemetry if telemetry is not None else NULL_REGISTRY
        self._tm_enabled = self.telemetry.enabled
        tm = self.telemetry
        self._tm_cycle_seconds = tm.histogram(
            "wd_hbm_cycle_duration_seconds",
            "Wall-clock cost of one HBM check cycle",
            strategy=strategy,
        )
        self._tm_cycles = tm.counter(
            "wd_hbm_check_cycles_total", "HBM check cycles executed")
        self._tm_heartbeats = tm.counter(
            "wd_hbm_heartbeats_total", "Aliveness indications accepted")
        self._tm_unknown = tm.counter(
            "wd_hbm_unknown_heartbeats_total",
            "Heartbeats carrying an unknown runnable identifier")
        self._tm_slots = tm.counter(
            "wd_hbm_slots_checked_total",
            "Runnable slots judged due and checked")
        self._tm_resets = tm.counter(
            "wd_hbm_counter_resets_total",
            "AC/ARC window counter resets at period expiry")
        self._tm_monitored = tm.gauge(
            "wd_hbm_active_runnables",
            "Runnables with Activation Status true")
        self._tm_monitored.set(sum(1 for a in self.counters.active if a))
        #: Last-synced values of (cycles, heartbeats, unknown, slots, resets).
        self._tm_synced = [0, 0, 0, 0, 0]
        self._tm_cycles_unsynced = 0

    # ------------------------------------------------------------------
    def add_listener(self, listener: ErrorListener) -> None:
        """Register a sink for detected runnable errors (the TSI unit)."""
        self._listeners.append(listener)

    def set_activation_status(self, runnable: str, active: bool) -> None:
        """Flip the Activation Status (AS) of one runnable's monitoring.

        Deactivating resets the counters so a later reactivation starts
        from a clean monitoring period.

        Raises
        ------
        ValueError
            If ``runnable`` is not part of the fault hypothesis.  Unlike
            :meth:`heartbeat` — which tolerates unknown names because a
            fault can corrupt the identifier a glue routine reports —
            flipping AS is a deliberate configuration act, so a typo
            here must fail loudly.
        """
        slot = self.slot_of.get(runnable)
        if slot is None:
            known = ", ".join(sorted(self.slot_of))
            raise ValueError(
                f"cannot set activation status of unknown runnable "
                f"{runnable!r}; known runnables: {known or '<none>'}"
            )
        if self.counters.active[slot] != active:
            self.counters.active[slot] = active
            self.counters.reset_slot(slot)
            self._tm_monitored.inc(1 if active else -1)
            if active:
                self._arm_slot(slot)
            else:
                self._disarm_slot(slot)

    def activation_status(self, runnable: str) -> bool:
        """Current AS value."""
        return self.counters.active[self._slot_for(runnable)]

    def slot_active(self, slot: int) -> bool:
        """AS value of an interned slot (hot-path accessor)."""
        return self.counters.active[slot]

    # ------------------------------------------------------------------
    def heartbeat(self, runnable: str, time: int, task: Optional[str] = None) -> None:
        """Record one aliveness indication from the glue code.

        Unknown runnables are counted but otherwise ignored — the real
        service would receive indications only from configured glue code,
        but fault injection can corrupt the reported identifier.
        """
        slot = self.slot_of.get(runnable)
        if slot is None:
            self.unknown_heartbeats += 1
            return
        self.heartbeat_slot(slot, time, task)

    def heartbeat_slot(self, slot: int, time: int, task: Optional[str] = None) -> None:
        """Heartbeat ingress by interned slot id — the hot path.

        Callers that already resolved the slot (the watchdog facade does
        one dict lookup per indication) go straight to the flat counter
        arrays.
        """
        counters = self.counters
        if not counters.active[slot]:
            return
        self.heartbeat_count += 1
        counters.ac[slot] += 1
        counters.arc[slot] += 1
        if self.eager_arrival_detection:
            hyp = self._hyps[slot]
            if counters.arc[slot] > hyp.max_heartbeats:
                self._emit(
                    RunnableError(
                        time=time,
                        runnable=self.names[slot],
                        task=task if task is not None else hyp.task,
                        error_type=ErrorType.ARRIVAL_RATE,
                        details={"arc": counters.arc[slot],
                                 "max": hyp.max_heartbeats,
                                 "eager": True},
                        runnable_id=slot,
                    )
                )
                # Only ARC restarts: the arrival *window* (CCAR / the
                # wheel deadline) keeps its configured boundary, so an
                # eager detection does not silently lengthen subsequent
                # windows.
                counters.arc[slot] = 0
                self.counter_resets += 1

    # ------------------------------------------------------------------
    def cycle(self, time: int) -> List[RunnableError]:
        """One watchdog check cycle ("shortly before the next period
        begins").

        When a period expires the corresponding bound is checked, errors
        are emitted, and the period counters are reset (also on error,
        per the paper).  Returns the errors detected in this cycle.
        """
        self.cycle_count += 1
        impl = self._cycle_scan if self.strategy == "scan" else self._cycle_wheel
        if self._tm_enabled:
            begin = perf_counter()
            errors = impl(time)
            self._tm_cycle_seconds.observe(perf_counter() - begin)
            # Folding the plain-int tallies into the registry costs a
            # few instrument updates, so it is amortized over a batch of
            # cycles; counter freshness at render time comes from the
            # explicit sync the exporters perform.
            self._tm_cycles_unsynced += 1
            if self._tm_cycles_unsynced >= _TM_SYNC_INTERVAL:
                self.sync_telemetry()
        else:
            errors = impl(time)
        for error in errors:
            self._emit(error)
        return errors

    def sync_telemetry(self) -> None:
        """Fold the plain-int tallies into the registry counters.

        Runs automatically every ``_TM_SYNC_INTERVAL`` check cycles when
        a live registry is attached; call it directly before rendering
        metrics so the counters include the tail of the run."""
        if not self._tm_enabled:
            return
        self._tm_cycles_unsynced = 0
        last = self._tm_synced
        self._tm_cycles.inc(self.cycle_count - last[0])
        self._tm_heartbeats.inc(self.heartbeat_count - last[1])
        self._tm_unknown.inc(self.unknown_heartbeats - last[2])
        self._tm_slots.inc(self.slots_visited - last[3])
        self._tm_resets.inc(self.counter_resets - last[4])
        self._tm_synced = [
            self.cycle_count, self.heartbeat_count, self.unknown_heartbeats,
            self.slots_visited, self.counter_resets,
        ]

    def _cycle_scan(self, time: int) -> List[RunnableError]:
        """Reference implementation: visit every active slot."""
        counters = self.counters
        errors: List[RunnableError] = []
        for slot, hyp in enumerate(self._hyps):
            if not counters.active[slot]:
                continue
            self.slots_visited += 1
            counters.cca[slot] += 1
            counters.ccar[slot] += 1
            if counters.cca[slot] >= hyp.aliveness_period:
                if counters.ac[slot] < hyp.min_heartbeats:
                    errors.append(self._aliveness_error(slot, hyp, time))
                counters.ac[slot] = 0
                counters.cca[slot] = 0
                self.counter_resets += 1
            if counters.ccar[slot] >= hyp.arrival_period:
                if counters.arc[slot] > hyp.max_heartbeats:
                    errors.append(self._arrival_error(slot, hyp, time))
                counters.arc[slot] = 0
                counters.ccar[slot] = 0
                self.counter_resets += 1
        return errors

    def _cycle_wheel(self, time: int) -> List[RunnableError]:
        """Expiry-wheel implementation: visit only the due buckets."""
        now = self.cycle_count
        alive_bucket = self._alive_wheel.pop(now, None)
        arr_bucket = self._arr_wheel.pop(now, None)
        if not alive_bucket and not arr_bucket:
            return []
        counters = self.counters
        # A bucket entry is *stale* when the slot was deactivated or
        # re-armed since it was pushed; the deadline arrays are the
        # authority.  ``due`` maps slot → [aliveness_due, arrival_due]
        # so a slot due for both is visited once, aliveness judged
        # first — the same per-runnable order the scan produces.
        due: Dict[int, List[bool]] = {}
        if alive_bucket:
            for slot in alive_bucket:
                if counters.active[slot] and self._alive_due[slot] == now:
                    due[slot] = [True, False]
        if arr_bucket:
            for slot in arr_bucket:
                if counters.active[slot] and self._arr_due[slot] == now:
                    due.setdefault(slot, [False, False])[1] = True
        errors: List[RunnableError] = []
        for slot in sorted(due):
            aliveness_due, arrival_due = due[slot]
            hyp = self._hyps[slot]
            self.slots_visited += 1
            if aliveness_due:
                if counters.ac[slot] < hyp.min_heartbeats:
                    errors.append(self._aliveness_error(slot, hyp, time))
                counters.ac[slot] = 0
                self.counter_resets += 1
                self._alive_base[slot] = now
                deadline = now + hyp.aliveness_period
                self._alive_due[slot] = deadline
                self._alive_wheel.setdefault(deadline, []).append(slot)
            if arrival_due:
                if counters.arc[slot] > hyp.max_heartbeats:
                    errors.append(self._arrival_error(slot, hyp, time))
                counters.arc[slot] = 0
                self.counter_resets += 1
                self._arr_base[slot] = now
                deadline = now + hyp.arrival_period
                self._arr_due[slot] = deadline
                self._arr_wheel.setdefault(deadline, []).append(slot)
        return errors

    # ------------------------------------------------------------------
    def snapshot(self, runnable: str) -> Dict[str, int]:
        """Current counter values of one runnable (for capture/plots)."""
        slot = self._slot_for(runnable)
        if self.strategy == "scan":
            return self.counters.snapshot(slot)
        if not self.counters.active[slot]:
            return self.counters.snapshot(slot, cca=0, ccar=0)
        # The wheel does not tick CCA/CCAR; derive them from the cycle
        # index at which the period was last (re-)armed.
        return self.counters.snapshot(
            slot,
            cca=self.cycle_count - self._alive_base[slot],
            ccar=self.cycle_count - self._arr_base[slot],
        )

    def snapshot_state(self) -> Dict[str, object]:
        """Full JSON-compatible monitoring state (daemon persistence).

        Captures everything :meth:`restore_state` needs to resume
        monitoring bit-identically on a unit built from the same
        hypothesis: cycle index, tallies, the counter block, and the
        wheel's per-slot period bases and deadlines.  The wheel's bucket
        map is *not* captured — it is derived state, rebuilt from the
        deadline arrays on restore.
        """
        return {
            "names": list(self.names),
            "cycle_count": self.cycle_count,
            "heartbeat_count": self.heartbeat_count,
            "unknown_heartbeats": self.unknown_heartbeats,
            "slots_visited": self.slots_visited,
            "counter_resets": self.counter_resets,
            "counters": self.counters.dump_state(),
            "alive_base": list(self._alive_base),
            "arr_base": list(self._arr_base),
            "alive_due": list(self._alive_due),
            "arr_due": list(self._arr_due),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Resume from a :meth:`snapshot_state` capture.

        The unit must have been built from the same hypothesis (same
        slot interning); future check cycles then behave exactly as they
        would have on the captured instance.
        """
        if list(state["names"]) != self.names:
            raise ValueError(
                "snapshot slot layout does not match this unit's "
                "hypothesis (runnable set or order differs)"
            )
        self.cycle_count = int(state["cycle_count"])
        self.heartbeat_count = int(state["heartbeat_count"])
        self.unknown_heartbeats = int(state["unknown_heartbeats"])
        self.slots_visited = int(state["slots_visited"])
        self.counter_resets = int(state["counter_resets"])
        self.counters.load_state(state["counters"])
        self._alive_base = [int(v) for v in state["alive_base"]]
        self._arr_base = [int(v) for v in state["arr_base"]]
        self._alive_due = [int(v) for v in state["alive_due"]]
        self._arr_due = [int(v) for v in state["arr_due"]]
        # Rebuild the wheels from the deadline arrays; bucket-internal
        # order is irrelevant (due slots are judged in sorted slot
        # order), so this reconstruction is behavior-identical.
        self._alive_wheel.clear()
        self._arr_wheel.clear()
        for slot, deadline in enumerate(self._alive_due):
            if deadline != _DISARMED:
                self._alive_wheel.setdefault(deadline, []).append(slot)
        for slot, deadline in enumerate(self._arr_due):
            if deadline != _DISARMED:
                self._arr_wheel.setdefault(deadline, []).append(slot)
        # Telemetry: gauges reflect the restored AS flags; the sync marks
        # move to the restored tallies so registry counters only grow by
        # post-restore activity (a restarted daemon's exporters start
        # fresh, they do not re-count the previous process's history).
        self._tm_monitored.set(sum(1 for a in self.counters.active if a))
        self._tm_synced = [
            self.cycle_count, self.heartbeat_count, self.unknown_heartbeats,
            self.slots_visited, self.counter_resets,
        ]
        self._tm_cycles_unsynced = 0

    def reset(self) -> None:
        """Reset every counter and the cycle count (watchdog restart).

        Activation statuses survive the reset, exactly like before: a
        runnable deactivated by the FMF stays unmonitored until it is
        explicitly reactivated.
        """
        # Fold any unsynced tail first; the registry counters stay
        # monotonic across watchdog restarts, and re-zeroing the sync
        # marks makes future deltas count from the freshly reset ints.
        self.sync_telemetry()
        self.cycle_count = 0
        self.heartbeat_count = 0
        self.unknown_heartbeats = 0
        self.slots_visited = 0
        self.counter_resets = 0
        self._tm_synced = [0, 0, 0, 0, 0]
        self.counters.reset_all()
        self._alive_wheel.clear()
        self._arr_wheel.clear()
        for slot in range(len(self.names)):
            if self.counters.active[slot]:
                self._arm_slot(slot)
            else:
                self._disarm_slot(slot)

    # ------------------------------------------------------------------
    def _arm_slot(self, slot: int) -> None:
        """Schedule both of a slot's deadlines one period from now."""
        now = self.cycle_count
        hyp = self._hyps[slot]
        self._alive_base[slot] = now
        self._arr_base[slot] = now
        alive_deadline = now + hyp.aliveness_period
        arr_deadline = now + hyp.arrival_period
        self._alive_due[slot] = alive_deadline
        self._arr_due[slot] = arr_deadline
        self._alive_wheel.setdefault(alive_deadline, []).append(slot)
        self._arr_wheel.setdefault(arr_deadline, []).append(slot)

    def _disarm_slot(self, slot: int) -> None:
        """Invalidate a slot's deadlines (stale wheel entries are
        skipped when their bucket is popped)."""
        self._alive_due[slot] = _DISARMED
        self._arr_due[slot] = _DISARMED

    def _aliveness_error(
        self, slot: int, hyp: RunnableHypothesis, time: int
    ) -> RunnableError:
        return RunnableError(
            time=time,
            runnable=self.names[slot],
            task=hyp.task,
            error_type=ErrorType.ALIVENESS,
            details={"ac": self.counters.ac[slot], "min": hyp.min_heartbeats},
            runnable_id=slot,
        )

    def _arrival_error(
        self, slot: int, hyp: RunnableHypothesis, time: int
    ) -> RunnableError:
        return RunnableError(
            time=time,
            runnable=self.names[slot],
            task=hyp.task,
            error_type=ErrorType.ARRIVAL_RATE,
            details={"arc": self.counters.arc[slot], "max": hyp.max_heartbeats},
            runnable_id=slot,
        )

    def _slot_for(self, runnable: str) -> int:
        slot = self.slot_of.get(runnable)
        if slot is None:
            raise KeyError(f"runnable {runnable!r} is not monitored")
        return slot

    def _emit(self, error: RunnableError) -> None:
        for listener in self._listeners:
            listener(error)

    def _describe_hypothesis(self, runnable: str) -> RunnableHypothesis:
        return self.hypothesis.runnables[runnable]
