"""The Software Watchdog service facade (Figure 2 of the paper).

Wires the three basic units together:

* heartbeats from runnable glue code enter through
  :meth:`SoftwareWatchdog.heartbeat_indication` and feed **both** the
  heartbeat monitoring unit and the program flow checking unit (the
  paper derives the execution-sequence view from the same aliveness
  indication routines),
* both units report runnable errors into the task state indication
  unit, which aggregates, applies thresholds and derives task /
  application / ECU states,
* detected faults and task-fault events are forwarded to registered
  listeners — on the platform this is the Fault Management Framework.

The facade also keeps the cumulative detection counters the paper's
evaluation plots show (``AM Result``, ``ARM Result`` and ``PFC Result``
in Figures 5 and 6) and an optional per-cycle capture of every monitored
runnable's counter set.
"""

from __future__ import annotations

import warnings as _warnings
from typing import Callable, Dict, List, Optional

from ..telemetry import (
    NULL_REGISTRY,
    NULL_SINK,
    KIND_DETECTION,
    KIND_ECU_STATE_CHANGE,
    KIND_LINT_WARNING,
    KIND_TASK_FAULT,
    TelemetryEvent,
)
from .counters import CounterHistory
from .flowcheck import FlowTable, ProgramFlowCheckingUnit
from .heartbeat import HeartbeatMonitoringUnit, _TM_SYNC_INTERVAL
from .hypothesis import FaultHypothesis
from .reports import ErrorType, MonitorState, RunnableError, TaskFaultEvent
from .taskstate import TaskStateIndicationUnit

FaultListener = Callable[[RunnableError], None]


class SoftwareWatchdog:
    """The complete dependability software service of the paper."""

    def __init__(
        self,
        hypothesis: FaultHypothesis,
        *,
        name: str = "SoftwareWatchdog",
        eager_arrival_detection: bool = False,
        app_of_task: Optional[Dict[str, str]] = None,
        check_strategy: str = "wheel",
        lint: str = "warn",
        telemetry=None,
        event_sink=None,
    ) -> None:
        if lint not in ("error", "warn", "off"):
            raise ValueError(f"unknown lint mode {lint!r} "
                             "(expected 'error', 'warn' or 'off')")
        # Telemetry knobs mirror ``lint=``: optional, default inert.  The
        # registry fans out to the three units; the event sink receives
        # structured JSONL-able records for detections, task faults, ECU
        # state changes and lint warnings.
        self.telemetry = telemetry if telemetry is not None else NULL_REGISTRY
        self.event_sink = event_sink if event_sink is not None else NULL_SINK
        self._tm_enabled = self.telemetry.enabled
        hypothesis.validate()
        if lint != "off":
            self._lint_hypothesis(hypothesis, mode=lint, source=name)
        self.name = name
        self.hypothesis = hypothesis
        task_of_runnable = {
            r: h.task for r, h in hypothesis.runnables.items() if h.task is not None
        }
        self.hbm = HeartbeatMonitoringUnit(
            hypothesis,
            eager_arrival_detection=eager_arrival_detection,
            strategy=check_strategy,
            telemetry=telemetry,
        )
        self.pfc = ProgramFlowCheckingUnit(
            FlowTable.from_hypothesis(hypothesis),
            task_attribution=task_of_runnable,
            telemetry=telemetry,
        )
        self.tsi = TaskStateIndicationUnit(
            hypothesis.thresholds,
            task_of_runnable=task_of_runnable,
            app_of_task=app_of_task,
            task_of_slot=[h.task for h in self.hbm._hyps],
            telemetry=telemetry,
        )
        self.hbm.add_listener(self._on_runnable_error)
        self.pfc.add_listener(self._on_runnable_error)
        #: Cumulative detections per error type (the y-values of the
        #: "AM Result" / "PFC Result" plots).
        self.detected: Dict[ErrorType, int] = {et: 0 for et in ErrorType}
        #: Cumulative detections per (runnable, error type).
        self.detected_per_runnable: Dict[str, Dict[ErrorType, int]] = {}
        self.check_cycle_count = 0
        self.history: Optional[CounterHistory] = None
        self._fault_listeners: List[FaultListener] = []
        self._tm_detections: Dict[ErrorType, object] = {}
        if self._tm_enabled:
            for et in ErrorType:
                self._tm_detections[et] = self.telemetry.counter(
                    "wd_detections_total",
                    "Detected runnable errors by error type",
                    error_type=et.value,
                )
        if self.event_sink.enabled:
            self.tsi.add_task_fault_listener(self._emit_task_fault_event)
            self.tsi.add_ecu_state_listener(self._emit_ecu_state_event)

    # ------------------------------------------------------------------
    def _lint_hypothesis(
        self, hypothesis: FaultHypothesis, *, mode: str, source: str
    ) -> None:
        """Construction-time wdlint pass (the ``lint=`` knob).

        ``"error"`` refuses to build a watchdog from a hypothesis with
        error-severity diagnostics; ``"warn"`` (the default) surfaces
        every diagnostic as a :class:`~repro.lint.LintWarning` and
        proceeds.  Configuration-only analyses run here — the WD3xx
        schedule cross-checks need the task mapping, which the service
        facade deliberately does not know (lint deployments against it
        via ``python -m repro lint`` or :func:`repro.lint.lint_hypothesis`).
        """
        from ..lint import LintError, LintWarning, lint_hypothesis

        report = lint_hypothesis(hypothesis, source=source)
        if mode == "error" and not report.ok:
            raise LintError(report)
        for diagnostic in report.diagnostics:
            _warnings.warn(str(diagnostic), LintWarning, stacklevel=3)
            if self.event_sink.enabled:
                self.event_sink.emit(TelemetryEvent(
                    time=0,
                    kind=KIND_LINT_WARNING,
                    subject=source,
                    data={
                        "code": diagnostic.code,
                        "severity": diagnostic.severity.value,
                        "message": diagnostic.message,
                    },
                ))

    # ------------------------------------------------------------------
    # service interfaces (the two main interfaces of §4.4)
    # ------------------------------------------------------------------
    def heartbeat_indication(
        self, runnable: str, time: int, task: Optional[str] = None
    ) -> None:
        """Interface 1: application glue code reports an aliveness
        indication.  Feeds flow checking first (the execution-sequence
        view), then the heartbeat counters.

        One dict lookup interns the runnable name to its slot; the rest
        of the path works on flat slot-indexed storage.  A runnable with
        Activation Status ``False`` is invisible to *both* units: a
        deliberately deactivated runnable (e.g. of a terminated
        application) must neither raise PROGRAM_FLOW errors nor perturb
        its task's stream predecessor.
        """
        hbm = self.hbm
        slot = hbm.slot_of.get(runnable)
        if slot is None:
            # Corrupted identifier: count it, and let the PFC unit see
            # it (unknown runnables are transparent to flow checking).
            hbm.unknown_heartbeats += 1
            self.pfc.observe(runnable, time, task)
            return
        if not hbm.slot_active(slot):
            return
        self.pfc.observe(runnable, time, task)
        hbm.heartbeat_slot(slot, time, task)

    def add_fault_listener(self, listener: FaultListener) -> None:
        """Interface 2: subscribe to detected faults (the FMF hook)."""
        self._fault_listeners.append(listener)

    def add_task_fault_listener(self, listener: Callable[[TaskFaultEvent], None]) -> None:
        """Subscribe to task-faulty threshold events."""
        self.tsi.add_task_fault_listener(listener)

    # ------------------------------------------------------------------
    # periodic check
    # ------------------------------------------------------------------
    def check_cycle(self, time: int) -> List[RunnableError]:
        """One watchdog check cycle ("shortly before the next period
        begins"): advance all cycle counters, evaluate bounds, emit
        errors, and capture history if enabled."""
        self.check_cycle_count += 1
        errors = self.hbm.cycle(time)
        if self._tm_enabled and self.check_cycle_count % _TM_SYNC_INTERVAL == 0:
            self.pfc.sync_telemetry()
        if self.history is not None:
            self._capture(time)
        return errors

    def sync_telemetry(self) -> None:
        """Fold every unit's plain-int tallies into the registry.

        :meth:`check_cycle` already does this once per cycle; call it
        explicitly before rendering a snapshot taken mid-cycle."""
        self.hbm.sync_telemetry()
        self.pfc.sync_telemetry()

    def notify_task_start(self, task: str) -> None:
        """Inform the PFC unit that a task activation began (the stream
        restarts at a legal entry point)."""
        self.pfc.reset_stream(task)

    def set_activation_status(self, runnable: str, active: bool) -> None:
        """Enable/disable monitoring of one runnable (the AS switch)."""
        self.hbm.set_activation_status(runnable, active)

    # ------------------------------------------------------------------
    # state queries
    # ------------------------------------------------------------------
    def runnable_state(self, runnable: str) -> MonitorState:
        return self.tsi.runnable_state(runnable)

    def task_state(self, task: str) -> MonitorState:
        return self.tsi.task_state(task)

    def application_state(self, application: str) -> MonitorState:
        return self.tsi.application_state(application)

    def ecu_state(self) -> MonitorState:
        return self.tsi.ecu_state()

    def supervision_reports(self, time: int):
        """Individual supervision reports on runnables (§3.2.3): one per
        monitored runnable, carrying its derived state and error counts.
        These are what downstream services consume to decide treatments
        "depending on the source, type and severity of the detected
        faults"."""
        return self.tsi.supervision_reports(time)

    def detection_count(
        self, error_type: Optional[ErrorType] = None, runnable: Optional[str] = None
    ) -> int:
        """Cumulative number of detections matching the filters."""
        if runnable is None:
            if error_type is None:
                return sum(self.detected.values())
            return self.detected[error_type]
        per_type = self.detected_per_runnable.get(runnable, {})
        if error_type is None:
            return sum(per_type.values())
        return per_type.get(error_type, 0)

    # ------------------------------------------------------------------
    # capture (ControlDesk-style traces)
    # ------------------------------------------------------------------
    def enable_capture(self) -> CounterHistory:
        """Record, at every check cycle, the counters of every monitored
        runnable plus the cumulative AM/ARM/PFC result curves."""
        self.history = CounterHistory()
        return self.history

    def _capture(self, time: int) -> None:
        assert self.history is not None
        sample: Dict[str, int] = {}
        for name in self.hypothesis.runnables:
            snapshot = self.hbm.snapshot(name)
            for key, value in snapshot.items():
                sample[f"{name}.{key}"] = value
        sample["AM_Result"] = self.detected[ErrorType.ALIVENESS]
        sample["ARM_Result"] = self.detected[ErrorType.ARRIVAL_RATE]
        sample["PFC_Result"] = self.detected[ErrorType.PROGRAM_FLOW]
        for task in self.hypothesis.tasks():
            sample[f"TaskState.{task}"] = int(
                self.tsi.task_state(task) is MonitorState.FAULTY
            )
        self.history.capture(time, sample)

    # ------------------------------------------------------------------
    # persistence (the daemon's snapshot/restore path)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        """Full JSON-compatible service state: every unit's monitoring
        state plus the cumulative detection counters.

        Restoring this capture onto a watchdog built from the same
        hypothesis (same construction knobs) resumes supervision
        bit-identically — the contract the restartable daemon's
        differential tests pin.
        """
        return {
            "check_cycle_count": self.check_cycle_count,
            "detected": {et.value: n for et, n in self.detected.items()},
            "detected_per_runnable": {
                runnable: {et.value: n for et, n in per_type.items()}
                for runnable, per_type in self.detected_per_runnable.items()
            },
            "hbm": self.hbm.snapshot_state(),
            "pfc": self.pfc.snapshot_state(),
            "tsi": self.tsi.snapshot_state(),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Resume from a :meth:`snapshot_state` capture."""
        self.check_cycle_count = int(state["check_cycle_count"])
        self.detected = {
            et: int(state["detected"].get(et.value, 0)) for et in ErrorType
        }
        self.detected_per_runnable = {
            runnable: {ErrorType(et): n for et, n in per_type.items()}
            for runnable, per_type in state["detected_per_runnable"].items()
        }
        self.hbm.restore_state(state["hbm"])
        self.pfc.restore_state(state["pfc"])
        self.tsi.restore_state(state["tsi"])

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Full service reset (ECU software reset)."""
        self.hbm.reset()
        self.pfc.reset_all()
        self.tsi.reset()
        self.detected = {et: 0 for et in ErrorType}
        self.detected_per_runnable.clear()
        self.check_cycle_count = 0

    # ------------------------------------------------------------------
    def _on_runnable_error(self, error: RunnableError) -> None:
        self.detected[error.error_type] += 1
        per_type = self.detected_per_runnable.setdefault(error.runnable, {})
        per_type[error.error_type] = per_type.get(error.error_type, 0) + 1
        if self._tm_enabled:
            self._tm_detections[error.error_type].inc()
        if self.event_sink.enabled:
            self.event_sink.emit(TelemetryEvent(
                time=error.time,
                kind=KIND_DETECTION,
                subject=error.runnable,
                data={
                    "error_type": error.error_type.value,
                    "task": error.task,
                    "details": dict(error.details or {}),
                },
            ))
        self.tsi.record_error(error)
        for listener in self._fault_listeners:
            listener(error)

    def _emit_task_fault_event(self, event: TaskFaultEvent) -> None:
        self.event_sink.emit(TelemetryEvent(
            time=event.time,
            kind=KIND_TASK_FAULT,
            subject=event.task,
            data={
                "trigger_runnable": event.trigger_runnable,
                "trigger_error_type": event.trigger_error_type.value,
                "error_vector": {
                    runnable: {et.value: count for et, count in per_type.items()}
                    for runnable, per_type in event.error_vector.items()
                },
            },
        ))

    def _emit_ecu_state_event(self, change) -> None:
        self.event_sink.emit(TelemetryEvent(
            time=change.time,
            kind=KIND_ECU_STATE_CHANGE,
            subject=self.name,
            data={
                "old_state": change.old_state.value,
                "new_state": change.new_state.value,
                "faulty_tasks": list(change.faulty_tasks),
            },
        ))
