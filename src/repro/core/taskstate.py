"""Task State Indication (TSI) unit — error aggregation and roll-up.

Per §3.2.3 of the paper, runnable errors detected by the HBM and PFC
units are recorded in a per-task *error indication vector*.  When any
element of the vector reaches its threshold, the whole task is
considered faulty.  Task states roll up — via the application/task
mapping — to application states and a single global ECU state, which the
Fault Management Framework uses to pick a treatment (§3.4):

* global ECU state faulty  → ECU software reset,
* ECU OK, application faulty → restart or terminate the application,
* remaining tasks of terminated applications → restart via OS services.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..telemetry import NULL_REGISTRY
from .hypothesis import ThresholdPolicy
from .reports import (
    EcuStateChange,
    ErrorType,
    MonitorState,
    RunnableError,
    SupervisionReport,
    TaskFaultEvent,
)

TaskFaultListener = Callable[[TaskFaultEvent], None]
EcuStateListener = Callable[[EcuStateChange], None]

#: Numeric encoding of :class:`MonitorState` for state gauges.
MONITOR_STATE_VALUE: Dict[MonitorState, int] = {
    MonitorState.OK: 0,
    MonitorState.SUSPICIOUS: 1,
    MonitorState.FAULTY: 2,
}


class TaskStateIndicationUnit:
    """Error indication vectors, thresholds, and state derivation."""

    def __init__(
        self,
        thresholds: Optional[ThresholdPolicy] = None,
        *,
        task_of_runnable: Optional[Dict[str, str]] = None,
        app_of_task: Optional[Dict[str, str]] = None,
        task_of_slot: Optional[List[Optional[str]]] = None,
        telemetry=None,
    ) -> None:
        self.thresholds = thresholds or ThresholdPolicy()
        #: runnable → hosting task (completed lazily from incoming errors).
        self.task_of_runnable: Dict[str, str] = dict(task_of_runnable or {})
        #: interned slot id → hosting task, in the HBM unit's slot order;
        #: lets :meth:`record_error` attribute an error that carries a
        #: ``runnable_id`` without hashing the runnable name.
        self.task_of_slot: List[Optional[str]] = list(task_of_slot or [])
        #: task → application (for application state derivation).
        self.app_of_task: Dict[str, str] = dict(app_of_task or {})
        #: task → runnable → error type → count  (the error indication vectors).
        self.error_vectors: Dict[str, Dict[str, Dict[ErrorType, int]]] = {}
        #: tasks currently declared faulty.
        self.faulty_tasks: Dict[str, TaskFaultEvent] = {}
        self.errors_recorded = 0
        self._task_fault_listeners: List[TaskFaultListener] = []
        self._ecu_state_listeners: List[EcuStateListener] = []
        self._last_ecu_state = MonitorState.OK
        self._error_log: List[RunnableError] = []
        # Telemetry: errors and threshold crossings are rare, so the
        # instruments are updated live (a no-op under the null
        # registry).  State gauges encode OK/SUSPICIOUS/FAULTY as 0/1/2
        # (MONITOR_STATE_VALUE).
        self.telemetry = telemetry if telemetry is not None else NULL_REGISTRY
        self._tm_enabled = self.telemetry.enabled
        tm = self.telemetry
        self._tm_errors = tm.counter(
            "wd_tsi_errors_recorded_total",
            "Runnable errors recorded into error indication vectors")
        self._tm_task_faults = tm.counter(
            "wd_tsi_task_faults_total",
            "Task-faulty threshold crossings")
        self._tm_faulty_tasks = tm.gauge(
            "wd_tsi_faulty_tasks", "Tasks currently declared faulty")
        self._tm_ecu_state = tm.gauge(
            "wd_tsi_ecu_state",
            "Derived global ECU state (0=ok 1=suspicious 2=faulty)")
        self._tm_task_gauges: Dict[str, object] = {}
        self._tm_app_gauges: Dict[str, object] = {}

    # ------------------------------------------------------------------
    def add_task_fault_listener(self, listener: TaskFaultListener) -> None:
        """Register a sink for task-faulty events (the FMF)."""
        self._task_fault_listeners.append(listener)

    def add_ecu_state_listener(self, listener: EcuStateListener) -> None:
        """Register a sink for global ECU state transitions."""
        self._ecu_state_listeners.append(listener)

    # ------------------------------------------------------------------
    def record_error(self, error: RunnableError, time: Optional[int] = None) -> None:
        """Record one runnable error in its task's error indication vector.

        Fires a :class:`TaskFaultEvent` the moment an element reaches its
        threshold; re-crossing while already faulty does not re-fire.
        """
        when = error.time if time is None else time
        task = error.task
        if task is None:
            slot = error.runnable_id
            if slot is not None and 0 <= slot < len(self.task_of_slot):
                task = self.task_of_slot[slot]
        if task is None:
            task = self.task_of_runnable.get(error.runnable)
        task = task or "<unmapped>"
        self.task_of_runnable.setdefault(error.runnable, task)
        vector = self.error_vectors.setdefault(task, {})
        per_type = vector.setdefault(error.runnable, {})
        per_type[error.error_type] = per_type.get(error.error_type, 0) + 1
        self.errors_recorded += 1
        self._error_log.append(error)
        self._tm_errors.inc()
        threshold = self.thresholds.threshold_for(error.error_type)
        if per_type[error.error_type] >= threshold and task not in self.faulty_tasks:
            event = TaskFaultEvent(
                time=when,
                task=task,
                trigger_runnable=error.runnable,
                trigger_error_type=error.error_type,
                error_vector={r: dict(t) for r, t in vector.items()},
            )
            self.faulty_tasks[task] = event
            self._tm_task_faults.inc()
            for listener in self._task_fault_listeners:
                listener(event)
            self._update_ecu_state(when)
        if self._tm_enabled:
            self._tm_refresh_states(task)

    # ------------------------------------------------------------------
    def error_count(
        self,
        task: Optional[str] = None,
        runnable: Optional[str] = None,
        error_type: Optional[ErrorType] = None,
    ) -> int:
        """Accumulated error count matching the given filters."""
        total = 0
        for t, vector in self.error_vectors.items():
            if task is not None and t != task:
                continue
            for r, per_type in vector.items():
                if runnable is not None and r != runnable:
                    continue
                for et, count in per_type.items():
                    if error_type is not None and et is not error_type:
                        continue
                    total += count
        return total

    def runnable_state(self, runnable: str) -> MonitorState:
        """Derived health of one runnable."""
        counts = self._counts_for(runnable)
        if not counts:
            return MonitorState.OK
        for et, count in counts.items():
            if count >= self.thresholds.threshold_for(et):
                return MonitorState.FAULTY
        return MonitorState.SUSPICIOUS

    def task_state(self, task: str) -> MonitorState:
        """Derived health of one task."""
        if task in self.faulty_tasks:
            return MonitorState.FAULTY
        if self.error_vectors.get(task):
            return MonitorState.SUSPICIOUS
        return MonitorState.OK

    def application_state(self, application: str) -> MonitorState:
        """Derived health of one application: worst of its tasks' states."""
        states = [
            self.task_state(task)
            for task, app in self.app_of_task.items()
            if app == application
        ]
        return _worst(states)

    def ecu_state(self) -> MonitorState:
        """Derived global ECU state: worst of all known task states."""
        states = [self.task_state(task) for task in self._known_tasks()]
        return _worst(states)

    # ------------------------------------------------------------------
    def supervision_reports(self, time: int) -> List[SupervisionReport]:
        """Individual supervision reports on runnables (one per monitored
        runnable that has recorded errors, plus mapped healthy ones)."""
        reports: List[SupervisionReport] = []
        seen = set()
        for task, vector in self.error_vectors.items():
            for runnable, per_type in vector.items():
                seen.add(runnable)
                reports.append(
                    SupervisionReport(
                        time=time,
                        runnable=runnable,
                        task=task,
                        state=self.runnable_state(runnable),
                        error_counts=dict(per_type),
                    )
                )
        for runnable, task in self.task_of_runnable.items():
            if runnable not in seen:
                reports.append(
                    SupervisionReport(
                        time=time,
                        runnable=runnable,
                        task=task,
                        state=MonitorState.OK,
                        error_counts={},
                    )
                )
        return reports

    def error_log(self) -> List[RunnableError]:
        """Chronological list of every recorded runnable error."""
        return list(self._error_log)

    def clear_task(self, task: str) -> None:
        """Forget a task's errors (after the FMF restarted it)."""
        self.error_vectors.pop(task, None)
        self.faulty_tasks.pop(task, None)
        self._update_ecu_state(time=self._error_log[-1].time if self._error_log else 0)
        if self._tm_enabled:
            self._tm_refresh_states(task)

    def snapshot_state(self) -> Dict[str, object]:
        """JSON-compatible aggregation state (daemon persistence): the
        error indication vectors, declared-faulty tasks, the error log,
        lazily-learned attribution, and the last derived ECU state."""
        return {
            "error_vectors": {
                task: {
                    runnable: {et.value: count for et, count in per_type.items()}
                    for runnable, per_type in vector.items()
                }
                for task, vector in self.error_vectors.items()
            },
            "faulty_tasks": {
                task: event.to_dict()
                for task, event in self.faulty_tasks.items()
            },
            "errors_recorded": self.errors_recorded,
            "error_log": [error.to_dict() for error in self._error_log],
            "task_of_runnable": dict(self.task_of_runnable),
            "last_ecu_state": self._last_ecu_state.value,
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Resume from a :meth:`snapshot_state` capture."""
        self.error_vectors = {
            task: {
                runnable: {ErrorType(et): count for et, count in per_type.items()}
                for runnable, per_type in vector.items()
            }
            for task, vector in state["error_vectors"].items()
        }
        self.faulty_tasks = {
            task: TaskFaultEvent.from_dict(event)
            for task, event in state["faulty_tasks"].items()
        }
        self.errors_recorded = int(state["errors_recorded"])
        self._error_log = [
            RunnableError.from_dict(error) for error in state["error_log"]
        ]
        self.task_of_runnable = dict(state["task_of_runnable"])
        self._last_ecu_state = MonitorState(state["last_ecu_state"])
        if self._tm_enabled:
            for task in self._known_tasks():
                self._tm_refresh_states(task)

    def reset(self) -> None:
        """Full reset (ECU software reset)."""
        self.error_vectors.clear()
        self.faulty_tasks.clear()
        self.errors_recorded = 0
        self._error_log.clear()
        self._last_ecu_state = MonitorState.OK
        if self._tm_enabled:
            for task in list(self._tm_task_gauges):
                self._tm_refresh_states(task)
            self._tm_faulty_tasks.set(0)
            self._tm_ecu_state.set(0)

    # ------------------------------------------------------------------
    def _counts_for(self, runnable: str) -> Dict[ErrorType, int]:
        for vector in self.error_vectors.values():
            if runnable in vector:
                return vector[runnable]
        return {}

    def _known_tasks(self) -> List[str]:
        seen: Dict[str, None] = {}
        for task in self.app_of_task:
            seen.setdefault(task, None)
        for task in self.task_of_runnable.values():
            seen.setdefault(task, None)
        for task in self.error_vectors:
            seen.setdefault(task, None)
        return list(seen)

    def _tm_refresh_states(self, task: str) -> None:
        """Refresh the state gauges touched by a change to ``task``.

        Only called when the registry is live; gauge objects are cached
        per task/application so repeated refreshes do not re-enter the
        registry's get-or-create path.
        """
        gauge = self._tm_task_gauges.get(task)
        if gauge is None:
            gauge = self.telemetry.gauge(
                "wd_tsi_task_state",
                "Derived task state (0=ok 1=suspicious 2=faulty)",
                task=task,
            )
            self._tm_task_gauges[task] = gauge
        gauge.set(MONITOR_STATE_VALUE[self.task_state(task)])
        app = self.app_of_task.get(task)
        if app is not None:
            app_gauge = self._tm_app_gauges.get(app)
            if app_gauge is None:
                app_gauge = self.telemetry.gauge(
                    "wd_tsi_application_state",
                    "Derived application state (0=ok 1=suspicious 2=faulty)",
                    application=app,
                )
                self._tm_app_gauges[app] = app_gauge
            app_gauge.set(MONITOR_STATE_VALUE[self.application_state(app)])
        self._tm_faulty_tasks.set(len(self.faulty_tasks))
        self._tm_ecu_state.set(MONITOR_STATE_VALUE[self.ecu_state()])

    def _update_ecu_state(self, time: int) -> None:
        new_state = self.ecu_state()
        if new_state is not self._last_ecu_state:
            change = EcuStateChange(
                time=time,
                old_state=self._last_ecu_state,
                new_state=new_state,
                faulty_tasks=tuple(sorted(self.faulty_tasks)),
            )
            self._last_ecu_state = new_state
            for listener in self._ecu_state_listeners:
                listener(change)


def _worst(states: List[MonitorState]) -> MonitorState:
    """The most severe of a list of states (OK when the list is empty)."""
    if MonitorState.FAULTY in states:
        return MonitorState.FAULTY
    if MonitorState.SUSPICIOUS in states:
        return MonitorState.SUSPICIOUS
    return MonitorState.OK
