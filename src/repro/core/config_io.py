"""Fault-hypothesis serialization and design-time consistency analysis.

The fault hypothesis is a *design artefact*: it is authored with the
system configuration (EASIS deliverable style), reviewed, and only then
deployed.  This module provides both halves of that workflow:

* :func:`hypothesis_to_dict` / :func:`hypothesis_from_dict` — lossless
  (de)serialization to plain dicts (JSON/YAML-ready) so hypotheses can
  live in version-controlled configuration files,
* :func:`analyze_hypothesis` — static consistency checks of a
  hypothesis against the task mapping and its timing analysis.  A
  mis-specified hypothesis is worse than none: too-tight bounds turn
  legal worst-case schedules into false alarms, too-loose bounds turn
  the watchdog blind.  Each finding names the runnable, the problem and
  the severity.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from .hypothesis import FaultHypothesis, RunnableHypothesis, ThresholdPolicy
from .reports import ErrorType

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a cycle:
    # platform.application itself builds FaultHypothesis objects).
    from ..platform.application import TaskMapping

_FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# serialization
# ----------------------------------------------------------------------
def hypothesis_to_dict(hypothesis: FaultHypothesis) -> Dict[str, Any]:
    """Serialise a hypothesis to a plain dict (JSON-compatible)."""
    return {
        "version": _FORMAT_VERSION,
        "runnables": [
            {
                "runnable": h.runnable,
                "task": h.task,
                "aliveness_period": h.aliveness_period,
                "min_heartbeats": h.min_heartbeats,
                "arrival_period": h.arrival_period,
                "max_heartbeats": h.max_heartbeats,
                "active": h.active,
            }
            for h in hypothesis.runnables.values()
        ],
        "flow_pairs": [
            {"predecessor": pred, "successor": succ}
            for pred, succ in hypothesis.flow_pairs
        ],
        "thresholds": {
            "default": hypothesis.thresholds.default,
            "per_type": {
                et.value: value
                for et, value in hypothesis.thresholds.per_type.items()
            },
        },
    }


def hypothesis_from_dict(data: Dict[str, Any], *, validate: bool = True) -> FaultHypothesis:
    """Rebuild a hypothesis from :func:`hypothesis_to_dict` output.

    ``validate=False`` skips the final consistency check — used by the
    wdlint CLI, which wants to load a *broken* hypothesis and report its
    defects as structured diagnostics instead of dying on the first
    inconsistency.
    """
    version = data.get("version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported hypothesis format version: {version!r}")
    thresholds = ThresholdPolicy(
        default=data["thresholds"]["default"],
        per_type={
            ErrorType(key): value
            for key, value in data["thresholds"]["per_type"].items()
        },
    )
    hypothesis = FaultHypothesis(thresholds=thresholds)
    for entry in data["runnables"]:
        hypothesis.add_runnable(RunnableHypothesis(**entry))
    for pair in data["flow_pairs"]:
        hypothesis.allow_flow(pair["predecessor"], pair["successor"])
    if validate:
        hypothesis.validate()
    return hypothesis


# ----------------------------------------------------------------------
# design-time analysis
# ----------------------------------------------------------------------
class FindingSeverity(enum.Enum):
    """How bad a hypothesis inconsistency is."""

    ERROR = "error"  # will false-positive or can never fire
    WARNING = "warning"  # fragile: margins too thin or too loose


@dataclass(frozen=True)
class HypothesisFinding:
    """One consistency problem."""

    severity: FindingSeverity
    runnable: Optional[str]
    message: str

    def __str__(self) -> str:
        subject = self.runnable or "<global>"
        return f"[{self.severity.value}] {subject}: {self.message}"


def analyze_hypothesis(
    hypothesis: FaultHypothesis,
    mapping: "TaskMapping",
    *,
    watchdog_period: int,
    loose_factor: float = 4.0,
) -> List[HypothesisFinding]:
    """Check a hypothesis against the mapping's timing reality.

    Checks, per monitored runnable:

    * the hosting task exists in the mapping and actually hosts it,
    * **false-positive risk**: in the worst case (response-time analysis)
      the task delivers ``floor(window / period)`` completions per
      aliveness window minus the one activation that may straddle it;
      ``min_heartbeats`` above that bound *will* alarm on a healthy
      system,
    * **blindness risk**: an aliveness window more than ``loose_factor``
      times the task period detects only near-total starvation,
    * **arrival bound sanity**: ``max_heartbeats`` below the nominal
      executions per arrival window false-positives; far above detects
      nothing short of a runaway loop,
    * flow pairs referencing unmonitored runnables (also caught by
      ``validate``, reported here with context).
    """
    from ..platform.schedulability import response_time_analysis

    findings: List[HypothesisFinding] = []
    rta = response_time_analysis(mapping.task_timings())

    for name, hyp in hypothesis.runnables.items():
        try:
            task = mapping.task_of(name)
        except Exception:
            findings.append(
                HypothesisFinding(
                    FindingSeverity.ERROR, name,
                    "runnable is not placed in the mapping",
                )
            )
            continue
        if hyp.task is not None and hyp.task != task:
            findings.append(
                HypothesisFinding(
                    FindingSeverity.ERROR, name,
                    f"hypothesis names task {hyp.task!r} but the mapping "
                    f"places it on {task!r}",
                )
            )
        spec = mapping.task_specs[task]
        response = rta.get(task)
        if response is None:
            findings.append(
                HypothesisFinding(
                    FindingSeverity.ERROR, name,
                    f"hosting task {task!r} is not schedulable — no "
                    "hypothesis can be met",
                )
            )
            continue

        # --- aliveness: guaranteed completions per window --------------
        window = hyp.aliveness_period * watchdog_period
        guaranteed = max(0, math.floor(window / spec.period) - 1)
        if hyp.min_heartbeats > guaranteed:
            findings.append(
                HypothesisFinding(
                    FindingSeverity.ERROR, name,
                    f"min_heartbeats={hyp.min_heartbeats} exceeds the "
                    f"{guaranteed} completions guaranteed per "
                    f"{window // 1000} ms window (period "
                    f"{spec.period // 1000} ms): false positives on a "
                    "healthy system",
                )
            )
        if window > loose_factor * spec.period and hyp.min_heartbeats <= 1:
            findings.append(
                HypothesisFinding(
                    FindingSeverity.WARNING, name,
                    f"aliveness window {window // 1000} ms is more than "
                    f"{loose_factor:g}x the task period — detects only "
                    "near-total starvation",
                )
            )

        # --- arrival rate ----------------------------------------------
        arrival_window = hyp.arrival_period * watchdog_period
        nominal = math.ceil(arrival_window / spec.period)
        if hyp.max_heartbeats < nominal:
            findings.append(
                HypothesisFinding(
                    FindingSeverity.ERROR, name,
                    f"max_heartbeats={hyp.max_heartbeats} is below the "
                    f"{nominal} nominal executions per "
                    f"{arrival_window // 1000} ms window: false positives",
                )
            )
        elif hyp.max_heartbeats > loose_factor * nominal:
            findings.append(
                HypothesisFinding(
                    FindingSeverity.WARNING, name,
                    f"max_heartbeats={hyp.max_heartbeats} is more than "
                    f"{loose_factor:g}x the nominal rate — excessive "
                    "dispatch goes undetected",
                )
            )

    monitored = set(hypothesis.runnables)
    for pred, succ in hypothesis.flow_pairs:
        for endpoint in (pred, succ):
            if endpoint is not None and endpoint not in monitored:
                findings.append(
                    HypothesisFinding(
                        FindingSeverity.ERROR, endpoint,
                        "flow pair references an unmonitored runnable",
                    )
                )
    return findings


def is_deployable(findings: List[HypothesisFinding]) -> bool:
    """A hypothesis may be deployed when it has no ERROR findings."""
    return all(f.severity is not FindingSeverity.ERROR for f in findings)
