"""Timed event queue for the discrete-event kernel.

The queue is a classic binary-heap agenda.  Entries carry a monotonically
increasing sequence number so that events scheduled for the same instant
fire in FIFO order — important for reproducibility of preemption traces.
Cancellation is implemented by tombstoning, so ``cancel`` is O(1) and the
heap is compacted lazily.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple


class ScheduledEvent:
    """Handle for a scheduled callback; allows cancellation.

    ``persistent`` marks events that belong to the *world outside the
    ECU* — bus traffic in flight, plant-model ticks, externally injected
    faults, external monitors.  An ECU software reset clears only the
    ECU's own (non-persistent) events; the world keeps running.
    """

    __slots__ = (
        "when", "seq", "callback", "label", "cancelled", "persistent", "_queue"
    )

    def __init__(
        self,
        when: int,
        seq: int,
        callback: Callable[[], Any],
        label: str,
        queue: "EventQueue",
        persistent: bool = False,
    ):
        self.when = when
        self.seq = seq
        self.callback = callback
        self.label = label
        self.cancelled = False
        self.persistent = persistent
        self._queue = queue

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        if not self.cancelled:
            self.cancelled = True
            self._queue._live -= 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledEvent {self.label!r} @{self.when} ({state})>"


class EventQueue:
    """Priority queue of :class:`ScheduledEvent`, ordered by (time, seq)."""

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, ScheduledEvent]] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def schedule(
        self,
        when: int,
        callback: Callable[[], Any],
        label: str = "",
        *,
        persistent: bool = False,
    ) -> ScheduledEvent:
        """Schedule ``callback`` to run at absolute tick ``when``.

        ``persistent`` events survive :meth:`clear_transient` (an ECU
        software reset); use it for everything that models the world
        outside the resetting ECU.
        """
        if when < 0:
            raise ValueError(f"cannot schedule event in negative time: {when}")
        event = ScheduledEvent(
            when, next(self._counter), callback, label, self, persistent
        )
        heapq.heappush(self._heap, (when, event.seq, event))
        self._live += 1
        return event

    def next_time(self) -> Optional[int]:
        """Time of the earliest pending (non-cancelled) event, or ``None``."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0][0]

    def pop_next(self, now: int) -> Optional[ScheduledEvent]:
        """Remove and return the single earliest pending event with
        ``when <= now``, or ``None``.

        Dispatching events one at a time matters for correctness of an
        ECU software reset: a reset performed inside one callback must be
        able to cancel every event that has not fired yet, including
        events due at the very same instant.
        """
        while self._heap:
            when, _seq, event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            if when > now:
                return None
            heapq.heappop(self._heap)
            self._live -= 1
            return event
        return None

    def pop_due(self, now: int) -> List[ScheduledEvent]:
        """Remove and return every pending event with ``when <= now``."""
        due: List[ScheduledEvent] = []
        while self._heap:
            when, _seq, event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            if when > now:
                break
            heapq.heappop(self._heap)
            self._live -= 1
            due.append(event)
        return due

    def clear(self) -> None:
        """Drop every pending event (simulation teardown)."""
        for _when, _seq, event in self._heap:
            event.cancelled = True
        self._heap.clear()
        self._live = 0

    def clear_transient(self) -> None:
        """Drop non-persistent events only (ECU software reset): the
        ECU's own timers die, the outside world keeps running."""
        for _when, _seq, event in self._heap:
            if not event.persistent and not event.cancelled:
                event.cancel()
        self._drop_cancelled()

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
