"""Simulated time base for the discrete-event kernel.

All kernel time is integer **microseconds** so that the simulation is
fully deterministic (no floating point drift across platforms).  Helper
constructors are provided to express durations in the units the paper
uses: the ControlDesk plots of the paper have an x-axis "scalar of 10 ms",
so traces are commonly sampled in 10 ms steps.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Number of simulated ticks per microsecond (the base unit IS a microsecond).
TICKS_PER_US = 1
#: Ticks per millisecond.
TICKS_PER_MS = 1_000
#: Ticks per second.
TICKS_PER_S = 1_000_000


def us(value: float) -> int:
    """Duration of ``value`` microseconds in ticks."""
    return int(round(value * TICKS_PER_US))


def ms(value: float) -> int:
    """Duration of ``value`` milliseconds in ticks."""
    return int(round(value * TICKS_PER_MS))


def seconds(value: float) -> int:
    """Duration of ``value`` seconds in ticks."""
    return int(round(value * TICKS_PER_S))


def to_ms(ticks: int) -> float:
    """Convert ticks back to milliseconds (for reports and plots)."""
    return ticks / TICKS_PER_MS


def to_s(ticks: int) -> float:
    """Convert ticks back to seconds (for reports and plots)."""
    return ticks / TICKS_PER_S


@dataclass
class SimClock:
    """Monotonic simulated clock owned by the kernel.

    Only the kernel's event loop may advance the clock; every other
    component reads it.  ``now`` is the current simulation time in ticks.
    """

    now: int = 0

    def advance_to(self, when: int) -> None:
        """Move the clock forward to ``when``.

        Raises ``ValueError`` on any attempt to move backwards, which
        would indicate a corrupted event queue.
        """
        if when < self.now:
            raise ValueError(
                f"clock cannot move backwards: now={self.now}, requested={when}"
            )
        self.now = when

    def reset(self) -> None:
        """Rewind to time zero (used by ECU software reset)."""
        self.now = 0
