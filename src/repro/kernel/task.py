"""OSEK task model for the simulated kernel.

Tasks follow the OSEK/VDX state model: ``SUSPENDED`` → ``READY`` →
``RUNNING`` (→ ``WAITING`` for extended tasks).  A task's behaviour is a
generator that yields work items:

* :class:`Segment` — consume a fixed amount of CPU time, with optional
  callbacks at the start and end of the segment.  Runnables compile to
  segments (see :mod:`repro.kernel.runnable`).
* :class:`Wait` — block on an OSEK event mask (extended tasks only).

Using a generator keeps the task's control flow in ordinary Python while
letting the kernel interleave tasks deterministically: the kernel pulls
one work item at a time and accounts simulated CPU time for it, so
preemption can split a segment at any tick boundary.
"""

from __future__ import annotations

import enum
from typing import Callable, Generator, Iterable, Optional, Union

from .errors import KernelConfigError


class TaskState(enum.Enum):
    """OSEK task states (OSEK OS 2.2.3, ch. 4.2)."""

    SUSPENDED = "suspended"
    READY = "ready"
    RUNNING = "running"
    WAITING = "waiting"


class Segment:
    """A contiguous slice of CPU work executed by a task.

    ``on_start`` fires when the kernel first dispatches the segment;
    ``on_end`` fires when its full ``duration`` has been consumed.  A
    preempted segment resumes without re-firing ``on_start``.
    """

    __slots__ = ("duration", "on_start", "on_end", "label")

    def __init__(
        self,
        duration: int,
        on_start: Optional[Callable[[], None]] = None,
        on_end: Optional[Callable[[], None]] = None,
        label: str = "",
    ) -> None:
        if duration < 0:
            raise ValueError(f"segment duration must be >= 0, got {duration}")
        self.duration = duration
        self.on_start = on_start
        self.on_end = on_end
        self.label = label

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Segment {self.label!r} dur={self.duration}>"


class Wait:
    """Work item: block until any event in ``mask`` is set for the task."""

    __slots__ = ("mask",)

    def __init__(self, mask: int) -> None:
        if mask == 0:
            raise ValueError("cannot wait on an empty event mask")
        self.mask = mask

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Wait mask={self.mask:#x}>"


WorkItem = Union[Segment, Wait]
TaskBody = Callable[["Task"], Generator[WorkItem, None, None]]


class Task:
    """A configured OSEK task.

    Static configuration (name, priority, preemptability, activation
    limit, extended/basic) is fixed at construction; runtime state is
    managed exclusively by the kernel.
    """

    def __init__(
        self,
        name: str,
        priority: int,
        body: TaskBody,
        *,
        preemptable: bool = True,
        extended: bool = False,
        max_activations: int = 1,
        autostart: bool = False,
    ) -> None:
        if priority < 0:
            raise KernelConfigError(f"task {name!r}: priority must be >= 0")
        if max_activations < 1:
            raise KernelConfigError(f"task {name!r}: max_activations must be >= 1")
        if extended and max_activations != 1:
            # OSEK: extended tasks permit exactly one activation.
            raise KernelConfigError(
                f"task {name!r}: extended tasks allow only one activation"
            )
        self.name = name
        self.priority = priority
        self.body = body
        self.preemptable = preemptable
        self.extended = extended
        self.max_activations = max_activations
        self.autostart = autostart

        # --- runtime state (kernel-owned) ---
        self.state = TaskState.SUSPENDED
        self.pending_activations = 0
        self.dynamic_priority = priority
        self.generator: Optional[Generator[WorkItem, None, None]] = None
        self.current_segment: Optional[Segment] = None
        self.segment_remaining = 0
        self.segment_started = False
        self.waiting_mask = 0
        self.set_events = 0
        self.ready_since = 0  # activation order tiebreaker (seq number)
        self.activation_count = 0  # lifetime statistics
        self.preemption_count = 0

    # ------------------------------------------------------------------
    def reset_runtime_state(self) -> None:
        """Return the task to its pristine SUSPENDED configuration.

        Used on kernel start and on ECU software reset.  Lifetime
        statistics are cleared as well — a reset ECU starts from scratch.
        """
        self.state = TaskState.SUSPENDED
        self.pending_activations = 0
        self.dynamic_priority = self.priority
        self.generator = None
        self.current_segment = None
        self.segment_remaining = 0
        self.segment_started = False
        self.waiting_mask = 0
        self.set_events = 0
        self.ready_since = 0
        self.activation_count = 0
        self.preemption_count = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Task {self.name!r} prio={self.priority} state={self.state.value}>"


def sequence_body(items: Iterable[Callable[["Task"], Iterable[WorkItem]]]) -> TaskBody:
    """Build a task body that runs a fixed sequence of work-item factories.

    Each factory receives the task and returns an iterable of work items;
    the factories run in order on every activation.  This is the basic
    building block used to map a list of runnables onto a task.
    """
    factories = list(items)

    def body(task: "Task") -> Generator[WorkItem, None, None]:
        for factory in factories:
            for item in factory(task):
                yield item

    return body
