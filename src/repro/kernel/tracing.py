"""Execution tracing for the simulated kernel.

Every observable kernel occurrence (task activation, dispatch, preemption,
termination, runnable start/end, heartbeat indication, alarm expiry,
ISR entry, hook invocation, error) is appended to a :class:`Trace`.
The Software Watchdog never reads the trace — it only sees heartbeats,
exactly like on the real platform — but the analysis layer and the
test-suite use traces as ground truth for coverage and latency metrics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


class TraceKind(enum.Enum):
    """Categories of trace records."""

    TASK_ACTIVATE = "task_activate"
    TASK_START = "task_start"
    TASK_PREEMPT = "task_preempt"
    TASK_RESUME = "task_resume"
    TASK_WAIT = "task_wait"
    TASK_RELEASE = "task_release"
    TASK_TERMINATE = "task_terminate"
    RUNNABLE_START = "runnable_start"
    RUNNABLE_END = "runnable_end"
    HEARTBEAT = "heartbeat"
    ALARM_EXPIRE = "alarm_expire"
    ISR_ENTER = "isr_enter"
    ISR_EXIT = "isr_exit"
    HOOK = "hook"
    SERVICE_ERROR = "service_error"
    RESOURCE_GET = "resource_get"
    RESOURCE_RELEASE = "resource_release"
    ECU_RESET = "ecu_reset"
    WATCHDOG_CHECK = "watchdog_check"
    FAULT_INJECTED = "fault_injected"
    FAULT_REPORT = "fault_report"
    CUSTOM = "custom"


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped kernel occurrence."""

    time: int
    kind: TraceKind
    subject: str
    info: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extra = " ".join(f"{k}={v}" for k, v in self.info.items())
        return f"[{self.time:>10}] {self.kind.value:<16} {self.subject} {extra}".rstrip()


class Trace:
    """Append-only record of a simulation run with query helpers."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        self._records: List[TraceRecord] = []
        self._capacity = capacity
        self._listeners: List[Callable[[TraceRecord], None]] = []
        self.dropped = 0

    # ------------------------------------------------------------------
    def emit(self, record: TraceRecord) -> None:
        """Append a record, honouring the optional ring capacity."""
        if self._capacity is not None and len(self._records) >= self._capacity:
            self._records.pop(0)
            self.dropped += 1
        self._records.append(record)
        for listener in self._listeners:
            listener(record)

    def record(self, time: int, kind: TraceKind, subject: str, **info: Any) -> None:
        """Convenience constructor + emit."""
        self.emit(TraceRecord(time=time, kind=kind, subject=subject, info=info))

    def subscribe(self, listener: Callable[[TraceRecord], None]) -> None:
        """Register a live listener invoked for every new record."""
        self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[TraceRecord], None]) -> None:
        self._listeners.remove(listener)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> TraceRecord:
        return self._records[index]

    def clear(self) -> None:
        self._records.clear()
        self.dropped = 0

    # ------------------------------------------------------------------
    def filter(
        self,
        kind: Optional[TraceKind] = None,
        subject: Optional[str] = None,
        start: Optional[int] = None,
        end: Optional[int] = None,
    ) -> List[TraceRecord]:
        """Records matching all the given constraints."""
        out = []
        for rec in self._records:
            if kind is not None and rec.kind is not kind:
                continue
            if subject is not None and rec.subject != subject:
                continue
            if start is not None and rec.time < start:
                continue
            if end is not None and rec.time >= end:
                continue
            out.append(rec)
        return out

    def count(self, kind: TraceKind, subject: Optional[str] = None) -> int:
        """Number of records of ``kind`` (optionally for one subject)."""
        return len(self.filter(kind=kind, subject=subject))

    def first(self, kind: TraceKind, subject: Optional[str] = None) -> Optional[TraceRecord]:
        """Earliest record of ``kind`` or ``None``."""
        for rec in self._records:
            if rec.kind is kind and (subject is None or rec.subject == subject):
                return rec
        return None

    def last(self, kind: TraceKind, subject: Optional[str] = None) -> Optional[TraceRecord]:
        """Latest record of ``kind`` or ``None``."""
        for rec in reversed(self._records):
            if rec.kind is kind and (subject is None or rec.subject == subject):
                return rec
        return None

    def subjects(self, kind: Optional[TraceKind] = None) -> List[str]:
        """Distinct subjects seen (optionally restricted to one kind)."""
        seen: Dict[str, None] = {}
        for rec in self._records:
            if kind is None or rec.kind is kind:
                seen.setdefault(rec.subject, None)
        return list(seen)

    def dump(self, limit: Optional[int] = None) -> str:
        """Human-readable rendering (for debugging and examples)."""
        records = self._records if limit is None else self._records[-limit:]
        return "\n".join(str(rec) for rec in records)
