"""Interrupt service routines for the simulated kernel.

ISRs model category-2 OSEK interrupts: they run above every task
priority, may call a restricted set of system services (ActivateTask,
SetEvent, alarm manipulation) and — when given a nonzero duration —
steal CPU time from whichever task was running, pushing that task's
segment completion out.  This "time theft" model is how interrupt load
perturbs application timing in the simulation, which matters for
arrival-rate and aliveness experiments under bus load.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from .errors import KernelConfigError
from .events import ScheduledEvent
from .scheduler import Kernel
from .tracing import TraceKind


class Isr:
    """A category-2 interrupt service routine."""

    def __init__(
        self,
        name: str,
        kernel: Kernel,
        handler: Callable[[], None],
        *,
        duration: int = 0,
    ) -> None:
        if duration < 0:
            raise KernelConfigError(f"isr {name!r}: duration must be >= 0")
        self.name = name
        self.kernel = kernel
        self.handler = handler
        self.duration = duration
        self.fire_count = 0

    # ------------------------------------------------------------------
    def fire(self) -> None:
        """Execute the ISR now (kernel context)."""
        kernel = self.kernel
        kernel.trace.record(kernel.clock.now, TraceKind.ISR_ENTER, self.name)
        self.fire_count += 1
        if self.duration > 0 and kernel.running is not None:
            running = kernel.running
            if running.current_segment is not None:
                # The interrupted task loses `duration` ticks of CPU: its
                # current segment takes that much longer to complete.
                running.segment_remaining += self.duration
        self.handler()
        kernel.trace.record(kernel.clock.now, TraceKind.ISR_EXIT, self.name)

    def schedule_at(self, when: int) -> ScheduledEvent:
        """Raise the interrupt at absolute tick ``when``."""
        return self.kernel.queue.schedule(when, self.fire, label=f"isr:{self.name}")

    def schedule_periodic(self, period: int, start: Optional[int] = None) -> None:
        """Raise the interrupt every ``period`` ticks, forever."""
        if period <= 0:
            raise KernelConfigError(f"isr {self.name!r}: period must be > 0")
        first = self.kernel.clock.now + period if start is None else start

        def fire_and_rearm() -> None:
            self.fire()
            self.kernel.queue.schedule(
                self.kernel.clock.now + period, fire_and_rearm, label=f"isr:{self.name}"
            )

        self.kernel.queue.schedule(first, fire_and_rearm, label=f"isr:{self.name}")


class InterruptController:
    """Registry of the ISRs of one simulated ECU."""

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self.isrs: Dict[str, Isr] = {}

    def register(
        self, name: str, handler: Callable[[], None], *, duration: int = 0
    ) -> Isr:
        """Create and register a new ISR."""
        if name in self.isrs:
            raise KernelConfigError(f"duplicate isr name {name!r}")
        isr = Isr(name, self.kernel, handler, duration=duration)
        self.isrs[name] = isr
        return isr

    def get(self, name: str) -> Isr:
        return self.isrs[name]
