"""OSEK-style status codes and kernel exceptions.

The OSEK/VDX OS specification defines a small set of status codes that
system services return.  The simulated kernel mirrors those codes so the
dependability services built on top (the Software Watchdog, the Fault
Management Framework) observe the same error surface an OSEK conforming
implementation would present.
"""

from __future__ import annotations

import enum


class StatusType(enum.Enum):
    """Status codes returned by OSEK system services (OSEK OS 2.2.3, ch. 13)."""

    E_OK = 0
    E_OS_ACCESS = 1
    E_OS_CALLEVEL = 2
    E_OS_ID = 3
    E_OS_LIMIT = 4
    E_OS_NOFUNC = 5
    E_OS_RESOURCE = 6
    E_OS_STATE = 7
    E_OS_VALUE = 8


class KernelError(Exception):
    """Base class for all simulated-kernel errors."""


class KernelConfigError(KernelError):
    """Raised for invalid static configuration (bad priorities, duplicate ids...)."""


class ServiceError(KernelError):
    """Raised when a system service is used incorrectly at runtime.

    Carries the OSEK :class:`StatusType` so an ``ErrorHook`` can inspect it,
    exactly as the OSEK extended-status error hook receives the code.
    """

    def __init__(self, status: StatusType, message: str = "") -> None:
        super().__init__(f"{status.name}: {message}" if message else status.name)
        self.status = status


class SchedulingError(KernelError):
    """Raised when the dispatcher reaches an inconsistent state (kernel bug)."""


class SimulationEnded(KernelError):
    """Raised internally to stop the simulation loop (e.g. ECU shutdown)."""
