"""OSEK counters and alarms.

An OSEK *counter* is a tick source (here derived from simulated time);
an *alarm* is attached to a counter and, on expiry, performs one of the
OSEK alarm actions: activate a task, set an event, or invoke a callback.
Alarms may be one-shot or cyclic; cyclic alarms are the canonical way to
release periodic tasks, which is how every periodic runnable in the
reproduced system (application runnables, the Software Watchdog check
task, bus communication tasks) is driven.

Rather than simulating discrete counter-hardware ticks (which would
flood the event queue), expiries are computed arithmetically and placed
directly on the kernel's timed event queue.  This is behaviourally
identical for any observer.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from .errors import KernelConfigError, ServiceError, StatusType
from .events import ScheduledEvent
from .scheduler import Kernel
from .tracing import TraceKind


class OsCounter:
    """An OSEK counter: converts simulated ticks to counter increments."""

    def __init__(self, name: str, ticks_per_increment: int = 1, max_allowed_value: int = 2**31) -> None:
        if ticks_per_increment < 1:
            raise KernelConfigError(
                f"counter {name!r}: ticks_per_increment must be >= 1"
            )
        self.name = name
        self.ticks_per_increment = ticks_per_increment
        self.max_allowed_value = max_allowed_value

    def value_at(self, time: int) -> int:
        """Counter value at simulated tick ``time`` (wrapping)."""
        return (time // self.ticks_per_increment) % (self.max_allowed_value + 1)

    def to_ticks(self, increments: int) -> int:
        """Convert counter increments to simulated ticks."""
        return increments * self.ticks_per_increment


class Alarm:
    """An OSEK alarm attached to a counter."""

    def __init__(
        self,
        name: str,
        kernel: Kernel,
        counter: OsCounter,
        action: Callable[[], None],
        action_label: str = "",
    ) -> None:
        self.name = name
        self.kernel = kernel
        self.counter = counter
        self.action = action
        self.action_label = action_label
        self.cycle = 0  # in counter increments; 0 means one-shot
        self.armed = False
        self.expiry_count = 0
        self._event: Optional[ScheduledEvent] = None

    # ------------------------------------------------------------------
    def set_rel(self, offset: int, cycle: int = 0) -> StatusType:
        """OSEK SetRelAlarm: expire ``offset`` counter increments from now."""
        if self.armed:
            return self._error(StatusType.E_OS_STATE, "alarm already armed")
        if offset <= 0:
            return self._error(StatusType.E_OS_VALUE, f"bad offset {offset}")
        if cycle < 0:
            return self._error(StatusType.E_OS_VALUE, f"bad cycle {cycle}")
        self.cycle = cycle
        self._arm(self.kernel.clock.now + self.counter.to_ticks(offset))
        return StatusType.E_OK

    def set_abs(self, start: int, cycle: int = 0) -> StatusType:
        """OSEK SetAbsAlarm: expire at absolute counter value ``start``.

        For simplicity ``start`` is interpreted as an absolute simulated
        tick (the simulation starts at counter value zero, so absolute
        counter values and absolute ticks are related by
        ``ticks_per_increment``).
        """
        if self.armed:
            return self._error(StatusType.E_OS_STATE, "alarm already armed")
        when = self.counter.to_ticks(start)
        if when <= self.kernel.clock.now:
            return self._error(StatusType.E_OS_VALUE, f"start {start} in the past")
        if cycle < 0:
            return self._error(StatusType.E_OS_VALUE, f"bad cycle {cycle}")
        self.cycle = cycle
        self._arm(when)
        return StatusType.E_OK

    def cancel(self) -> StatusType:
        """OSEK CancelAlarm."""
        if not self.armed:
            return self._error(StatusType.E_OS_NOFUNC, "alarm not armed")
        if self._event is not None:
            self._event.cancel()
            self._event = None
        self.armed = False
        return StatusType.E_OK

    def time_to_expiry(self) -> Optional[int]:
        """Ticks until the next expiry (OSEK GetAlarm), or None if idle."""
        if not self.armed or self._event is None:
            return None
        return max(0, self._event.when - self.kernel.clock.now)

    # ------------------------------------------------------------------
    def _arm(self, when: int) -> None:
        self.armed = True
        self._event = self.kernel.queue.schedule(
            when, self._expire, label=f"alarm:{self.name}"
        )

    def _expire(self) -> None:
        self.expiry_count += 1
        self.kernel.trace.record(
            self.kernel.clock.now,
            TraceKind.ALARM_EXPIRE,
            self.name,
            action=self.action_label,
        )
        if self.cycle > 0:
            self._arm(self.kernel.clock.now + self.counter.to_ticks(self.cycle))
        else:
            self.armed = False
            self._event = None
        self.action()

    def _error(self, status: StatusType, message: str) -> StatusType:
        self.kernel.trace.record(
            self.kernel.clock.now,
            TraceKind.SERVICE_ERROR,
            f"alarm {self.name!r}: {message}",
            status=status.name,
        )
        return status


class AlarmTable:
    """Factory/registry for the alarms of one kernel instance."""

    def __init__(self, kernel: Kernel, system_counter: Optional[OsCounter] = None) -> None:
        self.kernel = kernel
        self.system_counter = system_counter or OsCounter("SystemCounter")
        self.alarms: Dict[str, Alarm] = {}

    def alarm_activate_task(
        self, name: str, task_name: str, counter: Optional[OsCounter] = None
    ) -> Alarm:
        """Create an alarm whose action is ActivateTask(task_name)."""
        return self._add(
            name,
            counter,
            lambda: self.kernel.activate_task(task_name),
            f"ActivateTask({task_name})",
        )

    def alarm_set_event(
        self, name: str, task_name: str, mask: int, counter: Optional[OsCounter] = None
    ) -> Alarm:
        """Create an alarm whose action is SetEvent(task_name, mask)."""
        return self._add(
            name,
            counter,
            lambda: self.kernel.set_event(task_name, mask),
            f"SetEvent({task_name}, {mask:#x})",
        )

    def alarm_callback(
        self,
        name: str,
        callback: Callable[[], None],
        counter: Optional[OsCounter] = None,
    ) -> Alarm:
        """Create an alarm whose action is an alarm-callback routine."""
        return self._add(name, counter, callback, "callback")

    def get(self, name: str) -> Alarm:
        alarm = self.alarms.get(name)
        if alarm is None:
            raise ServiceError(StatusType.E_OS_ID, f"alarm {name!r}")
        return alarm

    def cancel_all(self) -> None:
        """Cancel every armed alarm (used on ECU software reset)."""
        for alarm in self.alarms.values():
            if alarm.armed:
                alarm.cancel()

    def rearm_after_reset(self) -> None:
        """Re-arm every cyclic alarm after an ECU software reset.

        The kernel's event queue was cleared by the reset, so each
        alarm's pending expiry event is gone; cyclic alarms (the autosar-
        style schedule table of the ECU) are re-armed at their cycle,
        one-shot alarms stay disarmed (their single expiry is lost, as it
        would be on real hardware).
        """
        for alarm in self.alarms.values():
            alarm.armed = False
            alarm._event = None
            if alarm.cycle > 0:
                alarm.set_rel(alarm.cycle, alarm.cycle)

    def _add(
        self, name: str, counter: Optional[OsCounter], action: Callable[[], None], label: str
    ) -> Alarm:
        if name in self.alarms:
            raise KernelConfigError(f"duplicate alarm name {name!r}")
        alarm = Alarm(name, self.kernel, counter or self.system_counter, action, label)
        self.alarms[name] = alarm
        return alarm
