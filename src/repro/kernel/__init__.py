"""Discrete-event OSEK-conforming kernel simulation.

This package is the operating-system substrate the paper's Software
Watchdog is integrated with: an OSEK/VDX-style fixed-priority preemptive
kernel with tasks, runnables, counters/alarms, resources (priority
ceiling), OSEK events, ISRs, hooks, and full execution tracing — all
driven by a deterministic discrete-event simulation of CPU time.
"""

from .alarms import Alarm, AlarmTable, OsCounter
from .clock import SimClock, ms, seconds, to_ms, to_s, us
from .errors import (
    KernelConfigError,
    KernelError,
    SchedulingError,
    ServiceError,
    SimulationEnded,
    StatusType,
)
from .events import EventQueue, ScheduledEvent
from .isr import InterruptController, Isr
from .runnable import Runnable, SequenceChart, runnable_sequence_body
from .schedtable import ExpiryPoint, ScheduleTable
from .scheduler import Hooks, Kernel, Resource
from .task import Segment, Task, TaskState, Wait, sequence_body
from .tracing import Trace, TraceKind, TraceRecord

__all__ = [
    "Alarm",
    "AlarmTable",
    "EventQueue",
    "Hooks",
    "InterruptController",
    "Isr",
    "Kernel",
    "KernelConfigError",
    "KernelError",
    "OsCounter",
    "Resource",
    "ExpiryPoint",
    "Runnable",
    "ScheduledEvent",
    "SchedulingError",
    "ScheduleTable",
    "Segment",
    "SequenceChart",
    "ServiceError",
    "SimClock",
    "SimulationEnded",
    "StatusType",
    "Task",
    "TaskState",
    "Trace",
    "TraceKind",
    "TraceRecord",
    "Wait",
    "ms",
    "runnable_sequence_body",
    "seconds",
    "sequence_body",
    "to_ms",
    "to_s",
    "us",
]
