"""AUTOSAR-OS-style schedule tables.

OSEK alarms activate one task per expiry; AUTOSAR OS (which the paper's
related work cites for execution-time monitoring) generalises this to
*schedule tables*: a cyclic series of expiry points, each with a fixed
offset within the table period and a list of actions (task activations /
event settings).  Offsets stagger task releases deterministically, which
eliminates the simultaneous-release contention of same-period alarms —
the classic jitter-reduction mechanism for runnable pipelines like
SafeSpeed's (sample at +0, compute at +2 ms, actuate at +4 ms on
*separate* tasks).

The table schedules its expiry points arithmetically on the kernel's
event queue (no counter-tick flood), mirroring the alarm implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from .errors import KernelConfigError, StatusType
from .events import ScheduledEvent
from .scheduler import Kernel
from .tracing import TraceKind


@dataclass
class ExpiryPoint:
    """One expiry point: an offset within the table plus its actions."""

    offset: int
    actions: List[Callable[[], None]] = field(default_factory=list)
    labels: List[str] = field(default_factory=list)


class ScheduleTable:
    """A cyclic table of expiry points."""

    def __init__(self, name: str, kernel: Kernel, *, period: int) -> None:
        if period <= 0:
            raise KernelConfigError(f"schedule table {name!r}: period must be > 0")
        self.name = name
        self.kernel = kernel
        self.period = period
        self.points: List[ExpiryPoint] = []
        self.running = False
        self.iteration_count = 0
        self._events: List[ScheduledEvent] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _point_at(self, offset: int) -> ExpiryPoint:
        if not 0 <= offset < self.period:
            raise KernelConfigError(
                f"schedule table {self.name!r}: offset {offset} outside period"
            )
        for point in self.points:
            if point.offset == offset:
                return point
        point = ExpiryPoint(offset)
        self.points.append(point)
        self.points.sort(key=lambda p: p.offset)
        return point

    def add_task_activation(self, offset: int, task_name: str) -> "ScheduleTable":
        """Activate ``task_name`` at ``offset`` within every period."""
        point = self._point_at(offset)
        point.actions.append(lambda: self.kernel.activate_task(task_name))
        point.labels.append(f"ActivateTask({task_name})")
        return self

    def add_event_setting(self, offset: int, task_name: str, mask: int) -> "ScheduleTable":
        """Set an event for ``task_name`` at ``offset`` within every period."""
        point = self._point_at(offset)
        point.actions.append(lambda: self.kernel.set_event(task_name, mask))
        point.labels.append(f"SetEvent({task_name}, {mask:#x})")
        return self

    def add_callback(self, offset: int, callback: Callable[[], None],
                     label: str = "callback") -> "ScheduleTable":
        """Run an arbitrary callback at ``offset`` within every period."""
        point = self._point_at(offset)
        point.actions.append(callback)
        point.labels.append(label)
        return self

    # ------------------------------------------------------------------
    # control (AUTOSAR StartScheduleTableRel / StopScheduleTable)
    # ------------------------------------------------------------------
    def start_rel(self, offset: int = 0) -> StatusType:
        """Start the table ``offset`` ticks from now."""
        if self.running:
            return StatusType.E_OS_STATE
        if not self.points:
            return StatusType.E_OS_NOFUNC
        if offset < 0:
            return StatusType.E_OS_VALUE
        self.running = True
        self._schedule_iteration(self.kernel.clock.now + offset)
        return StatusType.E_OK

    def stop(self) -> StatusType:
        """Stop the table; pending expiry points of the current iteration
        are cancelled."""
        if not self.running:
            return StatusType.E_OS_NOFUNC
        self.running = False
        for event in self._events:
            event.cancel()
        self._events.clear()
        return StatusType.E_OK

    def next_expiry(self) -> Optional[int]:
        """Time of the earliest pending expiry point, or None."""
        pending = [e.when for e in self._events if not e.cancelled]
        return min(pending) if pending else None

    # ------------------------------------------------------------------
    def _schedule_iteration(self, table_start: int) -> None:
        self._events = [
            self.kernel.queue.schedule(
                table_start + point.offset,
                lambda p=point: self._expire(p),
                label=f"schedtable:{self.name}@{point.offset}",
            )
            for point in self.points
        ]
        self._events.append(
            self.kernel.queue.schedule(
                table_start + self.period,
                lambda: self._next_iteration(table_start + self.period),
                label=f"schedtable:{self.name}:wrap",
            )
        )

    def _next_iteration(self, table_start: int) -> None:
        if not self.running:
            return
        self.iteration_count += 1
        self._schedule_iteration(table_start)

    def _expire(self, point: ExpiryPoint) -> None:
        if not self.running:
            return
        self.kernel.trace.record(
            self.kernel.clock.now,
            TraceKind.ALARM_EXPIRE,
            f"{self.name}@{point.offset}",
            action="; ".join(point.labels),
        )
        for action in point.actions:
            action()
