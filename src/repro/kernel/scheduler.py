"""Fixed-priority preemptive scheduler and kernel event loop.

The :class:`Kernel` is a discrete-event simulation of an OSEK-conforming
operating system.  It owns the clock, the timed event queue, the task
set, resources, alarms and hooks, and exposes the OSEK system services
(``ActivateTask``, ``TerminateTask`` via generator return, ``ChainTask``,
``SetEvent``/``WaitEvent``, ``GetResource``/``ReleaseResource``,
``ShutdownOS``).

Scheduling follows the OSEK rules:

* highest dynamic priority runs; FIFO among equal priorities,
* a preempted task stays at the head of its priority's ready queue,
* non-preemptable tasks run to completion once dispatched,
* resources raise the holder to the resource ceiling (OSEK priority
  ceiling protocol, deadlock and priority-inversion free on one core).

CPU time is simulated: a task's work is a sequence of
:class:`~repro.kernel.task.Segment` items, each consuming a fixed number
of ticks.  Preemption may split a segment at any tick.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional

from .clock import SimClock
from .errors import (
    KernelConfigError,
    SchedulingError,
    ServiceError,
    StatusType,
)
from .events import EventQueue, ScheduledEvent
from .task import Segment, Task, TaskState, Wait
from .tracing import Trace, TraceKind

#: Safety valve: maximum consecutive zero-duration work items pulled from a
#: single task before the kernel declares a livelock (a buggy body yielding
#: an infinite stream of zero-time segments).
_MAX_ZERO_ITEMS = 100_000


class Hooks:
    """OSEK hook routines.  Each hook is a list of callables."""

    def __init__(self) -> None:
        self.startup: List[Callable[["Kernel"], None]] = []
        self.shutdown: List[Callable[["Kernel"], None]] = []
        self.pre_task: List[Callable[["Kernel", Task], None]] = []
        self.post_task: List[Callable[["Kernel", Task], None]] = []
        self.error: List[Callable[["Kernel", StatusType, str], None]] = []


class Resource:
    """OSEK resource with priority-ceiling semantics."""

    def __init__(self, name: str, ceiling: int) -> None:
        self.name = name
        self.ceiling = ceiling
        self.holder: Optional[Task] = None
        self.saved_priority = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Resource {self.name!r} ceiling={self.ceiling}>"


class Kernel:
    """Discrete-event OSEK kernel simulation."""

    def __init__(self, trace_capacity: Optional[int] = None) -> None:
        self.clock = SimClock()
        self.queue = EventQueue()
        self.trace = Trace(trace_capacity)
        self.hooks = Hooks()
        self.tasks: Dict[str, Task] = {}
        self.resources: Dict[str, Resource] = {}
        self.running: Optional[Task] = None
        self.started = False
        self.shutdown_requested = False
        self.cpu_busy_ticks = 0
        self.task_cpu_ticks: Dict[str, int] = {}
        self.reset_count = 0
        self._seq = itertools.count(1)
        self._ready: List[Task] = []
        self._chain_target: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # static configuration
    # ------------------------------------------------------------------
    def add_task(self, task: Task) -> Task:
        """Register a task; names must be unique."""
        if self.started:
            raise KernelConfigError("cannot add tasks after the kernel started")
        if task.name in self.tasks:
            raise KernelConfigError(f"duplicate task name {task.name!r}")
        self.tasks[task.name] = task
        self.task_cpu_ticks[task.name] = 0
        return task

    def add_resource(self, name: str, ceiling: Optional[int] = None) -> Resource:
        """Register a resource.

        If ``ceiling`` is omitted it defaults to the highest priority of
        any registered task (a conservative, always-safe ceiling).
        """
        if name in self.resources:
            raise KernelConfigError(f"duplicate resource name {name!r}")
        if ceiling is None:
            if not self.tasks:
                raise KernelConfigError(
                    f"resource {name!r}: cannot infer ceiling with no tasks"
                )
            ceiling = max(t.priority for t in self.tasks.values())
        resource = Resource(name, ceiling)
        self.resources[name] = resource
        return resource

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Run startup hooks and activate autostart tasks (idempotent)."""
        if self.started:
            return
        self.started = True
        for hook in self.hooks.startup:
            hook(self)
        self.trace.record(self.clock.now, TraceKind.HOOK, "StartupHook")
        for task in self.tasks.values():
            if task.autostart:
                self.activate_task(task.name)

    def shutdown_os(self, status: StatusType = StatusType.E_OK) -> None:
        """OSEK ShutdownOS: stop dispatching after the current instant."""
        self.shutdown_requested = True
        for hook in self.hooks.shutdown:
            hook(self)
        self.trace.record(
            self.clock.now, TraceKind.HOOK, "ShutdownHook", status=status.name
        )

    def soft_reset(self) -> None:
        """ECU software reset: drop all state and restart the OS.

        The simulated global clock keeps running (the world outside the
        ECU does not stop), but every task returns to SUSPENDED, all
        pending timed events are cancelled, and startup runs again.
        """
        self.trace.record(self.clock.now, TraceKind.ECU_RESET, "kernel")
        self.queue.clear_transient()
        self.running = None
        self._ready.clear()
        self._chain_target.clear()
        self.shutdown_requested = False
        for resource in self.resources.values():
            resource.holder = None
        for task in self.tasks.values():
            task.reset_runtime_state()
        self.reset_count += 1
        self.started = False
        self.start()

    # ------------------------------------------------------------------
    # OSEK system services
    # ------------------------------------------------------------------
    def activate_task(self, name: str) -> StatusType:
        """OSEK ActivateTask."""
        task = self.tasks.get(name)
        if task is None:
            return self._service_error(StatusType.E_OS_ID, f"ActivateTask({name!r})")
        if task.pending_activations >= task.max_activations:
            return self._service_error(
                StatusType.E_OS_LIMIT, f"ActivateTask({name!r}): too many activations"
            )
        task.pending_activations += 1
        task.activation_count += 1
        self.trace.record(self.clock.now, TraceKind.TASK_ACTIVATE, name)
        if task.state is TaskState.SUSPENDED:
            self._make_ready(task)
        return StatusType.E_OK

    def chain_task(self, current: Task, target: str) -> StatusType:
        """OSEK ChainTask: activate ``target`` when ``current`` terminates.

        Must be invoked from within ``current``'s body (e.g. from a
        segment callback of its final segment).
        """
        if target not in self.tasks:
            return self._service_error(StatusType.E_OS_ID, f"ChainTask({target!r})")
        self._chain_target[current.name] = target
        return StatusType.E_OK

    def set_event(self, name: str, mask: int) -> StatusType:
        """OSEK SetEvent: set events for an extended task, releasing it."""
        task = self.tasks.get(name)
        if task is None:
            return self._service_error(StatusType.E_OS_ID, f"SetEvent({name!r})")
        if not task.extended:
            return self._service_error(
                StatusType.E_OS_ACCESS, f"SetEvent({name!r}): not an extended task"
            )
        if task.state is TaskState.SUSPENDED:
            return self._service_error(
                StatusType.E_OS_STATE, f"SetEvent({name!r}): task suspended"
            )
        task.set_events |= mask
        if task.state is TaskState.WAITING and task.set_events & task.waiting_mask:
            task.waiting_mask = 0
            self.trace.record(self.clock.now, TraceKind.TASK_RELEASE, name)
            self._make_ready(task)
        return StatusType.E_OK

    def clear_event(self, task: Task, mask: int) -> StatusType:
        """OSEK ClearEvent (a task may only clear its own events)."""
        task.set_events &= ~mask
        return StatusType.E_OK

    def get_event(self, name: str) -> int:
        """OSEK GetEvent: current event mask of a task."""
        task = self.tasks.get(name)
        if task is None:
            raise ServiceError(StatusType.E_OS_ID, f"GetEvent({name!r})")
        return task.set_events

    def get_resource(self, task: Task, name: str) -> StatusType:
        """OSEK GetResource: occupy a resource, raising to its ceiling."""
        resource = self.resources.get(name)
        if resource is None:
            return self._service_error(StatusType.E_OS_ID, f"GetResource({name!r})")
        if resource.holder is not None:
            return self._service_error(
                StatusType.E_OS_ACCESS,
                f"GetResource({name!r}): already held by {resource.holder.name!r}",
            )
        if task.dynamic_priority > resource.ceiling:
            return self._service_error(
                StatusType.E_OS_ACCESS,
                f"GetResource({name!r}): task priority above ceiling",
            )
        resource.holder = task
        resource.saved_priority = task.dynamic_priority
        task.dynamic_priority = max(task.dynamic_priority, resource.ceiling)
        self.trace.record(
            self.clock.now, TraceKind.RESOURCE_GET, name, task=task.name
        )
        return StatusType.E_OK

    def release_resource(self, task: Task, name: str) -> StatusType:
        """OSEK ReleaseResource: free a resource, restoring priority."""
        resource = self.resources.get(name)
        if resource is None:
            return self._service_error(StatusType.E_OS_ID, f"ReleaseResource({name!r})")
        if resource.holder is not task:
            return self._service_error(
                StatusType.E_OS_NOFUNC, f"ReleaseResource({name!r}): not the holder"
            )
        resource.holder = None
        task.dynamic_priority = resource.saved_priority
        self.trace.record(
            self.clock.now, TraceKind.RESOURCE_RELEASE, name, task=task.name
        )
        return StatusType.E_OK

    def force_terminate(self, name: str) -> StatusType:
        """Forcibly return a task to SUSPENDED (fault-treatment primitive).

        This is the OS service the Fault Management Framework uses to
        terminate/restart tasks of faulty applications (§3.4).  The
        currently running task cannot be force-terminated (it would pull
        the stack out from under an in-flight callback); callers run in
        a higher-priority context, so the target is never running.
        """
        task = self.tasks.get(name)
        if task is None:
            return self._service_error(StatusType.E_OS_ID, f"force_terminate({name!r})")
        if task is self.running:
            return self._service_error(
                StatusType.E_OS_STATE, f"force_terminate({name!r}): task is running"
            )
        for resource in self.resources.values():
            if resource.holder is task:
                resource.holder = None
        if task in self._ready:
            self._ready.remove(task)
        self._chain_target.pop(name, None)
        task.reset_runtime_state()
        self.trace.record(
            self.clock.now, TraceKind.TASK_TERMINATE, name, forced=True
        )
        return StatusType.E_OK

    def schedule_at(
        self, when: int, callback: Callable[[], None], label: str = ""
    ) -> ScheduledEvent:
        """Schedule an arbitrary kernel-context callback (ISR-like)."""
        return self.queue.schedule(when, callback, label)

    def schedule_after(
        self, delay: int, callback: Callable[[], None], label: str = ""
    ) -> ScheduledEvent:
        """Schedule a callback ``delay`` ticks from now."""
        return self.queue.schedule(self.clock.now + delay, callback, label)

    # ------------------------------------------------------------------
    # simulation loop
    # ------------------------------------------------------------------
    def run_until(self, end_time: int) -> None:
        """Advance the simulation until ``end_time`` (inclusive of events
        at ``end_time`` itself) or until ShutdownOS."""
        self.start()
        while self.clock.now <= end_time and not self.shutdown_requested:
            if not self._step(end_time):
                break
        if not self.shutdown_requested and self.clock.now < end_time:
            self.clock.advance_to(end_time)

    def run_for(self, duration: int) -> None:
        """Advance the simulation by ``duration`` ticks."""
        self.run_until(self.clock.now + duration)

    def _step(self, end_time: int) -> bool:
        """Execute one scheduling quantum.  Returns False when idle with
        no future events within the horizon."""
        self._fire_due()
        self._dispatch()
        task = self.running
        if task is None:
            next_time = self.queue.next_time()
            if next_time is None or next_time > end_time:
                return False
            self.clock.advance_to(next_time)
            return True

        if not self._ensure_segment(task):
            # Task terminated or blocked while pulling work; loop again.
            return True

        segment = task.current_segment
        assert segment is not None
        if not task.segment_started:
            task.segment_started = True
            if segment.on_start is not None:
                segment.on_start()
            # Callbacks may have changed the world (activated tasks...).
            if self.running is not task or task.current_segment is not segment:
                return True

        finish_time = self.clock.now + task.segment_remaining
        horizon = min(finish_time, end_time)
        next_time = self.queue.next_time()
        if next_time is not None and next_time < horizon:
            horizon = next_time
        consumed = horizon - self.clock.now
        if consumed > 0:
            task.segment_remaining -= consumed
            self.cpu_busy_ticks += consumed
            self.task_cpu_ticks[task.name] += consumed
            self.clock.advance_to(horizon)
        if task.segment_remaining == 0:
            task.current_segment = None
            task.segment_started = False
            if segment.on_end is not None:
                segment.on_end()
            if self.running is task and task.current_segment is None:
                # Fetch the next work item in the same instant: a task
                # whose last segment just finished terminates *now*, as
                # OSEK's TerminateTask runs contiguously with the task's
                # final instructions — before any event due at this tick
                # can preempt a conceptually-finished task.
                self._ensure_segment(task)
            return True
        if consumed == 0:
            # end_time reached mid-segment; no due events remain at `now`.
            return False
        return True

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _fire_due(self) -> None:
        # One event at a time: a callback may reset the ECU, which must
        # be able to cancel events due at this same instant.
        while True:
            event = self.queue.pop_next(self.clock.now)
            if event is None:
                return
            event.callback()

    def _make_ready(self, task: Task) -> None:
        """Insert a task at the back of its priority's ready queue."""
        task.state = TaskState.READY
        task.ready_since = next(self._seq)
        if task not in self._ready:
            self._ready.append(task)

    def _pick_best_ready(self) -> Optional[Task]:
        best: Optional[Task] = None
        for task in self._ready:
            if best is None:
                best = task
            elif task.dynamic_priority > best.dynamic_priority:
                best = task
            elif (
                task.dynamic_priority == best.dynamic_priority
                and task.ready_since < best.ready_since
            ):
                best = task
        return best

    def _dispatch(self) -> None:
        best = self._pick_best_ready()
        current = self.running
        if current is None:
            if best is not None:
                self._switch_to(best)
            return
        if best is None:
            return
        if not current.preemptable:
            return
        if best.dynamic_priority > current.dynamic_priority:
            self._preempt(current)
            self._switch_to(best)

    def _preempt(self, task: Task) -> None:
        task.state = TaskState.READY
        task.preemption_count += 1
        # OSEK: a preempted task is treated as the oldest in its priority
        # class, so it keeps its (small) ready_since sequence number.
        if task not in self._ready:
            self._ready.append(task)
        self.running = None
        self.trace.record(self.clock.now, TraceKind.TASK_PREEMPT, task.name)

    def _switch_to(self, task: Task) -> None:
        self._ready.remove(task)
        task.state = TaskState.RUNNING
        self.running = task
        if task.generator is None:
            task.generator = task.body(task)
            for hook in self.hooks.pre_task:
                hook(self, task)
            self.trace.record(self.clock.now, TraceKind.TASK_START, task.name)
        else:
            self.trace.record(self.clock.now, TraceKind.TASK_RESUME, task.name)

    def _ensure_segment(self, task: Task) -> bool:
        """Pull work items until the task has a nonzero segment, blocks,
        or terminates.  Returns True when a segment (possibly zero-length,
        already handled) is pending for execution."""
        zero_items = 0
        while task.current_segment is None:
            assert task.generator is not None
            try:
                item = next(task.generator)
            except StopIteration:
                self._terminate(task)
                return False
            if isinstance(item, Segment):
                task.current_segment = item
                task.segment_remaining = item.duration
                task.segment_started = False
                if item.duration == 0:
                    zero_items += 1
                    if zero_items > _MAX_ZERO_ITEMS:
                        raise SchedulingError(
                            f"task {task.name!r}: livelock on zero-length segments"
                        )
                    task.segment_started = True
                    if item.on_start is not None:
                        item.on_start()
                    task.current_segment = None
                    task.segment_started = False
                    if item.on_end is not None:
                        item.on_end()
                    if self.running is not task:
                        # A callback caused preemption or blocking.
                        return False
                    continue
                return True
            if isinstance(item, Wait):
                if not task.extended:
                    self._service_error(
                        StatusType.E_OS_ACCESS,
                        f"WaitEvent in basic task {task.name!r}",
                    )
                    self._terminate(task)
                    return False
                if task.set_events & item.mask:
                    # Event already pending: WaitEvent returns immediately.
                    continue
                task.waiting_mask = item.mask
                task.state = TaskState.WAITING
                self.running = None
                self.trace.record(
                    self.clock.now, TraceKind.TASK_WAIT, task.name, mask=item.mask
                )
                return False
            raise SchedulingError(
                f"task {task.name!r} yielded unsupported item {item!r}"
            )
        return True

    def _terminate(self, task: Task) -> None:
        for hook in self.hooks.post_task:
            hook(self, task)
        self.trace.record(self.clock.now, TraceKind.TASK_TERMINATE, task.name)
        # Release any resources the task still holds (OSEK would raise
        # E_OS_RESOURCE; we release and report, which keeps the simulated
        # system alive for fault-injection experiments).
        for resource in self.resources.values():
            if resource.holder is task:
                self._service_error(
                    StatusType.E_OS_RESOURCE,
                    f"task {task.name!r} terminated holding {resource.name!r}",
                )
                resource.holder = None
                task.dynamic_priority = resource.saved_priority
        task.generator = None
        task.current_segment = None
        task.segment_remaining = 0
        task.segment_started = False
        task.set_events = 0
        task.dynamic_priority = task.priority
        task.pending_activations -= 1
        self.running = None
        chain = self._chain_target.pop(task.name, None)
        if task.pending_activations > 0:
            self._make_ready(task)
        else:
            task.state = TaskState.SUSPENDED
        if chain is not None:
            self.activate_task(chain)

    def _service_error(self, status: StatusType, message: str) -> StatusType:
        self.trace.record(
            self.clock.now, TraceKind.SERVICE_ERROR, message, status=status.name
        )
        for hook in self.hooks.error:
            hook(self, status, message)
        return status

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def utilization(self) -> float:
        """Fraction of simulated time the CPU was busy so far."""
        if self.clock.now == 0:
            return 0.0
        return self.cpu_busy_ticks / self.clock.now

    def task_state(self, name: str) -> TaskState:
        """Current OSEK state of a task."""
        task = self.tasks.get(name)
        if task is None:
            raise ServiceError(StatusType.E_OS_ID, f"task_state({name!r})")
        return task.state
