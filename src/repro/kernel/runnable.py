"""Runnable model: AUTOSAR-style code-sequence components.

The paper's unit of monitoring is the *runnable* — "code sequence
components" into which an application is divided, where "runnables from
different software components can be mapped to the same task".  A
:class:`Runnable` couples

* a behaviour function (the functional payload, e.g. reading a sensor),
* a worst-case execution time in simulated ticks (optionally jittered),
* *glue code* hooks — the "aliveness indication routines, which are
  integrated into the runnables as automatically generated glue code"
  through which the Software Watchdog observes execution.

``Runnable.segments(task)`` compiles the runnable into kernel work items
so that a task body is simply a sequence of runnables (plus optional
extra segments).  Fault injection wraps or replaces pieces of this
compilation (see :mod:`repro.faults.injector`).
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional

from .errors import KernelConfigError
from .scheduler import Kernel
from .task import Segment, Task, TaskBody, WorkItem
from .tracing import TraceKind

#: Glue hook signature: ``hook(runnable, task)``.
GlueHook = Callable[["Runnable", Task], None]


class Runnable:
    """One schedulable code-sequence component.

    Parameters
    ----------
    name:
        Unique identifier; also the subject of trace records and the key
        used by the Software Watchdog's fault hypothesis.
    behaviour:
        Functional payload; called once per execution with this runnable
        and the hosting task.  May be ``None`` for pure-timing models.
    wcet:
        Execution time in simulated ticks consumed per execution.
    execution_time_fn:
        Optional override returning the execution time for each
        individual execution (for jitter or data-dependent run times).
    """

    def __init__(
        self,
        name: str,
        kernel: Kernel,
        *,
        behaviour: Optional[Callable[["Runnable", Task], None]] = None,
        wcet: int = 0,
        execution_time_fn: Optional[Callable[[], int]] = None,
    ) -> None:
        if wcet < 0:
            raise KernelConfigError(f"runnable {name!r}: wcet must be >= 0")
        self.name = name
        self.kernel = kernel
        self.behaviour = behaviour
        self.wcet = wcet
        self.execution_time_fn = execution_time_fn
        self.entry_glue: List[GlueHook] = []
        self.exit_glue: List[GlueHook] = []
        self.execution_count = 0
        #: Fault-injection switch: when False the runnable's execution is
        #: skipped entirely (models a blocked / never-dispatched runnable).
        self.enabled = True
        #: Fault-injection multiplier on the number of body repetitions
        #: per execution (models corrupted loop counters; 1 is nominal).
        self.repeat = 1

    # ------------------------------------------------------------------
    def add_entry_glue(self, hook: GlueHook) -> None:
        """Attach glue code fired when an execution begins."""
        self.entry_glue.append(hook)

    def add_exit_glue(self, hook: GlueHook) -> None:
        """Attach glue code fired when an execution completes.

        The Software Watchdog's heartbeat indication is registered here:
        a heartbeat means the runnable *ran to completion*, so a blocked
        or starved runnable stops producing heartbeats — which is exactly
        the observable the aliveness monitor needs.
        """
        self.exit_glue.append(hook)

    # ------------------------------------------------------------------
    def execution_time(self) -> int:
        """Ticks this particular execution will consume."""
        if self.execution_time_fn is not None:
            duration = int(self.execution_time_fn())
            if duration < 0:
                raise ValueError(
                    f"runnable {self.name!r}: negative execution time {duration}"
                )
            return duration
        return self.wcet

    def segments(self, task: Task) -> Iterator[WorkItem]:
        """Compile this runnable into kernel work items for one execution."""
        if not self.enabled:
            return
        repeats = max(0, self.repeat)
        for _ in range(repeats):
            duration = self.execution_time()
            yield Segment(
                duration,
                on_start=self._make_on_start(task),
                on_end=self._make_on_end(task),
                label=self.name,
            )

    def as_factory(self) -> Callable[[Task], Iterable[WorkItem]]:
        """Adapter for :func:`repro.kernel.task.sequence_body`."""
        return self.segments

    # ------------------------------------------------------------------
    def _make_on_start(self, task: Task) -> Callable[[], None]:
        def on_start() -> None:
            self.kernel.trace.record(
                self.kernel.clock.now,
                TraceKind.RUNNABLE_START,
                self.name,
                task=task.name,
            )
            for hook in self.entry_glue:
                hook(self, task)

        return on_start

    def _make_on_end(self, task: Task) -> Callable[[], None]:
        def on_end() -> None:
            if self.behaviour is not None:
                self.behaviour(self, task)
            self.execution_count += 1
            self.kernel.trace.record(
                self.kernel.clock.now,
                TraceKind.RUNNABLE_END,
                self.name,
                task=task.name,
            )
            for hook in self.exit_glue:
                hook(self, task)

        return on_end

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Runnable {self.name!r} wcet={self.wcet}>"


def runnable_sequence_body(runnables: Iterable[Runnable]) -> TaskBody:
    """Task body executing the given runnables in order, every activation.

    This mirrors Figure 4 of the paper: a Stateflow chart triggering
    function-call subsystems (the runnables) in a defined execution
    sequence.  Dynamic sequencing (branches, injected invalid branches)
    is provided by :class:`SequenceChart` instead.
    """
    items = [r.as_factory() for r in runnables]

    def body(task: Task):
        for factory in items:
            for item in factory(task):
                yield item

    return body


class SequenceChart:
    """A Stateflow-like sequencer choosing the runnable execution order.

    The chart evaluates ``decide(task, step_index, previous_runnable)``
    before each step; the returned runnable is executed next, ``None``
    terminates the activation.  The default decision function walks the
    nominal order.  Fault injection replaces the decision function to
    create *invalid execution branches* — the mechanism the paper uses
    (via Stateflow manipulation) to provoke program-flow errors.
    """

    def __init__(self, name: str, runnables: List[Runnable]) -> None:
        if not runnables:
            raise KernelConfigError(f"chart {name!r}: needs at least one runnable")
        self.name = name
        self.runnables = list(runnables)
        self.by_name = {r.name: r for r in self.runnables}
        if len(self.by_name) != len(self.runnables):
            raise KernelConfigError(f"chart {name!r}: duplicate runnable names")
        self.decide: Callable[[Task, int, Optional[Runnable]], Optional[Runnable]] = (
            self._nominal_decide
        )

    def _nominal_decide(
        self, task: Task, step: int, previous: Optional[Runnable]
    ) -> Optional[Runnable]:
        if step < len(self.runnables):
            return self.runnables[step]
        return None

    def reset_decision(self) -> None:
        """Restore the nominal execution order."""
        self.decide = self._nominal_decide

    def nominal_pairs(self) -> List[tuple]:
        """(predecessor, successor) name pairs of the nominal order."""
        names = [r.name for r in self.runnables]
        return list(zip(names, names[1:]))

    def body(self) -> TaskBody:
        """Task body driven by this chart."""

        def task_body(task: Task):
            step = 0
            previous: Optional[Runnable] = None
            while True:
                runnable = self.decide(task, step, previous)
                if runnable is None:
                    return
                for item in runnable.segments(task):
                    yield item
                previous = runnable
                step += 1

        return task_body
