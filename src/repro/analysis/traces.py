"""Trace post-processing: ground truth for the evaluation metrics.

The kernel trace records what *actually* happened (activations,
terminations, heartbeats, injections); these helpers turn it into the
quantities the experiments report: observed activation periods, task
response times, heartbeat gaps, and injection-to-detection matching.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..kernel.tracing import Trace, TraceKind, TraceRecord


@dataclass
class ResponseTimeStats:
    """Response-time summary of one task."""

    task: str
    count: int
    mean: float
    maximum: int
    minimum: int


def activation_times(trace: Trace, task: str) -> List[int]:
    """Timestamps of every activation of a task."""
    return [r.time for r in trace.filter(kind=TraceKind.TASK_ACTIVATE, subject=task)]


def observed_periods(trace: Trace, task: str) -> List[int]:
    """Inter-activation gaps (the *observed* period including injected
    timing faults)."""
    times = activation_times(trace, task)
    return [b - a for a, b in zip(times, times[1:])]


def response_times(trace: Trace, task: str) -> List[int]:
    """Activation→termination spans, matched in order.

    Activations whose termination never occurred (task hung or the run
    ended) are dropped.
    """
    activations = activation_times(trace, task)
    terminations = [
        r.time for r in trace.filter(kind=TraceKind.TASK_TERMINATE, subject=task)
    ]
    out: List[int] = []
    t_index = 0
    for start in activations:
        while t_index < len(terminations) and terminations[t_index] < start:
            t_index += 1
        if t_index >= len(terminations):
            break
        out.append(terminations[t_index] - start)
        t_index += 1
    return out


def response_time_stats(trace: Trace, task: str) -> Optional[ResponseTimeStats]:
    """Aggregate response-time statistics, or None when never executed."""
    times = response_times(trace, task)
    if not times:
        return None
    return ResponseTimeStats(
        task=task,
        count=len(times),
        mean=sum(times) / len(times),
        maximum=max(times),
        minimum=min(times),
    )


def heartbeat_times(trace: Trace, runnable: str) -> List[int]:
    """Timestamps of a runnable's heartbeats."""
    return [r.time for r in trace.filter(kind=TraceKind.HEARTBEAT, subject=runnable)]


def heartbeat_gaps(trace: Trace, runnable: str) -> List[int]:
    """Inter-heartbeat gaps of a runnable."""
    times = heartbeat_times(trace, runnable)
    return [b - a for a, b in zip(times, times[1:])]


def injection_times(trace: Trace) -> List[Tuple[int, str]]:
    """(time, fault name) of every injection in the trace."""
    return [
        (r.time, r.subject) for r in trace.filter(kind=TraceKind.FAULT_INJECTED)
    ]


def detection_latency(
    trace: Trace, detection_times: List[int]
) -> List[Optional[int]]:
    """Latency of the first detection after each injection (None=missed)."""
    out: List[Optional[int]] = []
    for inject_time, _name in injection_times(trace):
        latency: Optional[int] = None
        for t in detection_times:
            if t >= inject_time:
                latency = t - inject_time
                break
        out.append(latency)
    return out


def preemption_counts(trace: Trace) -> Dict[str, int]:
    """Preemptions per task over the whole trace."""
    out: Dict[str, int] = {}
    for record in trace.filter(kind=TraceKind.TASK_PREEMPT):
        out[record.subject] = out.get(record.subject, 0) + 1
    return out


def trace_to_jsonl(trace: Iterable[TraceRecord]) -> str:
    """Serialize a kernel trace as JSON Lines, one record per line.

    The :class:`TraceKind` enum is written as its stable string value
    (``"heartbeat"``, ``"task_activate"``, ...), so the stream stays
    readable outside this process and shares the ``time``/``kind``/
    ``subject`` vocabulary of the telemetry event export — kernel
    ground truth and watchdog narrative line up record-by-record.
    Round-trips through :func:`trace_from_jsonl`.
    """
    return "\n".join(
        json.dumps(
            {
                "time": record.time,
                "kind": record.kind.value,
                "subject": record.subject,
                "info": dict(record.info),
            },
            sort_keys=True,
        )
        for record in trace
    )


def trace_from_jsonl(text: Iterable[str]) -> List[TraceRecord]:
    """Parse JSONL back into :class:`TraceRecord` objects.

    Accepts a string (split on newlines) or any iterable of lines;
    blank lines are skipped.  Unknown ``kind`` values raise
    ``ValueError`` — the :class:`TraceKind` value space is the schema.
    """
    if isinstance(text, str):
        text = text.splitlines()
    records: List[TraceRecord] = []
    for line in text:
        if not line.strip():
            continue
        payload = json.loads(line)
        records.append(
            TraceRecord(
                time=payload["time"],
                kind=TraceKind(payload["kind"]),
                subject=payload["subject"],
                info=dict(payload.get("info", {})),
            )
        )
    return records


def utilization_by_task(trace: Trace) -> Dict[str, int]:
    """Approximate per-task busy ticks from runnable start/end pairs."""
    starts: Dict[str, int] = {}
    busy: Dict[str, int] = {}
    for record in trace:
        task = record.info.get("task")
        if task is None:
            continue
        if record.kind is TraceKind.RUNNABLE_START:
            starts[record.subject] = record.time
        elif record.kind is TraceKind.RUNNABLE_END:
            start = starts.pop(record.subject, None)
            if start is not None:
                busy[task] = busy.get(task, 0) + (record.time - start)
    return busy
