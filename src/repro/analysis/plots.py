"""Text rendering of captured time series (the ControlDesk plots).

The paper's evaluation figures are stacked ControlDesk strip charts:
counter values and cumulative detection results over time, x-axis in
10 ms samples.  :func:`render_panels` reproduces that layout as text —
one panel per series, a scaled dot/step chart with min/max annotations —
so every figure of EXPERIMENTS.md is regenerated as readable output.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def _scale_row(value: float, low: float, high: float, height: int) -> int:
    """Map a value onto a row index (0 = bottom)."""
    if high <= low:
        return 0
    fraction = (value - low) / (high - low)
    return min(height - 1, max(0, int(round(fraction * (height - 1)))))


def sparkline(values: Sequence[float], *, width: int = 60) -> str:
    """One-line summary of a series using eighth-block characters."""
    if not values:
        return ""
    blocks = " ▁▂▃▄▅▆▇█"
    resampled = resample(values, width)
    low, high = min(resampled), max(resampled)
    if high == low:
        return blocks[1] * len(resampled)
    out = []
    for value in resampled:
        index = int((value - low) / (high - low) * (len(blocks) - 1))
        out.append(blocks[index])
    return "".join(out)


def resample(values: Sequence[float], width: int) -> List[float]:
    """Down/ up-sample a series to ``width`` points (nearest sample)."""
    if not values or width <= 0:
        return []
    if len(values) <= width:
        return list(values)
    step = len(values) / width
    return [values[min(len(values) - 1, int(i * step))] for i in range(width)]


def panel(
    name: str,
    values: Sequence[float],
    *,
    width: int = 64,
    height: int = 6,
) -> str:
    """One strip-chart panel: scaled step plot with min/max labels."""
    if not values:
        return f"{name}: (no data)"
    resampled = resample(values, width)
    low, high = min(resampled), max(resampled)
    grid = [[" "] * len(resampled) for _ in range(height)]
    previous_row: Optional[int] = None
    for col, value in enumerate(resampled):
        row = _scale_row(value, low, high, height)
        grid[row][col] = "•"
        if previous_row is not None and abs(row - previous_row) > 1:
            lo, hi = sorted((row, previous_row))
            for r in range(lo + 1, hi):
                grid[r][col] = "·"
        previous_row = row
    lines = [f"{name}  [min={low:g} max={high:g}]"]
    for row in range(height - 1, -1, -1):
        label = f"{high:8.2f} |" if row == height - 1 else (
            f"{low:8.2f} |" if row == 0 else "         |"
        )
        lines.append(label + "".join(grid[row]))
    lines.append("         +" + "-" * len(resampled))
    return "\n".join(lines)


def render_panels(
    series: Dict[str, Sequence[float]],
    *,
    width: int = 64,
    height: int = 5,
    title: str = "",
) -> str:
    """Stacked panels, one per series — the ControlDesk layout."""
    parts: List[str] = []
    if title:
        parts.append(f"=== {title} ===")
    for name, values in series.items():
        parts.append(panel(name, values, width=width, height=height))
    return "\n".join(parts)


def format_table(rows: List[Dict[str, object]], *, columns: Optional[List[str]] = None) -> str:
    """Plain-text table from a list of row dicts."""
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered: List[List[str]] = [[str(c) for c in columns]]
    for row in rows:
        rendered.append([_format_cell(row.get(c)) for c in columns])
    widths = [max(len(line[i]) for line in rendered) for i in range(len(columns))]
    lines = []
    for index, line in enumerate(rendered):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
        if index == 0:
            lines.append("  ".join("-" * widths[i] for i in range(len(columns))))
    return "\n".join(lines)


def _format_cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
