"""Summary metrics for campaigns and experiment reports."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..faults.campaigns import CampaignResult
from .plots import format_table


@dataclass
class LatencyStats:
    """Distribution summary of detection latencies (ticks)."""

    count: int
    mean: float
    p50: float
    p95: float
    maximum: int

    @classmethod
    def from_values(cls, values: Sequence[int]) -> Optional["LatencyStats"]:
        if not values:
            return None
        ordered = sorted(values)
        return cls(
            count=len(ordered),
            mean=sum(ordered) / len(ordered),
            p50=percentile(ordered, 50.0),
            p95=percentile(ordered, 95.0),
            maximum=ordered[-1],
        )


def percentile(ordered: Sequence[int], q: float) -> float:
    """Linear-interpolation percentile of a pre-sorted sequence.

    ``q`` must lie in [0, 100]; the endpoints map exactly to the first
    and last element (``rank = (q/100) * (len-1)`` stays inside the
    index range, so neither endpoint nor a duplicate-heavy input can
    index out of bounds).  ``ordered`` only needs ``__len__`` and
    non-negative ``__getitem__`` — the telemetry
    :meth:`~repro.telemetry.Histogram.quantile` estimator passes a lazy
    bucket view instead of a materialized list.
    """
    if not len(ordered):
        raise ValueError("empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q!r}")
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = min(math.ceil(rank), len(ordered) - 1)
    if low == high:
        return float(ordered[low])
    weight = rank - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


def coverage_report(result: CampaignResult) -> str:
    """Human-readable coverage × latency table of a campaign."""
    rows = []
    for row in result.coverage_table():
        mean_latency = row["mean_latency"]
        rows.append(
            {
                "fault_class": row["fault_class"],
                "detector": row["detector"],
                "coverage_%": round(100.0 * float(row["coverage"]), 1),
                "mean_latency_ms": (
                    None if mean_latency is None else round(float(mean_latency) / 1000.0, 2)
                ),
                "runs": row["runs"],
            }
        )
    return format_table(
        rows, columns=["fault_class", "detector", "coverage_%", "mean_latency_ms", "runs"]
    )


def latency_stats(
    result: CampaignResult, detector: str, fault_class: Optional[str] = None
) -> Optional[LatencyStats]:
    """Latency distribution of one detector in a campaign."""
    return LatencyStats.from_values(result.latencies(detector, fault_class))


def coverage_matrix(result: CampaignResult) -> Dict[str, Dict[str, float]]:
    """{fault_class: {detector: coverage}} for programmatic assertions."""
    out: Dict[str, Dict[str, float]] = {}
    for fault_class in result.fault_classes():
        out[fault_class] = {
            detector: result.coverage(detector, fault_class)
            for detector in result.detectors()
        }
    return out
