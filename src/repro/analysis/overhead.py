"""Overhead accounting: look-up-table PFC vs signature-based CFC.

§3.2.2 justifies the look-up table "to minimize performance penalty and
extensive modification requirements of applications" compared with
embedded signatures [CFCSS].  This module quantifies both dimensions on
equal footing:

* **runtime cost** — instrumentation operations executed per unit of
  application progress.  CFCSS pays at *every basic block* of every
  instrumented function; the watchdog's look-up table pays one table
  probe per *monitored runnable* heartbeat (runnables contain many basic
  blocks),
* **modification cost** — code sites that must be touched: CFCSS
  instruments every block and must be re-generated when the CFG changes;
  the watchdog needs one glue call per monitored runnable and a table
  entry per allowed transition,
* **watchdog CPU share** — the check task's simulated CPU consumption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..baselines.cfcss import BasicBlockGraph, CfcssChecker
from ..core.flowcheck import ProgramFlowCheckingUnit


@dataclass
class FlowCheckOverhead:
    """Comparable overhead figures for one workload."""

    technique: str
    runtime_ops: int
    static_sites: int
    blocks_executed: int

    @property
    def ops_per_block(self) -> float:
        if self.blocks_executed == 0:
            return 0.0
        return self.runtime_ops / self.blocks_executed


def build_runnable_cfg(
    runnables: List[str], blocks_per_runnable: int
) -> BasicBlockGraph:
    """A CFG where each runnable expands into a chain of basic blocks
    with one internal branch-rejoin (the shape CFCSS instruments), and
    runnables chain in sequence."""
    graph = BasicBlockGraph()
    previous_exit = None
    for runnable in runnables:
        chain = [f"{runnable}.b{i}" for i in range(blocks_per_runnable)]
        graph.add_path(chain)
        if blocks_per_runnable >= 3:
            # One if/else: b0 -> b1 -> b2 and b0 -> alt -> b2 (fan-in at b2).
            alt = f"{runnable}.alt"
            graph.add_block(alt)
            graph.add_edge(chain[0], alt)
            graph.add_edge(alt, chain[2])
        if previous_exit is not None:
            graph.add_edge(previous_exit, chain[0])
        previous_exit = chain[-1]
    return graph


def measure_cfcss(
    runnables: List[str], blocks_per_runnable: int, executions: int
) -> FlowCheckOverhead:
    """Run ``executions`` straight-line passes through the CFG under
    CFCSS and report its overhead."""
    graph = build_runnable_cfg(runnables, blocks_per_runnable)
    entry = f"{runnables[0]}.b0"
    checker = CfcssChecker(graph, entry)
    walk = [entry]
    for runnable in runnables:
        for i in range(blocks_per_runnable):
            block = f"{runnable}.b{i}"
            if block != entry:
                walk.append(block)
    blocks = 0
    for _ in range(executions):
        checker.run_walk(walk)
        blocks += len(walk)
    return FlowCheckOverhead(
        technique="CFCSS",
        runtime_ops=checker.instruction_count,
        static_sites=checker.instrumentation_size(),
        blocks_executed=blocks,
    )


def measure_lookup_table(
    pfc: ProgramFlowCheckingUnit,
    runnables: List[str],
    blocks_per_runnable: int,
    executions: int,
) -> FlowCheckOverhead:
    """Run the same workload through the watchdog's look-up table.

    The application executes the same number of basic blocks, but the
    table is only consulted once per runnable heartbeat.
    """
    pfc.lookup_operations = 0
    time = 0
    for _ in range(executions):
        pfc.reset_stream(None)
        for runnable in runnables:
            pfc.observe(runnable, time)
            time += 1
    blocks = executions * len(runnables) * blocks_per_runnable
    # Static sites: one glue call per monitored runnable + the table
    # entries themselves (configuration data, not code).
    static_sites = len(runnables) + pfc.table.pair_count()
    return FlowCheckOverhead(
        technique="lookup-table",
        runtime_ops=pfc.lookup_operations,
        static_sites=static_sites,
        blocks_executed=blocks,
    )


def compare_flow_checking(
    runnables: List[str],
    *,
    blocks_per_runnable: int = 10,
    executions: int = 100,
) -> List[Dict[str, object]]:
    """Side-by-side overhead table (the E2 experiment rows)."""
    from ..core.flowcheck import FlowTable

    table = FlowTable()
    table.allow_cycle(list(runnables))
    pfc = ProgramFlowCheckingUnit(table)
    results = [
        measure_cfcss(runnables, blocks_per_runnable, executions),
        measure_lookup_table(pfc, runnables, blocks_per_runnable, executions),
    ]
    rows = []
    for result in results:
        rows.append(
            {
                "technique": result.technique,
                "runtime_ops": result.runtime_ops,
                "ops_per_block": result.ops_per_block,
                "static_sites": result.static_sites,
                "blocks_executed": result.blocks_executed,
            }
        )
    return rows


def watchdog_cpu_share(kernel, watchdog_task_name: str) -> float:
    """Fraction of *consumed* CPU spent inside the watchdog check task."""
    total = kernel.cpu_busy_ticks
    if total == 0:
        return 0.0
    return kernel.task_cpu_ticks.get(watchdog_task_name, 0) / total
