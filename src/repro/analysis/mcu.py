"""Target-MCU overhead projection (the outlook's S12XF study).

The paper's outlook moves the Software Watchdog onto "an evaluation
microcontroller S12XF from Freescale" to measure real performance.  We
cannot run on silicon, but the watchdog's bookkeeping is a fixed mix of
primitive operations per heartbeat and per check cycle, so we can
*project* CPU cost onto a target profile (cycles per primitive op,
clock frequency) — the standard back-of-the-envelope an integrator runs
before committing to the service.

Primitive-operation model (per the implementation in :mod:`repro.core`):

* heartbeat indication: 1 table probe (flow check) + 2 counter
  increments + 1 activation-status test,
* check cycle, per monitored runnable: 2 cycle-counter increments +
  up to 2 bound comparisons + amortised resets.

Each primitive is costed in MCU cycles; profiles for an S12X-class
16-bit controller and a modern Cortex-M class part are included.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class McuProfile:
    """Cycle costs of the watchdog's primitive operations on one MCU."""

    name: str
    clock_hz: int
    #: cycles for an indexed table probe (hash/array lookup in C).
    cycles_table_probe: int
    #: cycles for a counter increment in RAM.
    cycles_counter_inc: int
    #: cycles for a compare-and-branch.
    cycles_compare: int
    #: fixed cycles per service call (entry/exit, interrupt lockout).
    cycles_call_overhead: int


#: Freescale S12X class: 16-bit, 40 MHz bus clock (the outlook's target).
S12XF = McuProfile(
    name="S12XF",
    clock_hz=40_000_000,
    cycles_table_probe=30,
    cycles_counter_inc=6,
    cycles_compare=5,
    cycles_call_overhead=40,
)

#: A modern 32-bit automotive MCU for comparison.
CORTEX_M7 = McuProfile(
    name="Cortex-M7 @ 300 MHz",
    clock_hz=300_000_000,
    cycles_table_probe=12,
    cycles_counter_inc=2,
    cycles_compare=2,
    cycles_call_overhead=20,
)


def heartbeat_cycles(profile: McuProfile) -> int:
    """MCU cycles of one heartbeat indication (glue-code call)."""
    return (
        profile.cycles_call_overhead
        + profile.cycles_table_probe  # flow-table probe
        + 2 * profile.cycles_counter_inc  # AC and ARC
        + profile.cycles_compare  # activation status test
    )


def check_cycle_cycles(profile: McuProfile, monitored_runnables: int) -> int:
    """MCU cycles of one full watchdog check cycle."""
    per_runnable = (
        2 * profile.cycles_counter_inc  # CCA, CCAR
        + 2 * profile.cycles_compare  # both period checks
        + profile.cycles_counter_inc  # amortised period reset
    )
    return profile.cycles_call_overhead + monitored_runnables * per_runnable


def project_cpu_load(
    profile: McuProfile,
    *,
    monitored_runnables: int,
    heartbeats_per_second: float,
    check_period_s: float,
) -> Dict[str, float]:
    """Projected watchdog CPU load on the target MCU.

    Returns cycle budgets per second and the resulting CPU fraction.
    """
    if check_period_s <= 0:
        raise ValueError("check_period_s must be > 0")
    hb = heartbeat_cycles(profile) * heartbeats_per_second
    checks = check_cycle_cycles(profile, monitored_runnables) / check_period_s
    total = hb + checks
    return {
        "heartbeat_cycles_per_s": hb,
        "check_cycles_per_s": checks,
        "total_cycles_per_s": total,
        "cpu_fraction": total / profile.clock_hz,
    }


def projection_rows(
    *,
    monitored_runnables: int = 9,
    heartbeats_per_second: float = 900.0,
    check_period_s: float = 0.01,
    profiles: List[McuProfile] = None,
) -> List[Dict[str, object]]:
    """One table row per target MCU (default: the validator workload —
    9 runnables, ~900 heartbeats/s, 10 ms check period)."""
    rows: List[Dict[str, object]] = []
    for profile in profiles or [S12XF, CORTEX_M7]:
        load = project_cpu_load(
            profile,
            monitored_runnables=monitored_runnables,
            heartbeats_per_second=heartbeats_per_second,
            check_period_s=check_period_s,
        )
        rows.append(
            {
                "mcu": profile.name,
                "heartbeat_cost_cycles": heartbeat_cycles(profile),
                "check_cost_cycles": check_cycle_cycles(
                    profile, monitored_runnables
                ),
                "cpu_percent": round(100.0 * load["cpu_fraction"], 3),
            }
        )
    return rows
