"""The ECU model: one node's complete software platform.

:class:`Ecu` integrates everything one EASIS node runs:

* the simulated OSEK kernel with its alarm table and interrupt
  controller,
* the application system built from a :class:`TaskMapping` (tasks,
  sequence charts, runnables, cyclic release alarms),
* the Software Watchdog (with glue code installed on every runnable and
  the periodic check task bound into the kernel),
* the Fault Management Framework, wired to the watchdog's two fault
  interfaces and implementing the treatment primitives of §3.4
  (software reset, application restart/termination, task restart),
* the service registry and the layered topology model.

This is the object examples and the HIL validator instantiate; it is
the simulated counterpart of the AutoBox central node of §4.2.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..core.integration import WatchdogTaskBinding, install_glue_on_all
from ..core.reports import MonitorState
from ..core.watchdog import SoftwareWatchdog
from ..kernel.alarms import AlarmTable
from ..kernel.clock import ms
from ..kernel.isr import InterruptController
from ..kernel.scheduler import Kernel
from ..kernel.tracing import TraceKind
from .application import Application, BuiltSystem, SystemBuilder, TaskMapping
from .fmf import FaultManagementFramework, FaultRecord, FmfPolicy, Severity
from .layers import SoftwareTopology, build_easis_topology
from .services import DependabilityService, ServiceRegistry


class WatchdogServiceAdapter(DependabilityService):
    """Registers the Software Watchdog's interfaces with the registry."""

    def __init__(self, watchdog: SoftwareWatchdog) -> None:
        super().__init__(watchdog.name)
        self.watchdog = watchdog
        self.provide_interface(
            "watchdog.heartbeat_indication", watchdog.heartbeat_indication
        )
        self.provide_interface("watchdog.add_fault_listener", watchdog.add_fault_listener)
        self.provide_interface("watchdog.ecu_state", watchdog.ecu_state)


class Ecu:
    """One simulated ECU hosting applications under watchdog supervision."""

    def __init__(
        self,
        name: str,
        mapping: TaskMapping,
        *,
        watchdog_period: int = ms(10),
        watchdog_priority: Optional[int] = None,
        watchdog_check_cost: int = 0,
        aliveness_margin: float = 1.5,
        arrival_margin: float = 1.5,
        fmf_policy: Optional[FmfPolicy] = None,
        fmf_auto_treatment: bool = True,
        watchdog_name: str = "SoftwareWatchdog",
        eager_arrival_detection: bool = False,
        check_strategy: str = "wheel",
        lint: str = "warn",
        trace_capacity: Optional[int] = None,
        kernel: Optional[Kernel] = None,
        telemetry=None,
        event_sink=None,
    ) -> None:
        self.name = name
        self.mapping = mapping
        # The HIL validator runs several node models on one shared time
        # base, so the central ECU can be given an existing kernel.
        self.kernel = kernel or Kernel(trace_capacity=trace_capacity)
        self.alarms = AlarmTable(self.kernel)
        self.interrupts = InterruptController(self.kernel)
        builder = SystemBuilder(
            mapping,
            watchdog_period=watchdog_period,
            aliveness_margin=aliveness_margin,
            arrival_margin=arrival_margin,
        )
        self.system: BuiltSystem = builder.build(self.kernel, self.alarms)

        app_of_task = {
            task: apps[0].name
            for task in mapping.task_specs
            for apps in [mapping.applications_on_task(task)]
            if apps
        }
        # A distinct watchdog name keeps task names unique when several
        # ECUs share one simulated time base (the multi-ECU validator).
        self.watchdog = SoftwareWatchdog(
            self.system.hypothesis,
            name=watchdog_name,
            eager_arrival_detection=eager_arrival_detection,
            app_of_task=app_of_task,
            check_strategy=check_strategy,
            lint=lint,
            telemetry=telemetry,
            event_sink=event_sink,
        )
        install_glue_on_all(self.watchdog, self.system.runnables.values())
        if watchdog_priority is None:
            highest_app = max(
                (spec.priority for spec in mapping.task_specs.values()), default=0
            )
            watchdog_priority = highest_app + 10
        self.binding = WatchdogTaskBinding(
            self.kernel,
            self.alarms,
            self.watchdog,
            period=watchdog_period,
            priority=watchdog_priority,
            check_cost=watchdog_check_cost,
        )

        self.fmf = FaultManagementFramework(
            self, fmf_policy, telemetry=telemetry, event_sink=event_sink
        )
        self.watchdog.add_fault_listener(self.fmf.on_runnable_error)
        if fmf_auto_treatment:
            self.watchdog.add_task_fault_listener(self.fmf.on_task_fault)
        else:
            # Observation mode (used when reproducing the paper's
            # figures): faults are logged but no treatment is driven, so
            # derived task states stay visible in captures.
            self.watchdog.add_task_fault_listener(
                lambda event: self.fmf.report_fault(
                    FaultRecord(
                        time=event.time,
                        source="SoftwareWatchdog.TSI",
                        subject=event.task,
                        category="task_faulty",
                        severity=Severity.CRITICAL,
                    )
                )
            )

        self.registry = ServiceRegistry()
        self.registry.register(self.fmf)
        self.registry.register(WatchdogServiceAdapter(self.watchdog))
        self.registry.start_all()
        self.topology: SoftwareTopology = build_easis_topology()

        self.terminated_applications: Set[str] = set()
        self.application_restart_counts: Dict[str, int] = {}
        self.task_restart_counts: Dict[str, int] = {}
        self.reset_times: List[int] = []

    # ------------------------------------------------------------------
    # simulation control
    # ------------------------------------------------------------------
    def run_until(self, end_time: int) -> None:
        """Advance the ECU's simulation to ``end_time``."""
        self.kernel.run_until(end_time)

    def run_for(self, duration: int) -> None:
        """Advance the ECU's simulation by ``duration`` ticks."""
        self.kernel.run_for(duration)

    @property
    def now(self) -> int:
        return self.kernel.clock.now

    # ------------------------------------------------------------------
    # EcuActions interface for the FMF (§3.4 treatment primitives)
    # ------------------------------------------------------------------
    def current_time(self) -> int:
        return self.kernel.clock.now

    def faulty_task_count(self) -> int:
        return len(self.watchdog.tsi.faulty_tasks)

    def applications_on_task(self, task: str) -> List[Application]:
        return self.mapping.applications_on_task(task)

    def software_reset(self) -> None:
        """Full ECU software reset: OS restart, schedule re-armed,
        watchdog state cleared, terminated applications come back.

        The FMF's fault/treatment logs survive (non-volatile memory on a
        real ECU); injected *software* faults also survive — a reset does
        not fix a bug, only transient state.
        """
        self.reset_times.append(self.kernel.clock.now)
        self.kernel.soft_reset()
        self.alarms.rearm_after_reset()
        self.watchdog.reset()
        self.terminated_applications.clear()

    def restart_application(self, application: Application) -> None:
        """Restart every task hosting one of the application's runnables."""
        self.application_restart_counts[application.name] = (
            self.application_restart_counts.get(application.name, 0) + 1
        )
        self.kernel.trace.record(
            self.kernel.clock.now,
            TraceKind.CUSTOM,
            application.name,
            action="restart_application",
        )
        for task in self.mapping.tasks_of_application(application):
            self._restart_task_internal(task)
        self.terminated_applications.discard(application.name)

    def terminate_application(self, application: Application) -> None:
        """Terminate the application: stop releasing its exclusive tasks."""
        self.terminated_applications.add(application.name)
        self.kernel.trace.record(
            self.kernel.clock.now,
            TraceKind.CUSTOM,
            application.name,
            action="terminate_application",
        )
        for task in self.mapping.tasks_of_application(application):
            owners = self.mapping.applications_on_task(task)
            if all(app.name in self.terminated_applications for app in owners):
                alarm = self.alarms.alarms.get(f"{task}Alarm")
                if alarm is not None and alarm.armed:
                    alarm.cancel()
                self.kernel.force_terminate(task)
                self.watchdog.tsi.clear_task(task)
                # Stop monitoring the terminated task's runnables: they
                # are legitimately silent now.
                for runnable in self.mapping.placement.get(task, []):
                    self.watchdog.set_activation_status(runnable, False)

    def restart_task(self, task: str) -> None:
        """Restart a single task via OS services."""
        self._restart_task_internal(task)

    # ------------------------------------------------------------------
    def _restart_task_internal(self, task: str) -> None:
        self.task_restart_counts[task] = self.task_restart_counts.get(task, 0) + 1
        self.kernel.force_terminate(task)
        self.watchdog.tsi.clear_task(task)
        self.watchdog.notify_task_start(task)
        # Re-arm the task's release alarm in case it was cancelled by an
        # earlier termination.
        alarm = self.alarms.alarms.get(f"{task}Alarm")
        if alarm is not None and not alarm.armed and alarm.cycle > 0:
            alarm.set_rel(alarm.cycle, alarm.cycle)
        for runnable in self.mapping.placement.get(task, []):
            self.watchdog.set_activation_status(runnable, True)

    # ------------------------------------------------------------------
    # state queries
    # ------------------------------------------------------------------
    def ecu_monitor_state(self) -> MonitorState:
        """Global ECU state as derived by the watchdog's TSI unit."""
        return self.watchdog.ecu_state()

    def application_state(self, application: str) -> MonitorState:
        if application in self.terminated_applications:
            return MonitorState.FAULTY
        return self.watchdog.application_state(application)

    def describe(self) -> Dict[str, object]:
        """Summary for reports and examples."""
        return {
            "name": self.name,
            "tasks": list(self.mapping.task_specs),
            "runnables": list(self.system.runnables),
            "applications": [a.name for a in self.mapping.applications],
            "watchdog_period": self.binding.period,
            "resets": len(self.reset_times),
            "terminated_applications": sorted(self.terminated_applications),
        }
