"""Fixed-priority schedulability analysis for the mapping tool chain.

Step 2 of the paper's development process (Figure 3) maps the functional
model onto the system architecture: runnables become tasks with
priorities and periods.  Before a mapping is loaded onto the target, it
must be schedulable.  This module provides the two standard checks used
for OSEK-style fixed-priority preemptive systems:

* the Liu & Layland utilisation bound (sufficient, rate-monotonic),
* exact response-time analysis (RTA, necessary and sufficient for
  synchronous periodic tasks with deadlines ≤ periods).

Both operate on simple :class:`TaskTiming` descriptors, so they can also
be applied to hypothetical mappings during design-space exploration
(benchmark F3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional


class AnalysisError(ValueError):
    """Raised for invalid timing parameters."""


@dataclass(frozen=True)
class TaskTiming:
    """Timing parameters of one periodic task.

    ``wcet`` and ``period`` are in ticks; ``deadline`` defaults to the
    period (implicit deadlines).  Higher ``priority`` preempts lower.
    """

    name: str
    wcet: int
    period: int
    priority: int
    deadline: Optional[int] = None

    def __post_init__(self) -> None:
        if self.wcet < 0:
            raise AnalysisError(f"{self.name}: wcet must be >= 0")
        if self.period <= 0:
            raise AnalysisError(f"{self.name}: period must be > 0")
        if self.deadline is not None and self.deadline <= 0:
            raise AnalysisError(f"{self.name}: deadline must be > 0")

    @property
    def effective_deadline(self) -> int:
        return self.period if self.deadline is None else self.deadline

    @property
    def utilization(self) -> float:
        return self.wcet / self.period


def total_utilization(tasks: List[TaskTiming]) -> float:
    """Sum of per-task utilisations."""
    return sum(t.utilization for t in tasks)


def liu_layland_bound(n: int) -> float:
    """The Liu & Layland utilisation bound for ``n`` tasks."""
    if n <= 0:
        raise AnalysisError("need at least one task")
    return n * (2 ** (1.0 / n) - 1)


def utilization_test(tasks: List[TaskTiming]) -> bool:
    """Sufficient schedulability test: U <= n(2^(1/n) - 1)."""
    if not tasks:
        return True
    return total_utilization(tasks) <= liu_layland_bound(len(tasks))


def response_time(task: TaskTiming, all_tasks: List[TaskTiming], *, max_iterations: int = 1000) -> Optional[int]:
    """Worst-case response time of ``task`` under the given task set.

    Classic RTA fixed-point: R = C + Σ_{hp} ceil(R / T_j) · C_j.
    Returns ``None`` when the recurrence diverges past the deadline
    (the task is unschedulable).
    """
    higher = [t for t in all_tasks if t.priority > task.priority and t is not task]
    response = task.wcet
    for _ in range(max_iterations):
        interference = sum(
            math.ceil(response / t.period) * t.wcet for t in higher
        )
        new_response = task.wcet + interference
        if new_response > task.effective_deadline:
            # Deadline exceeded — whether diverging or converged (e.g. a
            # single task whose WCET alone exceeds its deadline).
            return None
        if new_response == response:
            return response
        response = new_response
    return None


def response_time_analysis(tasks: List[TaskTiming]) -> Dict[str, Optional[int]]:
    """Worst-case response time for every task (None = unschedulable)."""
    return {t.name: response_time(t, tasks) for t in tasks}


def is_schedulable(tasks: List[TaskTiming]) -> bool:
    """Exact test: every task meets its deadline per RTA."""
    for task in tasks:
        r = response_time(task, tasks)
        if r is None or r > task.effective_deadline:
            return False
    return True


def assign_rate_monotonic_priorities(tasks: List[TaskTiming]) -> List[TaskTiming]:
    """Return a copy of the task set with rate-monotonic priorities
    (shorter period → higher priority; ties broken by name)."""
    ordered = sorted(tasks, key=lambda t: (t.period, t.name))
    out: List[TaskTiming] = []
    priority = len(ordered)
    for task in ordered:
        out.append(
            TaskTiming(
                name=task.name,
                wcet=task.wcet,
                period=task.period,
                priority=priority,
                deadline=task.deadline,
            )
        )
        priority -= 1
    return out
