"""Application model: software components, runnables, tasks, mappings.

The paper's premise is the AUTOSAR decomposition: application software
components are divided into *runnables*; "runnables from different
applications can be mapped onto the same task, while tasks from
different applications can also be mapped onto the same ECU".  This
module captures that mapping declaratively and *builds* it onto the
simulated kernel:

* :class:`RunnableSpec` / :class:`SoftwareComponent` /
  :class:`Application` — the functional model (Figure 3, step 1),
* :class:`TaskMapping` — runnable → task placement with priorities and
  periods (Figure 3, step 2),
* :class:`SystemBuilder` — generates kernel tasks, sequence charts,
  cyclic alarms, heartbeat glue and the watchdog fault hypothesis from
  the mapping (the "automatically generated glue code" of §3.2.2); this
  is the simulated equivalent of the code-generation step (Figure 3,
  steps 3–4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.hypothesis import FaultHypothesis, RunnableHypothesis, ThresholdPolicy
from ..kernel.alarms import AlarmTable
from ..kernel.runnable import Runnable, SequenceChart
from ..kernel.scheduler import Kernel
from ..kernel.task import Task
from .schedulability import TaskTiming

BehaviourFn = Callable[[Runnable, Task], None]


class MappingError(ValueError):
    """Raised for inconsistent application/task mappings."""


@dataclass
class RunnableSpec:
    """Declarative description of one runnable."""

    name: str
    wcet: int
    behaviour: Optional[BehaviourFn] = None
    #: Marks safety-critical runnables: only these join the program-flow
    #: look-up table ("only the sequence of the safety-critical runnables
    #: will be monitored", §3.2.2).
    safety_critical: bool = True


@dataclass
class SoftwareComponent:
    """An application software component: an ordered set of runnables."""

    name: str
    runnables: List[RunnableSpec] = field(default_factory=list)

    def add(self, spec: RunnableSpec) -> RunnableSpec:
        if any(r.name == spec.name for r in self.runnables):
            raise MappingError(f"SWC {self.name!r}: duplicate runnable {spec.name!r}")
        self.runnables.append(spec)
        return spec


@dataclass
class Application:
    """An ISS application: software components plus fault-treatment
    constraints consulted by the Fault Management Framework (§3.4)."""

    name: str
    components: List[SoftwareComponent] = field(default_factory=list)
    #: May the FMF restart this application after a fault?
    restartable: bool = True
    #: Does this application tolerate a full ECU software reset?
    ecu_reset_allowed: bool = True

    def add_component(self, component: SoftwareComponent) -> SoftwareComponent:
        if any(c.name == component.name for c in self.components):
            raise MappingError(
                f"application {self.name!r}: duplicate SWC {component.name!r}"
            )
        self.components.append(component)
        return component

    def runnable_names(self) -> List[str]:
        return [r.name for c in self.components for r in c.runnables]


@dataclass
class TaskSpec:
    """Placement target: one OSEK task with period and priority."""

    name: str
    priority: int
    period: int
    preemptable: bool = True

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise MappingError(f"task {self.name!r}: period must be > 0")


class TaskMapping:
    """Runnable → task placement for a set of applications."""

    def __init__(self, applications: Sequence[Application]) -> None:
        self.applications = list(applications)
        self.task_specs: Dict[str, TaskSpec] = {}
        #: task name → ordered runnable names (execution sequence).
        self.placement: Dict[str, List[str]] = {}
        self._runnable_index: Dict[str, Tuple[Application, RunnableSpec]] = {}
        for app in self.applications:
            for component in app.components:
                for spec in component.runnables:
                    if spec.name in self._runnable_index:
                        raise MappingError(f"duplicate runnable name {spec.name!r}")
                    self._runnable_index[spec.name] = (app, spec)

    # ------------------------------------------------------------------
    def add_task(self, spec: TaskSpec) -> TaskSpec:
        if spec.name in self.task_specs:
            raise MappingError(f"duplicate task {spec.name!r}")
        self.task_specs[spec.name] = spec
        self.placement[spec.name] = []
        return spec

    def map_runnable(self, runnable: str, task: str) -> None:
        """Append a runnable to a task's execution sequence."""
        if runnable not in self._runnable_index:
            raise MappingError(f"unknown runnable {runnable!r}")
        if task not in self.task_specs:
            raise MappingError(f"unknown task {task!r}")
        for placed in self.placement.values():
            if runnable in placed:
                raise MappingError(f"runnable {runnable!r} already placed")
        self.placement[task].append(runnable)

    def map_sequence(self, task: str, runnables: Sequence[str]) -> None:
        """Place several runnables on a task in order."""
        for name in runnables:
            self.map_runnable(name, task)

    # ------------------------------------------------------------------
    def task_of(self, runnable: str) -> str:
        """Hosting task of a runnable."""
        for task, placed in self.placement.items():
            if runnable in placed:
                return task
        raise MappingError(f"runnable {runnable!r} is not placed")

    def application_of(self, runnable: str) -> Application:
        """Owning application of a runnable."""
        entry = self._runnable_index.get(runnable)
        if entry is None:
            raise MappingError(f"unknown runnable {runnable!r}")
        return entry[0]

    def spec_of(self, runnable: str) -> RunnableSpec:
        """Declarative spec of a runnable."""
        entry = self._runnable_index.get(runnable)
        if entry is None:
            raise MappingError(f"unknown runnable {runnable!r}")
        return entry[1]

    def applications_on_task(self, task: str) -> List[Application]:
        """Applications with at least one runnable on the task."""
        apps: List[Application] = []
        for name in self.placement.get(task, []):
            app = self.application_of(name)
            if app not in apps:
                apps.append(app)
        return apps

    def tasks_of_application(self, app: Application) -> List[str]:
        """Tasks hosting at least one of the application's runnables."""
        names = set(app.runnable_names())
        return [
            task
            for task, placed in self.placement.items()
            if names.intersection(placed)
        ]

    def validate(self) -> None:
        """Every runnable must be placed exactly once."""
        placed = [name for seq in self.placement.values() for name in seq]
        if len(placed) != len(set(placed)):
            raise MappingError("a runnable is placed more than once")
        missing = set(self._runnable_index) - set(placed)
        if missing:
            raise MappingError(f"unplaced runnables: {sorted(missing)}")

    # ------------------------------------------------------------------
    def task_timings(self) -> List[TaskTiming]:
        """Timing descriptors for schedulability analysis (Figure 3,
        step 2): each task's WCET is the sum of its runnables' WCETs."""
        timings = []
        for name, spec in self.task_specs.items():
            wcet = sum(self.spec_of(r).wcet for r in self.placement[name])
            timings.append(
                TaskTiming(
                    name=name, wcet=wcet, period=spec.period, priority=spec.priority
                )
            )
        return timings


@dataclass
class BuiltSystem:
    """Everything :class:`SystemBuilder` produced for one ECU."""

    kernel: Kernel
    alarms: AlarmTable
    mapping: TaskMapping
    runnables: Dict[str, Runnable]
    tasks: Dict[str, Task]
    charts: Dict[str, SequenceChart]
    hypothesis: FaultHypothesis

    def chart(self, task: str) -> SequenceChart:
        return self.charts[task]

    def runnable(self, name: str) -> Runnable:
        return self.runnables[name]


class SystemBuilder:
    """Generates the executable system from a :class:`TaskMapping`.

    This is the simulated code-generation step: for each task a
    :class:`SequenceChart` triggering its runnables in the mapped order
    (Figure 4), a cyclic alarm releasing the task at its period, and —
    derived from the mapping — the watchdog fault hypothesis:

    * per runnable, the aliveness/arrival periods are the smallest whole
      number of watchdog cycles covering the hosting task's period
      (scaled by the safety margins),
    * the flow table whitelists each task's mapped execution sequence,
      restricted to safety-critical runnables.
    """

    def __init__(
        self,
        mapping: TaskMapping,
        *,
        watchdog_period: int,
        aliveness_margin: float = 1.5,
        arrival_margin: float = 1.5,
        thresholds: Optional[ThresholdPolicy] = None,
    ) -> None:
        if watchdog_period <= 0:
            raise MappingError("watchdog_period must be > 0")
        mapping.validate()
        self.mapping = mapping
        self.watchdog_period = watchdog_period
        self.aliveness_margin = aliveness_margin
        self.arrival_margin = arrival_margin
        self.thresholds = thresholds or ThresholdPolicy()

    # ------------------------------------------------------------------
    def derive_hypothesis(self) -> FaultHypothesis:
        """The configuration half of the code-generation step: derive the
        watchdog fault hypothesis from the mapping alone, without
        instantiating kernel objects.

        This is what design-time tooling consumes — ``python -m repro
        lint`` regenerates the shipped applications' hypotheses through
        this method to analyze them without building a simulator.
        :meth:`build` produces the identical hypothesis.
        """
        hypothesis = FaultHypothesis(thresholds=self.thresholds)
        for task_name, spec in self.mapping.task_specs.items():
            sequence = self.mapping.placement[task_name]
            if not sequence:
                continue
            self._extend_hypothesis(hypothesis, task_name, spec, sequence)
        hypothesis.validate()
        return hypothesis

    # ------------------------------------------------------------------
    def build(self, kernel: Kernel, alarms: Optional[AlarmTable] = None) -> BuiltSystem:
        """Create tasks, runnables, charts, alarms and the hypothesis."""
        alarms = alarms or AlarmTable(kernel)
        runnables: Dict[str, Runnable] = {}
        tasks: Dict[str, Task] = {}
        charts: Dict[str, SequenceChart] = {}
        hypothesis = self.derive_hypothesis()

        for task_name, spec in self.mapping.task_specs.items():
            sequence = self.mapping.placement[task_name]
            if not sequence:
                continue
            task_runnables = []
            for name in sequence:
                rspec = self.mapping.spec_of(name)
                runnable = Runnable(
                    name, kernel, behaviour=rspec.behaviour, wcet=rspec.wcet
                )
                runnables[name] = runnable
                task_runnables.append(runnable)
            chart = SequenceChart(f"{task_name}Chart", task_runnables)
            charts[task_name] = chart
            task = kernel.add_task(
                Task(
                    task_name,
                    spec.priority,
                    chart.body(),
                    preemptable=spec.preemptable,
                )
            )
            tasks[task_name] = task
            alarm = alarms.alarm_activate_task(f"{task_name}Alarm", task_name)
            offset = max(1, spec.period // alarms.system_counter.ticks_per_increment)
            alarm.set_rel(offset, offset)

        return BuiltSystem(
            kernel=kernel,
            alarms=alarms,
            mapping=self.mapping,
            runnables=runnables,
            tasks=tasks,
            charts=charts,
            hypothesis=hypothesis,
        )

    # ------------------------------------------------------------------
    def _extend_hypothesis(
        self,
        hypothesis: FaultHypothesis,
        task_name: str,
        spec: TaskSpec,
        sequence: List[str],
    ) -> None:
        cycles_per_period = spec.period / self.watchdog_period
        aliveness_period = max(1, math.ceil(cycles_per_period * self.aliveness_margin))
        arrival_period = max(1, math.ceil(cycles_per_period))
        # Executions expected within the arrival window, with headroom.
        expected = max(1, math.floor(arrival_period / cycles_per_period))
        max_heartbeats = max(1, math.ceil(expected * self.arrival_margin))
        critical = []
        for name in sequence:
            rspec = self.mapping.spec_of(name)
            hypothesis.add_runnable(
                RunnableHypothesis(
                    runnable=name,
                    task=task_name,
                    aliveness_period=aliveness_period,
                    min_heartbeats=1,
                    arrival_period=arrival_period,
                    max_heartbeats=max_heartbeats,
                )
            )
            if rspec.safety_critical:
                critical.append(name)
        hypothesis.allow_sequence(critical)
