"""Fault Management Framework (FMF).

"A general fault treatment system that gathers the information on the
detected faults, and informs the applications about the fault
detection" (§4.4).  The Software Watchdog reports detected faults here;
the FMF classifies them and coordinates treatment (§3.4) through an
abstract :class:`EcuActions` interface implemented by the ECU model:

* global ECU state faulty → software reset (if every affected
  application's constraints allow it),
* global ECU state OK → restart or terminate the faulty application
  software components,
* tasks not belonging to any terminated/restarted application may be
  restarted via OS services.

The policy adds one pragmatic element the paper's outlook anticipates
("fault handling strategies ... dynamic reconfiguration"): repeated
application restarts within a bounded budget escalate to an ECU reset.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Protocol

from ..core.reports import ErrorType, RunnableError, TaskFaultEvent
from ..telemetry import KIND_TREATMENT, NULL_REGISTRY, NULL_SINK, TelemetryEvent
from .application import Application
from .services import DependabilityService


class Severity(enum.IntEnum):
    """Classification of a reported fault."""

    INFO = 0
    MINOR = 1
    MAJOR = 2
    CRITICAL = 3


class TreatmentAction(enum.Enum):
    """Fault treatments the FMF can order (§3.4)."""

    NONE = "none"
    RESTART_TASK = "restart_task"
    RESTART_APPLICATION = "restart_application"
    TERMINATE_APPLICATION = "terminate_application"
    ECU_RESET = "ecu_reset"


@dataclass(frozen=True)
class FaultRecord:
    """One fault as recorded by the FMF."""

    time: int
    source: str
    subject: str
    category: str
    severity: Severity
    details: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class TreatmentRecord:
    """One treatment the FMF carried out."""

    time: int
    action: TreatmentAction
    subject: str
    reason: str


class EcuActions(Protocol):
    """Treatment primitives the hosting ECU must provide."""

    def software_reset(self) -> None: ...

    def restart_application(self, application: Application) -> None: ...

    def terminate_application(self, application: Application) -> None: ...

    def restart_task(self, task: str) -> None: ...

    def applications_on_task(self, task: str) -> List[Application]: ...

    def faulty_task_count(self) -> int: ...

    def current_time(self) -> int: ...


@dataclass
class FmfPolicy:
    """Tunable treatment policy.

    ``ecu_faulty_task_threshold`` defines the "global view": the ECU
    state is considered faulty once at least this many tasks are faulty
    simultaneously.  ``max_app_restarts`` bounds per-application restart
    attempts before escalating to an ECU reset.
    """

    ecu_faulty_task_threshold: int = 2
    max_app_restarts: int = 3
    severity_map: Dict[ErrorType, Severity] = field(
        default_factory=lambda: {
            ErrorType.ALIVENESS: Severity.MAJOR,
            ErrorType.ARRIVAL_RATE: Severity.MAJOR,
            ErrorType.PROGRAM_FLOW: Severity.CRITICAL,
        }
    )


class FaultManagementFramework(DependabilityService):
    """The platform's general fault handling service."""

    def __init__(
        self,
        ecu: Optional[EcuActions] = None,
        policy: Optional[FmfPolicy] = None,
        *,
        name: str = "FaultManagementFramework",
        telemetry=None,
        event_sink=None,
    ) -> None:
        super().__init__(name)
        self.ecu = ecu
        self.policy = policy or FmfPolicy()
        self.fault_log: List[FaultRecord] = []
        self.treatment_log: List[TreatmentRecord] = []
        self.app_restart_counts: Dict[str, int] = {}
        self._fault_listeners: List[Callable[[FaultRecord], None]] = []
        # Faults and treatments are rare events, so the instruments are
        # updated live; labelled counters are cached per category/action.
        self.telemetry = telemetry if telemetry is not None else NULL_REGISTRY
        self.event_sink = event_sink if event_sink is not None else NULL_SINK
        self._tm_enabled = self.telemetry.enabled
        self._tm_faults: Dict[str, object] = {}
        self._tm_treatments: Dict[TreatmentAction, object] = {}
        self.provide_interface("fmf.fault_report", self.report_fault)
        self.provide_interface("fmf.runnable_error", self.on_runnable_error)
        self.provide_interface("fmf.task_fault", self.on_task_fault)

    # ------------------------------------------------------------------
    # fault intake
    # ------------------------------------------------------------------
    def report_fault(self, record: FaultRecord) -> None:
        """Generic fault-report interface (any platform module may call)."""
        self.fault_log.append(record)
        if self._tm_enabled:
            counter = self._tm_faults.get(record.category)
            if counter is None:
                counter = self.telemetry.counter(
                    "fmf_faults_total",
                    "Faults recorded by the FMF, by category",
                    category=record.category,
                )
                self._tm_faults[record.category] = counter
            counter.inc()
        for listener in self._fault_listeners:
            listener(record)

    def on_runnable_error(self, error: RunnableError) -> None:
        """Adapter for the watchdog's detected-fault interface."""
        severity = self.policy.severity_map.get(error.error_type, Severity.MAJOR)
        self.report_fault(
            FaultRecord(
                time=error.time,
                source="SoftwareWatchdog",
                subject=error.runnable,
                category=error.error_type.value,
                severity=severity,
                details=dict(error.details, task=error.task),
            )
        )

    def add_fault_listener(self, listener: Callable[[FaultRecord], None]) -> None:
        """Applications subscribe here to be "informed about the fault
        detection"."""
        self._fault_listeners.append(listener)

    # ------------------------------------------------------------------
    # treatment (§3.4)
    # ------------------------------------------------------------------
    def on_task_fault(self, event: TaskFaultEvent) -> None:
        """Coordinated treatment when the TSI declares a task faulty."""
        self.report_fault(
            FaultRecord(
                time=event.time,
                source="SoftwareWatchdog.TSI",
                subject=event.task,
                category="task_faulty",
                severity=Severity.CRITICAL,
                details={
                    "trigger_runnable": event.trigger_runnable,
                    "trigger_error_type": event.trigger_error_type.value,
                },
            )
        )
        if self.ecu is None:
            return
        applications = self.ecu.applications_on_task(event.task)
        if self._ecu_globally_faulty(applications):
            self._treat_ecu_faulty(event, applications)
        else:
            self._treat_ecu_ok(event, applications)

    # ------------------------------------------------------------------
    def _ecu_globally_faulty(self, applications: List[Application]) -> bool:
        assert self.ecu is not None
        if self.ecu.faulty_task_count() >= self.policy.ecu_faulty_task_threshold:
            return True
        for app in applications:
            if self.app_restart_counts.get(app.name, 0) >= self.policy.max_app_restarts:
                return True
        return False

    def _treat_ecu_faulty(
        self, event: TaskFaultEvent, applications: List[Application]
    ) -> None:
        assert self.ecu is not None
        if all(app.ecu_reset_allowed for app in applications) or not applications:
            self._record_treatment(
                TreatmentAction.ECU_RESET, "ECU", "global ECU state faulty"
            )
            self.app_restart_counts.clear()
            self.ecu.software_reset()
            return
        # Reset is vetoed by application constraints: fall back to
        # terminating the applications that do not allow a reset path.
        for app in applications:
            self._record_treatment(
                TreatmentAction.TERMINATE_APPLICATION,
                app.name,
                "ECU faulty but reset vetoed by application constraints",
            )
            self.ecu.terminate_application(app)

    def _treat_ecu_ok(
        self, event: TaskFaultEvent, applications: List[Application]
    ) -> None:
        assert self.ecu is not None
        for app in applications:
            if app.restartable:
                self.app_restart_counts[app.name] = (
                    self.app_restart_counts.get(app.name, 0) + 1
                )
                self._record_treatment(
                    TreatmentAction.RESTART_APPLICATION,
                    app.name,
                    f"task {event.task!r} faulty, application restartable",
                )
                self.ecu.restart_application(app)
            else:
                self._record_treatment(
                    TreatmentAction.TERMINATE_APPLICATION,
                    app.name,
                    f"task {event.task!r} faulty, application not restartable",
                )
                self.ecu.terminate_application(app)

    def _record_treatment(self, action: TreatmentAction, subject: str, reason: str) -> None:
        time = self.ecu.current_time() if self.ecu is not None else 0
        self.treatment_log.append(
            TreatmentRecord(time=time, action=action, subject=subject, reason=reason)
        )
        if self._tm_enabled:
            counter = self._tm_treatments.get(action)
            if counter is None:
                counter = self.telemetry.counter(
                    "fmf_treatments_total",
                    "Treatments carried out by the FMF, by action",
                    action=action.value,
                )
                self._tm_treatments[action] = counter
            counter.inc()
        if self.event_sink.enabled:
            self.event_sink.emit(TelemetryEvent(
                time=time,
                kind=KIND_TREATMENT,
                subject=subject,
                data={"action": action.value, "reason": reason},
            ))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def faults_by_category(self) -> Dict[str, int]:
        """Histogram of recorded fault categories."""
        out: Dict[str, int] = {}
        for record in self.fault_log:
            out[record.category] = out.get(record.category, 0) + 1
        return out

    def treatments_by_action(self) -> Dict[TreatmentAction, int]:
        """Histogram of carried-out treatments."""
        out: Dict[TreatmentAction, int] = {}
        for record in self.treatment_log:
            out[record.action] = out.get(record.action, 0) + 1
        return out

    def reset(self) -> None:
        """Clear all logs (used after an ECU software reset when the
        framework itself restarts)."""
        self.fault_log.clear()
        self.treatment_log.clear()
        self.app_restart_counts.clear()
