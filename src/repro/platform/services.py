"""Dependability software-service registry.

EASIS standardises services with "defined interfaces to other software
modules".  This module provides the small service framework the platform
uses: a common service base class with a lifecycle, and a registry that
components use to discover one another by interface name rather than by
concrete object — mirroring the standard-interface philosophy of the
platform (and of AUTOSAR).
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Dict, List, Optional


class ServiceState(enum.Enum):
    """Lifecycle state of a platform service."""

    REGISTERED = "registered"
    STARTED = "started"
    STOPPED = "stopped"


class ServiceError(RuntimeError):
    """Raised for service framework misuse."""


class DependabilityService:
    """Base class for L3 dependability services.

    Subclasses override :meth:`on_start` / :meth:`on_stop` and declare
    the interfaces they provide via :meth:`provide_interface`.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.state = ServiceState.REGISTERED
        self._interfaces: Dict[str, Callable[..., Any]] = {}

    # ------------------------------------------------------------------
    def provide_interface(self, interface: str, entry_point: Callable[..., Any]) -> None:
        """Expose a callable under a stable interface name."""
        if interface in self._interfaces:
            raise ServiceError(f"{self.name}: interface {interface!r} already provided")
        self._interfaces[interface] = entry_point

    def interface(self, name: str) -> Callable[..., Any]:
        """Resolve one of this service's interfaces."""
        entry = self._interfaces.get(name)
        if entry is None:
            raise ServiceError(f"{self.name}: no interface {name!r}")
        return entry

    def interfaces(self) -> List[str]:
        """Names of all provided interfaces."""
        return list(self._interfaces)

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the service (idempotent)."""
        if self.state is ServiceState.STARTED:
            return
        self.on_start()
        self.state = ServiceState.STARTED

    def stop(self) -> None:
        """Stop the service (idempotent)."""
        if self.state is not ServiceState.STARTED:
            return
        self.on_stop()
        self.state = ServiceState.STOPPED

    def on_start(self) -> None:  # pragma: no cover - default no-op
        """Subclass hook."""

    def on_stop(self) -> None:  # pragma: no cover - default no-op
        """Subclass hook."""


class ServiceRegistry:
    """Discovery of services and their interfaces on one ECU."""

    def __init__(self) -> None:
        self._services: Dict[str, DependabilityService] = {}
        self._interface_index: Dict[str, DependabilityService] = {}

    def register(self, service: DependabilityService) -> DependabilityService:
        """Register a service and index its interfaces."""
        if service.name in self._services:
            raise ServiceError(f"duplicate service {service.name!r}")
        self._services[service.name] = service
        for interface in service.interfaces():
            if interface in self._interface_index:
                raise ServiceError(f"interface {interface!r} already registered")
            self._interface_index[interface] = service
        return service

    def service(self, name: str) -> DependabilityService:
        """Look up a service by name."""
        service = self._services.get(name)
        if service is None:
            raise ServiceError(f"unknown service {name!r}")
        return service

    def resolve(self, interface: str) -> Callable[..., Any]:
        """Resolve an interface name to its entry point."""
        service = self._interface_index.get(interface)
        if service is None:
            raise ServiceError(f"no provider for interface {interface!r}")
        return service.interface(interface)

    def provider_of(self, interface: str) -> Optional[DependabilityService]:
        """The service providing an interface, or None."""
        return self._interface_index.get(interface)

    def start_all(self) -> None:
        """Start every registered service."""
        for service in self._services.values():
            service.start()

    def stop_all(self) -> None:
        """Stop every registered service."""
        for service in self._services.values():
            service.stop()

    def services(self) -> List[DependabilityService]:
        return list(self._services.values())
