"""EASIS software topology model (Figure 1 of the paper).

The EASIS platform is a layered architecture:

* **L1** — microcontroller (fault-tolerant hardware platform),
* **L2** — ISS drivers and microcontroller abstraction,
* **L3** — ISS services: dependability services (Software Watchdog,
  Fault Management Framework), gateway services, and the OSEK operating
  system (which spans L2/L3),
* **L4** — ISS application interface,
* **L5** — applications.

The model is structural: modules are placed on layers and connected with
typed interfaces, and the topology validates the layering rule that a
module may only use interfaces of its own or the adjacent lower layer
(the OS is explicitly allowed to span L2–L3, as in the paper's figure).
The Software Watchdog integration test asserts that the watchdog's two
interfaces — heartbeat indications from applications and fault reports
to the FMF — are representable in this topology.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple


class Layer(enum.IntEnum):
    """The five layers of the EASIS software topology."""

    L1_MICROCONTROLLER = 1
    L2_DRIVERS_MCAL = 2
    L3_ISS_SERVICES = 3
    L4_APPLICATION_INTERFACE = 4
    L5_APPLICATIONS = 5


class ModuleKind(enum.Enum):
    """Coarse classification of platform modules."""

    HARDWARE = "hardware"
    DRIVER = "driver"
    OPERATING_SYSTEM = "operating_system"
    DEPENDABILITY_SERVICE = "dependability_service"
    GATEWAY_SERVICE = "gateway_service"
    INTERFACE = "interface"
    APPLICATION = "application"


class TopologyError(ValueError):
    """Raised for violations of the layering rules."""


@dataclass
class PlatformModule:
    """One module placed on the topology."""

    name: str
    layer: Layer
    kind: ModuleKind
    #: Optional second layer for modules that span two layers (the OSEK
    #: OS "is integrated across L2 and L3").
    spans: Optional[Layer] = None
    provides: Set[str] = field(default_factory=set)
    consumes: Set[str] = field(default_factory=set)

    def occupies(self, layer: Layer) -> bool:
        """Whether the module occupies the given layer."""
        if self.layer is layer:
            return True
        return self.spans is layer

    def layer_range(self) -> Tuple[Layer, Layer]:
        """(lowest, highest) layer occupied."""
        if self.spans is None:
            return (self.layer, self.layer)
        low, high = sorted((self.layer, self.spans))
        return (Layer(low), Layer(high))


class SoftwareTopology:
    """The module/interface graph of one ECU's software platform."""

    def __init__(self, name: str = "EASIS") -> None:
        self.name = name
        self.modules: Dict[str, PlatformModule] = {}
        #: interface name → providing module name.
        self.interface_providers: Dict[str, str] = {}
        #: (consumer, interface) connections.
        self.connections: List[Tuple[str, str]] = []

    # ------------------------------------------------------------------
    def add_module(
        self,
        name: str,
        layer: Layer,
        kind: ModuleKind,
        *,
        spans: Optional[Layer] = None,
    ) -> PlatformModule:
        """Place a module on the topology."""
        if name in self.modules:
            raise TopologyError(f"duplicate module {name!r}")
        if spans is not None and abs(int(spans) - int(layer)) != 1:
            raise TopologyError(
                f"module {name!r}: a module may span only adjacent layers"
            )
        module = PlatformModule(name=name, layer=layer, kind=kind, spans=spans)
        self.modules[name] = module
        return module

    def provide(self, module_name: str, interface: str) -> None:
        """Declare that a module provides a named interface."""
        module = self._module(module_name)
        if interface in self.interface_providers:
            raise TopologyError(f"interface {interface!r} already provided")
        module.provides.add(interface)
        self.interface_providers[interface] = module_name

    def connect(self, consumer_name: str, interface: str) -> None:
        """Connect a consumer module to a provided interface.

        Enforces the layering rule: the consumer must occupy the
        provider's layer or the layer directly above it.
        """
        consumer = self._module(consumer_name)
        provider_name = self.interface_providers.get(interface)
        if provider_name is None:
            raise TopologyError(f"interface {interface!r} is not provided")
        provider = self._module(provider_name)
        if not self._layering_ok(consumer, provider):
            raise TopologyError(
                f"{consumer_name!r} (L{int(consumer.layer)}) may not use "
                f"{interface!r} provided by {provider_name!r} "
                f"(L{int(provider.layer)}): layering violation"
            )
        consumer.consumes.add(interface)
        self.connections.append((consumer_name, interface))

    # ------------------------------------------------------------------
    def modules_on(self, layer: Layer) -> List[PlatformModule]:
        """Every module occupying the given layer."""
        return [m for m in self.modules.values() if m.occupies(layer)]

    def provider_of(self, interface: str) -> PlatformModule:
        """The module providing an interface."""
        name = self.interface_providers.get(interface)
        if name is None:
            raise TopologyError(f"interface {interface!r} is not provided")
        return self.modules[name]

    def consumers_of(self, interface: str) -> List[PlatformModule]:
        """Modules consuming an interface."""
        return [
            self.modules[consumer]
            for consumer, iface in self.connections
            if iface == interface
        ]

    def validate(self) -> None:
        """Re-check every connection against the layering rule."""
        for consumer_name, interface in self.connections:
            consumer = self._module(consumer_name)
            provider = self.provider_of(interface)
            if not self._layering_ok(consumer, provider):
                raise TopologyError(
                    f"connection {consumer_name!r} -> {interface!r} violates layering"
                )

    # ------------------------------------------------------------------
    def _module(self, name: str) -> PlatformModule:
        module = self.modules.get(name)
        if module is None:
            raise TopologyError(f"unknown module {name!r}")
        return module

    @staticmethod
    def _layering_ok(consumer: PlatformModule, provider: PlatformModule) -> bool:
        """A consumer may use interfaces of its own layer(s) or one below."""
        c_low, c_high = consumer.layer_range()
        p_low, p_high = provider.layer_range()
        for c in range(int(c_low), int(c_high) + 1):
            for p in range(int(p_low), int(p_high) + 1):
                if p == c or p == c - 1:
                    return True
        return False


def build_easis_topology() -> SoftwareTopology:
    """The reference topology of Figure 1, with the Software Watchdog's
    two interfaces wired in (§4.4)."""
    topo = SoftwareTopology("EASIS")
    topo.add_module("Microcontroller", Layer.L1_MICROCONTROLLER, ModuleKind.HARDWARE)
    topo.add_module("ISSDrivers", Layer.L2_DRIVERS_MCAL, ModuleKind.DRIVER)
    topo.add_module(
        "OperatingSystem",
        Layer.L2_DRIVERS_MCAL,
        ModuleKind.OPERATING_SYSTEM,
        spans=Layer.L3_ISS_SERVICES,
    )
    topo.add_module(
        "SoftwareWatchdog", Layer.L3_ISS_SERVICES, ModuleKind.DEPENDABILITY_SERVICE
    )
    topo.add_module(
        "FaultManagementFramework",
        Layer.L3_ISS_SERVICES,
        ModuleKind.DEPENDABILITY_SERVICE,
    )
    topo.add_module("GatewayServices", Layer.L3_ISS_SERVICES, ModuleKind.GATEWAY_SERVICE)
    topo.add_module(
        "ISSApplicationInterface", Layer.L4_APPLICATION_INTERFACE, ModuleKind.INTERFACE
    )
    topo.add_module("Applications", Layer.L5_APPLICATIONS, ModuleKind.APPLICATION)

    topo.provide("Microcontroller", "hw.core")
    topo.provide("ISSDrivers", "drivers.io")
    topo.provide("OperatingSystem", "os.services")
    topo.provide("SoftwareWatchdog", "watchdog.heartbeat_indication")
    topo.provide("FaultManagementFramework", "fmf.fault_report")
    topo.provide("GatewayServices", "gateway.interdomain")
    topo.provide("ISSApplicationInterface", "iss.api")

    topo.connect("ISSDrivers", "hw.core")
    topo.connect("OperatingSystem", "drivers.io")
    topo.connect("SoftwareWatchdog", "os.services")
    topo.connect("SoftwareWatchdog", "fmf.fault_report")
    topo.connect("FaultManagementFramework", "os.services")
    topo.connect("GatewayServices", "os.services")
    topo.connect("ISSApplicationInterface", "watchdog.heartbeat_indication")
    topo.connect("ISSApplicationInterface", "gateway.interdomain")
    topo.connect("Applications", "iss.api")
    topo.validate()
    return topo
