"""EASIS dependable software platform (layers L1–L5, services, FMF, ECU).

Public surface:

* :class:`SoftwareTopology` / :func:`build_easis_topology` — the layered
  module/interface model of Figure 1,
* :class:`Application` / :class:`SoftwareComponent` /
  :class:`RunnableSpec` / :class:`TaskMapping` / :class:`SystemBuilder` —
  the functional model and its mapping onto OSEK tasks (Figure 3),
* schedulability analysis (:func:`response_time_analysis`, ...),
* :class:`FaultManagementFramework` — the platform's fault treatment
  service (§3.4),
* :class:`Ecu` — one node's fully integrated software platform.
"""

from .application import (
    Application,
    BuiltSystem,
    MappingError,
    RunnableSpec,
    SoftwareComponent,
    SystemBuilder,
    TaskMapping,
    TaskSpec,
)
from .ecu import Ecu, WatchdogServiceAdapter
from .fmf import (
    EcuActions,
    FaultManagementFramework,
    FaultRecord,
    FmfPolicy,
    Severity,
    TreatmentAction,
    TreatmentRecord,
)
from .layers import (
    Layer,
    ModuleKind,
    PlatformModule,
    SoftwareTopology,
    TopologyError,
    build_easis_topology,
)
from .schedulability import (
    AnalysisError,
    TaskTiming,
    assign_rate_monotonic_priorities,
    is_schedulable,
    liu_layland_bound,
    response_time,
    response_time_analysis,
    total_utilization,
    utilization_test,
)
from .services import (
    DependabilityService,
    ServiceRegistry,
    ServiceState,
)

__all__ = [
    "AnalysisError",
    "Application",
    "BuiltSystem",
    "DependabilityService",
    "Ecu",
    "EcuActions",
    "FaultManagementFramework",
    "FaultRecord",
    "FmfPolicy",
    "Layer",
    "MappingError",
    "ModuleKind",
    "PlatformModule",
    "RunnableSpec",
    "ServiceRegistry",
    "ServiceState",
    "Severity",
    "SoftwareComponent",
    "SoftwareTopology",
    "SystemBuilder",
    "TaskMapping",
    "TaskSpec",
    "TaskTiming",
    "TopologyError",
    "TreatmentAction",
    "TreatmentRecord",
    "WatchdogServiceAdapter",
    "assign_rate_monotonic_priorities",
    "build_easis_topology",
    "is_schedulable",
    "liu_layland_bound",
    "response_time",
    "response_time_analysis",
    "total_utilization",
    "utilization_test",
]
