"""Fault-tolerant sensing: redundant channels with a median voter.

The validator's "fault-tolerant actuator and sensor nodes" (§4.1) use
channel redundancy.  This module provides the classic 2-out-of-3
arrangement for analogue signals:

* :class:`VotedSensor` — N redundant channel callables, median voting,
  per-channel deviation monitoring with a miscompare threshold, and
  channel lock-out after persistent disagreement,
* the vote degrades gracefully: 3 → 2 channels keeps voting (average),
  a single remaining channel passes through with a degraded flag.

The voter complements the Software Watchdog: the watchdog guarantees
the sensing *runnable executes on schedule*; the voter guarantees the
*value* it reads survives a channel failure.  Tests demonstrate both
layers catching their own fault class and missing the other's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

Channel = Callable[[], float]


@dataclass
class ChannelState:
    """Health bookkeeping for one redundant channel."""

    index: int
    miscompares: int = 0
    consecutive_miscompares: int = 0
    locked_out: bool = False
    last_value: float = 0.0


@dataclass
class VoteResult:
    """Outcome of one voting round."""

    value: float
    healthy_channels: int
    degraded: bool
    miscomparing: List[int] = field(default_factory=list)


class VotedSensor:
    """Median voter over redundant channels with lock-out."""

    def __init__(
        self,
        channels: List[Channel],
        *,
        miscompare_tolerance: float,
        lockout_after: int = 3,
    ) -> None:
        if len(channels) < 2:
            raise ValueError("redundancy needs at least two channels")
        if miscompare_tolerance <= 0:
            raise ValueError("miscompare_tolerance must be > 0")
        if lockout_after < 1:
            raise ValueError("lockout_after must be >= 1")
        self.channels = list(channels)
        self.tolerance = miscompare_tolerance
        self.lockout_after = lockout_after
        self.states = [ChannelState(i) for i in range(len(channels))]
        self.vote_count = 0
        self.last_result: Optional[VoteResult] = None

    # ------------------------------------------------------------------
    def read(self) -> VoteResult:
        """Sample every live channel and vote."""
        self.vote_count += 1
        live: List[ChannelState] = []
        for state, channel in zip(self.states, self.channels):
            if state.locked_out:
                continue
            state.last_value = float(channel())
            live.append(state)

        if not live:
            # Total sensor loss: hold the last vote, flag fully degraded.
            previous = self.last_result.value if self.last_result else 0.0
            result = VoteResult(value=previous, healthy_channels=0, degraded=True)
            self.last_result = result
            return result

        values = sorted(state.last_value for state in live)
        voted = values[len(values) // 2] if len(values) % 2 == 1 else (
            0.5 * (values[len(values) // 2 - 1] + values[len(values) // 2])
        )

        miscomparing: List[int] = []
        for state in live:
            if abs(state.last_value - voted) > self.tolerance:
                state.miscompares += 1
                state.consecutive_miscompares += 1
                miscomparing.append(state.index)
                if state.consecutive_miscompares >= self.lockout_after:
                    state.locked_out = True
            else:
                state.consecutive_miscompares = 0

        result = VoteResult(
            value=voted,
            healthy_channels=sum(1 for s in live if not s.locked_out),
            degraded=len(live) < len(self.channels),
            miscomparing=miscomparing,
        )
        self.last_result = result
        return result

    # ------------------------------------------------------------------
    def locked_out_channels(self) -> List[int]:
        """Indices of channels removed from the vote."""
        return [s.index for s in self.states if s.locked_out]

    def reinstate(self, index: int) -> None:
        """Maintenance action: bring a locked-out channel back."""
        state = self.states[index]
        state.locked_out = False
        state.consecutive_miscompares = 0

    def as_channel(self) -> Channel:
        """Adapter: use the voter wherever a plain channel is expected
        (e.g. as a SafeSpeed sensor port component)."""
        return lambda: self.read().value
