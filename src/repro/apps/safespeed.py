"""SafeSpeed — the speed-limiting ISS application of the paper.

"SafeSpeed is a system to automatically limit the vehicle speed to an
externally commanded maximum value" (§4.1).  Figure 4 divides it into
three runnables triggered by a Stateflow chart:

* ``GetSensorValue`` — sample vehicle speed and the commanded limit,
* ``SAFE_CC_process`` — the control algorithm (PI speed limiter),
* ``Speed_process`` — write the actuator command.

The behaviours operate on a :class:`SafeSpeedState` blackboard via
pluggable sensor/actuator ports, so the same application runs both
standalone on a directly-attached vehicle model and in the HIL validator
where values travel over simulated CAN.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..platform.application import Application, RunnableSpec, SoftwareComponent

#: Sensor port: returns (vehicle speed kph, commanded limit kph).
SensorPort = Callable[[], Tuple[float, float]]
#: Actuator port: receives (throttle 0..1, brake 0..1).
ActuatorPort = Callable[[float, float], None]

#: The canonical runnable names of Figure 4.
RUNNABLE_GET_SENSOR = "GetSensorValue"
RUNNABLE_CONTROL = "SAFE_CC_process"
RUNNABLE_ACTUATE = "Speed_process"
RUNNABLE_SEQUENCE = (RUNNABLE_GET_SENSOR, RUNNABLE_CONTROL, RUNNABLE_ACTUATE)


@dataclass
class SafeSpeedConfig:
    """Controller tuning."""

    kp: float = 0.08
    ki: float = 0.02
    sample_time_s: float = 0.01
    #: Limiter engages this many km/h below the commanded limit.
    approach_band_kph: float = 2.0
    #: Default cruise drive command when well below the limit.
    cruise_throttle: float = 0.45


@dataclass
class SafeSpeedState:
    """Blackboard shared by the three runnables."""

    speed_kph: float = 0.0
    limit_kph: float = 130.0
    error_kph: float = 0.0
    integral: float = 0.0
    throttle_cmd: float = 0.0
    brake_cmd: float = 0.0
    samples: int = 0
    interventions: int = 0
    #: Highest speed observed above the commanded limit (overshoot metric).
    max_overshoot_kph: float = 0.0


class SafeSpeedApp:
    """Builds the SafeSpeed application model and its runnable behaviours."""

    def __init__(
        self,
        sensor: SensorPort,
        actuator: ActuatorPort,
        config: Optional[SafeSpeedConfig] = None,
    ) -> None:
        self.sensor = sensor
        self.actuator = actuator
        self.config = config or SafeSpeedConfig()
        self.state = SafeSpeedState()

    # ------------------------------------------------------------------
    # runnable behaviours (Figure 4)
    # ------------------------------------------------------------------
    def get_sensor_value(self, _runnable=None, _task=None) -> None:
        """Runnable 1: sample speed and commanded limit."""
        speed, limit = self.sensor()
        self.state.speed_kph = speed
        self.state.limit_kph = limit
        self.state.samples += 1
        overshoot = speed - limit
        if overshoot > self.state.max_overshoot_kph:
            self.state.max_overshoot_kph = overshoot

    def safe_cc_process(self, _runnable=None, _task=None) -> None:
        """Runnable 2: PI limiter computing throttle/brake demands."""
        cfg, st = self.config, self.state
        engage_at = st.limit_kph - cfg.approach_band_kph
        error = engage_at - st.speed_kph  # >0: below band, free driving
        st.error_kph = error
        if error > 0:
            # Below the limiter band: drive at the cruise demand and
            # bleed the integrator.
            st.integral *= 0.9
            st.throttle_cmd = cfg.cruise_throttle
            st.brake_cmd = 0.0
            return
        st.interventions += 1
        st.integral += error * cfg.sample_time_s
        command = cfg.kp * error + cfg.ki * st.integral
        if command >= 0:
            st.throttle_cmd = min(command, 1.0)
            st.brake_cmd = 0.0
        else:
            st.throttle_cmd = 0.0
            st.brake_cmd = min(-command, 1.0)

    def speed_process(self, _runnable=None, _task=None) -> None:
        """Runnable 3: write the actuator command."""
        self.actuator(self.state.throttle_cmd, self.state.brake_cmd)

    # ------------------------------------------------------------------
    def build_application(
        self,
        *,
        wcets: Optional[List[int]] = None,
        restartable: bool = True,
        ecu_reset_allowed: bool = True,
    ) -> Application:
        """The declarative application model for the task mapping."""
        wcets = wcets or [1000, 2000, 1000]  # 1 ms / 2 ms / 1 ms
        if len(wcets) != 3:
            raise ValueError("SafeSpeed has exactly three runnables")
        behaviours = [self.get_sensor_value, self.safe_cc_process, self.speed_process]
        component = SoftwareComponent("SpeedControl")
        for name, wcet, behaviour in zip(RUNNABLE_SEQUENCE, wcets, behaviours):
            component.add(
                RunnableSpec(
                    name,
                    wcet=wcet,
                    behaviour=lambda r, t, fn=behaviour: fn(r, t),
                )
            )
        app = Application(
            "SafeSpeed",
            restartable=restartable,
            ecu_reset_allowed=ecu_reset_allowed,
        )
        app.add_component(component)
        return app
