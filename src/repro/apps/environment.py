"""Environment simulation: road geometry, speed-limit zones, lane model.

The validator's environment node supplies the externally commanded
maximum speed for SafeSpeed ("a system to automatically limit the
vehicle speed to an externally commanded maximum value") and the lane
geometry SafeLane monitors for departures.

The road is a 1-D arc-length model: piecewise speed-limit zones and
piecewise-constant curvature segments.  Given the vehicle's travelled
distance the environment answers the current limit, the local road
heading and the vehicle's lateral offset from the lane centre.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .vehicle import VehicleState


@dataclass(frozen=True)
class SpeedLimitZone:
    """A speed limit applying from ``start_m`` onwards."""

    start_m: float
    limit_kph: float


@dataclass(frozen=True)
class CurvatureSegment:
    """Constant road curvature (1/m) from ``start_m`` onwards."""

    start_m: float
    curvature: float


@dataclass
class Road:
    """Piecewise road description ordered by arc length."""

    speed_zones: List[SpeedLimitZone] = field(default_factory=list)
    curvature_segments: List[CurvatureSegment] = field(default_factory=list)
    lane_width_m: float = 3.5
    length_m: float = 10_000.0

    def __post_init__(self) -> None:
        if not self.speed_zones:
            self.speed_zones = [SpeedLimitZone(0.0, 130.0)]
        if not self.curvature_segments:
            self.curvature_segments = [CurvatureSegment(0.0, 0.0)]
        self.speed_zones.sort(key=lambda z: z.start_m)
        self.curvature_segments.sort(key=lambda s: s.start_m)
        if self.speed_zones[0].start_m > 0:
            self.speed_zones.insert(0, SpeedLimitZone(0.0, 130.0))
        if self.curvature_segments[0].start_m > 0:
            self.curvature_segments.insert(0, CurvatureSegment(0.0, 0.0))

    # ------------------------------------------------------------------
    def speed_limit_at(self, distance_m: float) -> float:
        """Speed limit (km/h) in force at the given arc length."""
        starts = [z.start_m for z in self.speed_zones]
        index = max(0, bisect.bisect_right(starts, distance_m) - 1)
        return self.speed_zones[index].limit_kph

    def curvature_at(self, distance_m: float) -> float:
        """Road curvature (1/m) at the given arc length."""
        starts = [s.start_m for s in self.curvature_segments]
        index = max(0, bisect.bisect_right(starts, distance_m) - 1)
        return self.curvature_segments[index].curvature

    def heading_at(self, distance_m: float) -> float:
        """Road tangent heading at the given arc length (integrated
        piecewise-constant curvature)."""
        heading = 0.0
        previous = self.curvature_segments[0]
        for segment in self.curvature_segments[1:]:
            if segment.start_m >= distance_m:
                break
            heading += previous.curvature * (segment.start_m - previous.start_m)
            previous = segment
        heading += previous.curvature * (distance_m - previous.start_m)
        return heading

    def next_limit_change(self, distance_m: float) -> Optional[Tuple[float, float]]:
        """(position, new limit) of the next zone boundary ahead."""
        for zone in self.speed_zones:
            if zone.start_m > distance_m:
                return (zone.start_m, zone.limit_kph)
        return None


@dataclass
class EnvironmentSimulation:
    """Live environment view used by the sensor node and the apps."""

    road: Road = field(default_factory=Road)
    #: Additional externally commanded speed cap (telematics), km/h;
    #: ``None`` means no external command active.
    commanded_limit_kph: Optional[float] = None

    def effective_speed_limit(self, distance_m: float) -> float:
        """The binding limit: road zone or external command (minimum)."""
        limit = self.road.speed_limit_at(distance_m)
        if self.commanded_limit_kph is not None:
            limit = min(limit, self.commanded_limit_kph)
        return limit

    def lateral_offset(self, state: VehicleState) -> float:
        """Vehicle's lateral offset from the lane centre (m).

        Approximated as the cross-track deviation of the vehicle's
        (x, y) position from a straight reference lane along the road
        heading at the travelled distance.  Positive = left of centre.
        """
        road_heading = self.road.heading_at(state.distance_m)
        # Reference lane point at the same arc length along the road.
        ref_x = state.distance_m * math.cos(road_heading)
        ref_y = state.distance_m * math.sin(road_heading)
        dx = state.x_m - ref_x
        dy = state.y_m - ref_y
        return -dx * math.sin(road_heading) + dy * math.cos(road_heading)

    def lane_departure(self, state: VehicleState) -> float:
        """How far beyond the lane boundary the vehicle is (m); <= 0
        while inside the lane."""
        offset = abs(self.lateral_offset(state))
        return offset - self.road.lane_width_m / 2.0
