"""SafeLane — lane departure warning ISS application.

"SafeLane is a lane departure warning application" (§4.1).  Mirroring
the SafeSpeed decomposition, SafeLane is modelled as three runnables:

* ``GetLanePosition`` — sample the lateral offset and yaw relative to
  the lane,
* ``LDW_process`` — departure detection with hysteresis and a
  time-to-line-crossing estimate,
* ``Warn_process`` — drive the warning output (the validator's light
  control node).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..platform.application import Application, RunnableSpec, SoftwareComponent

#: Sensor port: returns (lateral offset m, lateral velocity m/s,
#: lane half-width m).
LaneSensorPort = Callable[[], Tuple[float, float, float]]
#: Warning port: receives (warning active, side) where side is -1 right,
#: +1 left, 0 none.
WarningPort = Callable[[bool, int], None]

RUNNABLE_GET_LANE = "GetLanePosition"
RUNNABLE_LDW = "LDW_process"
RUNNABLE_WARN = "Warn_process"
RUNNABLE_SEQUENCE = (RUNNABLE_GET_LANE, RUNNABLE_LDW, RUNNABLE_WARN)


@dataclass
class SafeLaneConfig:
    """Detection tuning."""

    #: Warn when the predicted time to line crossing drops below this.
    ttc_threshold_s: float = 1.0
    #: Offset fraction of the half-width at which warning always engages.
    offset_engage_fraction: float = 0.9
    #: Hysteresis: warning clears only below this fraction.
    offset_release_fraction: float = 0.7


@dataclass
class SafeLaneState:
    """Blackboard shared by the three runnables."""

    lateral_offset_m: float = 0.0
    lateral_velocity_mps: float = 0.0
    lane_half_width_m: float = 1.75
    time_to_crossing_s: float = float("inf")
    warning: bool = False
    warning_side: int = 0
    samples: int = 0
    warnings_raised: int = 0


class SafeLaneApp:
    """Builds the SafeLane application model and runnable behaviours."""

    def __init__(
        self,
        sensor: LaneSensorPort,
        warner: WarningPort,
        config: Optional[SafeLaneConfig] = None,
    ) -> None:
        self.sensor = sensor
        self.warner = warner
        self.config = config or SafeLaneConfig()
        self.state = SafeLaneState()

    # ------------------------------------------------------------------
    def get_lane_position(self, _runnable=None, _task=None) -> None:
        """Runnable 1: sample the lane sensor."""
        offset, velocity, half_width = self.sensor()
        st = self.state
        st.lateral_offset_m = offset
        st.lateral_velocity_mps = velocity
        st.lane_half_width_m = half_width
        st.samples += 1

    def ldw_process(self, _runnable=None, _task=None) -> None:
        """Runnable 2: departure detection with TTC and hysteresis."""
        cfg, st = self.config, self.state
        offset, velocity = st.lateral_offset_m, st.lateral_velocity_mps
        half = st.lane_half_width_m
        # Time to crossing the boundary the vehicle is drifting towards.
        if velocity > 1e-6:
            st.time_to_crossing_s = max(0.0, (half - offset) / velocity)
        elif velocity < -1e-6:
            st.time_to_crossing_s = max(0.0, (half + offset) / -velocity)
        else:
            st.time_to_crossing_s = float("inf")
        fraction = abs(offset) / half if half > 0 else 0.0
        drifting_out = (offset * velocity) > 0
        should_warn = fraction >= cfg.offset_engage_fraction or (
            drifting_out and st.time_to_crossing_s < cfg.ttc_threshold_s
        )
        if st.warning:
            # Hysteresis: stay on until clearly back in lane.
            should_warn = should_warn or fraction > cfg.offset_release_fraction
        if should_warn and not st.warning:
            st.warnings_raised += 1
        st.warning = should_warn
        st.warning_side = 0 if not should_warn else (1 if offset > 0 else -1)

    def warn_process(self, _runnable=None, _task=None) -> None:
        """Runnable 3: drive the warning output."""
        self.warner(self.state.warning, self.state.warning_side)

    # ------------------------------------------------------------------
    def build_application(
        self,
        *,
        wcets: Optional[List[int]] = None,
        restartable: bool = True,
        ecu_reset_allowed: bool = True,
    ) -> Application:
        """The declarative application model for the task mapping."""
        wcets = wcets or [1000, 1500, 500]
        if len(wcets) != 3:
            raise ValueError("SafeLane has exactly three runnables")
        behaviours = [self.get_lane_position, self.ldw_process, self.warn_process]
        component = SoftwareComponent("LaneMonitor")
        for name, wcet, behaviour in zip(RUNNABLE_SEQUENCE, wcets, behaviours):
            component.add(
                RunnableSpec(
                    name,
                    wcet=wcet,
                    behaviour=lambda r, t, fn=behaviour: fn(r, t),
                )
            )
        app = Application(
            "SafeLane",
            restartable=restartable,
            ecu_reset_allowed=ecu_reset_allowed,
        )
        app.add_component(component)
        return app
