"""ISS applications and plant models for the architecture validator.

* :class:`Vehicle` — single-track driving dynamics,
* :class:`EnvironmentSimulation` / :class:`Road` — speed-limit zones and
  lane geometry,
* :class:`SafeSpeedApp` — the paper's speed limiter (Figure 4),
* :class:`SafeLaneApp` — lane departure warning,
* :class:`SteerByWireApp` — the steer-by-wire control path.
"""

from .environment import (
    CurvatureSegment,
    EnvironmentSimulation,
    Road,
    SpeedLimitZone,
)
from .redundancy import ChannelState, VoteResult, VotedSensor
from .safelane import SafeLaneApp, SafeLaneConfig, SafeLaneState
from .safespeed import (
    RUNNABLE_ACTUATE,
    RUNNABLE_CONTROL,
    RUNNABLE_GET_SENSOR,
    RUNNABLE_SEQUENCE,
    SafeSpeedApp,
    SafeSpeedConfig,
    SafeSpeedState,
)
from .steer_by_wire import SteerByWireApp, SteerByWireConfig, SteerByWireState
from .vehicle import ActuatorCommands, Vehicle, VehicleParameters, VehicleState

__all__ = [
    "ActuatorCommands",
    "ChannelState",
    "CurvatureSegment",
    "EnvironmentSimulation",
    "RUNNABLE_ACTUATE",
    "RUNNABLE_CONTROL",
    "RUNNABLE_GET_SENSOR",
    "RUNNABLE_SEQUENCE",
    "Road",
    "SafeLaneApp",
    "SafeLaneConfig",
    "SafeLaneState",
    "SafeSpeedApp",
    "SafeSpeedConfig",
    "SafeSpeedState",
    "SpeedLimitZone",
    "SteerByWireApp",
    "SteerByWireConfig",
    "SteerByWireState",
    "Vehicle",
    "VoteResult",
    "VotedSensor",
    "VehicleParameters",
    "VehicleState",
]
