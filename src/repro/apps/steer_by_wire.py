"""Steer-by-wire path: handwheel → controller → road-wheel actuator.

SafeSpeed/SafeLane run "with Steer-by-Wire technology" on the validator
(§4.1): there is no mechanical column; the handwheel angle travels over
FlexRay to a position controller that drives the road-wheel actuator.
A steer-by-wire path is the textbook case for runnable-level monitoring
— a silently stalled steering runnable is immediately safety-critical,
which is why the steering controller is mapped into the watchdog's
hypothesis in the HIL scenarios.

Runnables:

* ``ReadHandwheel`` — sample the driver's handwheel angle,
* ``SteeringControl`` — PD position control of the road-wheel angle,
* ``ApplySteering`` — command the road-wheel actuator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..platform.application import Application, RunnableSpec, SoftwareComponent

#: Returns the handwheel angle in radians.
HandwheelPort = Callable[[], float]
#: Returns the measured road-wheel angle in radians.
RoadWheelSensorPort = Callable[[], float]
#: Receives the commanded road-wheel angle in radians.
SteeringActuatorPort = Callable[[float], None]

RUNNABLE_READ = "ReadHandwheel"
RUNNABLE_CONTROL = "SteeringControl"
RUNNABLE_APPLY = "ApplySteering"
RUNNABLE_SEQUENCE = (RUNNABLE_READ, RUNNABLE_CONTROL, RUNNABLE_APPLY)


@dataclass
class SteerByWireConfig:
    """Controller tuning."""

    #: Handwheel-to-roadwheel ratio (steering ratio).
    steering_ratio: float = 16.0
    kp: float = 8.0
    kd: float = 0.8
    sample_time_s: float = 0.005
    max_roadwheel_rad: float = 0.6
    #: Maximum roadwheel slew rate (rad/s) the actuator can follow.
    max_rate_rps: float = 1.0


@dataclass
class SteerByWireState:
    """Blackboard shared by the three runnables."""

    handwheel_rad: float = 0.0
    target_rad: float = 0.0
    measured_rad: float = 0.0
    previous_error_rad: float = 0.0
    command_rad: float = 0.0
    samples: int = 0
    #: Running peak of |target − measured| (tracking quality metric).
    max_tracking_error_rad: float = 0.0


class SteerByWireApp:
    """Builds the steer-by-wire application and runnable behaviours."""

    def __init__(
        self,
        handwheel: HandwheelPort,
        roadwheel_sensor: RoadWheelSensorPort,
        actuator: SteeringActuatorPort,
        config: Optional[SteerByWireConfig] = None,
    ) -> None:
        self.handwheel = handwheel
        self.roadwheel_sensor = roadwheel_sensor
        self.actuator = actuator
        self.config = config or SteerByWireConfig()
        self.state = SteerByWireState()

    # ------------------------------------------------------------------
    def read_handwheel(self, _runnable=None, _task=None) -> None:
        """Runnable 1: sample handwheel and road-wheel sensors."""
        cfg, st = self.config, self.state
        st.handwheel_rad = self.handwheel()
        st.measured_rad = self.roadwheel_sensor()
        target = st.handwheel_rad / cfg.steering_ratio
        st.target_rad = min(max(target, -cfg.max_roadwheel_rad), cfg.max_roadwheel_rad)
        st.samples += 1

    def steering_control(self, _runnable=None, _task=None) -> None:
        """Runnable 2: PD position controller with rate limiting."""
        cfg, st = self.config, self.state
        error = st.target_rad - st.measured_rad
        st.max_tracking_error_rad = max(st.max_tracking_error_rad, abs(error))
        derivative = (error - st.previous_error_rad) / cfg.sample_time_s
        st.previous_error_rad = error
        demand = st.measured_rad + cfg.kp * error * cfg.sample_time_s + (
            cfg.kd * derivative * cfg.sample_time_s
        )
        max_step = cfg.max_rate_rps * cfg.sample_time_s
        step = min(max(demand - st.command_rad, -max_step), max_step)
        st.command_rad = min(
            max(st.command_rad + step, -cfg.max_roadwheel_rad),
            cfg.max_roadwheel_rad,
        )

    def apply_steering(self, _runnable=None, _task=None) -> None:
        """Runnable 3: command the road-wheel actuator."""
        self.actuator(self.state.command_rad)

    # ------------------------------------------------------------------
    def build_application(
        self,
        *,
        wcets: Optional[List[int]] = None,
        restartable: bool = False,
        ecu_reset_allowed: bool = False,
    ) -> Application:
        """The declarative application model.

        Steer-by-wire defaults to *not restartable* and *no ECU reset* —
        you cannot blank the steering mid-corner — which exercises the
        FMF's constraint-driven treatment paths.
        """
        wcets = wcets or [500, 1500, 500]
        if len(wcets) != 3:
            raise ValueError("SteerByWire has exactly three runnables")
        behaviours = [self.read_handwheel, self.steering_control, self.apply_steering]
        component = SoftwareComponent("SteeringPath")
        for name, wcet, behaviour in zip(RUNNABLE_SEQUENCE, wcets, behaviours):
            component.add(
                RunnableSpec(
                    name,
                    wcet=wcet,
                    behaviour=lambda r, t, fn=behaviour: fn(r, t),
                )
            )
        app = Application(
            "SteerByWire",
            restartable=restartable,
            ecu_reset_allowed=ecu_reset_allowed,
        )
        app.add_component(component)
        return app
