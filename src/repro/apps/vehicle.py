"""Longitudinal + lateral vehicle dynamics (the driving-dynamics node).

The EASIS architecture validator contains a "driving dynamics control
[and] environment simulation" node (§4.1) that closes the loop around
the safety applications: SafeSpeed actuates throttle/brake, SafeLane
observes the lane position, steer-by-wire actuates the road wheels.

The model is a standard single-track ("bicycle") vehicle:

* longitudinal: ``m·a = F_drive − F_brake − ½ρc_dA·v² − c_r·m·g``,
* lateral (kinematic bicycle): ``ω = v/L · tan(δ)``, heading and
  position integrate from speed and yaw rate.

It is deliberately simple — the watchdog never sees the physics, only
the timing of the runnables processing it — but it produces realistic
closed-loop signal traffic for the validator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class VehicleParameters:
    """Physical parameters of the simulated vehicle."""

    mass_kg: float = 1500.0
    wheelbase_m: float = 2.7
    max_drive_force_n: float = 6000.0
    max_brake_force_n: float = 12000.0
    drag_coefficient: float = 0.32
    frontal_area_m2: float = 2.2
    rolling_resistance: float = 0.012
    air_density: float = 1.225
    gravity: float = 9.81
    max_steer_rad: float = 0.6

    def drag_force(self, speed_mps: float) -> float:
        """Aerodynamic drag at the given speed."""
        return (
            0.5
            * self.air_density
            * self.drag_coefficient
            * self.frontal_area_m2
            * speed_mps
            * speed_mps
        )

    def rolling_force(self) -> float:
        """Rolling resistance force (speed-independent approximation)."""
        return self.rolling_resistance * self.mass_kg * self.gravity


@dataclass
class VehicleState:
    """Complete dynamic state of the vehicle."""

    x_m: float = 0.0
    y_m: float = 0.0
    heading_rad: float = 0.0
    speed_mps: float = 0.0
    acceleration_mps2: float = 0.0
    yaw_rate_rps: float = 0.0
    steering_rad: float = 0.0
    distance_m: float = 0.0

    @property
    def speed_kph(self) -> float:
        return self.speed_mps * 3.6


@dataclass
class ActuatorCommands:
    """Command interface the actuator node writes into."""

    throttle: float = 0.0  # 0..1
    brake: float = 0.0  # 0..1
    steering_rad: float = 0.0

    def clamp(self, max_steer_rad: float) -> None:
        self.throttle = min(max(self.throttle, 0.0), 1.0)
        self.brake = min(max(self.brake, 0.0), 1.0)
        self.steering_rad = min(max(self.steering_rad, -max_steer_rad), max_steer_rad)


@dataclass
class Vehicle:
    """The integrating vehicle model."""

    params: VehicleParameters = field(default_factory=VehicleParameters)
    state: VehicleState = field(default_factory=VehicleState)
    commands: ActuatorCommands = field(default_factory=ActuatorCommands)
    step_count: int = 0

    def step(self, dt_s: float) -> VehicleState:
        """Integrate the dynamics by ``dt_s`` seconds."""
        if dt_s <= 0:
            raise ValueError("dt must be > 0")
        p, s, c = self.params, self.state, self.commands
        c.clamp(p.max_steer_rad)

        drive = c.throttle * p.max_drive_force_n
        brake = c.brake * p.max_brake_force_n if s.speed_mps > 0 else 0.0
        resistive = p.drag_force(s.speed_mps) + (
            p.rolling_force() if s.speed_mps > 0.01 else 0.0
        )
        force = drive - brake - resistive
        s.acceleration_mps2 = force / p.mass_kg
        new_speed = max(0.0, s.speed_mps + s.acceleration_mps2 * dt_s)

        s.steering_rad = c.steering_rad
        if new_speed > 0.01:
            s.yaw_rate_rps = new_speed / p.wheelbase_m * math.tan(s.steering_rad)
        else:
            s.yaw_rate_rps = 0.0
        s.heading_rad += s.yaw_rate_rps * dt_s
        mean_speed = 0.5 * (s.speed_mps + new_speed)
        s.x_m += mean_speed * math.cos(s.heading_rad) * dt_s
        s.y_m += mean_speed * math.sin(s.heading_rad) * dt_s
        s.distance_m += mean_speed * dt_s
        s.speed_mps = new_speed
        self.step_count += 1
        return s

    def coasting_distance(self, from_speed_mps: float, dt_s: float = 0.01) -> float:
        """Distance covered rolling out from a speed to standstill
        (used by validation scenarios to size braking margins)."""
        saved_state, saved_cmds = self.state, self.commands
        self.state = VehicleState(speed_mps=from_speed_mps)
        self.commands = ActuatorCommands()
        steps = 0
        while self.state.speed_mps > 0.05 and steps < 100_000:
            self.step(dt_s)
            steps += 1
        distance = self.state.distance_m
        self.state, self.commands = saved_state, saved_cmds
        return distance
