"""Telemetry: metrics instruments and structured event export.

The observability layer of the reproduction.  Every supervised
component — the HBM/PFC/TSI units, the service facade, the Fault
Management Framework, the campaign engine — accepts a ``telemetry=``
registry (metrics) and, where it narrates discrete occurrences, an
``event_sink=`` (structured events).  Both default to no-op twins
(:data:`NULL_REGISTRY` / :data:`NULL_SINK`) so an uninstrumented run
pays one dead attribute check per hot-path block; the overhead
benchmark (``benchmarks/test_bench_telemetry_overhead.py``) holds the
live registry within 1.15× of the null path.

Quickstart::

    from repro.telemetry import MetricsRegistry, InMemorySink
    from repro.validator import HilValidator

    registry, sink = MetricsRegistry(), InMemorySink()
    rig = HilValidator(telemetry=registry, event_sink=sink)
    rig.run(2_000_000)
    print(registry.render_prometheus())
    print(sink.kinds())
"""

from .events import (
    EVENT_SCHEMA_VERSION,
    KIND_DETECTION,
    KIND_ECU_STATE_CHANGE,
    KIND_LINT_WARNING,
    KIND_METRICS_SNAPSHOT,
    KIND_RESULT_ROW,
    KIND_RUN_COMPLETED,
    KIND_TASK_FAULT,
    KIND_TREATMENT,
    InMemorySink,
    JsonlFileSink,
    NULL_SINK,
    NullSink,
    TelemetryEvent,
    TelemetrySink,
    read_jsonl,
)
from .registry import (
    Counter,
    DEFAULT_DURATION_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
)

__all__ = [
    "Counter",
    "DEFAULT_DURATION_BUCKETS",
    "EVENT_SCHEMA_VERSION",
    "Gauge",
    "Histogram",
    "InMemorySink",
    "KIND_DETECTION",
    "KIND_ECU_STATE_CHANGE",
    "KIND_LINT_WARNING",
    "KIND_METRICS_SNAPSHOT",
    "KIND_RESULT_ROW",
    "KIND_RUN_COMPLETED",
    "KIND_TASK_FAULT",
    "KIND_TREATMENT",
    "JsonlFileSink",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_SINK",
    "NullRegistry",
    "NullSink",
    "TelemetryEvent",
    "TelemetrySink",
    "read_jsonl",
]
