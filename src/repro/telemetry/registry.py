"""Zero-dependency metrics instruments and registry.

The watchdog's own behavior is observable only through the quantities it
chooses to export — the kernel :class:`~repro.kernel.tracing.Trace` is
ground truth the service deliberately never sees.  This module provides
the instruments that close that gap:

* :class:`Counter` — monotonically increasing event count,
* :class:`Gauge` — a value that can go up and down (current states,
  table sizes, utilization),
* :class:`Histogram` — fixed-bucket distribution (durations, sizes)
  with Prometheus-style cumulative bucket exposition and quantile
  estimates that reuse :func:`repro.analysis.metrics.percentile`,
* :class:`MetricsRegistry` — the instrument factory and exporter
  (``render_prometheus()`` text exposition + ``snapshot()`` JSON dict),
* :class:`NullRegistry` — the no-op twin.  Every instrument it hands
  out is a shared do-nothing singleton, so instrumented code runs one
  dead method call per event and hot paths can gate entire measurement
  blocks on ``registry.enabled`` (``False`` here).  The telemetry
  overhead benchmark asserts the live registry stays within 1.15× of
  this null path.

Instruments are get-or-create: asking twice for the same
``(name, labels)`` returns the same object, so independently
instrumented units aggregate into one time series.  Label values are
part of the identity (``wd_hbm_cycle_duration_seconds{strategy="wheel"}``
and ``...{strategy="scan"}`` are distinct series of one metric family).
"""

from __future__ import annotations

import json
import math
import re
from bisect import bisect_left, bisect_right
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_DURATION_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default buckets for wall-clock durations in seconds: 1 µs .. 10 s in
#: a 1-2.5-5 ladder, wide enough for both a single check cycle and a
#: whole campaign run.
DEFAULT_DURATION_BUCKETS: Tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    1e-1, 2.5e-1, 5e-1,
    1.0, 2.5, 5.0, 10.0,
)

LabelsKey = Tuple[Tuple[str, str], ...]


def _freeze_labels(labels: Dict[str, str]) -> LabelsKey:
    for key in labels:
        if not _LABEL_RE.match(key):
            raise ValueError(f"invalid label name {key!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_labels(labels: LabelsKey) -> str:
    if not labels:
        return ""
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in labels)
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class Counter:
    """A monotonically increasing count of events."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelsKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount


class Gauge:
    """A value that can rise and fall (states, sizes, utilization)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelsKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket distribution of observed values.

    Buckets are cumulative upper bounds (Prometheus ``le`` semantics);
    an implicit ``+Inf`` bucket catches overflow.  Alongside the bucket
    counts the histogram tracks ``sum``, ``count``, ``minimum`` and
    ``maximum``, which bound the quantile estimates.
    """

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count",
                 "sum", "minimum", "maximum")

    def __init__(
        self,
        name: str,
        labels: LabelsKey = (),
        buckets: Sequence[float] = DEFAULT_DURATION_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must be strictly increasing")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        #: Per-bound counts plus one trailing +Inf overflow slot.
        self.bucket_counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum: float = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one observation.  Bounds are inclusive upper limits
        (Prometheus ``le``), so a value equal to a bound lands in that
        bound's bucket — hence ``bisect_left``, not ``bisect_right``."""
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(le, cumulative count)`` pairs, ending with ``+Inf``."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, bucket in zip(self.bounds, self.bucket_counts):
            running += bucket
            out.append((bound, running))
        out.append((math.inf, running + self.bucket_counts[-1]))
        return out

    def quantile(self, q: float) -> Optional[float]:
        """Estimated q-th percentile (``None`` when empty).

        Each observation is represented by its bucket's upper bound
        (overflow observations by the true maximum, the first bucket
        floored at the true minimum); the interpolation itself is
        :func:`repro.analysis.metrics.percentile` over that virtual
        sorted sample — one percentile implementation, not two.
        """
        if self.count == 0:
            return None
        from ..analysis.metrics import percentile

        estimate = percentile(_BucketSample(self), q)
        # Bucket upper bounds over-estimate; the true extremes are
        # known, so the estimate is clamped into [minimum, maximum].
        return min(max(estimate, self.minimum), self.maximum)


class _BucketSample:
    """Lazy sorted-sequence view of a histogram for ``percentile``.

    Index ``i`` resolves — via the cumulative bucket counts — to the
    representative value of the bucket holding the i-th smallest
    observation, without materializing ``count`` elements.
    """

    __slots__ = ("_cumulative", "_values")

    def __init__(self, histogram: Histogram) -> None:
        self._cumulative: List[int] = []
        self._values: List[float] = []
        running = 0
        representatives = list(histogram.bounds) + [
            histogram.maximum if histogram.maximum is not None else math.inf
        ]
        for representative, bucket in zip(
            representatives, histogram.bucket_counts
        ):
            if bucket:
                running += bucket
                self._cumulative.append(running)
                self._values.append(representative)

    def __len__(self) -> int:
        return self._cumulative[-1] if self._cumulative else 0

    def __getitem__(self, index: int) -> float:
        if index < 0:
            index += len(self)
        return self._values[bisect_right(self._cumulative, index)]


class MetricsRegistry:
    """Instrument factory plus Prometheus/JSON exporters."""

    enabled = True

    _KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

    def __init__(self) -> None:
        #: name → (kind, help text); one metric family per name.
        self._families: Dict[str, Tuple[str, str]] = {}
        #: (name, labels) → instrument.
        self._instruments: Dict[Tuple[str, LabelsKey], Any] = {}
        #: Family creation order, for stable exposition output.
        self._order: List[str] = []

    # ------------------------------------------------------------------
    # instrument factories (get-or-create)
    # ------------------------------------------------------------------
    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._get_or_create("counter", name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._get_or_create("gauge", name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_DURATION_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._get_or_create(
            "histogram", name, help, labels, buckets=buckets
        )

    def _get_or_create(
        self,
        kind: str,
        name: str,
        help: str,
        labels: Dict[str, str],
        **extra: Any,
    ) -> Any:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        family = self._families.get(name)
        if family is None:
            self._families[name] = (kind, help)
            self._order.append(name)
        elif family[0] != kind:
            raise ValueError(
                f"metric {name!r} already registered as a {family[0]}, "
                f"cannot re-register as a {kind}"
            )
        elif help and not family[1]:
            self._families[name] = (kind, help)
        key = (name, _freeze_labels(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = self._KINDS[kind](name, key[1], **extra)
            self._instruments[key] = instrument
        return instrument

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def families(self) -> List[str]:
        """Registered metric family names, in creation order."""
        return list(self._order)

    def instruments(self, name: Optional[str] = None) -> List[Any]:
        """Every instrument (optionally of one family), label-sorted."""
        out = [
            inst
            for (family, _labels), inst in sorted(self._instruments.items())
            if name is None or family == name
        ]
        return out

    def get(self, name: str, **labels: str) -> Optional[Any]:
        """An existing instrument, or ``None`` (never creates)."""
        return self._instruments.get((name, _freeze_labels(labels)))

    def value(self, name: str, **labels: str) -> Optional[float]:
        """Shortcut: the scalar value of a counter/gauge, or ``None``."""
        instrument = self.get(name, **labels)
        return None if instrument is None else instrument.value

    # ------------------------------------------------------------------
    # exporters
    # ------------------------------------------------------------------
    def render_prometheus(self) -> str:
        """Prometheus text exposition (format 0.0.4) of every series."""
        lines: List[str] = []
        for name in self._order:
            kind, help_text = self._families[name]
            if help_text:
                lines.append(f"# HELP {name} {_escape(help_text)}")
            lines.append(f"# TYPE {name} {kind}")
            for instrument in self.instruments(name):
                labels = instrument.labels
                if kind == "histogram":
                    for le, cumulative in instrument.cumulative_buckets():
                        bucket_labels = labels + (("le", _format_value(le)),)
                        lines.append(
                            f"{name}_bucket{_render_labels(bucket_labels)} "
                            f"{cumulative}"
                        )
                    lines.append(
                        f"{name}_sum{_render_labels(labels)} "
                        f"{_format_value(instrument.sum)}"
                    )
                    lines.append(
                        f"{name}_count{_render_labels(labels)} "
                        f"{instrument.count}"
                    )
                else:
                    lines.append(
                        f"{name}{_render_labels(labels)} "
                        f"{_format_value(instrument.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable snapshot of every series."""
        families: List[Dict[str, Any]] = []
        for name in self._order:
            kind, help_text = self._families[name]
            series: List[Dict[str, Any]] = []
            for instrument in self.instruments(name):
                entry: Dict[str, Any] = {"labels": dict(instrument.labels)}
                if kind == "histogram":
                    entry.update(
                        count=instrument.count,
                        sum=instrument.sum,
                        min=instrument.minimum,
                        max=instrument.maximum,
                        buckets=[
                            {"le": ("+Inf" if le == math.inf else le),
                             "count": cumulative}
                            for le, cumulative in
                            instrument.cumulative_buckets()
                        ],
                    )
                else:
                    entry["value"] = instrument.value
                series.append(entry)
            families.append(
                {"name": name, "type": kind, "help": help_text,
                 "series": series}
            )
        return {"metrics": families}

    def render_json(self, indent: Optional[int] = 2) -> str:
        """The :meth:`snapshot` dict rendered as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent)


class _NullInstrument:
    """Shared do-nothing stand-in for every instrument kind."""

    __slots__ = ()
    name = ""
    labels: LabelsKey = ()
    value = 0
    count = 0
    sum = 0.0
    minimum = None
    maximum = None
    mean = None

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> None:
        return None

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        return []


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """No-op twin of :class:`MetricsRegistry`.

    ``enabled`` is ``False`` so hot paths can skip whole measurement
    blocks (``perf_counter`` calls, delta syncs) with one attribute
    check; instrument handles are a shared singleton whose methods do
    nothing, so straight-line instrumentation needs no branching.
    """

    enabled = False

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_DURATION_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def families(self) -> List[str]:
        return []

    def instruments(self, name: Optional[str] = None) -> List[Any]:
        return []

    def get(self, name: str, **labels: str) -> None:
        return None

    def value(self, name: str, **labels: str) -> None:
        return None

    def render_prometheus(self) -> str:
        return ""

    def snapshot(self) -> Dict[str, Any]:
        return {"metrics": []}

    def render_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)


#: Shared process-wide null registry — the default for every
#: ``telemetry=`` knob.  Stateless, so sharing is safe.
NULL_REGISTRY = NullRegistry()
