"""Structured telemetry events — the watchdog's exportable narrative.

Metrics (:mod:`repro.telemetry.registry`) aggregate; events record the
individual occurrences an integrator replays offline: detections, task
faults, ECU state changes, treatments, lint warnings.  Every event is a
versioned, JSON-serializable record so a JSONL stream written today
stays parseable when the schema grows — and so kernel ground truth
(:func:`repro.analysis.traces.trace_to_jsonl`) and watchdog telemetry
can be correlated record-by-record on the shared ``time`` axis.

Sinks implement the :class:`TelemetrySink` protocol (one ``emit``
method).  Three are provided:

* :class:`InMemorySink` — list-backed, for tests and programmatic use,
* :class:`JsonlFileSink` — one JSON document per line, for the CLI
  (``--telemetry out.jsonl``),
* :class:`NullSink` — the no-op default (``enabled`` is ``False`` so
  producers can skip event construction entirely).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, IO, Iterable, List, Optional

try:  # pragma: no cover - Protocol exists on every supported Python
    from typing import Protocol
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "InMemorySink",
    "JsonlFileSink",
    "NULL_SINK",
    "NullSink",
    "TelemetryEvent",
    "TelemetrySink",
]

#: Version stamped into every record; bump on incompatible field changes.
EVENT_SCHEMA_VERSION = 1

#: Well-known event kinds (producers may add new ones; consumers must
#: ignore kinds they do not understand).
KIND_DETECTION = "detection"
KIND_TASK_FAULT = "task_fault"
KIND_ECU_STATE_CHANGE = "ecu_state_change"
KIND_TREATMENT = "treatment"
KIND_LINT_WARNING = "lint_warning"
KIND_RUN_COMPLETED = "run_completed"
KIND_METRICS_SNAPSHOT = "metrics_snapshot"
KIND_RESULT_ROW = "result_row"


@dataclass(frozen=True)
class TelemetryEvent:
    """One versioned telemetry record.

    ``time`` is simulation ticks for in-run events (detections, state
    changes, treatments) — the same axis as the kernel trace — and 0
    for configuration-time or CLI-level events (lint warnings,
    snapshots).
    """

    time: int
    kind: str
    subject: str
    data: Dict[str, Any] = field(default_factory=dict)
    schema: int = EVENT_SCHEMA_VERSION

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "time": self.time,
            "kind": self.kind,
            "subject": self.subject,
            "data": dict(self.data),
        }

    def to_jsonl(self) -> str:
        """One-line JSON rendering (no trailing newline)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TelemetryEvent":
        return cls(
            time=payload["time"],
            kind=payload["kind"],
            subject=payload["subject"],
            data=dict(payload.get("data", {})),
            schema=payload.get("schema", EVENT_SCHEMA_VERSION),
        )

    @classmethod
    def from_jsonl(cls, line: str) -> "TelemetryEvent":
        return cls.from_dict(json.loads(line))


class TelemetrySink(Protocol):
    """Anything that accepts telemetry events."""

    def emit(self, event: TelemetryEvent) -> None: ...


class NullSink:
    """Swallows every event; ``enabled`` is ``False`` so producers can
    skip building the event object in the first place."""

    enabled = False

    def emit(self, event: TelemetryEvent) -> None:
        pass


#: Shared process-wide null sink — the default for every ``event_sink=``
#: knob.  Stateless, so sharing is safe.
NULL_SINK = NullSink()


class InMemorySink:
    """Collects events in a list (tests and programmatic consumers)."""

    enabled = True

    def __init__(self) -> None:
        self.events: List[TelemetryEvent] = []

    def emit(self, event: TelemetryEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def filter(
        self, kind: Optional[str] = None, subject: Optional[str] = None
    ) -> List[TelemetryEvent]:
        """Events matching the given constraints."""
        return [
            e for e in self.events
            if (kind is None or e.kind == kind)
            and (subject is None or e.subject == subject)
        ]

    def kinds(self) -> List[str]:
        """Distinct event kinds seen, in first-seen order."""
        seen: Dict[str, None] = {}
        for event in self.events:
            seen.setdefault(event.kind, None)
        return list(seen)

    def clear(self) -> None:
        self.events.clear()


class JsonlFileSink:
    """Writes one JSON document per event line (the CLI's export format).

    Usable as a context manager; ``mode="a"`` appends to an existing
    stream (used when several subcommands share one ``--telemetry``
    file).  ``flush_every=N`` flushes the underlying file every N
    emitted events so a long-running daemon's stream is durable without
    reopening the file; the default (``None``) keeps the historical
    close-time flushing.  ``fsync=True`` additionally forces the OS to
    commit each flush to stable storage — the durability level the
    supervision daemon's state journal needs to survive a host crash,
    not just a process crash.
    """

    enabled = True

    def __init__(
        self, path: str, mode: str = "w", *, flush_every: Optional[int] = None,
        fsync: bool = False,
    ) -> None:
        if mode not in ("w", "a"):
            raise ValueError(f"mode must be 'w' or 'a', not {mode!r}")
        if flush_every is not None and flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, not {flush_every!r}")
        self.path = str(path)
        self.flush_every = flush_every
        self.fsync = fsync
        self._handle: Optional[IO[str]] = open(self.path, mode,
                                               encoding="utf-8")
        self.emitted = 0

    def emit(self, event: TelemetryEvent) -> None:
        if self._handle is None:
            raise ValueError(f"sink for {self.path!r} is closed")
        self._handle.write(event.to_jsonl() + "\n")
        self.emitted += 1
        if (self.flush_every is not None
                and self.emitted % self.flush_every == 0):
            self.flush()

    def flush(self) -> None:
        """Push buffered lines to the OS now (no-op once closed); with
        ``fsync=True`` also force them onto stable storage."""
        if self._handle is not None:
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlFileSink":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def read_jsonl(
    lines: Iterable[str], *, strict: bool = False
) -> List[TelemetryEvent]:
    """Parse an iterable of JSONL lines (blank lines skipped).

    A killed daemon leaves a crash-truncated final line; by default that
    one *trailing* partial line is tolerated and the intact prefix is
    returned.  A malformed line with more content after it is still
    corruption and raises, as does any malformed line under
    ``strict=True`` (the historical behavior).
    """
    events: List[TelemetryEvent] = []
    pending: Optional[Exception] = None
    for line in lines:
        if not line.strip():
            continue
        if pending is not None:
            # The malformed line was not the trailing one after all.
            raise pending
        try:
            events.append(TelemetryEvent.from_jsonl(line))
        except (ValueError, KeyError, TypeError) as exc:
            if strict:
                raise
            pending = exc
    return events
