"""OSEKtime-style deadline monitoring baseline (task granularity).

"Deadline monitoring of the OSEKtime operating system ... introduce[s]
the time monitoring of tasks, but the granularity of fault detection on
the layer of tasks is not fine enough for runnables" (§2).

The monitor observes the kernel trace live: every ``TASK_ACTIVATE`` of a
monitored task arms a deadline; the matching ``TASK_TERMINATE`` disarms
it.  A deadline that fires before termination is a violation.  What this
catches: a hung or overrunning *task*.  What it structurally cannot
catch: a single skipped runnable inside a task that still terminates on
time, a wrong execution order, or an arrival-rate fault of an individual
runnable — the blind spots the Software Watchdog addresses.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..kernel.scheduler import Kernel
from ..kernel.tracing import TraceKind, TraceRecord


class DeadlineMonitor:
    """Per-task activation deadline supervision."""

    def __init__(self, kernel: Kernel, *, name: str = "DeadlineMonitor") -> None:
        self.kernel = kernel
        self.name = name
        #: task → relative deadline (ticks from activation).
        self.deadlines: Dict[str, int] = {}
        self.violation_times: List[int] = []
        self.violations_by_task: Dict[str, int] = {}
        self._armed: Dict[str, object] = {}
        kernel.trace.subscribe(self._on_record)

    # ------------------------------------------------------------------
    def monitor(self, task: str, deadline: int) -> None:
        """Supervise a task with the given relative deadline."""
        if deadline <= 0:
            raise ValueError("deadline must be > 0")
        self.deadlines[task] = deadline

    # ------------------------------------------------------------------
    def _on_record(self, record: TraceRecord) -> None:
        if record.subject not in self.deadlines:
            return
        if record.kind is TraceKind.TASK_ACTIVATE:
            self._arm(record.subject)
        elif record.kind is TraceKind.TASK_TERMINATE:
            self._disarm(record.subject)

    def _arm(self, task: str) -> None:
        if task in self._armed:
            return  # already supervising the outstanding activation
        deadline = self.deadlines[task]
        event = self.kernel.queue.schedule(
            self.kernel.clock.now + deadline,
            lambda: self._expire(task),
            label=f"deadline:{task}",
            persistent=True,
        )
        self._armed[task] = event

    def _disarm(self, task: str) -> None:
        event = self._armed.pop(task, None)
        if event is not None:
            event.cancel()

    def _expire(self, task: str) -> None:
        self._armed.pop(task, None)
        now = self.kernel.clock.now
        self.violation_times.append(now)
        self.violations_by_task[task] = self.violations_by_task.get(task, 0) + 1
        self.kernel.trace.record(
            now, TraceKind.CUSTOM, self.name, event="deadline_miss", task=task
        )

    # ------------------------------------------------------------------
    @property
    def violation_count(self) -> int:
        return len(self.violation_times)

    def first_detection_after(self, time: int) -> Optional[int]:
        """Campaign detector interface."""
        for t in self.violation_times:
            if t >= time:
                return t
        return None
