"""CFCSS — Control Flow Checking by Software Signatures (Oh et al. 2002).

The signature-based technique the paper cites as related work [10] and
argues against for runnable-level monitoring: "Such a technique suffers
from high performance overhead and low flexibility with regard to
modification of programs" (§2).  To make the overhead comparison honest,
this is a faithful implementation of the published algorithm, not a
strawman:

* every basic block *v* gets a unique static signature ``s_v``,
* a global run-time signature ``G`` is updated at each block entry with
  the static XOR difference ``d_v = s_v ⊕ s_{pred(v)}``,
* branch-fan-in blocks additionally XOR a run-time adjusting signature
  ``D``, which each legal predecessor sets before branching,
* ``G ≠ s_v`` after the update signals a control-flow error.

Instrumentation cost is counted in instructions executed, matching the
paper's overhead argument: 2 instructions per block (XOR + compare),
+1 for the extra XOR in fan-in blocks, +1 in every predecessor that must
set ``D``.  The known *aliasing* limitation of CFCSS (illegal branches
between blocks sharing fan-in predecessor sets may go undetected) is
preserved — and demonstrated by the test-suite.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set


class CfgError(ValueError):
    """Raised for invalid control-flow graphs or walks."""


class BasicBlockGraph:
    """A control-flow graph of basic blocks."""

    def __init__(self) -> None:
        self._successors: Dict[str, List[str]] = {}
        self._predecessors: Dict[str, List[str]] = {}

    def add_block(self, name: str) -> None:
        if name in self._successors:
            raise CfgError(f"duplicate block {name!r}")
        self._successors[name] = []
        self._predecessors[name] = []

    def add_edge(self, src: str, dst: str) -> None:
        if src not in self._successors or dst not in self._successors:
            raise CfgError(f"edge {src!r}->{dst!r} references unknown block")
        if dst in self._successors[src]:
            return
        self._successors[src].append(dst)
        self._predecessors[dst].append(src)

    def add_path(self, blocks: List[str]) -> None:
        """Add blocks (if new) and chain them with edges."""
        for block in blocks:
            if block not in self._successors:
                self.add_block(block)
        for src, dst in zip(blocks, blocks[1:]):
            self.add_edge(src, dst)

    def blocks(self) -> List[str]:
        return list(self._successors)

    def successors(self, block: str) -> List[str]:
        return list(self._successors[block])

    def predecessors(self, block: str) -> List[str]:
        return list(self._predecessors[block])

    def is_edge(self, src: str, dst: str) -> bool:
        return dst in self._successors.get(src, ())


class CfcssChecker:
    """Signature monitoring of walks over a :class:`BasicBlockGraph`."""

    def __init__(self, graph: BasicBlockGraph, entry: str) -> None:
        if entry not in graph.blocks():
            raise CfgError(f"unknown entry block {entry!r}")
        self.graph = graph
        self.entry = entry
        #: static signatures (unique per block).
        self.signatures: Dict[str, int] = {}
        #: static XOR differences d_v.
        self.differences: Dict[str, int] = {}
        #: fan-in blocks (>1 predecessor) needing the adjusting signature.
        self.fan_in: Set[str] = set()
        #: (pred, fan-in succ) → value the predecessor loads into D.
        self.d_adjust: Dict[tuple, int] = {}
        self._instrument()
        # run-time state
        self.G = 0
        self.D = 0
        self.current: Optional[str] = None
        self.instruction_count = 0
        self.detections: List[tuple] = []
        self.steps = 0

    # ------------------------------------------------------------------
    # instrumentation (compile time)
    # ------------------------------------------------------------------
    def _instrument(self) -> None:
        for index, block in enumerate(self.graph.blocks()):
            # Unique signatures; spaced values avoid trivial XOR aliases.
            self.signatures[block] = (index + 1) * 0x2B + 1
        for block in self.graph.blocks():
            preds = self.graph.predecessors(block)
            if not preds:
                self.differences[block] = self.signatures[block]
                continue
            base = preds[0]
            self.differences[block] = self.signatures[block] ^ self.signatures[base]
            if len(preds) > 1:
                self.fan_in.add(block)
                for pred in preds:
                    self.d_adjust[(pred, block)] = (
                        self.signatures[pred] ^ self.signatures[base]
                    )

    def instrumentation_size(self) -> int:
        """Static instruction count added to the program (code size
        overhead): 2 per block, +1 per fan-in block, +1 per (pred,
        fan-in) branch-out site."""
        return 2 * len(self.graph.blocks()) + len(self.fan_in) + len(self.d_adjust)

    # ------------------------------------------------------------------
    # runtime
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Enter the program at the entry block."""
        self.current = self.entry
        self.G = self.signatures[self.entry]
        self.D = 0
        self.instruction_count += 2  # entry block's update + compare
        self.steps += 1

    def step(self, next_block: str) -> bool:
        """Execute the transition to ``next_block``.

        A *legal* transition also executes the predecessor's D-setting
        code; an illegal one (the injected fault) jumps straight into
        ``next_block``'s signature check.  Returns True when the check
        passes (i.e. the fault went undetected or the edge was legal).
        """
        if self.current is None:
            raise CfgError("checker not started")
        if next_block not in self.signatures:
            raise CfgError(f"unknown block {next_block!r}")
        src = self.current
        legal = self.graph.is_edge(src, next_block)
        if legal and (src, next_block) in self.d_adjust:
            self.D = self.d_adjust[(src, next_block)]
            self.instruction_count += 1  # the predecessor sets D

        # --- block entry code of next_block ---
        self.G ^= self.differences[next_block]
        self.instruction_count += 1
        if next_block in self.fan_in:
            self.G ^= self.D
            self.instruction_count += 1
        self.instruction_count += 1  # compare G with s_v
        self.steps += 1
        self.current = next_block
        ok = self.G == self.signatures[next_block]
        if not ok:
            self.detections.append((src, next_block))
            # Real CFCSS branches to an error handler; for continued
            # observation the checker resynchronises on the actual block.
            self.G = self.signatures[next_block]
        return ok

    def run_walk(self, walk: List[str]) -> int:
        """Execute a whole walk (first element must be the entry);
        returns the number of detections raised."""
        before = len(self.detections)
        if not walk:
            return 0
        if walk[0] != self.entry:
            raise CfgError("walk must begin at the entry block")
        self.start()
        for block in walk[1:]:
            self.step(block)
        return len(self.detections) - before

    @property
    def detected_count(self) -> int:
        return len(self.detections)


def instructions_per_block(graph: BasicBlockGraph) -> float:
    """Average dynamic instrumentation instructions per executed block,
    assuming uniform block execution (for quick overhead estimates)."""
    checker = CfcssChecker(graph, graph.blocks()[0])
    blocks = graph.blocks()
    total = 0.0
    for block in blocks:
        cost = 2.0  # XOR + compare
        if block in checker.fan_in:
            cost += 1.0
        # Branch-out cost amortised over the block's successors.
        outs = [s for s in graph.successors(block) if (block, s) in checker.d_adjust]
        if graph.successors(block):
            cost += len(outs) / len(graph.successors(block))
        total += cost
    return total / len(blocks) if blocks else 0.0
