"""AUTOSAR-OS execution time monitoring baseline (task granularity).

"Execution time monitoring of AUTOSAR OS introduce[s] the time
monitoring of tasks" (§2): each task has an execution-time *budget* per
activation; exceeding it is a protection error.

The monitor samples the kernel's per-task CPU accounting at every
dispatch boundary (via the pre/post task hooks and a periodic probe for
in-flight overruns), so it detects a task that *burns* too much CPU —
including one stuck in a loop that never terminates.  It remains blind
to a task doing too little (a skipped runnable) or running in the wrong
internal order, which is the granularity gap the paper's service fills.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..kernel.clock import ms
from ..kernel.scheduler import Kernel
from ..kernel.task import Task
from ..kernel.tracing import TraceKind


class ExecutionTimeMonitor:
    """Per-activation CPU budget supervision."""

    def __init__(
        self,
        kernel: Kernel,
        *,
        probe_period: int = ms(1),
        name: str = "ExecTimeMonitor",
    ) -> None:
        if probe_period <= 0:
            raise ValueError("probe_period must be > 0")
        self.kernel = kernel
        self.name = name
        self.probe_period = probe_period
        #: task → budget ticks per activation.
        self.budgets: Dict[str, int] = {}
        #: task → CPU ticks at activation start.
        self._baseline: Dict[str, int] = {}
        #: task → already flagged for the current activation.
        self._flagged: Dict[str, bool] = {}
        self.violation_times: List[int] = []
        self.violations_by_task: Dict[str, int] = {}
        kernel.hooks.pre_task.append(self._on_task_start)
        kernel.hooks.post_task.append(self._on_task_end)
        self._probing = False

    # ------------------------------------------------------------------
    def monitor(self, task: str, budget: int) -> None:
        """Supervise a task with the given per-activation CPU budget."""
        if budget <= 0:
            raise ValueError("budget must be > 0")
        self.budgets[task] = budget
        if not self._probing:
            self._probing = True
            self._schedule_probe()

    # ------------------------------------------------------------------
    def _on_task_start(self, kernel: Kernel, task: Task) -> None:
        if task.name in self.budgets:
            self._baseline[task.name] = kernel.task_cpu_ticks[task.name]
            self._flagged[task.name] = False

    def _on_task_end(self, kernel: Kernel, task: Task) -> None:
        if task.name in self.budgets:
            self._check(task.name)
            self._baseline.pop(task.name, None)

    def _schedule_probe(self) -> None:
        self.kernel.queue.schedule(
            self.kernel.clock.now + self.probe_period,
            self._probe,
            label=f"etm:{self.name}",
            persistent=True,
        )

    def _probe(self) -> None:
        """Catch in-flight overruns of activations that never terminate."""
        for task in list(self._baseline):
            self._check(task)
        self._schedule_probe()

    def _check(self, task: str) -> None:
        baseline = self._baseline.get(task)
        if baseline is None or self._flagged.get(task):
            return
        used = self.kernel.task_cpu_ticks[task] - baseline
        if used > self.budgets[task]:
            self._flagged[task] = True
            now = self.kernel.clock.now
            self.violation_times.append(now)
            self.violations_by_task[task] = self.violations_by_task.get(task, 0) + 1
            self.kernel.trace.record(
                now,
                TraceKind.CUSTOM,
                self.name,
                event="budget_exceeded",
                task=task,
                used=used,
            )

    # ------------------------------------------------------------------
    @property
    def violation_count(self) -> int:
        return len(self.violation_times)

    def first_detection_after(self, time: int) -> Optional[int]:
        """Campaign detector interface."""
        for t in self.violation_times:
            if t >= time:
                return t
        return None
