"""Baseline monitoring techniques the paper positions itself against.

* :class:`HardwareWatchdog` — the ECU-level watchdog (whole software),
* :class:`DeadlineMonitor` — OSEKtime-style task deadline monitoring,
* :class:`ExecutionTimeMonitor` — AUTOSAR-OS execution budgets,
* :class:`CfcssChecker` — signature-based control flow checking
  (Oh/Shirvani/McCluskey), the overhead comparison target of §3.2.2.
"""

from .cfcss import BasicBlockGraph, CfcssChecker, CfgError, instructions_per_block
from .deadline_monitor import DeadlineMonitor
from .exec_time_monitor import ExecutionTimeMonitor
from .hw_watchdog import HardwareWatchdog, attach_kick_glue, attach_kick_task

__all__ = [
    "BasicBlockGraph",
    "CfcssChecker",
    "CfgError",
    "DeadlineMonitor",
    "ExecutionTimeMonitor",
    "HardwareWatchdog",
    "attach_kick_glue",
    "attach_kick_task",
    "instructions_per_block",
]
