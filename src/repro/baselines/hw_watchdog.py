"""ECU hardware watchdog baseline.

"A hardware watchdog treats the embedded software as a whole" (§2): a
free-running down-counter is kicked ("served") by some designated point
in the software — classically the lowest-priority background task, so a
kick proves only that *something* still schedules.  If no kick arrives
within the timeout, the hardware fires a reset.

The baseline demonstrates the granularity argument of the paper: a
single blocked runnable, an excessive-dispatch fault or a corrupted
execution sequence leaves the kick path perfectly healthy, so the
hardware watchdog stays silent; only whole-CPU starvation (e.g. an
interrupt storm or a runaway highest-priority task) trips it.

A *windowed* mode is included (modern automotive watchdogs, e.g. the
S12XF the paper's outlook targets, support windows): kicks arriving too
*early* also count as failures, catching runaway fast loops.
"""

from __future__ import annotations

from typing import List, Optional

from ..kernel.runnable import Runnable
from ..kernel.scheduler import Kernel
from ..kernel.task import Segment, Task
from ..kernel.tracing import TraceKind


class HardwareWatchdog:
    """Free-running timeout (optionally windowed) kicked from software."""

    def __init__(
        self,
        kernel: Kernel,
        *,
        timeout: int,
        window_open: int = 0,
        name: str = "HardwareWatchdog",
    ) -> None:
        if timeout <= 0:
            raise ValueError("timeout must be > 0")
        if not 0 <= window_open < timeout:
            raise ValueError("window_open must lie within [0, timeout)")
        self.kernel = kernel
        self.timeout = timeout
        self.window_open = window_open
        self.name = name
        self.kick_count = 0
        self.expiry_times: List[int] = []
        self.early_kick_times: List[int] = []
        self._last_kick = kernel.clock.now
        self._armed = False
        self._deadline_event = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the watchdog (idempotent)."""
        if self._armed:
            return
        self._armed = True
        self._last_kick = self.kernel.clock.now
        self._schedule_deadline()

    def kick(self) -> None:
        """Service the watchdog.

        In windowed mode a kick before ``window_open`` ticks have passed
        since the previous kick is itself a failure (recorded, watchdog
        fires as real hardware would).
        """
        now = self.kernel.clock.now
        elapsed = now - self._last_kick
        if self._armed and self.window_open > 0 and elapsed < self.window_open:
            self.early_kick_times.append(now)
            self._fire(now, reason="early_kick")
        self.kick_count += 1
        self._last_kick = now
        if self._armed:
            self._schedule_deadline()

    # ------------------------------------------------------------------
    @property
    def expired(self) -> bool:
        return bool(self.expiry_times)

    def first_detection_after(self, time: int) -> Optional[int]:
        """Campaign detector interface."""
        for t in self.expiry_times + self.early_kick_times:
            if t >= time:
                return t
        return None

    # ------------------------------------------------------------------
    def _schedule_deadline(self) -> None:
        if self._deadline_event is not None:
            self._deadline_event.cancel()
        self._deadline_event = self.kernel.queue.schedule(
            self._last_kick + self.timeout, self._check,
            label=f"hwwd:{self.name}", persistent=True,
        )

    def _check(self) -> None:
        now = self.kernel.clock.now
        if now - self._last_kick >= self.timeout:
            self._fire(now, reason="timeout")
            # Real hardware resets; the baseline keeps observing so that
            # campaigns can record repeated expiries.
            self._last_kick = now
        self._schedule_deadline()

    def _fire(self, now: int, reason: str) -> None:
        self.expiry_times.append(now)
        self.kernel.trace.record(
            now, TraceKind.CUSTOM, self.name, event="hw_watchdog_fired", reason=reason
        )


def attach_kick_task(
    kernel: Kernel,
    watchdog: HardwareWatchdog,
    *,
    priority: int = 0,
    period_hint: str = "activate externally",
) -> Task:
    """Create the classic background kick task (lowest priority).

    The caller activates it periodically (usually via an alarm); each
    activation costs one tick and kicks the watchdog — the conventional
    arrangement whose blind spots the Software Watchdog closes.
    """

    def body(task: Task):
        yield Segment(1, on_end=watchdog.kick, label="hw_kick")

    task = Task(f"{watchdog.name}KickTask", priority, body)
    kernel.add_task(task)
    return task


def attach_kick_glue(watchdog: HardwareWatchdog, runnable: Runnable) -> None:
    """Alternative arrangement: kick from a specific runnable's exit."""
    runnable.add_exit_glue(lambda r, t: watchdog.kick())
